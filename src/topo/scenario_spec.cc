#include "topo/scenario_spec.hh"

#include <algorithm>

#include "net/logging.hh"
#include "obs/views.hh"
#include "topo/scenarios.hh"

namespace bgpbench::topo
{

namespace
{

/**
 * Deterministic per-cycle jitter: a splitmix64-style finalizer over
 * (seed, link, cycle). Pure arithmetic on the schedule inputs — the
 * expansion never consults a clock or global RNG.
 */
uint64_t
jitterHash(uint64_t seed, size_t link, size_t cycle)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (uint64_t(link) + 1) +
                 0xbf58476d1ce4e5b9ULL * (uint64_t(cycle) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Records the scenario's phase intervals into the run trace. Phase
 * boundaries are virtual times the simulation reached anyway, so
 * recording cannot perturb it; a detached recorder does nothing.
 */
class PhaseRecorder
{
  public:
    explicit PhaseRecorder(const TopologySimConfig &config)
    {
        if (config.obs)
            tracer_.attach(&config.obs->trace);
    }

    void
    phase(const char *name, sim::SimTime begin, sim::SimTime end)
    {
        tracer_.complete(name, "phase", obs::kTrackPhases, 0, begin,
                         end);
    }

  private:
    obs::Tracer tracer_;
};

/** Apply one fault event at absolute time @p at. */
void
applyFault(TopologySim &sim, const FaultEvent &event, sim::SimTime at)
{
    switch (event.kind) {
    case FaultEvent::Kind::PrefixDown:
        sim.withdrawLocal(event.node,
                          scenarioPrefix(event.node, event.index), at);
        break;
    case FaultEvent::Kind::PrefixUp:
        sim.originate(event.node,
                      scenarioPrefix(event.node, event.index), at);
        break;
    case FaultEvent::Kind::LinkDown:
        sim.scheduleLinkDown(event.link, at);
        break;
    case FaultEvent::Kind::LinkUp:
        sim.scheduleLinkUp(event.link, at);
        break;
    case FaultEvent::Kind::SessionReset:
        sim.scheduleSessionReset(event.link, at);
        break;
    case FaultEvent::Kind::RouterRestart:
        sim.scheduleRouterRestart(event.node, at, event.downtime);
        break;
    }
}

} // namespace

FaultSchedule &
FaultSchedule::prefixDown(size_t node, size_t index, sim::SimTime at)
{
    FaultEvent event;
    event.kind = FaultEvent::Kind::PrefixDown;
    event.at = at;
    event.node = node;
    event.index = index;
    events_.push_back(event);
    return *this;
}

FaultSchedule &
FaultSchedule::prefixUp(size_t node, size_t index, sim::SimTime at)
{
    FaultEvent event;
    event.kind = FaultEvent::Kind::PrefixUp;
    event.at = at;
    event.node = node;
    event.index = index;
    events_.push_back(event);
    return *this;
}

FaultSchedule &
FaultSchedule::linkDown(size_t link, sim::SimTime at)
{
    FaultEvent event;
    event.kind = FaultEvent::Kind::LinkDown;
    event.at = at;
    event.link = link;
    events_.push_back(event);
    return *this;
}

FaultSchedule &
FaultSchedule::linkUp(size_t link, sim::SimTime at)
{
    FaultEvent event;
    event.kind = FaultEvent::Kind::LinkUp;
    event.at = at;
    event.link = link;
    events_.push_back(event);
    return *this;
}

FaultSchedule &
FaultSchedule::sessionReset(size_t link, sim::SimTime at)
{
    FaultEvent event;
    event.kind = FaultEvent::Kind::SessionReset;
    event.at = at;
    event.link = link;
    events_.push_back(event);
    return *this;
}

FaultSchedule &
FaultSchedule::routerRestart(size_t node, sim::SimTime at,
                             sim::SimTime downtime)
{
    FaultEvent event;
    event.kind = FaultEvent::Kind::RouterRestart;
    event.at = at;
    event.node = node;
    event.downtime = downtime;
    events_.push_back(event);
    return *this;
}

FaultSchedule &
FaultSchedule::beaconTrain(size_t node, size_t index,
                           sim::SimTime start, sim::SimTime period,
                           size_t cycles)
{
    if (period == 0)
        fatal("beacon train needs a non-zero period");
    for (size_t c = 0; c < cycles; ++c) {
        sim::SimTime down_at = start + sim::SimTime(c) * period;
        prefixDown(node, index, down_at);
        prefixUp(node, index, down_at + period / 2);
    }
    return *this;
}

FaultSchedule &
FaultSchedule::linkFlapTrain(size_t link, sim::SimTime start,
                             sim::SimTime period,
                             unsigned dutyDownPercent, size_t cycles,
                             sim::SimTime jitterNs, uint64_t seed)
{
    if (period == 0)
        fatal("link flap train needs a non-zero period");
    if (dutyDownPercent == 0 || dutyDownPercent >= 100)
        fatal("link flap duty must be in (0, 100)");
    sim::SimTime down_time =
        period * sim::SimTime(dutyDownPercent) / 100;
    for (size_t c = 0; c < cycles; ++c) {
        sim::SimTime jitter =
            jitterNs == 0
                ? 0
                : sim::SimTime(jitterHash(seed, link, c) %
                               (uint64_t(jitterNs) + 1));
        sim::SimTime down_at =
            start + sim::SimTime(c) * period + jitter;
        linkDown(link, down_at);
        linkUp(link, down_at + down_time);
    }
    return *this;
}

FaultSchedule &
FaultSchedule::correlatedReset(const std::vector<size_t> &links,
                               sim::SimTime at)
{
    for (size_t link : links)
        sessionReset(link, at);
    return *this;
}

size_t
FaultSchedule::prefixEvents() const
{
    size_t count = 0;
    for (const FaultEvent &event : events_) {
        count += event.kind == FaultEvent::Kind::PrefixDown ||
                 event.kind == FaultEvent::Kind::PrefixUp;
    }
    return count;
}

std::vector<FaultEvent>
FaultSchedule::sorted() const
{
    std::vector<FaultEvent> events = events_;
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return events;
}

std::vector<size_t>
crossShardLinks(const Topology &topology, const Partition &partition)
{
    std::vector<size_t> links;
    for (size_t l = 0; l < topology.linkCount(); ++l) {
        const Link &link = topology.link(l);
        if (partition.shardOf[link.a.node] !=
            partition.shardOf[link.b.node])
            links.push_back(l);
    }
    return links;
}

bgp::DampingConfig
churnDampingConfig()
{
    bgp::DampingConfig config;
    config.enabled = true;
    config.halfLifeSec = 2.0;
    return config;
}

ScenarioResult
ScenarioRunner::run()
{
    TopologySim sim(std::move(spec_.topology), spec_.simConfig);
    PhaseRecorder phases(spec_.simConfig);
    bool faulted = !spec_.faults.empty();

    // Phase 1: establish. Fault-free specs measure from here (the
    // announce propagation is their subject).
    sim::SimTime mark = sim.now();
    bool converged = sim.runToConvergence(spec_.limitNs);
    if (!faulted)
        sim.tracker().markPhaseStart(sim.now());
    phases.phase("establish", mark, sim.now());

    // Phase 2: announce the workload.
    mark = sim.now();
    sim::SimTime at = sim.now();
    if (!spec_.originations.empty()) {
        for (const auto &[node, prefix] : spec_.originations)
            sim.originate(node, prefix, at);
    } else {
        for (size_t node = 0; node < sim.topology().nodeCount();
             ++node) {
            for (size_t j = 0; j < spec_.prefixesPerNode; ++j)
                sim.originate(node, scenarioPrefix(node, j), at);
        }
    }
    converged = converged && sim.runToConvergence(spec_.limitNs);
    if (faulted)
        sim.tracker().markPhaseStart(sim.now());
    phases.phase("announce", mark, sim.now());

    // Phase 3: play the fault schedule (offsets are relative to the
    // announce-quiet instant) and re-converge.
    if (faulted) {
        mark = sim.now();
        sim::SimTime base = sim.now();
        for (const FaultEvent &event : spec_.faults.sorted())
            applyFault(sim, event, base + event.at);
        converged = converged && sim.runToConvergence(spec_.limitNs);
        phases.phase("reconverge", mark, sim.now());
    }

    ScenarioResult result;
    result.convergence = sim.report(spec_.name, spec_.shape);
    result.convergence.converged =
        converged && sim.locRibsConsistent();

    StabilityReport &stability = result.stability;
    stability.scenario = spec_.name;
    stability.shape = spec_.shape;
    stability.nodes = sim.topology().nodeCount();
    uint64_t originations =
        spec_.originations.empty()
            ? uint64_t(sim.topology().nodeCount()) *
                  spec_.prefixesPerNode
            : spec_.originations.size();
    stability.injectedEvents =
        faulted ? spec_.faults.size() : originations;
    uint64_t prefix_events = spec_.faults.prefixEvents();
    stability.injectedTransactions =
        faulted ? (prefix_events ? prefix_events
                                 : stability.injectedEvents)
                : originations;
    stability.phaseUpdates = sim.tracker().phaseUpdatesDelivered();
    stability.phaseTransactions =
        sim.tracker().phaseTransactionsDelivered();
    stability.updatesPerConvergence =
        double(stability.phaseUpdates) /
        double(std::max<uint64_t>(1, stability.injectedEvents));
    stability.churnAmplification =
        double(stability.phaseTransactions) /
        double(std::max<uint64_t>(1, stability.injectedTransactions));
    stability.pathExplorationMax =
        result.convergence.pathExplorationMax;
    stability.pathExplorationMean =
        result.convergence.pathExplorationMean;
    for (size_t node = 0; node < sim.topology().nodeCount(); ++node) {
        const bgp::BgpSpeaker &speaker = sim.speaker(node);
        stability.dampingSuppressed +=
            sim.speaker(node).damper().suppressTransitions();
        stability.dampingReused +=
            sim.speaker(node).damper().reuseTransitions();
        stability.announcementsSuppressed +=
            speaker.counters().announcementsSuppressed;
        stability.mraiDeferrals += speaker.counters().mraiDeferrals;
    }

    if (spec_.simConfig.obs) {
        sim.publishParallelMetrics(spec_.simConfig.obs->metrics);
        // Path-exploration depth as a run histogram: one sample per
        // (router, prefix) pair, recorded from the already-merged
        // tracker so the distribution is layout-independent.
        obs::Histogram &exploration =
            spec_.simConfig.obs->metrics.histogram(
                obs::metric::topoPathExploration,
                {1, 2, 3, 4, 6, 8, 12, 16});
        sim.tracker().forEachExplored(
            [&](size_t, const net::Prefix &, size_t paths) {
                exploration.record(paths);
            });
    }
    return result;
}

namespace demo
{

ScenarioSpec
fourAsScenario()
{
    FourAsNetwork net = fourAsPolicyTopology();
    ScenarioSpec spec;
    spec.name = "four-as-demo";
    spec.shape = "four-as";
    spec.originations = {
        {net.backbone, net.backbonePrefix},
        {net.backbone, net.backboneSecondaryPrefix},
        {net.customer, net.customerPrefix},
        {net.ispB, net.martianPrefix},
    };
    spec.limitNs = sim::nsFromSec(60.0);
    spec.topology = std::move(net.topology);
    return spec;
}

} // namespace demo

} // namespace bgpbench::topo
