/**
 * @file
 * WindowController: the adaptive lookahead policy of the parallel
 * topology engine.
 *
 * PR 3 pinned every conservative window to L0, the smallest
 * cross-shard link latency, so one short link throttled every shard.
 * The controller grows the target window length toward a cap while
 * cross-shard traffic is quiet and shrinks it back toward L0 under
 * bursts, bounding the per-barrier mailbox batches.
 *
 * Determinism contract: the controller is driven exclusively by
 * virtual-time-observable quantities — the per-window cross-shard
 * message count fed to observe() — never by host time or thread
 * arrival order. For a fixed topology, schedule, and shard layout the
 * observation sequence is a pure function of the simulation, so the
 * target-length sequence replays identically on every run.
 *
 * The target is a *request*, not a guarantee: the engine still clamps
 * every window to the conservative causality bound derived from the
 * shards' earliest pending events (see topology_sim.cc), and the
 * target never drops below the floor L0, so adaptive windows are
 * always at least as long as the fixed-L windows they replace.
 */

#ifndef BGPBENCH_TOPO_SYNC_WINDOW_HH
#define BGPBENCH_TOPO_SYNC_WINDOW_HH

#include <cstddef>
#include <cstdint>

#include "sim/time.hh"

namespace bgpbench::topo
{

/**
 * Process default of the adaptive-sync ablation switch: true unless
 * BGPBENCH_NO_ADAPTIVE_SYNC=1 (exactly "1", mirroring the other
 * BGPBENCH_NO_* flags). Read per call, so tests that toggle the
 * variable see the change; the CLI layers --no-adaptive-sync on top
 * via core::RuntimeConfig.
 */
bool adaptiveSyncDefault();

class WindowController
{
  public:
    /**
     * @p floorNs is the conservative fixed window L0 (the smallest
     * cross-shard link latency); @p cutLinks sizes the traffic-burst
     * threshold; @p adaptive false pins the target to the floor
     * (the BGPBENCH_NO_ADAPTIVE_SYNC ablation — PR 3 behaviour).
     */
    WindowController(sim::SimTime floorNs, size_t cutLinks,
                     bool adaptive);

    bool adaptive() const { return adaptive_; }
    sim::SimTime floorNs() const { return floorNs_; }
    sim::SimTime capNs() const { return capNs_; }

    /** Current target window length (floor <= target <= cap). */
    sim::SimTime targetNs() const { return targetNs_; }

    /**
     * Cross-shard message count at which a window counts as a burst
     * and the target halves: max(64, 4 * cut links), so the batch a
     * barrier hands each link stays small relative to the cut width.
     */
    uint64_t burstThreshold() const { return burstThreshold_; }

    /**
     * Feed the number of cross-shard messages exchanged at the
     * window barrier that just completed. A burst halves the target
     * (monotone shrink while bursts persist, never below the floor);
     * a silent window doubles it (never above the cap); anything in
     * between holds. No-op when not adaptive.
     */
    void observe(uint64_t crossMessages);

  private:
    sim::SimTime floorNs_;
    sim::SimTime capNs_;
    sim::SimTime targetNs_;
    uint64_t burstThreshold_;
    bool adaptive_;
};

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_SYNC_WINDOW_HH
