/**
 * @file
 * StealDeque: the work-stealing deque of whole-shard window tasks.
 *
 * Inside one lookahead window the unit of stealable work is an entire
 * shard — finer event-level stealing would race on shard-local state
 * (speakers, trackers, link replicas). The window barrier's
 * completion step, which runs exclusively, refills the deques with
 * the shards that have events below the window end; during the
 * window each worker pops its own deque from the front and, when it
 * runs dry, steals from the back of a victim's. A shard id is pushed
 * exactly once per window and the pops are mutually excluded, so
 * exactly one worker drains a given shard per window — the property
 * that keeps the (time, key, seq) total order of PR 3 intact no
 * matter who executes what.
 *
 * A mutex (not a lock-free Chase-Lev deque) is deliberate: the deque
 * is touched once per *shard task*, not per event, so contention is a
 * few dozen lock acquisitions per window against millions of events —
 * and the mutex keeps the happens-before story TSan-provable.
 */

#ifndef BGPBENCH_TOPO_STEAL_DEQUE_HH
#define BGPBENCH_TOPO_STEAL_DEQUE_HH

#include <cstdint>
#include <deque>
#include <mutex>

namespace bgpbench::topo
{

class StealDeque
{
  public:
    /** Append a task; barrier-exclusive (the refill path). */
    void
    push(uint32_t task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(task);
    }

    /** Owner pop: the front (FIFO over this worker's own shards). */
    bool
    popFront(uint32_t &task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return false;
        task = tasks_.front();
        tasks_.pop_front();
        return true;
    }

    /** Thief pop: the back (largest distance from the owner's end). */
    bool
    popBack(uint32_t &task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return false;
        task = tasks_.back();
        tasks_.pop_back();
        return true;
    }

    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tasks_.empty();
    }

  private:
    mutable std::mutex mutex_;
    std::deque<uint32_t> tasks_;
};

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_STEAL_DEQUE_HH
