#include "topo/topology.hh"

#include <queue>

#include "net/logging.hh"
#include "workload/rng.hh"

namespace bgpbench::topo
{

size_t
Topology::addNode(NodeConfig config)
{
    if (config.asn == 0)
        fatal("topology node with AS 0");
    if (config.routerId == 0)
        fatal("topology node with router-id 0");
    if (config.name.empty())
        config.name = "r" + std::to_string(nodes_.size());
    nodes_.push_back(std::move(config));
    adjacency_.emplace_back();
    return nodes_.size() - 1;
}

size_t
Topology::addLink(Link link)
{
    if (link.a.node >= nodes_.size() || link.b.node >= nodes_.size())
        fatal("link references unknown node");
    if (link.a.node == link.b.node)
        fatal("self-loop link on node " + std::to_string(link.a.node));
    size_t index = links_.size();
    adjacency_[link.a.node].push_back({index, link.b.node});
    adjacency_[link.b.node].push_back({index, link.a.node});
    links_.push_back(std::move(link));
    return index;
}

const NodeConfig &
Topology::node(size_t index) const
{
    if (index >= nodes_.size())
        fatal("unknown node index " + std::to_string(index));
    return nodes_[index];
}

NodeConfig &
Topology::node(size_t index)
{
    if (index >= nodes_.size())
        fatal("unknown node index " + std::to_string(index));
    return nodes_[index];
}

const Link &
Topology::link(size_t index) const
{
    if (index >= links_.size())
        fatal("unknown link index " + std::to_string(index));
    return links_[index];
}

const std::vector<Topology::Adjacent> &
Topology::neighborsOf(size_t node) const
{
    if (node >= nodes_.size())
        fatal("unknown node index " + std::to_string(node));
    return adjacency_[node];
}

bool
Topology::isIbgp(size_t index) const
{
    const Link &l = link(index);
    return nodes_[l.a.node].asn == nodes_[l.b.node].asn;
}

bool
Topology::connected() const
{
    if (nodes_.empty())
        return true;
    std::vector<bool> seen(nodes_.size(), false);
    std::queue<size_t> frontier;
    seen[0] = true;
    frontier.push(0);
    size_t reached = 1;
    while (!frontier.empty()) {
        size_t at = frontier.front();
        frontier.pop();
        for (const Adjacent &adj : adjacency_[at]) {
            if (!seen[adj.node]) {
                seen[adj.node] = true;
                ++reached;
                frontier.push(adj.node);
            }
        }
    }
    return reached == nodes_.size();
}

NodeConfig
Topology::defaultNode(size_t index, const GenOptions &opts)
{
    NodeConfig node;
    node.name = "r" + std::to_string(index);
    node.asn = bgp::AsNumber(opts.firstAs + index);
    node.routerId = bgp::RouterId(index + 1);
    node.address = net::Ipv4Address(10, uint8_t(index >> 8),
                                    uint8_t(index & 0xff), 1);
    node.profile = opts.profile;
    return node;
}

namespace
{

Topology
makeNodes(size_t n, const GenOptions &opts)
{
    Topology topo;
    for (size_t i = 0; i < n; ++i)
        topo.addNode(Topology::defaultNode(i, opts));
    return topo;
}

} // namespace

Topology
Topology::line(size_t n, const GenOptions &opts)
{
    if (n < 2)
        fatal("line topology needs at least 2 nodes");
    Topology topo = makeNodes(n, opts);
    for (size_t i = 0; i + 1 < n; ++i)
        topo.addLink(i, i + 1, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::ring(size_t n, const GenOptions &opts)
{
    if (n < 3)
        fatal("ring topology needs at least 3 nodes");
    Topology topo = line(n, opts);
    topo.addLink(n - 1, 0, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::star(size_t n, const GenOptions &opts)
{
    if (n < 2)
        fatal("star topology needs at least 2 nodes");
    Topology topo = makeNodes(n, opts);
    for (size_t i = 1; i < n; ++i)
        topo.addLink(0, i, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::fullMesh(size_t n, const GenOptions &opts)
{
    if (n < 2)
        fatal("full-mesh topology needs at least 2 nodes");
    Topology topo = makeNodes(n, opts);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            topo.addLink(i, j, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::barabasiAlbert(size_t n, size_t attach_count, uint64_t seed,
                         const GenOptions &opts)
{
    if (attach_count < 1)
        fatal("preferential attachment needs attach_count >= 1");
    if (n <= attach_count)
        fatal("preferential attachment needs n > attach_count");

    Topology topo = makeNodes(n, opts);
    workload::Rng rng(seed);

    // Every link contributes both endpoints; drawing uniformly from
    // this list is drawing nodes proportionally to degree.
    std::vector<size_t> endpoints;

    size_t seed_nodes = attach_count + 1;
    for (size_t i = 0; i + 1 < seed_nodes; ++i) {
        topo.addLink(i, i + 1, opts.latencyNs, opts.bandwidthMbps);
        endpoints.push_back(i);
        endpoints.push_back(i + 1);
    }

    for (size_t i = seed_nodes; i < n; ++i) {
        std::vector<size_t> chosen;
        while (chosen.size() < attach_count) {
            size_t target = endpoints[rng.below(endpoints.size())];
            bool dup = false;
            for (size_t c : chosen)
                dup = dup || c == target;
            if (!dup)
                chosen.push_back(target);
        }
        for (size_t target : chosen) {
            topo.addLink(i, target, opts.latencyNs,
                         opts.bandwidthMbps);
            endpoints.push_back(i);
            endpoints.push_back(target);
        }
    }
    return topo;
}

} // namespace bgpbench::topo
