#include "topo/topology.hh"

#include <queue>

#include "net/logging.hh"
#include "workload/rng.hh"

namespace bgpbench::topo
{

size_t
Topology::addNode(NodeConfig config)
{
    if (config.asn == 0)
        fatal("topology node with AS 0");
    if (config.routerId == 0)
        fatal("topology node with router-id 0");
    if (config.name.empty())
        config.name = "r" + std::to_string(nodes_.size());
    nodes_.push_back(std::move(config));
    adjacency_.emplace_back();
    return nodes_.size() - 1;
}

size_t
Topology::addLink(Link link)
{
    if (link.a.node >= nodes_.size() || link.b.node >= nodes_.size())
        fatal("link references unknown node");
    if (link.a.node == link.b.node)
        fatal("self-loop link on node " + std::to_string(link.a.node));
    size_t index = links_.size();
    adjacency_[link.a.node].push_back({index, link.b.node});
    adjacency_[link.b.node].push_back({index, link.a.node});
    links_.push_back(std::move(link));
    return index;
}

const NodeConfig &
Topology::node(size_t index) const
{
    if (index >= nodes_.size())
        fatal("unknown node index " + std::to_string(index));
    return nodes_[index];
}

NodeConfig &
Topology::node(size_t index)
{
    if (index >= nodes_.size())
        fatal("unknown node index " + std::to_string(index));
    return nodes_[index];
}

const Link &
Topology::link(size_t index) const
{
    if (index >= links_.size())
        fatal("unknown link index " + std::to_string(index));
    return links_[index];
}

const std::vector<Topology::Adjacent> &
Topology::neighborsOf(size_t node) const
{
    if (node >= nodes_.size())
        fatal("unknown node index " + std::to_string(node));
    return adjacency_[node];
}

bool
Topology::isIbgp(size_t index) const
{
    const Link &l = link(index);
    return nodes_[l.a.node].asn == nodes_[l.b.node].asn;
}

bool
Topology::connected() const
{
    if (nodes_.empty())
        return true;
    std::vector<bool> seen(nodes_.size(), false);
    std::queue<size_t> frontier;
    seen[0] = true;
    frontier.push(0);
    size_t reached = 1;
    while (!frontier.empty()) {
        size_t at = frontier.front();
        frontier.pop();
        for (const Adjacent &adj : adjacency_[at]) {
            if (!seen[adj.node]) {
                seen[adj.node] = true;
                ++reached;
                frontier.push(adj.node);
            }
        }
    }
    return reached == nodes_.size();
}

NodeConfig
Topology::defaultNode(size_t index, const GenOptions &opts)
{
    NodeConfig node;
    node.name = "r" + std::to_string(index);
    node.asn = bgp::AsNumber(opts.firstAs + index);
    node.routerId = bgp::RouterId(index + 1);
    node.address = net::Ipv4Address(10, uint8_t(index >> 8),
                                    uint8_t(index & 0xff), 1);
    node.profile = opts.profile;
    return node;
}

namespace
{

Topology
makeNodes(size_t n, const GenOptions &opts)
{
    Topology topo;
    for (size_t i = 0; i < n; ++i)
        topo.addNode(Topology::defaultNode(i, opts));
    return topo;
}

} // namespace

Topology
Topology::line(size_t n, const GenOptions &opts)
{
    if (n < 2)
        fatal("line topology needs at least 2 nodes");
    Topology topo = makeNodes(n, opts);
    for (size_t i = 0; i + 1 < n; ++i)
        topo.addLink(i, i + 1, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::ring(size_t n, const GenOptions &opts)
{
    if (n < 3)
        fatal("ring topology needs at least 3 nodes");
    Topology topo = line(n, opts);
    topo.addLink(n - 1, 0, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::star(size_t n, const GenOptions &opts)
{
    if (n < 2)
        fatal("star topology needs at least 2 nodes");
    Topology topo = makeNodes(n, opts);
    for (size_t i = 1; i < n; ++i)
        topo.addLink(0, i, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::fullMesh(size_t n, const GenOptions &opts)
{
    if (n < 2)
        fatal("full-mesh topology needs at least 2 nodes");
    Topology topo = makeNodes(n, opts);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            topo.addLink(i, j, opts.latencyNs, opts.bandwidthMbps);
    return topo;
}

Topology
Topology::barabasiAlbert(size_t n, size_t attach_count, uint64_t seed,
                         const GenOptions &opts)
{
    if (attach_count < 1)
        fatal("preferential attachment needs attach_count >= 1");
    if (n <= attach_count)
        fatal("preferential attachment needs n > attach_count");

    Topology topo = makeNodes(n, opts);
    workload::Rng rng(seed);

    // Every link contributes both endpoints; drawing uniformly from
    // this list is drawing nodes proportionally to degree.
    std::vector<size_t> endpoints;

    size_t seed_nodes = attach_count + 1;
    for (size_t i = 0; i + 1 < seed_nodes; ++i) {
        topo.addLink(i, i + 1, opts.latencyNs, opts.bandwidthMbps);
        endpoints.push_back(i);
        endpoints.push_back(i + 1);
    }

    for (size_t i = seed_nodes; i < n; ++i) {
        std::vector<size_t> chosen;
        while (chosen.size() < attach_count) {
            size_t target = endpoints[rng.below(endpoints.size())];
            bool dup = false;
            for (size_t c : chosen)
                dup = dup || c == target;
            if (!dup)
                chosen.push_back(target);
        }
        for (size_t target : chosen) {
            topo.addLink(i, target, opts.latencyNs,
                         opts.bandwidthMbps);
            endpoints.push_back(i);
            endpoints.push_back(target);
        }
    }
    return topo;
}

Topology
Topology::clos(const ClosOptions &opts)
{
    if (opts.pods < 1 || opts.torsPerPod < 1 || opts.aggsPerPod < 1 ||
        opts.spines < 1) {
        fatal("clos topology needs at least 1 node per tier");
    }

    Topology topo;
    size_t index = 0;
    auto make_node = [&](const std::string &name, bgp::AsNumber asn) {
        NodeConfig node = defaultNode(index, opts.base);
        node.name = name;
        node.asn = asn;
        ++index;
        return topo.addNode(std::move(node));
    };

    // RFC 7938 AS scheme: one AS for the spine tier, one per pod for
    // its aggs, one per ToR (see ClosOptions).
    bgp::AsNumber spine_as = opts.base.firstAs;
    auto pod_as = [&](size_t pod) {
        return bgp::AsNumber(opts.base.firstAs + 1 + pod);
    };
    bgp::AsNumber first_tor_as =
        bgp::AsNumber(opts.base.firstAs + 1 + opts.pods);

    std::vector<size_t> spine_nodes;
    for (size_t s = 0; s < opts.spines; ++s) {
        spine_nodes.push_back(
            make_node("spine" + std::to_string(s), spine_as));
    }

    auto tier_link = [&](size_t lower, size_t upper,
                         const bgp::Policy &lower_import,
                         const bgp::Policy &lower_export,
                         const bgp::Policy &upper_import,
                         const bgp::Policy &upper_export) {
        Link link;
        link.a.node = lower;
        link.a.importPolicy = lower_import;
        link.a.exportPolicy = lower_export;
        link.b.node = upper;
        link.b.importPolicy = upper_import;
        link.b.exportPolicy = upper_export;
        link.latencyNs = opts.base.latencyNs;
        link.bandwidthMbps = opts.base.bandwidthMbps;
        topo.addLink(std::move(link));
    };

    size_t tor_count = 0;
    for (size_t p = 0; p < opts.pods; ++p) {
        std::vector<size_t> agg_nodes;
        for (size_t a = 0; a < opts.aggsPerPod; ++a) {
            agg_nodes.push_back(make_node("p" + std::to_string(p) +
                                              "-agg" +
                                              std::to_string(a),
                                          pod_as(p)));
        }
        for (size_t t = 0; t < opts.torsPerPod; ++t) {
            size_t tor = make_node(
                "p" + std::to_string(p) + "-tor" + std::to_string(t),
                bgp::AsNumber(first_tor_as + tor_count));
            ++tor_count;
            for (size_t agg : agg_nodes) {
                tier_link(tor, agg, opts.torImport, opts.torExport,
                          opts.aggImport, opts.aggExport);
            }
        }
        for (size_t agg : agg_nodes) {
            for (size_t spine : spine_nodes) {
                tier_link(agg, spine, opts.aggImport, opts.aggExport,
                          opts.spineImport, opts.spineExport);
            }
        }
    }
    return topo;
}

Topology
Topology::closFromSize(size_t n, const GenOptions &opts)
{
    if (n < 8)
        fatal("clos topology needs at least 8 nodes");
    ClosOptions clos_opts;
    clos_opts.base = opts;
    clos_opts.pods = 2;
    clos_opts.aggsPerPod = 2;
    clos_opts.spines = 2;
    // 2 spines + 2 pods x (2 aggs + t tors) <= n.
    clos_opts.torsPerPod = (n - clos_opts.spines -
                            clos_opts.pods * clos_opts.aggsPerPod) /
                           clos_opts.pods;
    return clos(clos_opts);
}

} // namespace bgpbench::topo
