#include "topo/scenarios.hh"

#include "net/logging.hh"

namespace bgpbench::topo
{

net::Prefix
scenarioPrefix(size_t node, size_t index)
{
    if (index >= 156 || node >= 65536)
        fatal("scenario prefix space exhausted");
    return net::Prefix(net::Ipv4Address(uint8_t(100 + index),
                                        uint8_t(node >> 8),
                                        uint8_t(node & 0xff), 0),
                       24);
}

namespace
{

/** Originate every node's prefixes at the current simulated time. */
void
originateAll(TopologySim &sim, const ScenarioOptions &opts)
{
    sim::SimTime now = sim.now();
    for (size_t node = 0; node < sim.topology().nodeCount(); ++node) {
        for (size_t j = 0; j < opts.prefixesPerNode; ++j)
            sim.originate(node, scenarioPrefix(node, j), now);
    }
}

/** Settle sessions/routes and restart the convergence stopwatch. */
bool
settle(TopologySim &sim, const ScenarioOptions &opts)
{
    bool converged = sim.runToConvergence(opts.limitNs);
    sim.tracker().markPhaseStart(sim.now());
    return converged;
}

ConvergenceReport
finish(TopologySim &sim, bool converged, const std::string &scenario,
       const std::string &shape, const ScenarioOptions &opts)
{
    ConvergenceReport report = sim.report(scenario, shape);
    report.converged = converged && sim.locRibsConsistent();
    if (opts.simConfig.obs)
        sim.publishParallelMetrics(opts.simConfig.obs->metrics);
    return report;
}

/**
 * Records the scenario's phase intervals into the run trace. Phase
 * boundaries are virtual times the simulation reached anyway, so
 * recording cannot perturb it; a detached recorder does nothing.
 */
class PhaseRecorder
{
  public:
    explicit PhaseRecorder(const ScenarioOptions &opts)
    {
        if (opts.simConfig.obs)
            tracer_.attach(&opts.simConfig.obs->trace);
    }

    void
    phase(const char *name, sim::SimTime begin, sim::SimTime end)
    {
        tracer_.complete(name, "phase", obs::kTrackPhases, 0, begin,
                         end);
    }

  private:
    obs::Tracer tracer_;
};

} // namespace

ConvergenceReport
runAnnounceScenario(Topology topology, const std::string &shape,
                    const ScenarioOptions &opts)
{
    TopologySim sim(std::move(topology), opts.simConfig);
    PhaseRecorder phases(opts);
    sim::SimTime mark = sim.now();
    bool converged = settle(sim, opts);
    phases.phase("establish", mark, sim.now());
    mark = sim.now();
    originateAll(sim, opts);
    converged = converged && sim.runToConvergence(opts.limitNs);
    phases.phase("announce", mark, sim.now());
    return finish(sim, converged, "announce", shape, opts);
}

ConvergenceReport
runLinkFailureScenario(Topology topology, const std::string &shape,
                       size_t link, const ScenarioOptions &opts)
{
    TopologySim sim(std::move(topology), opts.simConfig);
    PhaseRecorder phases(opts);
    sim::SimTime mark = sim.now();
    bool converged = sim.runToConvergence(opts.limitNs);
    phases.phase("establish", mark, sim.now());
    mark = sim.now();
    originateAll(sim, opts);
    converged = converged && settle(sim, opts);
    phases.phase("announce", mark, sim.now());
    mark = sim.now();
    sim.scheduleLinkDown(link, sim.now());
    converged = converged && sim.runToConvergence(opts.limitNs);
    phases.phase("reconverge", mark, sim.now());
    return finish(sim, converged, "link-failure", shape, opts);
}

ConvergenceReport
runRouterRebootScenario(Topology topology, const std::string &shape,
                        size_t node, sim::SimTime downtime,
                        const ScenarioOptions &opts)
{
    TopologySim sim(std::move(topology), opts.simConfig);
    PhaseRecorder phases(opts);
    sim::SimTime mark = sim.now();
    bool converged = sim.runToConvergence(opts.limitNs);
    phases.phase("establish", mark, sim.now());
    mark = sim.now();
    originateAll(sim, opts);
    converged = converged && settle(sim, opts);
    phases.phase("announce", mark, sim.now());
    mark = sim.now();
    sim.scheduleRouterRestart(node, sim.now(), downtime);
    converged = converged && sim.runToConvergence(opts.limitNs);
    phases.phase("reconverge", mark, sim.now());
    return finish(sim, converged, "router-reboot", shape, opts);
}

namespace demo
{

FourAsNetwork
fourAsPolicyTopology()
{
    FourAsNetwork net;
    net.customerPrefix = net::Prefix::fromString("192.0.2.0/24");
    net.backbonePrefix = net::Prefix::fromString("203.0.113.0/24");
    net.backboneSecondaryPrefix =
        net::Prefix::fromString("198.51.100.0/24");
    net.martianPrefix = net::Prefix::fromString("192.168.100.0/24");

    Topology &topo = net.topology;
    auto add_node = [&](const std::string &name, bgp::AsNumber asn,
                        uint8_t host) {
        NodeConfig node;
        node.name = name;
        node.asn = asn;
        node.routerId = bgp::RouterId(host);
        node.address = net::Ipv4Address(10, 0, host, 1);
        node.profile = router::xeonProfile();
        return topo.addNode(std::move(node));
    };
    net.customer = add_node("customer", 100, 1);
    net.ispA = add_node("isp-a", 200, 2);
    net.ispB = add_node("isp-b", 300, 3);
    net.backbone = add_node("backbone", 400, 4);

    bgp::Policy martian_filter = bgp::makeRejectPrefixPolicy(
        net::Prefix::fromString("192.168.0.0/16"));

    // customer -- isp-a: the preferred upstream (LOCAL_PREF 200).
    {
        Link link;
        link.a.node = net.customer;
        link.a.importPolicy = bgp::makeLocalPrefForAsPolicy(200, 200);
        link.b.node = net.ispA;
        net.customerIspALink = topo.addLink(std::move(link));
    }
    // customer -- isp-b: the backup upstream (default LOCAL_PREF).
    {
        Link link;
        link.a.node = net.customer;
        link.b.node = net.ispB;
        topo.addLink(std::move(link));
    }
    // isp-a -- backbone.
    {
        Link link;
        link.a.node = net.ispA;
        link.b.node = net.backbone;
        link.b.importPolicy = martian_filter;
        topo.addLink(std::move(link));
    }
    // isp-b -- backbone: isp-b makes itself a path of last resort by
    // prepending twice toward the backbone.
    {
        Link link;
        link.a.node = net.ispB;
        bgp::PolicyRule prepend;
        prepend.name = "depref-toward-backbone";
        prepend.action.prependCount = 2;
        link.a.exportPolicy = bgp::Policy({prepend});
        link.b.node = net.backbone;
        link.b.importPolicy = martian_filter;
        topo.addLink(std::move(link));
    }
    return net;
}

void
originateDemoRoutes(TopologySim &sim, const FourAsNetwork &net,
                    sim::SimTime at)
{
    sim.originate(net.backbone, net.backbonePrefix, at);
    sim.originate(net.backbone, net.backboneSecondaryPrefix, at);
    sim.originate(net.customer, net.customerPrefix, at);
    sim.originate(net.ispB, net.martianPrefix, at);
}

} // namespace demo

} // namespace bgpbench::topo
