#include "topo/scenarios.hh"

#include "net/logging.hh"
#include "topo/scenario_spec.hh"

namespace bgpbench::topo
{

net::Prefix
scenarioPrefix(size_t node, size_t index)
{
    if (index >= 156 || node >= 65536)
        fatal("scenario prefix space exhausted");
    return net::Prefix(net::Ipv4Address(uint8_t(100 + index),
                                        uint8_t(node >> 8),
                                        uint8_t(node & 0xff), 0),
                       24);
}

namespace
{

/** Shared spec fields of the legacy wrappers. */
ScenarioSpec
baseSpec(Topology &&topology, const std::string &shape,
         const ScenarioOptions &opts)
{
    ScenarioSpec spec;
    spec.shape = shape;
    spec.topology = std::move(topology);
    spec.prefixesPerNode = opts.prefixesPerNode;
    spec.limitNs = opts.limitNs;
    spec.simConfig = opts.simConfig;
    return spec;
}

} // namespace

ConvergenceReport
runAnnounceScenario(Topology topology, const std::string &shape,
                    const ScenarioOptions &opts)
{
    ScenarioSpec spec = baseSpec(std::move(topology), shape, opts);
    spec.name = "announce";
    return ScenarioRunner(std::move(spec)).run().convergence;
}

ConvergenceReport
runLinkFailureScenario(Topology topology, const std::string &shape,
                       size_t link, const ScenarioOptions &opts)
{
    ScenarioSpec spec = baseSpec(std::move(topology), shape, opts);
    spec.name = "link-failure";
    spec.faults.linkDown(link, 0);
    return ScenarioRunner(std::move(spec)).run().convergence;
}

ConvergenceReport
runRouterRebootScenario(Topology topology, const std::string &shape,
                        size_t node, sim::SimTime downtime,
                        const ScenarioOptions &opts)
{
    ScenarioSpec spec = baseSpec(std::move(topology), shape, opts);
    spec.name = "router-reboot";
    spec.faults.routerRestart(node, 0, downtime);
    return ScenarioRunner(std::move(spec)).run().convergence;
}

namespace demo
{

FourAsNetwork
fourAsPolicyTopology()
{
    FourAsNetwork net;
    net.customerPrefix = net::Prefix::fromString("192.0.2.0/24");
    net.backbonePrefix = net::Prefix::fromString("203.0.113.0/24");
    net.backboneSecondaryPrefix =
        net::Prefix::fromString("198.51.100.0/24");
    net.martianPrefix = net::Prefix::fromString("192.168.100.0/24");

    Topology &topo = net.topology;
    auto add_node = [&](const std::string &name, bgp::AsNumber asn,
                        uint8_t host) {
        NodeConfig node;
        node.name = name;
        node.asn = asn;
        node.routerId = bgp::RouterId(host);
        node.address = net::Ipv4Address(10, 0, host, 1);
        node.profile = router::xeonProfile();
        return topo.addNode(std::move(node));
    };
    net.customer = add_node("customer", 100, 1);
    net.ispA = add_node("isp-a", 200, 2);
    net.ispB = add_node("isp-b", 300, 3);
    net.backbone = add_node("backbone", 400, 4);

    bgp::Policy martian_filter = bgp::makeRejectPrefixPolicy(
        net::Prefix::fromString("192.168.0.0/16"));

    // customer -- isp-a: the preferred upstream (LOCAL_PREF 200).
    {
        Link link;
        link.a.node = net.customer;
        link.a.importPolicy = bgp::makeLocalPrefForAsPolicy(200, 200);
        link.b.node = net.ispA;
        net.customerIspALink = topo.addLink(std::move(link));
    }
    // customer -- isp-b: the backup upstream (default LOCAL_PREF).
    {
        Link link;
        link.a.node = net.customer;
        link.b.node = net.ispB;
        topo.addLink(std::move(link));
    }
    // isp-a -- backbone.
    {
        Link link;
        link.a.node = net.ispA;
        link.b.node = net.backbone;
        link.b.importPolicy = martian_filter;
        topo.addLink(std::move(link));
    }
    // isp-b -- backbone: isp-b makes itself a path of last resort by
    // prepending twice toward the backbone.
    {
        Link link;
        link.a.node = net.ispB;
        bgp::PolicyRule prepend;
        prepend.name = "depref-toward-backbone";
        prepend.action.prependCount = 2;
        link.a.exportPolicy = bgp::Policy({prepend});
        link.b.node = net.backbone;
        link.b.importPolicy = martian_filter;
        topo.addLink(std::move(link));
    }
    return net;
}

void
originateDemoRoutes(TopologySim &sim, const FourAsNetwork &net,
                    sim::SimTime at)
{
    sim.originate(net.backbone, net.backbonePrefix, at);
    sim.originate(net.backbone, net.backboneSecondaryPrefix, at);
    sim.originate(net.customer, net.customerPrefix, at);
    sim.originate(net.ispB, net.martianPrefix, at);
}

} // namespace demo

} // namespace bgpbench::topo
