#include "topo/stability.hh"

#include <sstream>

#include "stats/json.hh"
#include "stats/report.hh"

namespace bgpbench::topo
{

void
StabilityReport::writeJson(stats::JsonWriter &json) const
{
    json.beginObject();
    json.field("benchmark", "stability");
    json.field("scenario", scenario);
    json.field("shape", shape);
    json.field("nodes", nodes);
    json.field("injected_events", injectedEvents);
    json.field("injected_transactions", injectedTransactions);
    json.field("phase_updates", phaseUpdates);
    json.field("phase_transactions", phaseTransactions);
    json.field("updates_per_convergence", updatesPerConvergence);
    json.field("churn_amplification", churnAmplification);
    json.field("path_exploration_max", pathExplorationMax);
    json.field("path_exploration_mean", pathExplorationMean);
    json.field("damping_suppressed", dampingSuppressed);
    json.field("damping_reused", dampingReused);
    json.field("announcements_suppressed", announcementsSuppressed);
    json.field("mrai_deferrals", mraiDeferrals);
    json.endObject();
}

std::string
StabilityReport::toJson() const
{
    std::ostringstream os;
    stats::JsonWriter json(os);
    writeJson(json);
    return os.str();
}

void
StabilityReport::printText(std::ostream &os) const
{
    os << "stability (" << scenario << " on " << shape << ", "
       << nodes << " routers): " << injectedEvents
       << " injected events, " << phaseUpdates
       << " UPDATEs in the measured phase\n";
    stats::TextTable table({"metric", "value"});
    table.addRow({"updates per convergence",
                  stats::formatDouble(updatesPerConvergence, 2)});
    table.addRow({"churn amplification",
                  stats::formatDouble(churnAmplification, 2)});
    table.addRow(
        {"path exploration max", std::to_string(pathExplorationMax)});
    table.addRow({"path exploration mean",
                  stats::formatDouble(pathExplorationMean, 2)});
    table.addRow(
        {"damping suppressed", std::to_string(dampingSuppressed)});
    table.addRow({"damping reused", std::to_string(dampingReused)});
    table.addRow({"announcements suppressed",
                  std::to_string(announcementsSuppressed)});
    table.addRow({"mrai deferrals", std::to_string(mraiDeferrals)});
    table.print(os);
}

} // namespace bgpbench::topo
