/**
 * @file
 * TopologySim: N full BgpSpeaker instances wired into a Topology on
 * top of the deterministic discrete-event simulator, with an optional
 * parallel sharded execution mode.
 *
 * Each node owns a real BgpSpeaker; its SpeakerEvents::onTransmit is
 * bridged into simulated link delivery: a transmitted wire segment
 * (shared and immutable — one encoding fans out to every peer and
 * link without copies) is serialised onto the link (bytes /
 * bandwidth), propagates for the link latency, and is then charged
 * against the receiving router's SystemProfile cost model (message
 * parse + per-byte + per-prefix decision cycles at that node's clock
 * rate, plus the commercial router's per-message gate) before
 * receiveSegment() runs. Per-link
 * FIFO ordering models TCP; a per-node "CPU busy until" scalar
 * serialises control-plane processing the way a single control CPU
 * would.
 *
 * Faults are scheduled into the same event queue: link down/up,
 * session reset, and whole-router restart. A link carries an epoch
 * counter; segments in flight across a down or reset are dropped,
 * exactly as a TCP connection teardown loses unacknowledged data.
 *
 * ## Parallel execution (config.jobs)
 *
 * With jobs > 1 the topology's routers are partitioned into shards
 * (greedy BFS, see partition.hh) and one worker thread runs each
 * shard's own event queue. Shards advance in conservative lookahead
 * windows: every shard drains the events below the window end, the
 * window being bounded by the smallest cross-shard link latency, so
 * no message sent inside a window can be due before the window ends.
 * At the window barrier the shards' outbound mailboxes are exchanged
 * and the next window is derived from the globally earliest pending
 * event. Mailboxes are single-producer/single-consumer: the owning
 * worker appends during its window, the barrier's completion step
 * drains them — the barrier itself is the only synchronisation.
 *
 * Determinism is the cardinal constraint: for a fixed topology and
 * schedule, runs at ANY shard count produce reports byte-identical
 * to the sequential engine (jobs = 1). Three mechanisms enforce it:
 *
 *  1. Total message order. Every message event (arrival, delivery)
 *     carries the explicit queue ordering key
 *     (source node id, per-source transmit sequence), so ties at
 *     equal simulated times resolve identically no matter which
 *     shard scheduled the event or when it crossed a mailbox —
 *     never by thread arrival order.
 *  2. Mirrored fault events. Link state (up flag, epoch) is
 *     replicated per shard; a fault on a cross-shard link is
 *     scheduled into every owning shard, each applying the local
 *     half at the same simulated time, so both replicas evolve in
 *     lock-step without runtime cross-shard communication.
 *  3. Order-independent metrics. Per-shard ConvergenceTrackers are
 *     folded into the main tracker with sums / maxima / set unions
 *     only.
 */

#ifndef BGPBENCH_TOPO_TOPOLOGY_SIM_HH
#define BGPBENCH_TOPO_TOPOLOGY_SIM_HH

#include <memory>
#include <utility>
#include <vector>

#include "bgp/speaker.hh"
#include "obs/observability.hh"
#include "sim/event_queue.hh"
#include "stats/report.hh"
#include "topo/convergence.hh"
#include "topo/partition.hh"
#include "topo/topology.hh"

namespace bgpbench::topo
{

/** Runtime knobs of a topology simulation. */
struct TopologySimConfig
{
    /** Bring every link's session up at t = 0. */
    bool establishAtStart = true;
    /** Delay before a reset or re-enabled session reconnects. */
    sim::SimTime reconnectDelayNs = sim::nsFromMs(10);
    /**
     * Charge the per-node SystemProfile costs for inbound message
     * processing. Disable for pure protocol-behaviour tests where
     * virtual CPU time is irrelevant.
     */
    bool chargeProcessingCost = true;
    /**
     * Worker threads: 1 (default) runs the sequential engine, N > 1
     * runs N shards on N threads, 0 resolves to the hardware
     * concurrency. Reports are byte-identical for every value.
     */
    size_t jobs = 1;
    /**
     * Observability sinks for the run, or null (detached — the
     * default). When set, every speaker is bound to its shard's
     * metric registry and tracer, engine windows and barrier waits
     * are recorded, and each runToConvergence() folds the per-shard
     * registries/trace buffers into these sinks (in shard order, via
     * order-independent merges). Trace timestamps are virtual, so
     * attaching sinks cannot change simulation behaviour or report
     * bytes. Must outlive the TopologySim.
     */
    obs::RunObservability *obs = nullptr;
};

/**
 * Owns the simulator shards, the speakers, and the link plumbing for
 * one topology, and scripts scenarios against them.
 *
 * Peer-id convention: on every node, the peer id of a session equals
 * the global index of the link carrying it. Link indexes are unique
 * per topology and each link touches a node at most once, so the ids
 * never collide.
 */
class TopologySim
{
  public:
    explicit TopologySim(Topology topology,
                         TopologySimConfig config = {});
    ~TopologySim();

    TopologySim(const TopologySim &) = delete;
    TopologySim &operator=(const TopologySim &) = delete;

    const Topology &topology() const { return topo_; }
    /**
     * Shard 0's simulator. With jobs = 1 this is THE simulator;
     * parallel runs keep one per shard, so cross-run code should use
     * now() / pendingEvents() instead.
     */
    sim::Simulator &simulator() { return shards_[0]->sim; }
    const sim::Simulator &simulator() const { return shards_[0]->sim; }
    /** Latest simulated time reached by any shard. */
    sim::SimTime now() const;
    /** Events waiting across all shards. */
    size_t pendingEvents() const;
    /** Worker threads / shards the engine resolved to. */
    size_t jobs() const { return shards_.size(); }
    /** The node partition driving the sharded execution. */
    const Partition &partition() const { return partition_; }
    bgp::BgpSpeaker &speaker(size_t node);
    const bgp::BgpSpeaker &speaker(size_t node) const;
    ConvergenceTracker &tracker() { return tracker_; }
    const ConvergenceTracker &tracker() const { return tracker_; }

    /** @name Scenario scripting
     *  All schedule work at absolute simulated time @p at (>= now).
     *  @{
     */
    /** Originate @p prefix at @p node (NEXT_HOP = node address). */
    void originate(size_t node, const net::Prefix &prefix,
                   sim::SimTime at);
    /** Withdraw a locally originated prefix. */
    void withdrawLocal(size_t node, const net::Prefix &prefix,
                       sim::SimTime at);
    /** Take a link down: sessions drop, in-flight segments are lost. */
    void scheduleLinkDown(size_t link, sim::SimTime at);
    /** Bring a downed link back; sessions re-establish. */
    void scheduleLinkUp(size_t link, sim::SimTime at);
    /** Reset the session on @p link; reconnects after the delay. */
    void scheduleSessionReset(size_t link, sim::SimTime at);
    /**
     * Restart a router: every incident session drops at @p at and
     * re-establishes at @p at + @p downtime. Locally originated
     * routes survive (they are configuration); learned routes are
     * re-learned from the full-table exchange on reconnect.
     */
    void scheduleRouterRestart(size_t node, sim::SimTime at,
                               sim::SimTime downtime);
    /** @} */

    /**
     * Run until the event queues are quiescent (converged) or the
     * clock would pass @p limit.
     *
     * @return True if the network converged within the limit.
     */
    bool runToConvergence(sim::SimTime limit);

    /**
     * Semantic convergence check: every originated prefix is present
     * in the Loc-RIB of every router reachable from its origin over
     * currently-up links.
     */
    bool locRibsConsistent() const;

    bool linkUp(size_t link) const;

    /** Locally originated (node, prefix) pairs, in origination order. */
    const std::vector<std::pair<size_t, net::Prefix>> &
    originated() const
    {
        return originated_;
    }

    /** Build the convergence report for the current tracker phase. */
    ConvergenceReport report(const std::string &scenario,
                             const std::string &shape) const;

    /**
     * Publish the shard layout and utilization counters of the runs
     * so far under the "parallel.*" metric names (obs::metric, one
     * gauge/counter per field plus per-shard entries; rendered by
     * obs::printParallelView). Jobs-dependent by nature, hence NOT
     * part of the convergence report (whose bytes must not depend on
     * the jobs knob). Counters accumulate, so publish once per
     * report into a given registry.
     */
    void publishParallelMetrics(obs::MetricRegistry &registry) const;

  private:
    struct NodeEvents;

    struct LinkState
    {
        bool up = true;
        /** Bumped on down/reset; stale segments are dropped. */
        uint64_t epoch = 0;
        /** Per-direction serialisation cursor (a->b, b->a). */
        sim::SimTime busyUntil[2] = {0, 0};
    };

    /**
     * An inter-shard message: a segment transmitted by a node of one
     * shard toward a node of another, carrying everything the
     * destination needs to schedule the arrival locally.
     */
    struct CrossMessage
    {
        /** Simulated arrival time at the destination node. */
        sim::SimTime time;
        /** (source node, per-source sequence) total-order key. */
        uint64_t key;
        uint32_t link;
        /** Source-side link epoch at transmit time. */
        uint64_t epoch;
        uint32_t dst;
        bgp::MessageType type;
        uint32_t transactions;
        /**
         * Shared immutable segment. Crossing the mailbox moves only
         * the reference; the bytes were encoded exactly once in the
         * source speaker. The refcount is atomic, so the destination
         * shard can release its reference on its own thread.
         */
        net::WireSegmentPtr wire;
    };

    /**
     * Single-producer/single-consumer mailbox for one (source shard,
     * destination shard) pair. The source worker appends during its
     * window; the window barrier's completion step drains it. The
     * barrier provides the happens-before edges, so the box itself
     * needs no locks or atomics.
     */
    struct Mailbox
    {
        std::vector<CrossMessage> messages;
    };

    /**
     * One worker's slice of the simulation: its own event queue,
     * metric tracker, link-state replica, and outbound mailboxes.
     */
    struct Shard
    {
        size_t index = 0;
        sim::Simulator sim;
        ConvergenceTracker tracker;
        /**
         * Link-state replica. Authoritative only for links with an
         * endpoint in this shard; fault events are mirrored into
         * every owning shard so replicas agree at every simulated
         * instant.
         */
        std::vector<LinkState> links;
        /** Outbox toward every shard (self entry unused). */
        std::vector<Mailbox> outbox;
        /** Host nanoseconds spent executing events. */
        uint64_t hostBusyNs = 0;
        /** First exception thrown inside a window, if any. */
        std::exception_ptr error;
        /**
         * Shard-local observability: the shard's speakers and the
         * worker loop record here without synchronisation; the
         * contents are folded into the run sinks after each
         * runToConvergence(). The tracer stays detached when the
         * config carries no sinks.
         */
        obs::MetricRegistry metrics;
        obs::TraceBuffer traceBuf;
        obs::Tracer tracer;
        /** Barrier-wait counter handle (null when detached). */
        obs::Counter *barrierWaitNs = nullptr;
    };

    size_t shardOfNode(size_t node) const
    {
        return partition_.shardOf[node];
    }
    Shard &shardFor(size_t node) { return *shards_[shardOfNode(node)]; }
    /** Owning shards of @p link (one entry when both ends share it). */
    void ownerShards(size_t link, size_t out[2], size_t &count) const;
    /** Whether @p shard owns an endpoint of @p link. */
    bool shardOwnsLink(const Shard &shard, size_t link) const;
    /** Schedule @p handler into every owning shard of @p link. */
    template <typename Fn>
    void scheduleMirrored(size_t link, sim::SimTime at, Fn &&handler);

    /** Next (src node, sequence) message-ordering key for @p node. */
    uint64_t nextMessageKey(size_t node);

    /** Bring the shard-local ends of @p link up (OPEN exchange). */
    void establishLocal(Shard &shard, size_t link);
    /** Drop the shard-local ends and invalidate in-flight segments. */
    void closeLocal(Shard &shard, size_t link);
    /** SpeakerEvents::onTransmit bridge; runs in the node's shard. */
    void transmitFrom(size_t node, bgp::PeerId peer,
                      bgp::MessageType type, net::WireSegmentPtr wire,
                      size_t transactions);
    /** Schedule a (possibly mailbox-delivered) arrival in @p shard. */
    void scheduleArrival(Shard &shard, CrossMessage msg);
    /** Segment reached the far end; queue CPU processing. */
    void arrive(size_t link, uint64_t epoch, uint64_t key, size_t dst,
                net::WireSegmentPtr wire, bgp::MessageType type,
                size_t transactions);
    /** CPU processing done; deliver to the speaker. */
    void deliver(size_t link, uint64_t epoch, size_t dst,
                 const net::WireSegmentPtr &wire,
                 bgp::MessageType type);

    /** Sequential engine: drain shard 0 up to @p limit. */
    bool runSequential(sim::SimTime limit);
    /** Parallel engine: windowed barrier stepping on worker threads. */
    bool runParallel(sim::SimTime limit);
    /** Drain all mailboxes and pick the next window (barrier step). */
    void exchangeAndOpenWindow(sim::SimTime limit);
    /** Fold the per-shard trackers into tracker_ (post-run). */
    void absorbShardTrackers();

    Topology topo_;
    TopologySimConfig config_;
    Partition partition_;
    /**
     * Conservative window span: the smallest cross-shard link
     * latency. simTimeNever when nothing is cut (single shard).
     */
    sim::SimTime lookaheadNs_ = sim::simTimeNever;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::unique_ptr<NodeEvents>> events_;
    std::vector<std::unique_ptr<bgp::BgpSpeaker>> speakers_;
    /** Control CPU availability per node (single control thread). */
    std::vector<sim::SimTime> cpuFreeAt_;
    /** Per-node transmit sequence feeding nextMessageKey(). */
    std::vector<uint64_t> messageSeq_;
    std::vector<std::pair<size_t, net::Prefix>> originated_;
    ConvergenceTracker tracker_;
    /** Barrier/window state of the run in progress. */
    sim::SimTime windowEnd_ = 0;
    bool runDone_ = false;
    bool runConverged_ = false;
    uint64_t windows_ = 0;
    /** Scratch for sorting one destination's inbound mail. */
    std::vector<CrossMessage> inboxScratch_;
};

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_TOPOLOGY_SIM_HH
