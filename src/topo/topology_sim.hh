/**
 * @file
 * TopologySim: N full BgpSpeaker instances wired into a Topology on
 * top of the deterministic discrete-event simulator, with an optional
 * parallel sharded execution mode.
 *
 * Each node owns a real BgpSpeaker; its SpeakerEvents::onTransmit is
 * bridged into simulated link delivery: a transmitted wire segment
 * (shared and immutable — one encoding fans out to every peer and
 * link without copies) is serialised onto the link (bytes /
 * bandwidth), propagates for the link latency, and is then charged
 * against the receiving router's SystemProfile cost model (message
 * parse + per-byte + per-prefix decision cycles at that node's clock
 * rate, plus the commercial router's per-message gate) before
 * receiveSegment() runs. Per-link
 * FIFO ordering models TCP; a per-node "CPU busy until" scalar
 * serialises control-plane processing the way a single control CPU
 * would.
 *
 * Faults are scheduled into the same event queue: link down/up,
 * session reset, and whole-router restart. A link carries an epoch
 * counter; segments in flight across a down or reset are dropped,
 * exactly as a TCP connection teardown loses unacknowledged data.
 *
 * ## Parallel execution (config.jobs)
 *
 * With jobs > 1 the topology's routers are partitioned into shards
 * (greedy BFS portfolio, see partition.hh) and a pool of worker
 * threads drains the shards' own event queues in conservative
 * lookahead windows: every shard drains the events below the window
 * end, chosen so that no message sent inside the window can be due
 * before it ends. At the window barrier the shards' outbound batch
 * buffers are exchanged and the next window is derived from the
 * globally earliest pending event. Three throughput mechanisms sit
 * on top of the PR 3 engine, all behind the adaptiveSync switch
 * (BGPBENCH_NO_ADAPTIVE_SYNC=1 / --no-adaptive-sync restores the
 * fixed-window engine exactly):
 *
 *  - Adaptive lookahead. A WindowController grows the window toward
 *    a cap while cross-shard traffic is quiet and shrinks it back
 *    toward the fixed floor under bursts; every window is clamped to
 *    the causality bound min over busy shards s of
 *    (next event of s + smallest cut-link latency incident to s),
 *    which no cross-shard arrival can undercut. Both inputs are
 *    virtual-time quantities, so the window sequence replays
 *    identically run to run.
 *  - Batched cross-shard delivery. Transmits append to per-cut-link
 *    elastic batch buffers (one per direction, owned by the source
 *    shard; capacity retained across windows) instead of a flat
 *    per-destination outbox; the barrier merges the per-link batches
 *    — each already (time, key)-sorted except across rare mid-window
 *    link flaps — per destination instead of re-sorting everything.
 *  - Intra-window work-stealing. The engine over-decomposes
 *    (shards ~ 2x workers) and the barrier refills per-worker deques
 *    with the shards that have events in the window; workers pop
 *    their own deque from the front and steal from the back of
 *    others' when idle. Exactly one worker drains a given shard per
 *    window, so shard-local state stays single-writer and the event
 *    order per shard is untouched — which worker ran it is invisible
 *    to the simulation.
 *
 * Determinism is the cardinal constraint: for a fixed topology and
 * schedule, runs at ANY shard count produce reports byte-identical
 * to the sequential engine (jobs = 1). Three mechanisms enforce it:
 *
 *  1. Total message order. Every message event (arrival, delivery)
 *     carries the explicit queue ordering key
 *     (source node id, per-source transmit sequence), so ties at
 *     equal simulated times resolve identically no matter which
 *     shard scheduled the event or when it crossed a mailbox —
 *     never by thread arrival order.
 *  2. Mirrored fault events. Link state (up flag, epoch) is
 *     replicated per shard; a fault on a cross-shard link is
 *     scheduled into every owning shard, each applying the local
 *     half at the same simulated time, so both replicas evolve in
 *     lock-step without runtime cross-shard communication.
 *  3. Order-independent metrics. Per-shard ConvergenceTrackers are
 *     folded into the main tracker with sums / maxima / set unions
 *     only.
 */

#ifndef BGPBENCH_TOPO_TOPOLOGY_SIM_HH
#define BGPBENCH_TOPO_TOPOLOGY_SIM_HH

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "bgp/speaker.hh"
#include "obs/observability.hh"
#include "sim/event_queue.hh"
#include "stats/report.hh"
#include "topo/convergence.hh"
#include "topo/partition.hh"
#include "topo/steal_deque.hh"
#include "topo/sync_window.hh"
#include "topo/topology.hh"

namespace bgpbench::topo
{

/** Runtime knobs of a topology simulation. */
struct TopologySimConfig
{
    /** Bring every link's session up at t = 0. */
    bool establishAtStart = true;
    /** Delay before a reset or re-enabled session reconnects. */
    sim::SimTime reconnectDelayNs = sim::nsFromMs(10);
    /**
     * Charge the per-node SystemProfile costs for inbound message
     * processing. Disable for pure protocol-behaviour tests where
     * virtual CPU time is irrelevant.
     */
    bool chargeProcessingCost = true;
    /**
     * Worker threads: 1 (default) runs the sequential engine, N > 1
     * runs a worker pool over the sharded engine, 0 resolves to the
     * hardware concurrency. Reports are byte-identical for every
     * value.
     */
    size_t jobs = 1;
    /**
     * Adaptive synchronisation (adaptive lookahead windows plus
     * shard over-decomposition for work-stealing). False restores
     * the PR 3 fixed-window engine: window length pinned to the
     * smallest cut-link latency and exactly one shard per worker.
     * Defaults from BGPBENCH_NO_ADAPTIVE_SYNC (see
     * adaptiveSyncDefault()); reports are byte-identical in both
     * modes.
     */
    bool adaptiveSync = adaptiveSyncDefault();
    /**
     * maximum-paths applied to every speaker's decision process
     * (DecisionConfig::maxPaths). 1 keeps the classic single best
     * path; reports stay byte-identical across jobs either way.
     */
    size_t maxPaths = 1;
    /**
     * Route flap damping applied to every speaker (RFC 2439).
     * Disabled by default — the paper's scenarios run undamped.
     * Suppression and reuse evolve purely in virtual time (the
     * damper's anchor-based decay plus wakeup events scheduled on
     * the owning shard), so reports stay byte-identical across jobs.
     */
    bgp::DampingConfig damping;
    /**
     * Per-session MRAI for every speaker in ns of virtual time
     * (SpeakerConfig::mraiNs); 0 (the paper default) disables
     * batching. Deferred flushes are serviced by wakeup events on
     * the owning shard, keeping reports byte-identical across jobs.
     */
    sim::SimTime mraiNs = 0;
    /**
     * Observability sinks for the run, or null (detached — the
     * default). When set, every speaker is bound to its shard's
     * metric registry and tracer, engine windows and barrier waits
     * are recorded, and each runToConvergence() folds the per-shard
     * registries/trace buffers into these sinks (in shard order, via
     * order-independent merges). Trace timestamps are virtual, so
     * attaching sinks cannot change simulation behaviour or report
     * bytes. Must outlive the TopologySim.
     */
    obs::RunObservability *obs = nullptr;
};

/**
 * Owns the simulator shards, the speakers, and the link plumbing for
 * one topology, and scripts scenarios against them.
 *
 * Peer-id convention: on every node, the peer id of a session equals
 * the global index of the link carrying it. Link indexes are unique
 * per topology and each link touches a node at most once, so the ids
 * never collide.
 */
class TopologySim
{
  public:
    explicit TopologySim(Topology topology,
                         TopologySimConfig config = {});
    ~TopologySim();

    TopologySim(const TopologySim &) = delete;
    TopologySim &operator=(const TopologySim &) = delete;

    const Topology &topology() const { return topo_; }
    /**
     * Shard 0's simulator. With jobs = 1 this is THE simulator;
     * parallel runs keep one per shard, so cross-run code should use
     * now() / pendingEvents() instead.
     */
    sim::Simulator &simulator() { return shards_[0]->sim; }
    const sim::Simulator &simulator() const { return shards_[0]->sim; }
    /** Latest simulated time reached by any shard. */
    sim::SimTime now() const;
    /** Events waiting across all shards. */
    size_t pendingEvents() const;
    /**
     * Worker threads the engine resolved to. With adaptive sync the
     * shard count may exceed this (over-decomposition feeds the
     * work-stealing deques); partition().shardCount has the shards.
     */
    size_t jobs() const { return workers_; }
    /** The node partition driving the sharded execution. */
    const Partition &partition() const { return partition_; }
    /** The (possibly adaptive) lookahead window policy in effect. */
    const WindowController &windowController() const
    {
        return controller_;
    }
    bgp::BgpSpeaker &speaker(size_t node);
    const bgp::BgpSpeaker &speaker(size_t node) const;
    ConvergenceTracker &tracker() { return tracker_; }
    const ConvergenceTracker &tracker() const { return tracker_; }

    /** @name Scenario scripting
     *  All schedule work at absolute simulated time @p at (>= now).
     *  @{
     */
    /** Originate @p prefix at @p node (NEXT_HOP = node address). */
    void originate(size_t node, const net::Prefix &prefix,
                   sim::SimTime at);
    /** Withdraw a locally originated prefix. */
    void withdrawLocal(size_t node, const net::Prefix &prefix,
                       sim::SimTime at);
    /** Take a link down: sessions drop, in-flight segments are lost. */
    void scheduleLinkDown(size_t link, sim::SimTime at);
    /** Bring a downed link back; sessions re-establish. */
    void scheduleLinkUp(size_t link, sim::SimTime at);
    /** Reset the session on @p link; reconnects after the delay. */
    void scheduleSessionReset(size_t link, sim::SimTime at);
    /**
     * Restart a router: every incident session drops at @p at and
     * re-establishes at @p at + @p downtime. Locally originated
     * routes survive (they are configuration); learned routes are
     * re-learned from the full-table exchange on reconnect.
     */
    void scheduleRouterRestart(size_t node, sim::SimTime at,
                               sim::SimTime downtime);
    /** @} */

    /**
     * Run until the event queues are quiescent (converged) or the
     * clock would pass @p limit.
     *
     * @return True if the network converged within the limit.
     */
    bool runToConvergence(sim::SimTime limit);

    /**
     * Semantic convergence check: every originated prefix is present
     * in the Loc-RIB of every router reachable from its origin over
     * currently-up links.
     */
    bool locRibsConsistent() const;

    bool linkUp(size_t link) const;

    /** Locally originated (node, prefix) pairs, in origination order. */
    const std::vector<std::pair<size_t, net::Prefix>> &
    originated() const
    {
        return originated_;
    }

    /** Build the convergence report for the current tracker phase. */
    ConvergenceReport report(const std::string &scenario,
                             const std::string &shape) const;

    /**
     * Publish the shard layout and utilization counters of the runs
     * so far under the "parallel.*" metric names (obs::metric, one
     * gauge/counter per field plus per-shard entries; rendered by
     * obs::printParallelView), plus the sync-layer "topo.*" counters:
     * topo.window_len_ns (deterministic, virtual-time), and the
     * host-side diagnostics topo.barrier_wait_ns / topo.steal_count
     * (nondeterministic by nature — they must never feed anything
     * whose bytes are compared across runs). Jobs-dependent, hence
     * NOT part of the convergence report (whose bytes must not
     * depend on the jobs knob). Counters accumulate, so publish once
     * per report into a given registry.
     */
    void publishParallelMetrics(obs::MetricRegistry &registry) const;

  private:
    struct NodeEvents;

    struct LinkState
    {
        bool up = true;
        /** Bumped on down/reset; stale segments are dropped. */
        uint64_t epoch = 0;
        /** Per-direction serialisation cursor (a->b, b->a). */
        sim::SimTime busyUntil[2] = {0, 0};
    };

    /**
     * An inter-shard message: a segment transmitted by a node of one
     * shard toward a node of another, carrying everything the
     * destination needs to schedule the arrival locally.
     */
    struct CrossMessage
    {
        /** Simulated arrival time at the destination node. */
        sim::SimTime time;
        /** (source node, per-source sequence) total-order key. */
        uint64_t key;
        uint32_t link;
        /** Source-side link epoch at transmit time. */
        uint64_t epoch;
        uint32_t dst;
        bgp::MessageType type;
        uint32_t transactions;
        /**
         * Shared immutable segment. Crossing the mailbox moves only
         * the reference; the bytes were encoded exactly once in the
         * source speaker. The refcount is atomic, so the destination
         * shard can release its reference on its own thread.
         */
        net::WireSegmentPtr wire;
    };

    /**
     * Elastic outbound batch buffer for one outgoing direction of
     * one cut link. The worker running the source shard appends
     * during its window; the window barrier's completion step drains
     * every buffer (the barrier provides the happens-before edges,
     * so no locks or atomics). clear() keeps the capacity, so steady
     * state appends without allocating. A single source node feeds
     * each buffer, so its contents are (time, key)-sorted by
     * construction except across a mid-window link flap (the
     * serialisation cursor resets); the drain re-sorts only then.
     */
    struct LinkBatch
    {
        uint32_t dstShard = 0;
        std::vector<CrossMessage> messages;
    };

    /** Locates one inbound LinkBatch of a destination shard. */
    struct BatchRef
    {
        uint32_t srcShard;
        uint32_t slot;
    };

    /**
     * One slice of the simulation: its own event queue, metric
     * tracker, link-state replica, and outbound batch buffers. With
     * work-stealing any worker may drain a shard's window, but only
     * one per window, so everything here stays single-writer between
     * barriers.
     */
    struct Shard
    {
        size_t index = 0;
        sim::Simulator sim;
        ConvergenceTracker tracker;
        /**
         * Link-state replica. Authoritative only for links with an
         * endpoint in this shard; fault events are mirrored into
         * every owning shard so replicas agree at every simulated
         * instant.
         */
        std::vector<LinkState> links;
        /** One outbound batch per outgoing cut-link direction. */
        std::vector<LinkBatch> outBatches;
        /** link index -> outBatches slot (UINT32_MAX: not ours). */
        std::vector<uint32_t> outSlotOfLink;
        /** Host nanoseconds spent executing events. */
        uint64_t hostBusyNs = 0;
        /** First exception thrown inside a window, if any. */
        std::exception_ptr error;
        /**
         * Shard-local observability: the shard's speakers and the
         * worker loop record here without synchronisation; the
         * contents are folded into the run sinks after each
         * runToConvergence(). The tracer stays detached when the
         * config carries no sinks.
         */
        obs::MetricRegistry metrics;
        obs::TraceBuffer traceBuf;
        obs::Tracer tracer;
    };

    size_t shardOfNode(size_t node) const
    {
        return partition_.shardOf[node];
    }
    Shard &shardFor(size_t node) { return *shards_[shardOfNode(node)]; }
    /** Owning shards of @p link (one entry when both ends share it). */
    void ownerShards(size_t link, size_t out[2], size_t &count) const;
    /** Whether @p shard owns an endpoint of @p link. */
    bool shardOwnsLink(const Shard &shard, size_t link) const;
    /** Schedule @p handler into every owning shard of @p link. */
    template <typename Fn>
    void scheduleMirrored(size_t link, sim::SimTime at, Fn &&handler);

    /** Next (src node, sequence) message-ordering key for @p node. */
    uint64_t nextMessageKey(size_t node);

    /** Bring the shard-local ends of @p link up (OPEN exchange). */
    void establishLocal(Shard &shard, size_t link);
    /** Drop the shard-local ends and invalidate in-flight segments. */
    void closeLocal(Shard &shard, size_t link);
    /** SpeakerEvents::onTransmit bridge; runs in the node's shard. */
    void transmitFrom(size_t node, bgp::PeerId peer,
                      bgp::MessageType type, net::WireSegmentPtr wire,
                      size_t transactions);
    /**
     * SpeakerEvents::onWakeupRequested bridge: schedule a
     * serviceWakeup() for @p node at @p at (clamped to the shard's
     * now). Node-local — the event lands on the owning shard only, so
     * it is identical under every shard layout.
     */
    void scheduleWakeup(Shard &shard, size_t node, sim::SimTime at);
    /** Schedule a (possibly batch-delivered) arrival in @p shard. */
    void scheduleArrival(Shard &shard, CrossMessage msg);
    /** Segment reached the far end; queue CPU processing. */
    void arrive(size_t link, uint64_t epoch, uint64_t key, size_t dst,
                net::WireSegmentPtr wire, bgp::MessageType type,
                size_t transactions);
    /** CPU processing done; deliver to the speaker. */
    void deliver(size_t link, uint64_t epoch, size_t dst,
                 const net::WireSegmentPtr &wire,
                 bgp::MessageType type);

    /** Sequential engine: drain shard 0 up to @p limit. */
    bool runSequential(sim::SimTime limit);
    /** Parallel engine: windowed barrier stepping on a worker pool. */
    bool runParallel(sim::SimTime limit);
    /**
     * Drain all batch buffers, pick the next window, and refill the
     * work-stealing deques (barrier completion step — runs
     * exclusively).
     */
    void exchangeAndOpenWindow(sim::SimTime limit);
    /** Drain one destination's inbound batches; merged count. */
    size_t mergeInbound(size_t dst);
    /** Pop worker @p worker's next shard task (own deque or steal). */
    bool nextTask(size_t worker, uint32_t &task);
    /** Drain @p shard below windowEnd_ on the calling worker. */
    void runShardWindow(Shard &shard,
                        std::atomic<bool> &failed) noexcept;
    /** Fold the per-shard trackers into tracker_ (post-run). */
    void absorbShardTrackers();

    Topology topo_;
    TopologySimConfig config_;
    Partition partition_;
    /**
     * Conservative fixed window span: the smallest cross-shard link
     * latency. simTimeNever when nothing is cut (single shard).
     */
    sim::SimTime lookaheadNs_ = sim::simTimeNever;
    /** Worker threads of the parallel engine (1 = sequential). */
    size_t workers_ = 1;
    WindowController controller_{0, 0, true};
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::unique_ptr<NodeEvents>> events_;
    std::vector<std::unique_ptr<bgp::BgpSpeaker>> speakers_;
    /** Control CPU availability per node (single control thread). */
    std::vector<sim::SimTime> cpuFreeAt_;
    /** Per-node transmit sequence feeding nextMessageKey(). */
    std::vector<uint64_t> messageSeq_;
    std::vector<std::pair<size_t, net::Prefix>> originated_;
    ConvergenceTracker tracker_;
    /** Inbound batch locations per destination shard. */
    std::vector<std::vector<BatchRef>> inBatches_;
    /** Per-worker shard-task deques, refilled each window. */
    std::vector<std::unique_ptr<StealDeque>> workerDeques_;
    /** Barrier/window state of the run in progress. */
    sim::SimTime windowEnd_ = 0;
    bool runDone_ = false;
    bool runConverged_ = false;
    uint64_t windows_ = 0;
    /** Sum of opened window lengths (virtual ns, deterministic). */
    uint64_t windowLenSumNs_ = 0;
    /** Shard tasks taken from another worker's deque (diagnostic). */
    std::atomic<uint64_t> stealCount_{0};
    /** Host ns each worker spent blocked on the barrier (diagnostic,
     *  recorded only when obs sinks are attached). */
    std::vector<uint64_t> workerBarrierWaitNs_;
    /** Scratch for merging one destination's inbound batches. */
    std::vector<CrossMessage> inboxScratch_;
    std::vector<size_t> mergeBounds_;
    std::vector<size_t> mergeBoundsScratch_;
    /** Engine-lane sink for "sync_window" spans (virtual time). */
    obs::TraceBuffer engineTraceBuf_;
    obs::Tracer engineTracer_;
};

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_TOPOLOGY_SIM_HH
