/**
 * @file
 * TopologySim: N full BgpSpeaker instances wired into a Topology on
 * top of the deterministic discrete-event simulator.
 *
 * Each node owns a real BgpSpeaker; its SpeakerEvents::onTransmit is
 * bridged into simulated link delivery: a transmitted segment is
 * serialised onto the link (bytes / bandwidth), propagates for the
 * link latency, and is then charged against the receiving router's
 * SystemProfile cost model (message parse + per-byte + per-prefix
 * decision cycles at that node's clock rate, plus the commercial
 * router's per-message gate) before receiveBytes() runs. Per-link
 * FIFO ordering models TCP; a per-node "CPU busy until" scalar
 * serialises control-plane processing the way a single control CPU
 * would.
 *
 * Faults are scheduled into the same event queue: link down/up,
 * session reset, and whole-router restart. A link carries an epoch
 * counter; segments in flight across a down or reset are dropped,
 * exactly as a TCP connection teardown loses unacknowledged data.
 *
 * The run is fully deterministic: equal topologies, schedules, and
 * seeds produce byte-identical convergence reports.
 */

#ifndef BGPBENCH_TOPO_TOPOLOGY_SIM_HH
#define BGPBENCH_TOPO_TOPOLOGY_SIM_HH

#include <memory>
#include <utility>
#include <vector>

#include "bgp/speaker.hh"
#include "sim/event_queue.hh"
#include "topo/convergence.hh"
#include "topo/topology.hh"

namespace bgpbench::topo
{

/** Runtime knobs of a topology simulation. */
struct TopologySimConfig
{
    /** Bring every link's session up at t = 0. */
    bool establishAtStart = true;
    /** Delay before a reset or re-enabled session reconnects. */
    sim::SimTime reconnectDelayNs = sim::nsFromMs(10);
    /**
     * Charge the per-node SystemProfile costs for inbound message
     * processing. Disable for pure protocol-behaviour tests where
     * virtual CPU time is irrelevant.
     */
    bool chargeProcessingCost = true;
};

/**
 * Owns the simulator, the speakers, and the link plumbing for one
 * topology, and scripts scenarios against them.
 *
 * Peer-id convention: on every node, the peer id of a session equals
 * the global index of the link carrying it. Link indexes are unique
 * per topology and each link touches a node at most once, so the ids
 * never collide.
 */
class TopologySim
{
  public:
    explicit TopologySim(Topology topology,
                         TopologySimConfig config = {});
    ~TopologySim();

    TopologySim(const TopologySim &) = delete;
    TopologySim &operator=(const TopologySim &) = delete;

    const Topology &topology() const { return topo_; }
    sim::Simulator &simulator() { return sim_; }
    const sim::Simulator &simulator() const { return sim_; }
    bgp::BgpSpeaker &speaker(size_t node);
    const bgp::BgpSpeaker &speaker(size_t node) const;
    ConvergenceTracker &tracker() { return tracker_; }
    const ConvergenceTracker &tracker() const { return tracker_; }

    /** @name Scenario scripting
     *  All schedule work at absolute simulated time @p at (>= now).
     *  @{
     */
    /** Originate @p prefix at @p node (NEXT_HOP = node address). */
    void originate(size_t node, const net::Prefix &prefix,
                   sim::SimTime at);
    /** Withdraw a locally originated prefix. */
    void withdrawLocal(size_t node, const net::Prefix &prefix,
                       sim::SimTime at);
    /** Take a link down: sessions drop, in-flight segments are lost. */
    void scheduleLinkDown(size_t link, sim::SimTime at);
    /** Bring a downed link back; sessions re-establish. */
    void scheduleLinkUp(size_t link, sim::SimTime at);
    /** Reset the session on @p link; reconnects after the delay. */
    void scheduleSessionReset(size_t link, sim::SimTime at);
    /**
     * Restart a router: every incident session drops at @p at and
     * re-establishes at @p at + @p downtime. Locally originated
     * routes survive (they are configuration); learned routes are
     * re-learned from the full-table exchange on reconnect.
     */
    void scheduleRouterRestart(size_t node, sim::SimTime at,
                               sim::SimTime downtime);
    /** @} */

    /**
     * Run until the event queue is quiescent (converged) or the
     * clock would pass @p limit.
     *
     * @return True if the network converged within the limit.
     */
    bool runToConvergence(sim::SimTime limit);

    /**
     * Semantic convergence check: every originated prefix is present
     * in the Loc-RIB of every router reachable from its origin over
     * currently-up links.
     */
    bool locRibsConsistent() const;

    bool linkUp(size_t link) const;

    /** Locally originated (node, prefix) pairs, in origination order. */
    const std::vector<std::pair<size_t, net::Prefix>> &
    originated() const
    {
        return originated_;
    }

    /** Build the convergence report for the current tracker phase. */
    ConvergenceReport report(const std::string &scenario,
                             const std::string &shape) const;

  private:
    struct NodeEvents;

    struct LinkState
    {
        bool up = true;
        /** Bumped on down/reset; stale segments are dropped. */
        uint64_t epoch = 0;
        /** Per-direction serialisation cursor (a->b, b->a). */
        sim::SimTime busyUntil[2] = {0, 0};
    };

    /** Start both ends of @p link connecting (OPEN exchange). */
    void establishLink(size_t link);
    /** Drop both ends' sessions and invalidate in-flight segments. */
    void closeLink(size_t link);
    /** SpeakerEvents::onTransmit bridge. */
    void transmitFrom(size_t node, bgp::PeerId peer,
                      bgp::MessageType type,
                      std::vector<uint8_t> wire, size_t transactions);
    /** Segment reached the far end; queue CPU processing. */
    void arrive(size_t link, uint64_t epoch, size_t dst,
                std::vector<uint8_t> wire, bgp::MessageType type,
                size_t transactions);
    /** CPU processing done; deliver to the speaker. */
    void deliver(size_t link, uint64_t epoch, size_t dst,
                 const std::vector<uint8_t> &wire,
                 bgp::MessageType type);

    Topology topo_;
    TopologySimConfig config_;
    sim::Simulator sim_;
    std::vector<std::unique_ptr<NodeEvents>> events_;
    std::vector<std::unique_ptr<bgp::BgpSpeaker>> speakers_;
    std::vector<LinkState> links_;
    /** Control CPU availability per node (single control thread). */
    std::vector<sim::SimTime> cpuFreeAt_;
    std::vector<std::pair<size_t, net::Prefix>> originated_;
    ConvergenceTracker tracker_;
};

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_TOPOLOGY_SIM_HH
