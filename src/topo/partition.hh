/**
 * @file
 * Topology sharding for the parallel simulation engine.
 *
 * The partitioner splits a topology's routers into a requested number
 * of shards so that one worker thread can own each shard's event
 * queue. Two goals pull against each other: shards should hold equal
 * node counts (thread load balance) and as few links as possible
 * should cross shards (every cut link forces cross-shard message
 * exchange and bounds the conservative lookahead window).
 *
 * The algorithm is greedy BFS growth: each shard starts from the
 * lowest-numbered unassigned node and absorbs unassigned neighbours
 * breadth-first until its node quota is met, restarting from the next
 * unassigned seed if the frontier empties (disconnected remainder).
 * On lines, rings, and stars this recovers the contiguous minimum-cut
 * split; on meshy graphs no small cut exists and the quota keeps the
 * threads busy evenly. The result is a pure function of the topology
 * and the shard count — determinism of parallel runs starts here.
 */

#ifndef BGPBENCH_TOPO_PARTITION_HH
#define BGPBENCH_TOPO_PARTITION_HH

#include <cstdint>
#include <vector>

#include "topo/topology.hh"

namespace bgpbench::topo
{

/** A node-to-shard assignment plus its quality measures. */
struct Partition
{
    /** shardOf[node] = owning shard index. */
    std::vector<uint32_t> shardOf;
    size_t shardCount = 0;
    /** Nodes per shard. */
    std::vector<size_t> shardNodes;
    /** Links whose endpoints live in different shards. */
    size_t cutLinks = 0;
    /** cutLinks / linkCount (0 when the topology has no links). */
    double edgeCutRatio = 0.0;
    /**
     * Node-count imbalance: largest shard relative to the ideal
     * nodeCount / shardCount, minus one. 0 means perfectly balanced;
     * 0.25 means the biggest shard is 25% over its fair share.
     */
    double nodeSkew = 0.0;
    /**
     * Smallest latency over cut links — the conservative lookahead
     * window of the parallel engine. simTimeNever when nothing is
     * cut (single shard).
     */
    sim::SimTime minCutLatencyNs = sim::simTimeNever;

    bool crossShard(const Link &link) const
    {
        return shardOf[link.a.node] != shardOf[link.b.node];
    }
};

/**
 * Partition @p topo into @p shards shards (clamped to the node
 * count; 0 is fatal). Deterministic for equal inputs.
 */
Partition partitionTopology(const Topology &topo, size_t shards);

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_PARTITION_HH
