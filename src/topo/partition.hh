/**
 * @file
 * Topology sharding for the parallel simulation engine.
 *
 * The partitioner splits a topology's routers into a requested number
 * of shards so that one worker thread can own each shard's event
 * queue. Three goals pull against each other: shards should hold
 * equal node counts (thread load balance), as few links as possible
 * should cross shards (every cut link forces cross-shard message
 * exchange), and the links that *are* cut should be slow ones —
 * the smallest cut-link latency seeds the conservative lookahead
 * window, so cutting a fast link throttles every shard.
 *
 * The algorithm is a portfolio of greedy BFS growths: each shard
 * starts from the lowest-numbered unassigned node and absorbs
 * unassigned neighbours breadth-first until its node quota is met,
 * restarting from the next unassigned seed if the frontier empties
 * (disconnected remainder). The strategies differ only in the order
 * neighbours are absorbed: AdjacencyOrder takes them as the topology
 * lists them (the original greedy), LatencyAffinity takes the
 * lowest-latency neighbour first, keeping fast links inside shards
 * and pushing slow ones onto the cut. partitionTopology() runs both
 * and keeps the cut with the larger minimum cut latency (tie-break:
 * fewer cut links, then strategy order) — so the chosen cut never
 * has a lower lookahead seed than the original greedy produced. On
 * lines, rings, and stars with uniform latencies this recovers the
 * contiguous minimum-cut split exactly as before. The result is a
 * pure function of the topology and the shard count — determinism of
 * parallel runs starts here.
 */

#ifndef BGPBENCH_TOPO_PARTITION_HH
#define BGPBENCH_TOPO_PARTITION_HH

#include <cstdint>
#include <vector>

#include "topo/topology.hh"

namespace bgpbench::topo
{

/** A node-to-shard assignment plus its quality measures. */
struct Partition
{
    /** shardOf[node] = owning shard index. */
    std::vector<uint32_t> shardOf;
    size_t shardCount = 0;
    /** Nodes per shard. */
    std::vector<size_t> shardNodes;
    /** Links whose endpoints live in different shards. */
    size_t cutLinks = 0;
    /** cutLinks / linkCount (0 when the topology has no links). */
    double edgeCutRatio = 0.0;
    /**
     * Node-count imbalance: largest shard relative to the ideal
     * nodeCount / shardCount, minus one. 0 means perfectly balanced;
     * 0.25 means the biggest shard is 25% over its fair share.
     */
    double nodeSkew = 0.0;
    /**
     * Smallest latency over cut links — the conservative lookahead
     * window of the parallel engine. simTimeNever when nothing is
     * cut (single shard).
     */
    sim::SimTime minCutLatencyNs = sim::simTimeNever;
    /**
     * Per shard: the smallest latency over cut links with an
     * endpoint in that shard (simTimeNever when the shard touches no
     * cut link). Feeds the adaptive engine's causality bound: no
     * message shard s emits can arrive anywhere earlier than its own
     * next event time plus this latency.
     */
    std::vector<sim::SimTime> shardMinCutLatencyNs;

    bool crossShard(const Link &link) const
    {
        return shardOf[link.a.node] != shardOf[link.b.node];
    }
};

/** Neighbour-absorption order of the greedy BFS growth. */
enum class PartitionStrategy
{
    /** Topology adjacency order — the original greedy, bit-exact. */
    AdjacencyOrder,
    /** Ascending link latency (ties by node index): keep fast links
     *  internal so the cut is made of slow ones. */
    LatencyAffinity,
};

/**
 * Partition @p topo into @p shards shards (clamped to the node
 * count; 0 is fatal) with one fixed strategy. Deterministic for
 * equal inputs.
 */
Partition partitionTopologyWithStrategy(const Topology &topo,
                                        size_t shards,
                                        PartitionStrategy strategy);

/**
 * Portfolio partition: run every strategy and keep the result with
 * the largest minCutLatencyNs (tie-break: fewer cut links, then
 * strategy declaration order). Deterministic for equal inputs, and
 * never worse (in min cut latency) than the AdjacencyOrder greedy.
 */
Partition partitionTopology(const Topology &topo, size_t shards);

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_PARTITION_HH
