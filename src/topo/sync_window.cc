#include "topo/sync_window.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace bgpbench::topo
{

namespace
{

/** 1024x the floor, saturating well below simTimeNever. */
sim::SimTime
capFromFloor(sim::SimTime floor_ns)
{
    if (floor_ns == 0)
        return 0;
    if (floor_ns > (sim::simTimeNever >> 11))
        return sim::simTimeNever >> 1;
    return floor_ns << 10;
}

} // namespace

bool
adaptiveSyncDefault()
{
    const char *value = std::getenv("BGPBENCH_NO_ADAPTIVE_SYNC");
    return !(value && std::strcmp(value, "1") == 0);
}

WindowController::WindowController(sim::SimTime floor_ns,
                                   size_t cut_links, bool adaptive)
    : floorNs_(floor_ns), capNs_(capFromFloor(floor_ns)),
      targetNs_(adaptive ? capNs_ : floor_ns),
      burstThreshold_(std::max<uint64_t>(64, 4 * uint64_t(cut_links))),
      adaptive_(adaptive)
{
}

void
WindowController::observe(uint64_t cross_messages)
{
    if (!adaptive_)
        return;
    if (cross_messages > burstThreshold_)
        targetNs_ = std::max(floorNs_, targetNs_ / 2);
    else if (cross_messages == 0)
        targetNs_ = std::min(capNs_, targetNs_ * 2);
}

} // namespace bgpbench::topo
