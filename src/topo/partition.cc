#include "topo/partition.hh"

#include <algorithm>
#include <queue>

#include "net/logging.hh"

namespace bgpbench::topo
{

namespace
{

/** Fill the cut statistics of an assigned partition. */
void
computeCutStats(Partition &out, const Topology &topo)
{
    out.cutLinks = 0;
    out.minCutLatencyNs = sim::simTimeNever;
    out.shardMinCutLatencyNs.assign(out.shardCount,
                                    sim::simTimeNever);
    for (size_t l = 0; l < topo.linkCount(); ++l) {
        const Link &link = topo.link(l);
        if (!out.crossShard(link))
            continue;
        ++out.cutLinks;
        out.minCutLatencyNs =
            std::min(out.minCutLatencyNs, link.latencyNs);
        for (size_t shard : {out.shardOf[link.a.node],
                             out.shardOf[link.b.node]}) {
            out.shardMinCutLatencyNs[shard] = std::min(
                out.shardMinCutLatencyNs[shard], link.latencyNs);
        }
    }
    out.edgeCutRatio = 0.0;
    if (topo.linkCount() > 0) {
        out.edgeCutRatio =
            double(out.cutLinks) / double(topo.linkCount());
    }

    size_t largest = *std::max_element(out.shardNodes.begin(),
                                       out.shardNodes.end());
    double ideal = double(topo.nodeCount()) / double(out.shardCount);
    out.nodeSkew = double(largest) / ideal - 1.0;
}

} // namespace

Partition
partitionTopologyWithStrategy(const Topology &topo, size_t shards,
                              PartitionStrategy strategy)
{
    if (shards == 0)
        fatal("cannot partition a topology into zero shards");
    size_t nodes = topo.nodeCount();
    shards = std::min(shards, nodes);

    Partition out;
    out.shardCount = shards;
    out.shardOf.assign(nodes, 0);
    out.shardNodes.assign(shards, 0);

    // Fair node quotas: the first (nodes % shards) shards take one
    // extra node, so counts never differ by more than one.
    size_t next_seed = 0;
    std::vector<bool> assigned(nodes, false);
    std::vector<Topology::Adjacent> ordered;
    for (size_t s = 0; s < shards; ++s) {
        size_t quota = nodes / shards + (s < nodes % shards ? 1 : 0);
        std::queue<size_t> frontier;
        size_t taken = 0;
        while (taken < quota) {
            if (frontier.empty()) {
                // Fresh seed: the lowest unassigned node. Needed for
                // the first node of the shard and whenever the
                // unassigned remainder is disconnected.
                while (assigned[next_seed])
                    ++next_seed;
                assigned[next_seed] = true;
                frontier.push(next_seed);
                out.shardOf[next_seed] = uint32_t(s);
                ++taken;
                continue;
            }
            size_t at = frontier.front();
            frontier.pop();
            const std::vector<Topology::Adjacent> *neighbors =
                &topo.neighborsOf(at);
            if (strategy == PartitionStrategy::LatencyAffinity) {
                ordered = *neighbors;
                std::stable_sort(
                    ordered.begin(), ordered.end(),
                    [&](const Topology::Adjacent &a,
                        const Topology::Adjacent &b) {
                        sim::SimTime la = topo.link(a.link).latencyNs;
                        sim::SimTime lb = topo.link(b.link).latencyNs;
                        if (la != lb)
                            return la < lb;
                        return a.node < b.node;
                    });
                neighbors = &ordered;
            }
            for (const Topology::Adjacent &adj : *neighbors) {
                if (taken >= quota)
                    break;
                if (assigned[adj.node])
                    continue;
                assigned[adj.node] = true;
                out.shardOf[adj.node] = uint32_t(s);
                frontier.push(adj.node);
                ++taken;
            }
        }
        out.shardNodes[s] = quota;
    }

    computeCutStats(out, topo);
    return out;
}

Partition
partitionTopology(const Topology &topo, size_t shards)
{
    Partition best = partitionTopologyWithStrategy(
        topo, shards, PartitionStrategy::AdjacencyOrder);
    if (best.shardCount <= 1 || best.cutLinks == 0)
        return best;
    Partition latency = partitionTopologyWithStrategy(
        topo, shards, PartitionStrategy::LatencyAffinity);
    // Larger min cut latency wins (a longer lookahead seed); tie on
    // fewer cut links; a full tie keeps the original greedy, so
    // uniform-latency shapes partition exactly as they always have.
    if (latency.minCutLatencyNs > best.minCutLatencyNs ||
        (latency.minCutLatencyNs == best.minCutLatencyNs &&
         latency.cutLinks < best.cutLinks)) {
        return latency;
    }
    return best;
}

} // namespace bgpbench::topo
