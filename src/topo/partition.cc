#include "topo/partition.hh"

#include <algorithm>
#include <queue>

#include "net/logging.hh"

namespace bgpbench::topo
{

Partition
partitionTopology(const Topology &topo, size_t shards)
{
    if (shards == 0)
        fatal("cannot partition a topology into zero shards");
    size_t nodes = topo.nodeCount();
    shards = std::min(shards, nodes);

    Partition out;
    out.shardCount = shards;
    out.shardOf.assign(nodes, 0);
    out.shardNodes.assign(shards, 0);

    // Fair node quotas: the first (nodes % shards) shards take one
    // extra node, so counts never differ by more than one.
    size_t next_seed = 0;
    std::vector<bool> assigned(nodes, false);
    for (size_t s = 0; s < shards; ++s) {
        size_t quota = nodes / shards + (s < nodes % shards ? 1 : 0);
        std::queue<size_t> frontier;
        size_t taken = 0;
        while (taken < quota) {
            if (frontier.empty()) {
                // Fresh seed: the lowest unassigned node. Needed for
                // the first node of the shard and whenever the
                // unassigned remainder is disconnected.
                while (assigned[next_seed])
                    ++next_seed;
                assigned[next_seed] = true;
                frontier.push(next_seed);
                out.shardOf[next_seed] = uint32_t(s);
                ++taken;
                continue;
            }
            size_t at = frontier.front();
            frontier.pop();
            for (const Topology::Adjacent &adj :
                 topo.neighborsOf(at)) {
                if (taken >= quota)
                    break;
                if (assigned[adj.node])
                    continue;
                assigned[adj.node] = true;
                out.shardOf[adj.node] = uint32_t(s);
                frontier.push(adj.node);
                ++taken;
            }
        }
        out.shardNodes[s] = quota;
    }

    for (size_t l = 0; l < topo.linkCount(); ++l) {
        const Link &link = topo.link(l);
        if (!out.crossShard(link))
            continue;
        ++out.cutLinks;
        out.minCutLatencyNs =
            std::min(out.minCutLatencyNs, link.latencyNs);
    }
    if (topo.linkCount() > 0) {
        out.edgeCutRatio =
            double(out.cutLinks) / double(topo.linkCount());
    }

    size_t largest =
        *std::max_element(out.shardNodes.begin(), out.shardNodes.end());
    double ideal = double(nodes) / double(shards);
    out.nodeSkew = double(largest) / ideal - 1.0;
    return out;
}

} // namespace bgpbench::topo
