/**
 * @file
 * Network-wide convergence detection and reporting.
 *
 * Convergence of the simulated network is detected operationally:
 * the speakers are driven purely by message deliveries, so once the
 * event queue is quiescent no further routing state can change — the
 * network has converged. The tracker additionally records when the
 * last Loc-RIB-affecting event happened, which is the convergence
 * *instant* (the queue drains somewhat later, as in-flight messages
 * that change nothing are absorbed), and supports a semantic check
 * that every router reaches every originated prefix.
 *
 * Metrics follow the path-vector stability literature (Papadimitriou
 * & Cabellos, arXiv:1204.5642): convergence time, total UPDATE
 * messages and routing transactions exchanged, per-router
 * transactions/sec (the paper's single-router metric, now measured
 * per node of a network), and path exploration — how many distinct
 * AS paths a router was offered per prefix before the network
 * settled.
 */

#ifndef BGPBENCH_TOPO_CONVERGENCE_HH
#define BGPBENCH_TOPO_CONVERGENCE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bgp/message.hh"
#include "bgp/speaker.hh"
#include "net/prefix.hh"
#include "sim/time.hh"

namespace bgpbench::stats
{
class JsonWriter;
}

namespace bgpbench::topo
{

/**
 * Observes message deliveries and speaker events across all routers
 * of a TopologySim run and accumulates convergence metrics.
 *
 * The phase clock supports multi-stage scenarios: markPhaseStart()
 * before injecting a fault restarts the convergence stopwatch, so the
 * reported time covers only re-convergence after the fault.
 */
class ConvergenceTracker
{
  public:
    /** Restart the convergence stopwatch (e.g. at fault injection). */
    void markPhaseStart(sim::SimTime now);

    /** An UPDATE finished its simulated delivery to @p node. */
    void onUpdateDelivered(size_t node, const bgp::UpdateMessage &msg,
                           sim::SimTime now);

    /** A speaker finished processing an inbound UPDATE. */
    void onUpdateProcessed(size_t node, const bgp::UpdateStats &stats,
                           sim::SimTime now);

    /** A session FSM changed state on @p node. */
    void onSessionChange(size_t node, sim::SimTime now);

    /** A segment was lost to a down link or a stale link epoch. */
    void onSegmentDropped() { ++droppedSegments_; }

    /**
     * Fold @p shard's accumulated metrics into this tracker and
     * reset @p shard to empty. Every merged quantity is
     * order-independent (sums, maxima, set unions), so absorbing the
     * per-shard trackers of a parallel run in any shard order yields
     * the same totals as sequential accumulation — the property the
     * byte-identical-reports guarantee rests on.
     */
    void absorb(ConvergenceTracker &shard);

    /** @name Accumulated metrics
     *  @{
     */
    sim::SimTime phaseStart() const { return phaseStart_; }
    /** Time of the last routing-state-affecting event. */
    sim::SimTime lastActivity() const { return lastActivity_; }
    /** lastActivity - phaseStart, in seconds (0 if nothing happened). */
    double convergenceTimeSec() const;
    uint64_t updatesDelivered() const { return updatesDelivered_; }
    uint64_t transactionsDelivered() const
    {
        return transactionsDelivered_;
    }
    uint64_t locRibChanges() const { return locRibChanges_; }
    uint64_t droppedSegments() const { return droppedSegments_; }
    /** Distinct AS paths announced to @p node for @p prefix. */
    size_t distinctPathsExplored(size_t node,
                                 const net::Prefix &prefix) const;
    /** Largest exploration count over all (node, prefix) pairs. */
    size_t maxPathsExplored() const;
    /** Mean exploration count over all (node, prefix) pairs. */
    double meanPathsExplored() const;
    /**
     * Updates/transactions delivered since the last markPhaseStart()
     * — the measured phase's share of the lifetime totals. The
     * baselines are snapshotted on the main tracker (after the shard
     * trackers have been absorbed), so they are layout-independent.
     */
    uint64_t phaseUpdatesDelivered() const
    {
        return updatesDelivered_ - phaseUpdatesBase_;
    }
    uint64_t phaseTransactionsDelivered() const
    {
        return transactionsDelivered_ - phaseTransactionsBase_;
    }
    /** Visit every (node, prefix, distinct-paths-offered) triple. */
    template <typename Fn>
    void
    forEachExplored(Fn &&fn) const
    {
        for (const auto &[key, paths] : explored_)
            fn(key.first, key.second, paths.size());
    }
    /** @} */

  private:
    sim::SimTime phaseStart_ = 0;
    sim::SimTime lastActivity_ = 0;
    uint64_t updatesDelivered_ = 0;
    uint64_t transactionsDelivered_ = 0;
    uint64_t locRibChanges_ = 0;
    uint64_t droppedSegments_ = 0;
    /** Lifetime totals at the last markPhaseStart(). */
    uint64_t phaseUpdatesBase_ = 0;
    uint64_t phaseTransactionsBase_ = 0;
    /** (node, prefix) -> distinct AS-path renderings offered. */
    std::map<std::pair<size_t, net::Prefix>, std::set<std::string>>
        explored_;
};

/** Per-router slice of a convergence report. */
struct RouterReport
{
    std::string name;
    uint64_t updatesReceived = 0;
    uint64_t updatesSent = 0;
    /** Inbound routing transactions processed (paper's metric unit). */
    uint64_t transactions = 0;
    /** transactions / convergence time of the measured phase. */
    double tps = 0.0;
};

/**
 * The result of running one topology scenario to convergence — the
 * network-scale analogue of the paper's per-scenario TPS number.
 */
struct ConvergenceReport
{
    std::string scenario;
    std::string shape;
    size_t nodes = 0;
    size_t links = 0;
    bool converged = false;
    double convergenceTimeSec = 0.0;
    uint64_t totalUpdates = 0;
    uint64_t totalTransactions = 0;
    uint64_t droppedSegments = 0;
    size_t pathExplorationMax = 0;
    double pathExplorationMean = 0.0;
    std::vector<RouterReport> routers;

    /**
     * Deterministic JSON rendering (same report => byte-identical
     * text) in the BENCH_*.json format of the benchmark trajectory.
     */
    std::string toJson() const;

    /** Emit the report as one object into an ongoing JSON document. */
    void writeJson(stats::JsonWriter &json) const;

    /** Human-readable summary table. */
    void printText(std::ostream &os) const;

    /** One CSV row per router, with a header when @p header is set. */
    void printCsv(std::ostream &os, bool header) const;
};

/** Print a speaker's Loc-RIB as an aligned table (for examples). */
void printLocRib(std::ostream &os, const bgp::BgpSpeaker &speaker,
                 const std::string &label);

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_CONVERGENCE_HH
