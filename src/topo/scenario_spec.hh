/**
 * @file
 * Declarative topology scenarios: one spec, one runner.
 *
 * A ScenarioSpec names a topology, a route-origination workload, and
 * a timed FaultSchedule of typed events (beacon prefix up/down
 * trains, link-flap trains with period/duty/jitter, correlated
 * session resets across a shard cut, router restarts). A single
 * ScenarioRunner executes every spec with the same three-phase
 * discipline the legacy free functions used — establish, announce,
 * reconverge — so the old runners are now thin wrappers producing
 * byte-identical reports, and every new scenario family (the churn
 * and stability axis in particular) is a schedule, not a new runner.
 *
 * Fault times are offsets from the start of the measured phase: 0 is
 * the instant the pre-fault network went quiet, exactly where the
 * legacy runners injected their single fault. All schedule expansion
 * (trains, jitter) is a pure function of the spec, so a spec replayed
 * at any jobs count yields byte-identical reports.
 */

#ifndef BGPBENCH_TOPO_SCENARIO_SPEC_HH
#define BGPBENCH_TOPO_SCENARIO_SPEC_HH

#include <string>
#include <utility>
#include <vector>

#include "topo/stability.hh"
#include "topo/topology_sim.hh"

namespace bgpbench::topo
{

/** One typed, timed fault. Times are measured-phase offsets. */
struct FaultEvent
{
    enum class Kind {
        /** Withdraw scenarioPrefix(node, index) at the origin. */
        PrefixDown,
        /** (Re-)originate scenarioPrefix(node, index). */
        PrefixUp,
        LinkDown,
        LinkUp,
        /** Drop and (after the reconnect delay) re-establish. */
        SessionReset,
        /** Down all sessions of a node for @ref downtime. */
        RouterRestart,
    };

    Kind kind = Kind::LinkDown;
    /** Offset from the measured-phase start (ns of virtual time). */
    sim::SimTime at = 0;
    /** Target node (PrefixDown/PrefixUp/RouterRestart). */
    size_t node = 0;
    /** Prefix index at the node (PrefixDown/PrefixUp). */
    size_t index = 0;
    /** Target link (LinkDown/LinkUp/SessionReset). */
    size_t link = 0;
    /** Outage duration (RouterRestart). */
    sim::SimTime downtime = 0;
};

/**
 * An ordered collection of FaultEvents with builder-style helpers.
 * Composite builders (trains) expand into primitive events
 * immediately, so the schedule is always a flat, inspectable list.
 */
class FaultSchedule
{
  public:
    FaultSchedule &prefixDown(size_t node, size_t index,
                              sim::SimTime at);
    FaultSchedule &prefixUp(size_t node, size_t index,
                            sim::SimTime at);
    FaultSchedule &linkDown(size_t link, sim::SimTime at);
    FaultSchedule &linkUp(size_t link, sim::SimTime at);
    FaultSchedule &sessionReset(size_t link, sim::SimTime at);
    FaultSchedule &routerRestart(size_t node, sim::SimTime at,
                                 sim::SimTime downtime);

    /**
     * Beacon train (RIPE-style): @p cycles down/up pairs of
     * scenarioPrefix(node, index), the withdrawal at
     * start + c * period and the re-announcement half a period
     * later. The train ends announced.
     */
    FaultSchedule &beaconTrain(size_t node, size_t index,
                               sim::SimTime start, sim::SimTime period,
                               size_t cycles);

    /**
     * Link-flap train: @p cycles down/up pairs of @p link. Cycle c
     * goes down at start + c * period (+ jitter) and comes back up
     * after period * dutyDownPercent / 100. @p jitterNs adds a
     * deterministic per-cycle offset in [0, jitterNs] derived by
     * hashing (seed, link, cycle) — no wall clock, no global RNG, so
     * the expansion is reproducible by construction. Keep
     * jitterNs + the down time below the period or cycles overlap.
     * The train ends with the link up.
     */
    FaultSchedule &linkFlapTrain(size_t link, sim::SimTime start,
                                 sim::SimTime period,
                                 unsigned dutyDownPercent,
                                 size_t cycles, sim::SimTime jitterNs = 0,
                                 uint64_t seed = 0);

    /** Session resets of every listed link at the same instant. */
    FaultSchedule &correlatedReset(const std::vector<size_t> &links,
                                   sim::SimTime at);

    const std::vector<FaultEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    /** Events carrying a routing transaction (prefix up/down). */
    size_t prefixEvents() const;
    /** Events sorted by offset (stable: ties keep builder order). */
    std::vector<FaultEvent> sorted() const;

  private:
    std::vector<FaultEvent> events_;
};

/**
 * Links whose endpoints live in different shards of @p partition —
 * the natural target set for a correlated session-reset schedule
 * that stresses the cross-shard cut.
 */
std::vector<size_t> crossShardLinks(const Topology &topology,
                                    const Partition &partition);

/**
 * RFC 2439 damping parameters with the timers rescaled to the
 * ms-scale virtual scenarios: the penalty values and thresholds are
 * the RFC defaults, but the half-life shrinks from 15 minutes to
 * 2 seconds so a suppressed route's reuse horizon fits inside a
 * scenario's virtual-time budget instead of dwarfing it. Used by the
 * CLI's --damping and the stability bench; enabled is already set.
 */
bgp::DampingConfig churnDampingConfig();

/** A complete declarative scenario. */
struct ScenarioSpec
{
    /** Report label ("announce", "link-failure", "flap-train", ...). */
    std::string name = "announce";
    /** Topology-shape label for the report. */
    std::string shape;
    Topology topology;
    /**
     * Workload: every node originates this many scenarioPrefix()
     * routes once sessions are up — unless @ref originations names
     * an explicit route set, which then replaces the grid.
     */
    size_t prefixesPerNode = 1;
    /** Explicit (node, prefix) originations (demo topologies). */
    std::vector<std::pair<size_t, net::Prefix>> originations;
    /** Virtual-time budget; exceeding it reports non-convergence. */
    sim::SimTime limitNs = sim::nsFromSec(600.0);
    TopologySimConfig simConfig;
    FaultSchedule faults;
};

/** Everything one scenario run produces. */
struct ScenarioResult
{
    ConvergenceReport convergence;
    StabilityReport stability;
};

/**
 * Executes one ScenarioSpec:
 *
 *   1. establish — sessions come up, OPEN exchanges settle;
 *   2. announce — the workload is originated and propagates;
 *   3. reconverge — the fault schedule plays (offsets relative to
 *      the announce-quiet instant) and the network re-settles.
 *
 * The measured phase (the convergence stopwatch and the stability
 * counters) starts after establish for fault-free specs and after
 * announce otherwise — the exact discipline of the legacy runners,
 * which is what keeps their wrapped reports byte-identical.
 */
class ScenarioRunner
{
  public:
    explicit ScenarioRunner(ScenarioSpec spec)
        : spec_(std::move(spec))
    {}

    /** Run the scenario (single-shot: consumes the spec). */
    ScenarioResult run();

  private:
    ScenarioSpec spec_;
};

namespace demo
{
/**
 * The four-AS policy demonstration (see scenarios.hh) expressed as a
 * ScenarioSpec: same topology, the demo's explicit originations as
 * the workload, no faults.
 */
ScenarioSpec fourAsScenario();
} // namespace demo

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_SCENARIO_SPEC_HH
