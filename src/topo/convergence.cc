#include "topo/convergence.hh"

#include <algorithm>
#include <sstream>

#include "stats/json.hh"
#include "stats/report.hh"

namespace bgpbench::topo
{

void
ConvergenceTracker::markPhaseStart(sim::SimTime now)
{
    phaseStart_ = now;
    lastActivity_ = now;
    phaseUpdatesBase_ = updatesDelivered_;
    phaseTransactionsBase_ = transactionsDelivered_;
}

void
ConvergenceTracker::onUpdateDelivered(size_t node,
                                      const bgp::UpdateMessage &msg,
                                      sim::SimTime now)
{
    ++updatesDelivered_;
    transactionsDelivered_ += msg.transactionCount();
    lastActivity_ = std::max(lastActivity_, now);
    if (!msg.attributes)
        return;
    std::string path = msg.attributes->asPath.toString();
    for (const net::Prefix &prefix : msg.nlri)
        explored_[{node, prefix}].insert(path);
}

void
ConvergenceTracker::onUpdateProcessed(size_t node,
                                      const bgp::UpdateStats &stats,
                                      sim::SimTime now)
{
    (void)node;
    locRibChanges_ += stats.locRibChanges;
    if (stats.locRibChanges > 0)
        lastActivity_ = std::max(lastActivity_, now);
}

void
ConvergenceTracker::onSessionChange(size_t node, sim::SimTime now)
{
    (void)node;
    lastActivity_ = std::max(lastActivity_, now);
}

void
ConvergenceTracker::absorb(ConvergenceTracker &shard)
{
    updatesDelivered_ += shard.updatesDelivered_;
    transactionsDelivered_ += shard.transactionsDelivered_;
    locRibChanges_ += shard.locRibChanges_;
    droppedSegments_ += shard.droppedSegments_;
    lastActivity_ = std::max(lastActivity_, shard.lastActivity_);
    for (auto &[key, paths] : shard.explored_) {
        explored_[key].merge(paths);
    }
    shard = ConvergenceTracker();
}

double
ConvergenceTracker::convergenceTimeSec() const
{
    if (lastActivity_ <= phaseStart_)
        return 0.0;
    return sim::toSeconds(lastActivity_ - phaseStart_);
}

size_t
ConvergenceTracker::distinctPathsExplored(
    size_t node, const net::Prefix &prefix) const
{
    auto it = explored_.find({node, prefix});
    return it == explored_.end() ? 0 : it->second.size();
}

size_t
ConvergenceTracker::maxPathsExplored() const
{
    size_t max = 0;
    for (const auto &[key, paths] : explored_)
        max = std::max(max, paths.size());
    return max;
}

double
ConvergenceTracker::meanPathsExplored() const
{
    if (explored_.empty())
        return 0.0;
    size_t total = 0;
    for (const auto &[key, paths] : explored_)
        total += paths.size();
    return double(total) / double(explored_.size());
}

std::string
ConvergenceReport::toJson() const
{
    std::ostringstream os;
    stats::JsonWriter json(os);
    writeJson(json);
    return os.str();
}

void
ConvergenceReport::writeJson(stats::JsonWriter &json) const
{
    json.beginObject();
    json.field("benchmark", "topo_convergence");
    json.field("scenario", scenario);
    json.field("shape", shape);
    json.field("nodes", nodes);
    json.field("links", links);
    json.field("converged", converged);
    json.field("convergence_time_s", convergenceTimeSec);
    json.field("total_updates", totalUpdates);
    json.field("total_transactions", totalTransactions);
    json.field("dropped_segments", droppedSegments);
    json.field("path_exploration_max", pathExplorationMax);
    json.field("path_exploration_mean", pathExplorationMean);
    json.key("routers");
    json.beginArray();
    for (const RouterReport &router : routers) {
        json.beginObject();
        json.field("name", router.name);
        json.field("updates_received", router.updatesReceived);
        json.field("updates_sent", router.updatesSent);
        json.field("transactions", router.transactions);
        json.field("tps", router.tps);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
ConvergenceReport::printText(std::ostream &os) const
{
    os << scenario << " on " << shape << " (" << nodes << " routers, "
       << links << " links): "
       << (converged ? "converged" : "DID NOT CONVERGE") << " in "
       << stats::formatDouble(convergenceTimeSec * 1e3, 3) << " ms, "
       << totalUpdates << " UPDATEs / " << totalTransactions
       << " transactions exchanged";
    if (droppedSegments > 0)
        os << ", " << droppedSegments << " segments lost";
    os << "\n  path exploration: max " << pathExplorationMax
       << ", mean " << stats::formatDouble(pathExplorationMean, 2)
       << " distinct AS paths per (router, prefix)\n";

    stats::TextTable table(
        {"router", "updates rx", "updates tx", "transactions",
         "tps"});
    for (const RouterReport &router : routers) {
        table.addRow({router.name,
                      std::to_string(router.updatesReceived),
                      std::to_string(router.updatesSent),
                      std::to_string(router.transactions),
                      stats::formatDouble(router.tps, 1)});
    }
    table.print(os);
}

void
ConvergenceReport::printCsv(std::ostream &os, bool header) const
{
    if (header) {
        os << "scenario,shape,nodes,links,converged,"
              "convergence_time_s,total_updates,total_transactions,"
              "router,router_transactions,router_tps\n";
    }
    for (const RouterReport &router : routers) {
        os << scenario << ',' << shape << ',' << nodes << ',' << links
           << ',' << (converged ? 1 : 0) << ','
           << stats::formatDouble(convergenceTimeSec, 6) << ','
           << totalUpdates << ',' << totalTransactions << ','
           << router.name << ',' << router.transactions << ','
           << stats::formatDouble(router.tps, 1) << "\n";
    }
}

void
printLocRib(std::ostream &os, const bgp::BgpSpeaker &speaker,
            const std::string &label)
{
    os << "\nLoc-RIB of " << label << " (AS"
       << speaker.config().localAs << "):\n";
    stats::TextTable table({"prefix", "AS path", "next hop"});
    std::vector<std::pair<net::Prefix, const bgp::LocRib::Entry *>>
        rows;
    speaker.locRib().forEach(
        [&](const net::Prefix &p, const bgp::LocRib::Entry &e) {
            rows.emplace_back(p, &e);
        });
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[prefix, entry] : rows) {
        table.addRow({prefix.toString(),
                      entry->best.attributes->asPath.toString(),
                      entry->best.attributes->nextHop.toString()});
    }
    table.print(os);
}

} // namespace bgpbench::topo
