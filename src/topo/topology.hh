/**
 * @file
 * AS-level topology model for multi-router simulation.
 *
 * A Topology is a static description of a network: nodes are BGP
 * routers (each with its own AS number, router id, address, and a
 * SystemProfile cost model that paces its control-plane processing),
 * and links are point-to-point adjacencies with latency, bandwidth,
 * and optional per-endpoint import/export policies. A link between
 * two nodes in the same AS carries an iBGP session; different ASes
 * make it eBGP — exactly the rule BgpSpeaker applies to its peers.
 *
 * The paper benchmarks one router between two test speakers; this
 * model is what lets the same protocol engine be instantiated N times
 * and wired into network shapes so that update-processing speed can
 * be studied where it matters operationally: network-wide
 * convergence. Generators cover the standard shapes (line, ring,
 * star, full mesh) plus Barabási–Albert preferential attachment as a
 * stand-in for AS-graph-like degree distributions.
 */

#ifndef BGPBENCH_TOPO_TOPOLOGY_HH
#define BGPBENCH_TOPO_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bgp/policy.hh"
#include "bgp/types.hh"
#include "net/ipv4_address.hh"
#include "router/system_profiles.hh"
#include "sim/time.hh"

namespace bgpbench::topo
{

/** One router in the topology. */
struct NodeConfig
{
    /** Label used in reports ("r0", "backbone", ...). */
    std::string name;
    bgp::AsNumber asn = 0;
    bgp::RouterId routerId = 0;
    /** Address installed as NEXT_HOP on eBGP advertisements. */
    net::Ipv4Address address;
    /**
     * Cost model pacing this router's control plane: message parse,
     * per-prefix decision, and serialisation-gate costs are charged
     * in virtual time before inbound messages are processed.
     */
    router::SystemProfile profile;
};

/** One endpoint of a link, with its session policies. */
struct LinkEnd
{
    size_t node = 0;
    /** Import policy this endpoint applies to routes from the peer. */
    bgp::Policy importPolicy;
    /** Export policy this endpoint applies toward the peer. */
    bgp::Policy exportPolicy;
};

/** A point-to-point link between two routers. */
struct Link
{
    LinkEnd a;
    LinkEnd b;
    /** One-way propagation delay. */
    sim::SimTime latencyNs = sim::nsFromMs(1);
    /** Serialisation rate; <= 0 disables the serialisation delay. */
    double bandwidthMbps = 100.0;
};

/** Shared parameters for the topology generators. */
struct GenOptions
{
    sim::SimTime latencyNs = sim::nsFromMs(1);
    double bandwidthMbps = 100.0;
    /** Cost model applied to every generated node. */
    router::SystemProfile profile = router::xeonProfile();
    /** AS number of node 0; node i gets firstAs + i (one AS each). */
    bgp::AsNumber firstAs = 100;
};

/**
 * Options for the 5-stage Clos datacenter generator (RFC 7938-style
 * eBGP fabric: tor -> agg -> spine -> agg -> tor).
 *
 * AS numbering follows the RFC 7938 section 5.2 scheme: all spines
 * share one AS (base.firstAs), the aggregation switches of one pod
 * share a per-pod AS, and every ToR gets its own AS — which is what
 * makes the pod-internal and spine-level path sets equal-length and
 * thus ECMP-eligible under maximum-paths.
 *
 * The per-tier policies are attached to the matching end of every
 * generated link (e.g. aggImport filters what an aggregation switch
 * accepts from either neighbouring tier), giving policy-heavy
 * scenarios a realistic shape: the same named route-map shared by a
 * whole tier.
 */
struct ClosOptions
{
    size_t pods = 2;
    size_t torsPerPod = 2;
    size_t aggsPerPod = 2;
    size_t spines = 2;
    GenOptions base;
    /** Per-tier session policies (empty = accept unmodified). */
    bgp::Policy torImport, torExport;
    bgp::Policy aggImport, aggExport;
    bgp::Policy spineImport, spineExport;
};

/**
 * An AS-level topology: an undirected multigraph of router nodes.
 *
 * The class is a passive description; TopologySim instantiates the
 * speakers and the event-queue plumbing from it.
 */
class Topology
{
  public:
    /** Neighbour record: the link index and the node on its far end. */
    struct Adjacent
    {
        size_t link;
        size_t node;
    };

    /** Add a router. @return Its node index. */
    size_t addNode(NodeConfig config);

    /** Add a link. Self-loops and unknown node indexes are fatal. */
    size_t addLink(Link link);

    /** Convenience: a link with default policies. */
    size_t
    addLink(size_t a, size_t b, sim::SimTime latency_ns,
            double bandwidth_mbps)
    {
        Link link;
        link.a.node = a;
        link.b.node = b;
        link.latencyNs = latency_ns;
        link.bandwidthMbps = bandwidth_mbps;
        return addLink(std::move(link));
    }

    size_t nodeCount() const { return nodes_.size(); }
    size_t linkCount() const { return links_.size(); }

    const NodeConfig &node(size_t index) const;
    /** Mutable access, e.g. to give one node a different profile. */
    NodeConfig &node(size_t index);
    const Link &link(size_t index) const;

    /** Links incident to @p node. */
    const std::vector<Adjacent> &neighborsOf(size_t node) const;

    /**
     * True if @p link connects two nodes of the same AS, making the
     * session iBGP (the speaker derives the same answer from the
     * peer's configured AS).
     */
    bool isIbgp(size_t link) const;

    /** True if every node can reach every other over the links. */
    bool connected() const;

    /**
     * The default node description the generators use: name "r<i>",
     * AS firstAs + i, router id i + 1, address 10.(i/256).(i%256).1.
     */
    static NodeConfig defaultNode(size_t index,
                                  const GenOptions &opts);

    /** @name Generators
     *  All produce connected topologies of @p n one-router ASes.
     *  @{
     */
    /** r0 - r1 - ... - r(n-1). Requires n >= 2. */
    static Topology line(size_t n, const GenOptions &opts = {});
    /** A line with the ends joined. Requires n >= 3. */
    static Topology ring(size_t n, const GenOptions &opts = {});
    /** Node 0 is the hub. Requires n >= 2. */
    static Topology star(size_t n, const GenOptions &opts = {});
    /** Every pair linked. Requires n >= 2. */
    static Topology fullMesh(size_t n, const GenOptions &opts = {});
    /**
     * Barabási–Albert-style preferential attachment: the first
     * attach_count + 1 nodes form a line, then every further node
     * links to @p attach_count distinct existing nodes chosen with
     * probability proportional to their degree. Deterministic for a
     * given @p seed. Requires n > attach_count >= 1.
     */
    static Topology barabasiAlbert(size_t n, size_t attach_count,
                                   uint64_t seed,
                                   const GenOptions &opts = {});
    /**
     * 5-stage Clos fabric (see ClosOptions). Node order: spines
     * first, then per pod its aggregation switches followed by its
     * ToRs; names are "spine<s>", "p<p>-agg<a>", "p<p>-tor<t>".
     * Every ToR links to every agg of its pod, every agg to every
     * spine. Requires at least 1 of each tier.
     */
    static Topology clos(const ClosOptions &opts = {});
    /**
     * Clos sized from a total node budget (the CLI's --shape clos):
     * 2 spines, 2 pods of 2 aggs each, and the remaining budget as
     * ToRs split across the pods. Requires n >= 8; the generated
     * node count is the largest fabric not exceeding @p n.
     */
    static Topology closFromSize(size_t n, const GenOptions &opts = {});
    /** @} */

  private:
    std::vector<NodeConfig> nodes_;
    std::vector<Link> links_;
    std::vector<std::vector<Adjacent>> adjacency_;
};

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_TOPOLOGY_HH
