/**
 * @file
 * Churn/stability metrics of one scenario run.
 *
 * The ConvergenceReport answers "how long and how much, in total";
 * the StabilityReport answers the stability literature's questions
 * about the *measured phase*: how many updates the network needed
 * per injected event (updates-per-convergence), how much each
 * injected transaction was multiplied on its way through the
 * topology (churn amplification), how deep path exploration went,
 * and how often flap damping suppressed and re-admitted routes.
 * Every input is an order-independent sum or maximum (tracker phase
 * counters, per-speaker damper transition counts), so the report is
 * byte-identical at any jobs count.
 */

#ifndef BGPBENCH_TOPO_STABILITY_HH
#define BGPBENCH_TOPO_STABILITY_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace bgpbench::stats
{
class JsonWriter;
}

namespace bgpbench::topo
{

/** Stability metrics of one scenario's measured phase. */
struct StabilityReport
{
    std::string scenario;
    std::string shape;
    size_t nodes = 0;
    /** Scheduled fault events (or originations when fault-free). */
    uint64_t injectedEvents = 0;
    /**
     * Routing transactions injected at the origins: the prefix
     * up/down events of the schedule, falling back to
     * injectedEvents when the schedule carries none (link/session
     * faults inject state changes, not transactions, and fault-free
     * runs inject one transaction per origination).
     */
    uint64_t injectedTransactions = 0;
    /** UPDATEs delivered network-wide during the measured phase. */
    uint64_t phaseUpdates = 0;
    /** Routing transactions delivered during the measured phase. */
    uint64_t phaseTransactions = 0;
    /** phaseUpdates / injectedEvents. */
    double updatesPerConvergence = 0.0;
    /** phaseTransactions / injectedTransactions. */
    double churnAmplification = 0.0;
    /** Deepest per-(node, prefix) path exploration (lifetime). */
    size_t pathExplorationMax = 0;
    double pathExplorationMean = 0.0;
    /** Damping suppress transitions summed over all speakers. */
    uint64_t dampingSuppressed = 0;
    /** Damping reuse transitions summed over all speakers. */
    uint64_t dampingReused = 0;
    /** Announcements ignored while their route was suppressed. */
    uint64_t announcementsSuppressed = 0;
    /** Flush rounds deferred by the MRAI batching interval. */
    uint64_t mraiDeferrals = 0;

    /** Emit as one object into an ongoing JSON document. */
    void writeJson(stats::JsonWriter &json) const;

    /** Deterministic standalone JSON rendering. */
    std::string toJson() const;

    /** Human-readable summary table. */
    void printText(std::ostream &os) const;
};

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_STABILITY_HH
