#include "topo/topology_sim.hh"

#include <algorithm>
#include <queue>

#include "net/logging.hh"

namespace bgpbench::topo
{

/** SpeakerEvents adapter attributing callbacks to one node. */
struct TopologySim::NodeEvents : public bgp::SpeakerEvents
{
    TopologySim *sim = nullptr;
    size_t node = 0;

    void
    onTransmit(bgp::PeerId to, bgp::MessageType type,
               std::vector<uint8_t> wire, size_t transactions) override
    {
        sim->transmitFrom(node, to, type, std::move(wire),
                          transactions);
    }

    void
    onUpdateProcessed(bgp::PeerId from,
                      const bgp::UpdateStats &stats) override
    {
        (void)from;
        sim->tracker_.onUpdateProcessed(node, stats,
                                        sim->sim_.now());
    }

    void
    onSessionStateChange(bgp::PeerId peer, bgp::SessionState previous,
                         bgp::SessionState current) override
    {
        (void)peer;
        (void)previous;
        (void)current;
        sim->tracker_.onSessionChange(node, sim->sim_.now());
    }
};

TopologySim::TopologySim(Topology topology, TopologySimConfig config)
    : topo_(std::move(topology)), config_(config)
{
    if (topo_.nodeCount() == 0)
        fatal("topology simulation needs at least one node");

    links_.resize(topo_.linkCount());
    cpuFreeAt_.assign(topo_.nodeCount(), 0);

    for (size_t i = 0; i < topo_.nodeCount(); ++i) {
        const NodeConfig &node = topo_.node(i);
        auto events = std::make_unique<NodeEvents>();
        events->sim = this;
        events->node = i;

        bgp::SpeakerConfig speaker_config;
        speaker_config.localAs = node.asn;
        speaker_config.routerId = node.routerId;
        speaker_config.localAddress = node.address;
        auto speaker = std::make_unique<bgp::BgpSpeaker>(
            speaker_config, events.get());

        events_.push_back(std::move(events));
        speakers_.push_back(std::move(speaker));
    }

    for (size_t l = 0; l < topo_.linkCount(); ++l) {
        const Link &link = topo_.link(l);
        auto add_peer = [&](const LinkEnd &self,
                            const LinkEnd &other) {
            bgp::PeerConfig peer;
            peer.id = bgp::PeerId(l);
            peer.asn = topo_.node(other.node).asn;
            peer.address = topo_.node(other.node).address;
            peer.importPolicy = self.importPolicy;
            peer.exportPolicy = self.exportPolicy;
            speakers_[self.node]->addPeer(std::move(peer));
        };
        add_peer(link.a, link.b);
        add_peer(link.b, link.a);
    }

    if (config_.establishAtStart) {
        for (size_t l = 0; l < topo_.linkCount(); ++l)
            sim_.schedule(0, [this, l]() { establishLink(l); });
    }
}

TopologySim::~TopologySim() = default;

bgp::BgpSpeaker &
TopologySim::speaker(size_t node)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    return *speakers_[node];
}

const bgp::BgpSpeaker &
TopologySim::speaker(size_t node) const
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    return *speakers_[node];
}

bool
TopologySim::linkUp(size_t link) const
{
    if (link >= links_.size())
        fatal("unknown link index " + std::to_string(link));
    return links_[link].up;
}

void
TopologySim::establishLink(size_t l)
{
    if (!links_[l].up)
        return;
    const Link &link = topo_.link(l);
    sim::SimTime now = sim_.now();
    for (size_t node : {link.a.node, link.b.node}) {
        speakers_[node]->startPeer(bgp::PeerId(l), now);
        speakers_[node]->tcpEstablished(bgp::PeerId(l), now);
    }
}

void
TopologySim::closeLink(size_t l)
{
    ++links_[l].epoch;
    const Link &link = topo_.link(l);
    sim::SimTime now = sim_.now();
    for (size_t node : {link.a.node, link.b.node})
        speakers_[node]->tcpClosed(bgp::PeerId(l), now);
}

void
TopologySim::transmitFrom(size_t node, bgp::PeerId peer,
                          bgp::MessageType type,
                          std::vector<uint8_t> wire,
                          size_t transactions)
{
    size_t l = peer;
    if (l >= links_.size())
        panic("transmit on unknown link");
    LinkState &state = links_[l];
    if (!state.up) {
        tracker_.onSegmentDropped();
        return;
    }

    const Link &link = topo_.link(l);
    size_t dir = node == link.a.node ? 0 : 1;
    size_t dst = dir == 0 ? link.b.node : link.a.node;

    // Serialise onto the link, then propagate. The per-direction
    // cursor keeps deliveries FIFO (TCP ordering) and models the
    // link as busy while a segment is on the wire.
    sim::SimTime ser_ns = 0;
    if (link.bandwidthMbps > 0) {
        ser_ns = sim::SimTime(double(wire.size()) * 8.0 * 1000.0 /
                              link.bandwidthMbps);
    }
    sim::SimTime start = std::max(sim_.now(), state.busyUntil[dir]);
    state.busyUntil[dir] = start + ser_ns;
    sim::SimTime arrival = start + ser_ns + link.latencyNs;

    uint64_t epoch = state.epoch;
    sim_.schedule(arrival, [this, l, epoch, dst,
                            wire = std::move(wire), type,
                            transactions]() mutable {
        arrive(l, epoch, dst, std::move(wire), type, transactions);
    });
}

void
TopologySim::arrive(size_t l, uint64_t epoch, size_t dst,
                    std::vector<uint8_t> wire, bgp::MessageType type,
                    size_t transactions)
{
    LinkState &state = links_[l];
    if (!state.up || state.epoch != epoch) {
        tracker_.onSegmentDropped();
        return;
    }

    // Charge the receiving router's cost model: parse cycles plus
    // the per-prefix decision work the UPDATE will trigger, at this
    // node's clock rate, serialised on its single control CPU. The
    // announce cost approximates both announce and withdraw work.
    sim::SimTime cost_ns = 0;
    if (config_.chargeProcessingCost) {
        const router::SystemProfile &profile = topo_.node(dst).profile;
        double cycles = profile.costs.msgParse +
                        profile.costs.msgPerByte * double(wire.size());
        if (type == bgp::MessageType::Update) {
            cycles += profile.costs.announcePrefix *
                      double(transactions);
        }
        cost_ns = sim::SimTime(cycles /
                               profile.cpu.cyclesPerSecond * 1e9) +
                  profile.costs.msgGateNs;
    }
    sim::SimTime begin = std::max(sim_.now(), cpuFreeAt_[dst]);
    sim::SimTime done = begin + cost_ns;
    cpuFreeAt_[dst] = done;

    sim_.schedule(done, [this, l, epoch, dst,
                         wire = std::move(wire), type]() {
        deliver(l, epoch, dst, wire, type);
    });
}

void
TopologySim::deliver(size_t l, uint64_t epoch, size_t dst,
                     const std::vector<uint8_t> &wire,
                     bgp::MessageType type)
{
    LinkState &state = links_[l];
    if (!state.up || state.epoch != epoch) {
        tracker_.onSegmentDropped();
        return;
    }

    if (type == bgp::MessageType::Update) {
        // Decode once more for the tracker's path-exploration
        // accounting; this is host work, not simulated cycles.
        bgp::DecodeError error;
        auto msg = bgp::decodeMessage(wire, error);
        if (msg && messageType(*msg) == bgp::MessageType::Update) {
            tracker_.onUpdateDelivered(
                dst, std::get<bgp::UpdateMessage>(*msg), sim_.now());
        }
    }

    speakers_[dst]->receiveBytes(bgp::PeerId(l), wire, sim_.now());
}

void
TopologySim::originate(size_t node, const net::Prefix &prefix,
                       sim::SimTime at)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    originated_.emplace_back(node, prefix);
    net::Ipv4Address next_hop = topo_.node(node).address;
    sim_.schedule(at, [this, node, prefix, next_hop]() {
        bgp::PathAttributes attrs;
        attrs.nextHop = next_hop;
        speakers_[node]->originate(prefix,
                                  bgp::makeAttributes(std::move(attrs)),
                                  sim_.now());
    });
}

void
TopologySim::withdrawLocal(size_t node, const net::Prefix &prefix,
                           sim::SimTime at)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    sim_.schedule(at, [this, node, prefix]() {
        speakers_[node]->withdrawLocal(prefix, sim_.now());
        auto it = std::find(originated_.begin(), originated_.end(),
                            std::make_pair(node, prefix));
        if (it != originated_.end())
            originated_.erase(it);
    });
}

void
TopologySim::scheduleLinkDown(size_t link, sim::SimTime at)
{
    if (link >= links_.size())
        fatal("unknown link index " + std::to_string(link));
    sim_.schedule(at, [this, link]() {
        if (!links_[link].up)
            return;
        links_[link].up = false;
        closeLink(link);
    });
}

void
TopologySim::scheduleLinkUp(size_t link, sim::SimTime at)
{
    if (link >= links_.size())
        fatal("unknown link index " + std::to_string(link));
    sim_.schedule(at, [this, link]() {
        if (links_[link].up)
            return;
        links_[link].up = true;
        links_[link].busyUntil[0] = sim_.now();
        links_[link].busyUntil[1] = sim_.now();
        establishLink(link);
    });
}

void
TopologySim::scheduleSessionReset(size_t link, sim::SimTime at)
{
    if (link >= links_.size())
        fatal("unknown link index " + std::to_string(link));
    sim_.schedule(at, [this, link]() {
        if (!links_[link].up)
            return;
        closeLink(link);
        sim_.scheduleIn(config_.reconnectDelayNs, [this, link]() {
            establishLink(link);
        });
    });
}

void
TopologySim::scheduleRouterRestart(size_t node, sim::SimTime at,
                                   sim::SimTime downtime)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    sim_.schedule(at, [this, node, downtime]() {
        for (const Topology::Adjacent &adj : topo_.neighborsOf(node)) {
            if (links_[adj.link].up)
                closeLink(adj.link);
        }
        cpuFreeAt_[node] = sim_.now() + downtime;
        sim_.scheduleIn(downtime, [this, node]() {
            for (const Topology::Adjacent &adj :
                 topo_.neighborsOf(node)) {
                if (links_[adj.link].up)
                    establishLink(adj.link);
            }
        });
    });
}

bool
TopologySim::runToConvergence(sim::SimTime limit)
{
    while (true) {
        sim::SimTime next = sim_.nextEventTime();
        if (next == sim::simTimeNever)
            return true;
        if (next > limit)
            return false;
        sim_.step();
    }
}

bool
TopologySim::locRibsConsistent() const
{
    for (const auto &[origin, prefix] : originated_) {
        // BFS over up links from the origin; every reached router
        // must hold the prefix.
        std::vector<bool> seen(topo_.nodeCount(), false);
        std::queue<size_t> frontier;
        seen[origin] = true;
        frontier.push(origin);
        while (!frontier.empty()) {
            size_t at = frontier.front();
            frontier.pop();
            if (!speakers_[at]->locRib().find(prefix))
                return false;
            for (const Topology::Adjacent &adj :
                 topo_.neighborsOf(at)) {
                if (links_[adj.link].up && !seen[adj.node]) {
                    seen[adj.node] = true;
                    frontier.push(adj.node);
                }
            }
        }
    }
    return true;
}

ConvergenceReport
TopologySim::report(const std::string &scenario,
                    const std::string &shape) const
{
    ConvergenceReport out;
    out.scenario = scenario;
    out.shape = shape;
    out.nodes = topo_.nodeCount();
    out.links = topo_.linkCount();
    out.converged = sim_.pendingEvents() == 0;
    out.convergenceTimeSec = tracker_.convergenceTimeSec();
    out.totalUpdates = tracker_.updatesDelivered();
    out.totalTransactions = tracker_.transactionsDelivered();
    out.droppedSegments = tracker_.droppedSegments();
    out.pathExplorationMax = tracker_.maxPathsExplored();
    out.pathExplorationMean = tracker_.meanPathsExplored();

    for (size_t i = 0; i < topo_.nodeCount(); ++i) {
        const bgp::SpeakerCounters &counters =
            speakers_[i]->counters();
        RouterReport router;
        router.name = topo_.node(i).name;
        router.updatesReceived = counters.updatesReceived;
        router.updatesSent = counters.updatesSent;
        router.transactions = counters.transactionsProcessed();
        router.tps = out.convergenceTimeSec > 0
                         ? double(router.transactions) /
                               out.convergenceTimeSec
                         : 0.0;
        out.routers.push_back(std::move(router));
    }
    return out;
}

} // namespace bgpbench::topo
