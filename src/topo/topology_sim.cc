#include "topo/topology_sim.hh"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <iostream>
#include <queue>
#include <thread>

#include "net/logging.hh"
#include "obs/views.hh"

namespace bgpbench::topo
{

namespace
{

uint64_t
hostNanosSince(std::chrono::steady_clock::time_point begin)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count());
}

/** The cross-shard delivery order: (arrival time, message key). */
struct CrossTimeKeyLess
{
    template <typename Msg>
    bool
    operator()(const Msg &a, const Msg &b) const
    {
        if (a.time != b.time)
            return a.time < b.time;
        return a.key < b.key;
    }
};

} // namespace

/** SpeakerEvents adapter attributing callbacks to one node. */
struct TopologySim::NodeEvents : public bgp::SpeakerEvents
{
    TopologySim *sim = nullptr;
    /** The shard owning the node; all callbacks run on its worker. */
    Shard *shard = nullptr;
    size_t node = 0;

    void
    onTransmit(bgp::PeerId to, bgp::MessageType type,
               net::WireSegmentPtr wire, size_t transactions) override
    {
        sim->transmitFrom(node, to, type, std::move(wire),
                          transactions);
    }

    void
    onUpdateProcessed(bgp::PeerId from,
                      const bgp::UpdateStats &stats) override
    {
        (void)from;
        shard->tracker.onUpdateProcessed(node, stats,
                                         shard->sim.now());
    }

    void
    onSessionStateChange(bgp::PeerId peer, bgp::SessionState previous,
                         bgp::SessionState current) override
    {
        (void)peer;
        (void)previous;
        (void)current;
        shard->tracker.onSessionChange(node, shard->sim.now());
    }

    void
    onWakeupRequested(bgp::SessionFsm::TimeNs at) override
    {
        sim->scheduleWakeup(*shard, node, at);
    }
};

TopologySim::TopologySim(Topology topology, TopologySimConfig config)
    : topo_(std::move(topology)), config_(config)
{
    if (topo_.nodeCount() == 0)
        fatal("topology simulation needs at least one node");

    size_t jobs = config_.jobs;
    if (jobs == 0)
        jobs = std::max<size_t>(1, std::thread::hardware_concurrency());
    // Adaptive sync over-decomposes: about two shards per worker
    // feeds the work-stealing deques, so a shard hitting a quiet
    // window doesn't idle its worker. Fixed mode keeps the PR 3
    // one-shard-per-worker layout exactly.
    size_t shard_target = jobs;
    if (jobs > 1 && config_.adaptiveSync)
        shard_target = std::min(topo_.nodeCount(), jobs * 2);
    partition_ = partitionTopology(topo_, shard_target);
    if (partition_.shardCount > 1 && partition_.cutLinks > 0 &&
        partition_.minCutLatencyNs == 0) {
        // A zero-latency cut link leaves no conservative lookahead at
        // all: every window would be empty. Degrade loudly, not
        // silently wrong.
        std::cerr << "warning: a cross-shard link has zero latency, "
                     "leaving no conservative lookahead; running "
                     "sequentially\n";
        partition_ = partitionTopology(topo_, 1);
    }
    if (partition_.nodeSkew > 0.25) {
        stats::printImbalanceWarning(std::cerr, partition_.shardCount,
                                     partition_.nodeSkew);
    }
    lookaheadNs_ = partition_.minCutLatencyNs;
    workers_ = std::min(jobs, partition_.shardCount);
    controller_ = WindowController(
        partition_.shardCount > 1 ? lookaheadNs_ : 0,
        partition_.cutLinks, config_.adaptiveSync);

    shards_.reserve(partition_.shardCount);
    for (size_t s = 0; s < partition_.shardCount; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->index = s;
        shard->links.resize(topo_.linkCount());
        shard->outSlotOfLink.assign(topo_.linkCount(), UINT32_MAX);
        if (config_.obs)
            shard->tracer.attach(&shard->traceBuf);
        shards_.push_back(std::move(shard));
    }
    // One outbound batch buffer per outgoing direction of each cut
    // link; the destination shard keeps a reference list so the
    // barrier can merge its inbound batches without scanning every
    // shard. Built in link order, so the merge visits sources in a
    // fixed order (the sort keys make even that order irrelevant).
    inBatches_.resize(partition_.shardCount);
    for (size_t l = 0; l < topo_.linkCount(); ++l) {
        const Link &link = topo_.link(l);
        uint32_t sa = partition_.shardOf[link.a.node];
        uint32_t sb = partition_.shardOf[link.b.node];
        if (sa == sb)
            continue;
        Shard &a = *shards_[sa];
        a.outSlotOfLink[l] = uint32_t(a.outBatches.size());
        a.outBatches.push_back(LinkBatch{sb, {}});
        inBatches_[sb].push_back(
            BatchRef{sa, a.outSlotOfLink[l]});
        Shard &b = *shards_[sb];
        b.outSlotOfLink[l] = uint32_t(b.outBatches.size());
        b.outBatches.push_back(LinkBatch{sa, {}});
        inBatches_[sa].push_back(
            BatchRef{sb, b.outSlotOfLink[l]});
    }
    for (size_t w = 0; w < workers_; ++w)
        workerDeques_.push_back(std::make_unique<StealDeque>());
    workerBarrierWaitNs_.assign(workers_, 0);
    if (config_.obs)
        engineTracer_.attach(&engineTraceBuf_);

    cpuFreeAt_.assign(topo_.nodeCount(), 0);
    messageSeq_.assign(topo_.nodeCount(), 0);

    for (size_t i = 0; i < topo_.nodeCount(); ++i) {
        const NodeConfig &node = topo_.node(i);
        auto events = std::make_unique<NodeEvents>();
        events->sim = this;
        events->shard = shards_[shardOfNode(i)].get();
        events->node = i;

        bgp::SpeakerConfig speaker_config;
        speaker_config.localAs = node.asn;
        speaker_config.routerId = node.routerId;
        speaker_config.localAddress = node.address;
        speaker_config.decision.maxPaths = config_.maxPaths;
        speaker_config.damping = config_.damping;
        speaker_config.mraiNs = uint64_t(config_.mraiNs);
        auto speaker = std::make_unique<bgp::BgpSpeaker>(
            speaker_config, events.get());
        if (config_.obs) {
            // Shard-local sinks: several speakers share their
            // shard's registry (counts aggregate per shard, then
            // across shards at absorb time); the trace lane is the
            // global node id, which is sharding-invariant.
            speaker->bindObservability(&events->shard->metrics,
                                       &events->shard->tracer,
                                       uint32_t(i));
        }

        events_.push_back(std::move(events));
        speakers_.push_back(std::move(speaker));
    }

    for (size_t l = 0; l < topo_.linkCount(); ++l) {
        const Link &link = topo_.link(l);
        auto add_peer = [&](const LinkEnd &self,
                            const LinkEnd &other) {
            bgp::PeerConfig peer;
            peer.id = bgp::PeerId(l);
            peer.asn = topo_.node(other.node).asn;
            peer.address = topo_.node(other.node).address;
            peer.importPolicy = self.importPolicy;
            peer.exportPolicy = self.exportPolicy;
            speakers_[self.node]->addPeer(std::move(peer));
        };
        add_peer(link.a, link.b);
        add_peer(link.b, link.a);
    }

    if (config_.establishAtStart) {
        for (size_t l = 0; l < topo_.linkCount(); ++l) {
            scheduleMirrored(l, 0, [this, l](Shard &shard) {
                establishLocal(shard, l);
            });
        }
    }
}

TopologySim::~TopologySim() = default;

sim::SimTime
TopologySim::now() const
{
    sim::SimTime latest = 0;
    for (const auto &shard : shards_)
        latest = std::max(latest, shard->sim.now());
    return latest;
}

size_t
TopologySim::pendingEvents() const
{
    size_t pending = 0;
    for (const auto &shard : shards_)
        pending += shard->sim.pendingEvents();
    return pending;
}

bgp::BgpSpeaker &
TopologySim::speaker(size_t node)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    return *speakers_[node];
}

const bgp::BgpSpeaker &
TopologySim::speaker(size_t node) const
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    return *speakers_[node];
}

bool
TopologySim::linkUp(size_t link) const
{
    if (link >= topo_.linkCount())
        fatal("unknown link index " + std::to_string(link));
    // Either owning replica works: fault mirroring keeps them equal
    // at every simulated instant.
    size_t owner = partition_.shardOf[topo_.link(link).a.node];
    return shards_[owner]->links[link].up;
}

void
TopologySim::ownerShards(size_t link, size_t out[2],
                         size_t &count) const
{
    const Link &l = topo_.link(link);
    out[0] = partition_.shardOf[l.a.node];
    count = 1;
    size_t other = partition_.shardOf[l.b.node];
    if (other != out[0])
        out[count++] = other;
}

bool
TopologySim::shardOwnsLink(const Shard &shard, size_t link) const
{
    const Link &l = topo_.link(link);
    return partition_.shardOf[l.a.node] == shard.index ||
           partition_.shardOf[l.b.node] == shard.index;
}

template <typename Fn>
void
TopologySim::scheduleMirrored(size_t link, sim::SimTime at,
                              Fn &&handler)
{
    size_t owners[2];
    size_t count = 0;
    ownerShards(link, owners, count);
    for (size_t i = 0; i < count; ++i) {
        Shard *shard = shards_[owners[i]].get();
        shard->sim.schedule(at,
                            [handler, shard]() { handler(*shard); });
    }
}

uint64_t
TopologySim::nextMessageKey(size_t node)
{
    // (source node + 1) in the high bits, the per-source transmit
    // sequence in the low 44: never zero (zero is the rank of
    // scenario/fault events), strictly increasing per source, and
    // independent of which shard layout scheduled the transmit.
    return (uint64_t(node) + 1) << 44 | ++messageSeq_[node];
}

void
TopologySim::establishLocal(Shard &shard, size_t l)
{
    if (!shard.links[l].up)
        return;
    const Link &link = topo_.link(l);
    sim::SimTime now = shard.sim.now();
    for (size_t node : {link.a.node, link.b.node}) {
        if (shardOfNode(node) != shard.index)
            continue;
        speakers_[node]->startPeer(bgp::PeerId(l), now);
        speakers_[node]->tcpEstablished(bgp::PeerId(l), now);
    }
}

void
TopologySim::closeLocal(Shard &shard, size_t l)
{
    ++shard.links[l].epoch;
    const Link &link = topo_.link(l);
    sim::SimTime now = shard.sim.now();
    for (size_t node : {link.a.node, link.b.node}) {
        if (shardOfNode(node) != shard.index)
            continue;
        speakers_[node]->tcpClosed(bgp::PeerId(l), now);
    }
}

void
TopologySim::scheduleWakeup(Shard &shard, size_t node, sim::SimTime at)
{
    // Key 0 ranks the wakeup with the other scenario-level events.
    // The event only touches its own speaker (and transmits through
    // the keyed message path), so same-instant wakeups of different
    // nodes commute and the schedule is layout-independent.
    sim::SimTime when = std::max(at, shard.sim.now());
    shard.sim.schedule(when, [this, &shard, node]() {
        speakers_[node]->serviceWakeup(shard.sim.now());
    });
}

void
TopologySim::transmitFrom(size_t node, bgp::PeerId peer,
                          bgp::MessageType type,
                          net::WireSegmentPtr wire,
                          size_t transactions)
{
    size_t l = peer;
    if (l >= topo_.linkCount())
        panic("transmit on unknown link");
    Shard &shard = shardFor(node);
    LinkState &state = shard.links[l];
    if (!state.up) {
        shard.tracker.onSegmentDropped();
        return;
    }

    const Link &link = topo_.link(l);
    size_t dir = node == link.a.node ? 0 : 1;
    size_t dst = dir == 0 ? link.b.node : link.a.node;

    // Serialise onto the link, then propagate. The per-direction
    // cursor keeps deliveries FIFO (TCP ordering) and models the
    // link as busy while a segment is on the wire. Only the source
    // node's shard ever reads or writes its direction's cursor.
    sim::SimTime ser_ns = 0;
    if (link.bandwidthMbps > 0) {
        ser_ns = sim::SimTime(double(wire->size()) * 8.0 * 1000.0 /
                              link.bandwidthMbps);
    }
    sim::SimTime start = std::max(shard.sim.now(), state.busyUntil[dir]);
    state.busyUntil[dir] = start + ser_ns;

    CrossMessage msg;
    msg.time = start + ser_ns + link.latencyNs;
    msg.key = nextMessageKey(node);
    msg.link = uint32_t(l);
    msg.epoch = state.epoch;
    msg.dst = uint32_t(dst);
    msg.type = type;
    msg.transactions = uint32_t(transactions);
    msg.wire = std::move(wire);

    size_t dst_shard = shardOfNode(dst);
    if (dst_shard == shard.index) {
        scheduleArrival(shard, std::move(msg));
    } else {
        // Cross-shard: append to this direction's batch buffer,
        // delivered at the next window barrier. Window safety:
        // msg.time >= now + link latency >= window start + the
        // smallest cut latency incident to this shard, which is what
        // bounds the window end.
        shard.outBatches[shard.outSlotOfLink[l]]
            .messages.push_back(std::move(msg));
    }
}

void
TopologySim::scheduleArrival(Shard &shard, CrossMessage msg)
{
    shard.sim.schedule(
        msg.time, msg.key,
        [this, l = size_t(msg.link), epoch = msg.epoch, key = msg.key,
         dst = size_t(msg.dst), type = msg.type,
         transactions = size_t(msg.transactions),
         wire = std::move(msg.wire)]() mutable {
            arrive(l, epoch, key, dst, std::move(wire), type,
                   transactions);
        });
}

void
TopologySim::arrive(size_t l, uint64_t epoch, uint64_t key, size_t dst,
                    net::WireSegmentPtr wire, bgp::MessageType type,
                    size_t transactions)
{
    Shard &shard = shardFor(dst);
    LinkState &state = shard.links[l];
    if (!state.up || state.epoch != epoch) {
        shard.tracker.onSegmentDropped();
        return;
    }

    // Charge the receiving router's cost model: parse cycles plus
    // the per-prefix decision work the UPDATE will trigger, at this
    // node's clock rate, serialised on its single control CPU. The
    // announce cost approximates both announce and withdraw work.
    sim::SimTime cost_ns = 0;
    if (config_.chargeProcessingCost) {
        const router::SystemProfile &profile = topo_.node(dst).profile;
        double cycles = profile.costs.msgParse +
                        profile.costs.msgPerByte * double(wire->size());
        if (type == bgp::MessageType::Update) {
            cycles += profile.costs.announcePrefix *
                      double(transactions);
        }
        cost_ns = sim::SimTime(cycles /
                               profile.cpu.cyclesPerSecond * 1e9) +
                  profile.costs.msgGateNs;
    }
    sim::SimTime begin = std::max(shard.sim.now(), cpuFreeAt_[dst]);
    sim::SimTime done = begin + cost_ns;
    cpuFreeAt_[dst] = done;

    // The delivery keeps the message's ordering key, so deliveries
    // collapsing onto the same CPU-done instant still run in source
    // order on every shard layout.
    shard.sim.schedule(done, key,
                       [this, l, epoch, dst, wire = std::move(wire),
                        type]() {
                           deliver(l, epoch, dst, wire, type);
                       });
}

void
TopologySim::deliver(size_t l, uint64_t epoch, size_t dst,
                     const net::WireSegmentPtr &wire,
                     bgp::MessageType type)
{
    Shard &shard = shardFor(dst);
    LinkState &state = shard.links[l];
    if (!state.up || state.epoch != epoch) {
        shard.tracker.onSegmentDropped();
        return;
    }

    if (type == bgp::MessageType::Update) {
        // Decode once more for the tracker's path-exploration
        // accounting; this is host work, not simulated cycles.
        bgp::DecodeError error;
        auto msg = bgp::decodeMessage(wire->bytes(), error);
        if (msg && messageType(*msg) == bgp::MessageType::Update) {
            shard.tracker.onUpdateDelivered(
                dst, std::get<bgp::UpdateMessage>(*msg),
                shard.sim.now());
        }
    }

    speakers_[dst]->receiveSegment(bgp::PeerId(l), wire,
                                   shard.sim.now());
}

void
TopologySim::originate(size_t node, const net::Prefix &prefix,
                       sim::SimTime at)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    originated_.emplace_back(node, prefix);
    net::Ipv4Address next_hop = topo_.node(node).address;
    Shard *shard = &shardFor(node);
    shard->sim.schedule(at, [this, shard, node, prefix, next_hop]() {
        bgp::PathAttributes attrs;
        attrs.nextHop = next_hop;
        speakers_[node]->originate(
            prefix, bgp::makeAttributes(std::move(attrs)),
            shard->sim.now());
    });
}

void
TopologySim::withdrawLocal(size_t node, const net::Prefix &prefix,
                           sim::SimTime at)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));
    // The origination list is bookkeeping for locRibsConsistent(),
    // which only runs between runs; updating it at scheduling time
    // (like originate() does) keeps run-time handlers free of state
    // shared across shards.
    auto it = std::find(originated_.begin(), originated_.end(),
                        std::make_pair(node, prefix));
    if (it != originated_.end())
        originated_.erase(it);
    Shard *shard = &shardFor(node);
    shard->sim.schedule(at, [this, shard, node, prefix]() {
        speakers_[node]->withdrawLocal(prefix, shard->sim.now());
    });
}

void
TopologySim::scheduleLinkDown(size_t link, sim::SimTime at)
{
    if (link >= topo_.linkCount())
        fatal("unknown link index " + std::to_string(link));
    scheduleMirrored(link, at, [this, link](Shard &shard) {
        if (!shard.links[link].up)
            return;
        shard.links[link].up = false;
        closeLocal(shard, link);
    });
}

void
TopologySim::scheduleLinkUp(size_t link, sim::SimTime at)
{
    if (link >= topo_.linkCount())
        fatal("unknown link index " + std::to_string(link));
    scheduleMirrored(link, at, [this, link](Shard &shard) {
        if (shard.links[link].up)
            return;
        shard.links[link].up = true;
        shard.links[link].busyUntil[0] = shard.sim.now();
        shard.links[link].busyUntil[1] = shard.sim.now();
        establishLocal(shard, link);
    });
}

void
TopologySim::scheduleSessionReset(size_t link, sim::SimTime at)
{
    if (link >= topo_.linkCount())
        fatal("unknown link index " + std::to_string(link));
    scheduleMirrored(link, at, [this, link](Shard &shard) {
        if (!shard.links[link].up)
            return;
        closeLocal(shard, link);
        shard.sim.scheduleIn(config_.reconnectDelayNs,
                             [this, link, sh = &shard]() {
                                 establishLocal(*sh, link);
                             });
    });
}

void
TopologySim::scheduleRouterRestart(size_t node, sim::SimTime at,
                                   sim::SimTime downtime)
{
    if (node >= speakers_.size())
        fatal("unknown node index " + std::to_string(node));

    // Every shard owning an incident link sees the restart (the
    // neighbours' sessions drop too); each applies only its local
    // half at the same simulated instants.
    std::vector<size_t> affected{shardOfNode(node)};
    for (const Topology::Adjacent &adj : topo_.neighborsOf(node)) {
        size_t other = shardOfNode(adj.node);
        if (std::find(affected.begin(), affected.end(), other) ==
            affected.end()) {
            affected.push_back(other);
        }
    }
    std::sort(affected.begin(), affected.end());

    for (size_t s : affected) {
        Shard *shard = shards_[s].get();
        shard->sim.schedule(at, [this, shard, node, downtime]() {
            for (const Topology::Adjacent &adj :
                 topo_.neighborsOf(node)) {
                if (!shardOwnsLink(*shard, adj.link))
                    continue;
                if (shard->links[adj.link].up)
                    closeLocal(*shard, adj.link);
            }
            if (shardOfNode(node) == shard->index)
                cpuFreeAt_[node] = shard->sim.now() + downtime;
            shard->sim.scheduleIn(downtime, [this, shard, node]() {
                for (const Topology::Adjacent &adj :
                     topo_.neighborsOf(node)) {
                    if (!shardOwnsLink(*shard, adj.link))
                        continue;
                    if (shard->links[adj.link].up)
                        establishLocal(*shard, adj.link);
                }
            });
        });
    }
}

bool
TopologySim::runSequential(sim::SimTime limit)
{
    Shard &shard = *shards_[0];
    auto begin = std::chrono::steady_clock::now();
    sim::SimTime windowBegin = shard.sim.now();
    bool converged;
    while (true) {
        sim::SimTime next = shard.sim.nextEventTime();
        if (next == sim::simTimeNever) {
            converged = true;
            break;
        }
        if (next > limit) {
            converged = false;
            break;
        }
        shard.sim.step();
    }
    shard.hostBusyNs += hostNanosSince(begin);
    // One drain == one window in the sequential engine, so traces of
    // jobs = 1 runs carry the same engine lane the parallel ones do.
    shard.tracer.complete("window", "engine", obs::kTrackEngine, 0,
                          windowBegin, shard.sim.now());
    return converged;
}

size_t
TopologySim::mergeInbound(size_t dst)
{
    // Gather the destination's inbound batches into one scratch
    // vector, remembering the run boundaries. Each batch is
    // (time, key)-sorted by construction — one source node feeds it
    // and its serialisation cursor is monotone — except when a
    // mid-window link flap reset the cursor; the is_sorted probe
    // catches exactly that rare case and re-sorts only then.
    inboxScratch_.clear();
    mergeBounds_.clear();
    for (const BatchRef &ref : inBatches_[dst]) {
        auto &batch =
            shards_[ref.srcShard]->outBatches[ref.slot].messages;
        if (batch.empty())
            continue;
        if (!std::is_sorted(batch.begin(), batch.end(),
                            CrossTimeKeyLess{})) {
            std::sort(batch.begin(), batch.end(), CrossTimeKeyLess{});
        }
        mergeBounds_.push_back(inboxScratch_.size());
        for (CrossMessage &msg : batch)
            inboxScratch_.push_back(std::move(msg));
        batch.clear();
    }
    if (inboxScratch_.empty())
        return 0;
    mergeBounds_.push_back(inboxScratch_.size());

    // Pairwise merge the sorted runs in place until one remains.
    // bounds holds run edges: k runs => k + 1 entries.
    while (mergeBounds_.size() > 2) {
        mergeBoundsScratch_.clear();
        mergeBoundsScratch_.push_back(mergeBounds_.front());
        size_t r = 0;
        for (; r + 2 < mergeBounds_.size(); r += 2) {
            std::inplace_merge(
                inboxScratch_.begin() + ptrdiff_t(mergeBounds_[r]),
                inboxScratch_.begin() + ptrdiff_t(mergeBounds_[r + 1]),
                inboxScratch_.begin() + ptrdiff_t(mergeBounds_[r + 2]),
                CrossTimeKeyLess{});
            mergeBoundsScratch_.push_back(mergeBounds_[r + 2]);
        }
        if (r + 1 < mergeBounds_.size())
            mergeBoundsScratch_.push_back(mergeBounds_[r + 1]);
        mergeBounds_.swap(mergeBoundsScratch_);
    }

    // One heap growth for the whole batch, then schedule in merged
    // order. (time, key) is a total order over cross messages — keys
    // are unique — so the queue contents are independent of both the
    // source visit order and the merge shape.
    size_t count = inboxScratch_.size();
    Shard &shard = *shards_[dst];
    shard.sim.reserve(count);
    for (CrossMessage &msg : inboxScratch_)
        scheduleArrival(shard, std::move(msg));
    inboxScratch_.clear();
    return count;
}

void
TopologySim::exchangeAndOpenWindow(sim::SimTime limit)
{
    size_t crossed = 0;
    for (size_t d = 0; d < shards_.size(); ++d)
        crossed += mergeInbound(d);
    // Feed the controller the just-finished window's cross-shard
    // traffic: a burst shrinks the next target, silence grows it.
    // Virtual-time-observable input only, so the target sequence —
    // and with it every window — replays identically.
    controller_.observe(crossed);

    sim::SimTime next = sim::simTimeNever;
    for (const auto &shard : shards_)
        next = std::min(next, shard->sim.nextEventTime());
    if (next == sim::simTimeNever) {
        runDone_ = true;
        runConverged_ = true;
        return;
    }
    if (next > limit) {
        runDone_ = true;
        runConverged_ = false;
        return;
    }

    // Open [next, end): no message transmitted inside the window can
    // arrive before its end. In fixed mode the end is the classic
    // next + min-cut-latency. In adaptive mode the controller's
    // target stretches the window up to the causality bound: the
    // earliest instant any busy shard could make a message arrive
    // anywhere, i.e. its next event time plus the smallest cut-link
    // latency it touches. Both bounds are >= next + the fixed
    // lookahead, so adaptive windows never regress below fixed ones.
    sim::SimTime target =
        controller_.adaptive() ? controller_.targetNs() : lookaheadNs_;
    sim::SimTime end;
    if (target == sim::simTimeNever ||
        next > sim::simTimeNever - target) {
        end = sim::simTimeNever;
    } else {
        end = next + target;
    }
    if (controller_.adaptive()) {
        sim::SimTime bound = sim::simTimeNever;
        for (const auto &shard : shards_) {
            sim::SimTime shard_next = shard->sim.nextEventTime();
            sim::SimTime cut =
                partition_.shardMinCutLatencyNs[shard->index];
            if (shard_next == sim::simTimeNever ||
                cut == sim::simTimeNever)
                continue;
            if (shard_next > sim::simTimeNever - cut)
                continue;
            bound = std::min(bound, shard_next + cut);
        }
        end = std::min(end, bound);
    }
    if (limit != sim::simTimeNever)
        end = std::min(end, limit + 1);
    windowEnd_ = end;
    ++windows_;
    if (end != sim::simTimeNever)
        windowLenSumNs_ += end - next;
    // The engine lane gets one span per window above the per-shard
    // lanes; virtual timestamps keep the trace deterministic.
    engineTracer_.complete("sync_window", "engine", obs::kTrackEngine,
                           uint32_t(shards_.size()), next,
                           end == sim::simTimeNever ? next : end);

    // Refill the work deques with the shards that have work this
    // window, round-robin across workers. The deques are empty here
    // (workers drained them before arriving), and the barrier
    // completion step runs exclusively.
    size_t ready = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (shards_[s]->sim.nextEventTime() < windowEnd_)
            workerDeques_[ready++ % workers_]->push(uint32_t(s));
    }
}

bool
TopologySim::nextTask(size_t worker, uint32_t &task)
{
    if (workerDeques_[worker]->popFront(task))
        return true;
    for (size_t off = 1; off < workers_; ++off) {
        size_t victim = (worker + off) % workers_;
        if (workerDeques_[victim]->popBack(task)) {
            stealCount_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
TopologySim::runShardWindow(Shard &shard,
                            std::atomic<bool> &failed) noexcept
{
    auto begin = std::chrono::steady_clock::now();
    sim::SimTime windowBegin = shard.sim.now();
    try {
        shard.sim.runBefore(windowEnd_);
    } catch (...) {
        shard.error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
    }
    shard.hostBusyNs += hostNanosSince(begin);
    shard.tracer.complete("window", "engine", obs::kTrackEngine,
                          uint32_t(shard.index), windowBegin,
                          shard.sim.now());
}

bool
TopologySim::runParallel(sim::SimTime limit)
{
    runDone_ = false;
    runConverged_ = false;
    exchangeAndOpenWindow(limit);
    if (runDone_)
        return runConverged_;

    std::atomic<bool> failed{false};
    auto completion = [this, limit, &failed]() noexcept {
        if (failed.load(std::memory_order_relaxed)) {
            runDone_ = true;
            runConverged_ = false;
            return;
        }
        exchangeAndOpenWindow(limit);
    };
    // The barrier is the only inter-shard synchronisation: its phase
    // completion publishes the drained batch buffers, the next
    // windowEnd_/runDone_ values, and the refilled deques to every
    // worker. Exactly one worker drains a given shard per window
    // (each shard id sits in exactly one deque and pops once), so
    // shard state stays single-writer between barriers no matter who
    // steals what.
    std::barrier barrier(std::ptrdiff_t(workers_),
                         std::move(completion));

    std::vector<std::thread> workers;
    workers.reserve(workers_);
    for (size_t w = 0; w < workers_; ++w) {
        workers.emplace_back([this, w, &barrier, &failed]() {
            while (!runDone_) {
                uint32_t task = 0;
                while (nextTask(w, task))
                    runShardWindow(*shards_[task], failed);
                if (config_.obs) {
                    auto waitBegin = std::chrono::steady_clock::now();
                    barrier.arrive_and_wait();
                    workerBarrierWaitNs_[w] +=
                        hostNanosSince(waitBegin);
                } else {
                    barrier.arrive_and_wait();
                }
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    for (auto &entry : shards_) {
        if (entry->error) {
            std::exception_ptr error = entry->error;
            entry->error = nullptr;
            std::rethrow_exception(error);
        }
    }
    return runConverged_;
}

void
TopologySim::absorbShardTrackers()
{
    for (auto &shard : shards_) {
        tracker_.absorb(shard->tracker);
        if (config_.obs) {
            // Fixed shard order plus order-independent merges keep
            // the folded sinks deterministic at any jobs count.
            config_.obs->metrics.absorb(shard->metrics);
            config_.obs->trace.absorb(shard->traceBuf);
        }
    }
    if (config_.obs)
        config_.obs->trace.absorb(engineTraceBuf_);
}

bool
TopologySim::runToConvergence(sim::SimTime limit)
{
    bool converged = shards_.size() == 1 ? runSequential(limit)
                                         : runParallel(limit);
    absorbShardTrackers();
    return converged;
}

bool
TopologySim::locRibsConsistent() const
{
    for (const auto &[origin, prefix] : originated_) {
        // BFS over up links from the origin; every reached router
        // must hold the prefix.
        std::vector<bool> seen(topo_.nodeCount(), false);
        std::queue<size_t> frontier;
        seen[origin] = true;
        frontier.push(origin);
        while (!frontier.empty()) {
            size_t at = frontier.front();
            frontier.pop();
            if (!speakers_[at]->locRib().find(prefix))
                return false;
            for (const Topology::Adjacent &adj :
                 topo_.neighborsOf(at)) {
                if (linkUp(adj.link) && !seen[adj.node]) {
                    seen[adj.node] = true;
                    frontier.push(adj.node);
                }
            }
        }
    }
    return true;
}

ConvergenceReport
TopologySim::report(const std::string &scenario,
                    const std::string &shape) const
{
    ConvergenceReport out;
    out.scenario = scenario;
    out.shape = shape;
    out.nodes = topo_.nodeCount();
    out.links = topo_.linkCount();
    out.converged = pendingEvents() == 0;
    out.convergenceTimeSec = tracker_.convergenceTimeSec();
    out.totalUpdates = tracker_.updatesDelivered();
    out.totalTransactions = tracker_.transactionsDelivered();
    out.droppedSegments = tracker_.droppedSegments();
    out.pathExplorationMax = tracker_.maxPathsExplored();
    out.pathExplorationMean = tracker_.meanPathsExplored();

    for (size_t i = 0; i < topo_.nodeCount(); ++i) {
        const bgp::SpeakerCounters &counters =
            speakers_[i]->counters();
        RouterReport router;
        router.name = topo_.node(i).name;
        router.updatesReceived = counters.updatesReceived;
        router.updatesSent = counters.updatesSent;
        router.transactions = counters.transactionsProcessed();
        router.tps = out.convergenceTimeSec > 0
                         ? double(router.transactions) /
                               out.convergenceTimeSec
                         : 0.0;
        out.routers.push_back(std::move(router));
    }
    return out;
}

void
TopologySim::publishParallelMetrics(
    obs::MetricRegistry &registry) const
{
    registry.gauge(obs::metric::parallelJobs).set(double(workers_));
    registry.gauge(obs::metric::parallelShards)
        .set(double(partition_.shardCount));
    registry.gauge(obs::metric::parallelCutLinks)
        .set(double(partition_.cutLinks));
    registry.gauge(obs::metric::parallelEdgeCutRatio)
        .set(partition_.edgeCutRatio);
    registry.gauge(obs::metric::parallelNodeSkew)
        .set(partition_.nodeSkew);
    registry.gauge(obs::metric::parallelLookaheadNs)
        .set((shards_.size() > 1 &&
              lookaheadNs_ != sim::simTimeNever)
                 ? double(lookaheadNs_)
                 : 0.0);
    registry.counter(obs::metric::parallelWindows).add(windows_);
    // Sync-layer counters. Window length is virtual time and fully
    // deterministic; barrier wait and steal counts are host-side
    // diagnostics (nondeterministic by nature) and must never feed
    // anything whose bytes are compared across runs.
    registry.counter(obs::metric::topoWindowLenNs)
        .add(windowLenSumNs_);
    uint64_t barrier_wait = 0;
    for (uint64_t ns : workerBarrierWaitNs_)
        barrier_wait += ns;
    registry.counter(obs::metric::topoBarrierWaitNs).add(barrier_wait);
    registry.counter(obs::metric::topoStealCount)
        .add(stealCount_.load(std::memory_order_relaxed));
    for (const auto &shard : shards_) {
        registry.gauge(obs::shardMetricName(shard->index, "nodes"))
            .set(double(partition_.shardNodes[shard->index]));
        registry.counter(obs::shardMetricName(shard->index, "events"))
            .add(shard->sim.eventsExecuted());
        registry
            .counter(
                obs::shardMetricName(shard->index, "busy_host_ns"))
            .add(shard->hostBusyNs);
    }
}

} // namespace bgpbench::topo
