/**
 * @file
 * Canned topology scenarios shared by the convergence benchmark, the
 * CLI's topo subcommand, the network example, and the tests.
 *
 * The three legacy runners are thin wrappers over the declarative
 * ScenarioSpec / ScenarioRunner API (scenario_spec.hh): each builds
 * the equivalent spec (single fault at offset 0) and returns the
 * runner's ConvergenceReport, byte-identical to the pre-redesign
 * output. The measured phase always starts *after* an initial
 * convergence (sessions up, steady state), so announce scenarios
 * report pure route-propagation time and fault scenarios report pure
 * re-convergence time. New scenario families should use ScenarioSpec
 * directly.
 */

#ifndef BGPBENCH_TOPO_SCENARIOS_HH
#define BGPBENCH_TOPO_SCENARIOS_HH

#include <string>

#include "topo/topology_sim.hh"

namespace bgpbench::topo
{

/** Shared knobs of the scenario runners. */
struct ScenarioOptions
{
    /** Prefixes originated by every node. */
    size_t prefixesPerNode = 1;
    /** Virtual-time budget; a run past this reports non-convergence. */
    sim::SimTime limitNs = sim::nsFromSec(600.0);
    TopologySimConfig simConfig;
};

/**
 * The deterministic prefix originated by @p node as its @p index-th
 * route: (100 + index).(node / 256).(node % 256).0/24. Valid for
 * index < 156 and node < 65536.
 */
net::Prefix scenarioPrefix(size_t node, size_t index);

/**
 * Bring all sessions up, then originate every node's prefixes and
 * measure the time until the network is quiet.
 */
ConvergenceReport runAnnounceScenario(Topology topology,
                                      const std::string &shape,
                                      const ScenarioOptions &opts = {});

/**
 * Converge fully, then fail @p link and measure re-convergence
 * (withdrawals, path exploration, new best paths).
 */
ConvergenceReport runLinkFailureScenario(Topology topology,
                                         const std::string &shape,
                                         size_t link,
                                         const ScenarioOptions &opts =
                                             {});

/**
 * Converge fully, then restart @p node: its sessions drop, stay down
 * for @p downtime, and re-establish with full-table exchanges.
 */
ConvergenceReport runRouterRebootScenario(Topology topology,
                                          const std::string &shape,
                                          size_t node,
                                          sim::SimTime downtime,
                                          const ScenarioOptions &opts =
                                              {});

namespace demo
{

/**
 * The four-AS policy demonstration network of the bgp_network
 * example: a customer dual-homed to two ISPs that both reach a
 * backbone.
 *
 *     customer (AS100) ---- isp-a (AS200) ---- backbone (AS400)
 *            \---- isp-b (AS300) ----/
 *
 * Policies: the customer prefers isp-a via LOCAL_PREF 200; isp-b
 * prepends twice toward the backbone (making itself a path of last
 * resort); the backbone filters martian prefixes from both ISPs.
 * The backbone originates two service prefixes, the customer its own
 * block, and isp-b a martian that the filter must stop.
 */
struct FourAsNetwork
{
    Topology topology;
    size_t customer = 0;
    size_t ispA = 1;
    size_t ispB = 2;
    size_t backbone = 3;
    /** The customer/isp-a link whose failure forces the backup path. */
    size_t customerIspALink = 0;
    net::Prefix customerPrefix;
    net::Prefix backbonePrefix;
    net::Prefix backboneSecondaryPrefix;
    net::Prefix martianPrefix;
};

FourAsNetwork fourAsPolicyTopology();

/** Originate the demo's prefixes on @p sim at time @p at. */
void originateDemoRoutes(TopologySim &sim, const FourAsNetwork &net,
                         sim::SimTime at);

} // namespace demo

} // namespace bgpbench::topo

#endif // BGPBENCH_TOPO_SCENARIOS_HH
