#include "obs/process_memory.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bgpbench::obs
{

ProcessMemory
readProcessMemory()
{
    ProcessMemory memory;
    std::FILE *status = std::fopen("/proc/self/status", "r");
    if (!status)
        return memory;
    char line[256];
    while (std::fgets(line, sizeof(line), status)) {
        // Lines look like "VmRSS:      123456 kB".
        if (std::strncmp(line, "VmRSS:", 6) == 0)
            memory.vmRssKb = std::strtoull(line + 6, nullptr, 10);
        else if (std::strncmp(line, "VmHWM:", 6) == 0)
            memory.vmHwmKb = std::strtoull(line + 6, nullptr, 10);
    }
    std::fclose(status);
    return memory;
}

void
publishProcessMemory(MetricRegistry &registry)
{
    ProcessMemory memory = readProcessMemory();
    registry.gauge("proc.vm_rss_kb").set(double(memory.vmRssKb));
    // The kernel's high-water mark is already monotonic, but noteMax
    // keeps the gauge monotonic even across absorb()ed registries.
    registry.gauge("proc.vm_hwm_kb").noteMax(double(memory.vmHwmKb));
}

} // namespace bgpbench::obs
