#include "obs/export.hh"

#include "stats/json.hh"
#include "stats/report.hh"

namespace bgpbench::obs
{

namespace
{

/**
 * Gauges hold doubles that are usually integral (shard counts,
 * peaks); JsonWriter::formatNumber renders those without a fraction
 * and everything else with a fixed conversion.
 */
std::string
gaugeText(double value)
{
    return stats::JsonWriter::formatNumber(value);
}

std::string
bucketLabel(const MetricRegistry::Snapshot::HistogramRow &row,
            size_t i)
{
    if (i < row.bounds.size())
        return "<= " + std::to_string(row.bounds[i]);
    return "> " + std::to_string(row.bounds.back());
}

} // namespace

bool
parseExportFormat(const std::string &name, ExportFormat &out)
{
    if (name == "text") {
        out = ExportFormat::Text;
        return true;
    }
    if (name == "csv") {
        out = ExportFormat::Csv;
        return true;
    }
    if (name == "json") {
        out = ExportFormat::Json;
        return true;
    }
    return false;
}

void
printMetricsText(std::ostream &os,
                 const MetricRegistry::Snapshot &snapshot)
{
    stats::TextTable table({"metric", "value"});
    for (const auto &[name, value] : snapshot.counters)
        table.addRow({name, std::to_string(value)});
    for (const auto &[name, value] : snapshot.gauges)
        table.addRow({name, gaugeText(value)});
    for (const auto &row : snapshot.histograms) {
        for (size_t i = 0; i < row.counts.size(); ++i) {
            if (row.bounds.empty() && i == row.counts.size() - 1)
                break;
            table.addRow({row.name + " [" + bucketLabel(row, i) + "]",
                          std::to_string(row.counts[i])});
        }
        table.addRow({row.name + " [count]",
                      std::to_string(row.count)});
        table.addRow({row.name + " [mean]",
                      stats::formatDouble(
                          row.count ? double(row.sum) /
                                          double(row.count)
                                    : 0.0,
                          2)});
        table.addRow({row.name + " [overflow]",
                      std::to_string(row.overflow())});
        HistogramSummary summary = summarizeHistogram(row);
        table.addRow({row.name + " [p50]",
                      std::to_string(summary.p50)});
        table.addRow({row.name + " [p90]",
                      std::to_string(summary.p90)});
        table.addRow({row.name + " [p99]",
                      std::to_string(summary.p99)});
        table.addRow({row.name + " [max]",
                      std::to_string(summary.max)});
    }
    table.print(os);
}

void
printMetricsCsv(std::ostream &os,
                const MetricRegistry::Snapshot &snapshot)
{
    os << "kind,metric,key,value\n";
    for (const auto &[name, value] : snapshot.counters)
        os << "counter," << name << ",," << value << '\n';
    for (const auto &[name, value] : snapshot.gauges)
        os << "gauge," << name << ",," << gaugeText(value) << '\n';
    for (const auto &row : snapshot.histograms) {
        for (size_t i = 0; i < row.counts.size(); ++i) {
            os << "histogram," << row.name << ",le_";
            if (i < row.bounds.size())
                os << row.bounds[i];
            else
                os << "inf";
            os << ',' << row.counts[i] << '\n';
        }
        os << "histogram," << row.name << ",count," << row.count
           << '\n';
        os << "histogram," << row.name << ",sum," << row.sum << '\n';
        os << "histogram," << row.name << ",overflow,"
           << row.overflow() << '\n';
        HistogramSummary summary = summarizeHistogram(row);
        os << "histogram," << row.name << ",p50," << summary.p50
           << '\n';
        os << "histogram," << row.name << ",p90," << summary.p90
           << '\n';
        os << "histogram," << row.name << ",p99," << summary.p99
           << '\n';
        os << "histogram," << row.name << ",max," << summary.max
           << '\n';
    }
}

void
writeMetricsJson(std::ostream &os,
                 const MetricRegistry::Snapshot &snapshot)
{
    stats::JsonWriter json(os);
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto &[name, value] : snapshot.counters)
        json.field(name, value);
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const auto &[name, value] : snapshot.gauges)
        json.field(name, value);
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto &row : snapshot.histograms) {
        json.key(row.name);
        json.beginObject();
        json.key("bounds");
        json.beginArray();
        for (uint64_t bound : row.bounds)
            json.value(bound);
        json.endArray();
        json.key("counts");
        json.beginArray();
        for (uint64_t count : row.counts)
            json.value(count);
        json.endArray();
        json.field("count", row.count);
        json.field("sum", row.sum);
        json.field("overflow", row.overflow());
        HistogramSummary summary = summarizeHistogram(row);
        json.field("p50", summary.p50);
        json.field("p90", summary.p90);
        json.field("p99", summary.p99);
        json.field("max", summary.max);
        json.endObject();
    }
    json.endObject();
    json.endObject();
    os << '\n';
}

void
exportMetrics(std::ostream &os,
              const MetricRegistry::Snapshot &snapshot,
              ExportFormat format)
{
    switch (format) {
      case ExportFormat::Text:
        printMetricsText(os, snapshot);
        break;
      case ExportFormat::Csv:
        printMetricsCsv(os, snapshot);
        break;
      case ExportFormat::Json:
        writeMetricsJson(os, snapshot);
        break;
    }
}

} // namespace bgpbench::obs
