#include "obs/trace.hh"

#include <algorithm>
#include <set>

#include "stats/json.hh"
#include "stats/report.hh"

namespace bgpbench::obs
{

namespace
{

const char *
trackName(uint32_t pid)
{
    switch (pid) {
      case kTrackPhases:
        return "benchmark phases";
      case kTrackEngine:
        return "topology engine";
      case kTrackRouters:
        return "routers";
      default:
        return "track";
    }
}

/** Virtual ns as trace microseconds, fixed 3 decimals (ns exact). */
std::string
traceMicros(uint64_t ns)
{
    return stats::formatDouble(double(ns) / 1e3, 3);
}

} // namespace

void
TraceBuffer::absorb(TraceBuffer &source)
{
    events_.insert(events_.end(), source.events_.begin(),
                   source.events_.end());
    source.events_.clear();
}

void
TraceBuffer::writeChromeTrace(std::ostream &os) const
{
    // Order by virtual time with (pid, tid) tie-breaks; stable, so
    // same-lane ties keep insertion order, which absorb() made the
    // deterministic shard-then-execution order.
    std::vector<const TraceEvent *> ordered;
    ordered.reserve(events_.size());
    for (const TraceEvent &event : events_)
        ordered.push_back(&event);
    std::stable_sort(
        ordered.begin(), ordered.end(),
        [](const TraceEvent *a, const TraceEvent *b) {
            if (a->beginNs != b->beginNs)
                return a->beginNs < b->beginNs;
            if (a->pid != b->pid)
                return a->pid < b->pid;
            return a->tid < b->tid;
        });

    std::set<uint32_t> tracks;
    for (const TraceEvent &event : events_)
        tracks.insert(event.pid);

    stats::JsonWriter json(os);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.key("traceEvents");
    json.beginArray();
    for (uint32_t pid : tracks) {
        json.beginObject();
        json.field("name", "process_name");
        json.field("ph", "M");
        json.field("pid", pid);
        json.field("tid", 0u);
        json.key("args");
        json.beginObject();
        json.field("name", trackName(pid));
        json.endObject();
        json.endObject();
    }
    for (const TraceEvent *event : ordered) {
        json.beginObject();
        json.field("name", event->name);
        json.field("cat", event->category);
        json.field("ph", event->instant ? "i" : "X");
        json.field("pid", event->pid);
        json.field("tid", event->tid);
        json.key("ts");
        json.rawNumber(traceMicros(event->beginNs));
        if (event->instant) {
            json.field("s", "t");
        } else {
            json.key("dur");
            json.rawNumber(traceMicros(event->endNs -
                                       event->beginNs));
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << '\n';
}

} // namespace bgpbench::obs
