/**
 * @file
 * Virtual-time phase tracing: RAII spans keyed on simulation time,
 * buffered per shard and merged deterministically, exported as Chrome
 * trace_event JSON (chrome://tracing, Perfetto).
 *
 * The instrumentation is cheap enough to leave compiled in: a Span
 * holds a Tracer pointer and does nothing but one null/enabled check
 * when no sink is attached — in particular it never reads a clock.
 * Timestamps are virtual (simulation) nanoseconds, never host time,
 * so attaching a tracer cannot perturb simulation behaviour and a
 * trace of a deterministic run is itself deterministic.
 */

#ifndef BGPBENCH_OBS_TRACE_HH
#define BGPBENCH_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <utility>
#include <vector>

namespace bgpbench::obs
{

/**
 * Trace lanes. Chrome groups events by "process" then "thread"; we
 * use the process id to separate the three natural layers of a run.
 */
constexpr uint32_t kTrackPhases = 0;  ///< benchmark/scenario phases
constexpr uint32_t kTrackEngine = 1;  ///< per-shard sync windows
constexpr uint32_t kTrackRouters = 2; ///< per-node speaker activity

/**
 * One recorded interval (or instant, when endNs == beginNs and
 * instant is set). Name and category must be string literals or
 * otherwise outlive the buffer; spans are too hot for string copies.
 */
struct TraceEvent
{
    const char *name = "";
    const char *category = "";
    uint32_t pid = 0;
    uint32_t tid = 0;
    uint64_t beginNs = 0;
    uint64_t endNs = 0;
    bool instant = false;
};

/**
 * Append-only event sink. Each shard owns one and records without
 * synchronisation; after a run the per-shard buffers are folded into
 * the run buffer with absorb() in shard order, and writeChromeTrace()
 * orders events by virtual time, so the emitted file is deterministic
 * for a given configuration.
 */
class TraceBuffer
{
  public:
    void
    record(const TraceEvent &event)
    {
        events_.push_back(event);
    }

    /** Append @p source's events and clear it. */
    void absorb(TraceBuffer &source);

    const std::vector<TraceEvent> &
    events() const
    {
        return events_;
    }

    bool
    empty() const
    {
        return events_.empty();
    }

    void
    clear()
    {
        events_.clear();
    }

    /**
     * Emit the buffer as Chrome trace_event JSON ("X" complete and
     * "i" instant events, timestamps in microseconds of virtual
     * time). Events are ordered by (beginNs, pid, tid), ties kept in
     * insertion order, so output bytes are deterministic.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::vector<TraceEvent> events_;
};

/**
 * The recording handle instrumentation points hold. Detached (the
 * default) every call is a no-op behind one branch; attach() points
 * it at a TraceBuffer. Not thread-safe: give each shard its own
 * Tracer and buffer.
 */
class Tracer
{
  public:
    void
    attach(TraceBuffer *sink)
    {
        sink_ = sink;
    }

    void
    detach()
    {
        sink_ = nullptr;
    }

    bool
    enabled() const
    {
        return sink_ != nullptr;
    }

    void
    complete(const char *name, const char *category, uint32_t pid,
             uint32_t tid, uint64_t begin_ns, uint64_t end_ns)
    {
        if (!sink_)
            return;
        sink_->record(
            {name, category, pid, tid, begin_ns, end_ns, false});
    }

    void
    instant(const char *name, const char *category, uint32_t pid,
            uint32_t tid, uint64_t at_ns)
    {
        if (!sink_)
            return;
        sink_->record({name, category, pid, tid, at_ns, at_ns, true});
    }

  private:
    TraceBuffer *sink_ = nullptr;
};

/**
 * RAII interval: reads the clock once on construction and once on
 * destruction, then records a complete event. When the tracer is
 * null or detached at construction the clock is never invoked and
 * destruction is a single branch.
 *
 * @tparam ClockFn callable returning the current virtual time in ns.
 */
template <typename ClockFn>
class Span
{
  public:
    Span(Tracer *tracer, const char *name, const char *category,
         uint32_t pid, uint32_t tid, ClockFn clock)
        : tracer_(tracer && tracer->enabled() ? tracer : nullptr),
          name_(name), category_(category), pid_(pid), tid_(tid),
          clock_(std::move(clock))
    {
        if (tracer_)
            beginNs_ = clock_();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (tracer_) {
            tracer_->complete(name_, category_, pid_, tid_, beginNs_,
                              clock_());
        }
    }

  private:
    Tracer *tracer_;
    const char *name_;
    const char *category_;
    uint32_t pid_;
    uint32_t tid_;
    ClockFn clock_;
    uint64_t beginNs_ = 0;
};

template <typename ClockFn>
Span<ClockFn>
makeSpan(Tracer *tracer, const char *name, const char *category,
         uint32_t pid, uint32_t tid, ClockFn clock)
{
    return Span<ClockFn>(tracer, name, category, pid, tid,
                         std::move(clock));
}

#define BGPBENCH_OBS_SPAN_PASTE2(a, b) a##b
#define BGPBENCH_OBS_SPAN_PASTE(a, b) BGPBENCH_OBS_SPAN_PASTE2(a, b)

/**
 * Scope-long span: OBS_SPAN(tracer, "decision", "bgp",
 * obs::kTrackRouters, nodeId, [&] { return sim.now().ns(); });
 */
#define OBS_SPAN(tracer, name, category, pid, tid, clock)            \
    auto BGPBENCH_OBS_SPAN_PASTE(obsSpan_, __LINE__) =              \
        ::bgpbench::obs::makeSpan((tracer), (name), (category),      \
                                  (pid), (tid), (clock))

} // namespace bgpbench::obs

#endif // BGPBENCH_OBS_TRACE_HH
