/**
 * @file
 * Process-memory probes: current and peak resident set size from
 * /proc/self/status, published as registry gauges.
 *
 * Memory is the binding constraint at internet-scale tables (the
 * Coudert feasibility studies in PAPERS.md), so every bench reports
 * peak RSS next to its throughput numbers. Reads go through the
 * normal gauge path so all three exporters (text/CSV/JSON) carry the
 * values without special cases; gauges merge by max, which is exactly
 * right for a peak across per-shard registries of one process.
 */

#ifndef BGPBENCH_OBS_PROCESS_MEMORY_HH
#define BGPBENCH_OBS_PROCESS_MEMORY_HH

#include <cstdint>

#include "obs/metrics.hh"

namespace bgpbench::obs
{

/** One /proc/self/status memory sample, in kilobytes. */
struct ProcessMemory
{
    /** VmRSS: current resident set size. */
    uint64_t vmRssKb = 0;
    /** VmHWM: peak resident set size ("high water mark"). */
    uint64_t vmHwmKb = 0;
};

/**
 * Sample the process's memory counters. Both fields are zero on
 * platforms without /proc/self/status (the probe degrades to "not
 * available", never fails).
 */
ProcessMemory readProcessMemory();

/**
 * Sample and publish as the `proc.vm_rss_kb` / `proc.vm_hwm_kb`
 * gauges of @p registry. Call at report time (gauges hold the last
 * published sample; noteMax keeps re-publishing monotonic for the
 * peak).
 */
void publishProcessMemory(MetricRegistry &registry);

} // namespace bgpbench::obs

#endif // BGPBENCH_OBS_PROCESS_MEMORY_HH
