/**
 * @file
 * The one handle a run plumbs through its layers: a metric registry
 * plus a trace buffer. Producers absorb their per-shard registries
 * and buffers into it; the CLI/bench layer exports it once at exit.
 */

#ifndef BGPBENCH_OBS_OBSERVABILITY_HH
#define BGPBENCH_OBS_OBSERVABILITY_HH

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace bgpbench::obs
{

/**
 * Observability sinks for one run. A null RunObservability pointer
 * anywhere in the stack means "detached": metric handles resolve to
 * null and spans reduce to one branch, so instrumented code pays
 * nothing measurable (micro_hotpaths --obs-overhead-check enforces
 * this).
 */
struct RunObservability
{
    MetricRegistry metrics;
    TraceBuffer trace;
};

} // namespace bgpbench::obs

#endif // BGPBENCH_OBS_OBSERVABILITY_HH
