#include "obs/views.hh"

#include <algorithm>

#include "stats/report.hh"

namespace bgpbench::obs
{

namespace
{

double
ratioPercent(uint64_t part, uint64_t whole)
{
    return whole ? double(part) / double(whole) * 100.0 : 0.0;
}

} // namespace

std::string
shardMetricName(size_t shard, const char *field)
{
    return "parallel.shard." + std::to_string(shard) + "." + field;
}

void
printDedupView(std::ostream &os, const std::string &title,
               const MetricRegistry &registry)
{
    uint64_t lookups = registry.counterValue(metric::internLookups);
    uint64_t hits = registry.counterValue(metric::internHits);
    stats::TextTable table({title, "value"});
    table.addRow({"lookups", std::to_string(lookups)});
    table.addRow({"hits", std::to_string(hits)});
    table.addRow({"misses",
                  std::to_string(
                      registry.counterValue(metric::internMisses))});
    table.addRow({"hit ratio",
                  stats::formatDouble(ratioPercent(hits, lookups), 1) +
                      "%"});
    table.addRow({"live sets",
                  std::to_string(uint64_t(registry.gaugeValue(
                      metric::internLiveSets)))});
    table.addRow({"bytes deduplicated",
                  std::to_string(registry.counterValue(
                      metric::internBytesDeduplicated))});
    table.print(os);
}

void
printWireView(std::ostream &os, const std::string &title,
              const MetricRegistry &registry)
{
    uint64_t acquires = registry.counterValue(metric::wireAcquires);
    uint64_t hits = registry.counterValue(metric::wirePoolHits);
    stats::TextTable table({title, "value"});
    table.addRow({"pool acquires", std::to_string(acquires)});
    table.addRow({"pool hits", std::to_string(hits)});
    table.addRow({"pool misses",
                  std::to_string(registry.counterValue(
                      metric::wirePoolMisses))});
    table.addRow({"pool hit ratio",
                  stats::formatDouble(ratioPercent(hits, acquires),
                                      1) +
                      "%"});
    table.addRow({"shared encodes",
                  std::to_string(registry.counterValue(
                      metric::wireSharedEncodes))});
    table.addRow({"bytes deduplicated",
                  std::to_string(registry.counterValue(
                      metric::wireBytesDeduplicated))});
    table.addRow({"outstanding segments",
                  std::to_string(uint64_t(registry.gaugeValue(
                      metric::wireOutstandingSegments)))});
    table.addRow({"peak outstanding segments",
                  std::to_string(uint64_t(registry.gaugeValue(
                      metric::wirePeakOutstandingSegments)))});
    table.print(os);
}

double
parallelEventImbalance(const MetricRegistry &registry)
{
    size_t shards =
        size_t(registry.gaugeValue(metric::parallelShards));
    if (shards == 0)
        return 0.0;
    uint64_t total = 0;
    uint64_t busiest = 0;
    for (size_t s = 0; s < shards; ++s) {
        uint64_t events =
            registry.counterValue(shardMetricName(s, "events"));
        total += events;
        busiest = std::max(busiest, events);
    }
    if (total == 0)
        return 0.0;
    double ideal = double(total) / double(shards);
    return double(busiest) / ideal - 1.0;
}

void
printParallelView(std::ostream &os, const MetricRegistry &registry)
{
    size_t shards =
        size_t(registry.gaugeValue(metric::parallelShards));
    if (shards == 0)
        return;
    os << "parallel: "
       << uint64_t(registry.gaugeValue(metric::parallelJobs))
       << " job(s), " << shards << " shard(s), "
       << uint64_t(registry.gaugeValue(metric::parallelCutLinks))
       << " cut link(s) ("
       << stats::formatDouble(
              registry.gaugeValue(metric::parallelEdgeCutRatio) *
                  100.0,
              1)
       << "% of links), lookahead "
       << stats::formatDouble(
              registry.gaugeValue(metric::parallelLookaheadNs) / 1e6,
              3)
       << " ms, "
       << registry.counterValue(metric::parallelWindows)
       << " window(s), event imbalance "
       << stats::formatDouble(parallelEventImbalance(registry) *
                                  100.0,
                              1)
       << "%\n";
    stats::TextTable table({"shard", "nodes", "events",
                            "busy host ms"});
    for (size_t s = 0; s < shards; ++s) {
        table.addRow(
            {std::to_string(s),
             std::to_string(uint64_t(registry.gaugeValue(
                 shardMetricName(s, "nodes")))),
             std::to_string(registry.counterValue(
                 shardMetricName(s, "events"))),
             stats::formatDouble(
                 double(registry.counterValue(
                     shardMetricName(s, "busy_host_ns"))) /
                     1e6,
                 2)});
    }
    table.print(os);
}

} // namespace bgpbench::obs
