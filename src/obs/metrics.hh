/**
 * @file
 * Lock-light metric registry: counters, gauges, and fixed-bucket
 * histograms behind one name-keyed container.
 *
 * The design mirrors ConvergenceTracker: each shard (or thread) owns
 * its own MetricRegistry and updates it without synchronisation
 * beyond relaxed atomics; after a run the per-shard registries are
 * folded into one with absorb(), whose merge (sum for counters and
 * histograms, max for gauges) is order-independent, so report bytes
 * cannot depend on shard count or thread arrival order.
 *
 * Hot paths resolve a metric once (a Counter* / Histogram* handle)
 * and update through the handle; the registration mutex is only taken
 * when a name is first looked up.
 */

#ifndef BGPBENCH_OBS_METRICS_HH
#define BGPBENCH_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bgpbench::obs
{

/**
 * Monotonic event count. Updates are relaxed atomics so concurrent
 * writers (e.g. several speakers of one shard, or the process-wide
 * wire-pool counters) stay TSan-clean; merges sum.
 */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * Last-set / high-water numeric value. Merges take the maximum so
 * absorb() stays order-independent; gauges therefore carry level or
 * peak semantics (e.g. "live sets", "peak outstanding segments"),
 * never per-shard values that would need summing — use a Counter for
 * those.
 */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    /** Raise the gauge to @p value if it is higher. */
    void noteMax(double value);

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram over uint64_t samples. Bucket upper bounds
 * are inclusive and fixed at registration; samples above the last
 * bound land in an overflow bucket. The exact maximum sample is
 * tracked alongside the buckets (the overflow bucket has no upper
 * bound to quote as a percentile). Updates are relaxed atomics;
 * merges add bucket-wise (bounds must match) and take the larger
 * maximum.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<uint64_t> bounds);

    void record(uint64_t sample);

    const std::vector<uint64_t> &
    bounds() const
    {
        return bounds_;
    }

    /** Count in bucket @p i; index bounds().size() is overflow. */
    uint64_t bucketCount(size_t i) const;

    /** Samples above the last bound (== bucketCount(bounds().size())). */
    uint64_t
    overflowCount() const
    {
        return bucketCount(bounds_.size());
    }

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Largest recorded sample; 0 when empty. */
    uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    double
    mean() const
    {
        uint64_t n = count();
        return n ? double(sum()) / double(n) : 0.0;
    }

    void reset();

  private:
    friend class MetricRegistry;

    std::vector<uint64_t> bounds_;
    /** bounds_.size() + 1 slots; the last is the overflow bucket. */
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

/**
 * Name-keyed container of metrics with create-or-get registration and
 * an order-independent merge.
 *
 * Registration (counter()/gauge()/histogram()) takes a mutex and
 * returns a reference that stays valid for the registry's lifetime;
 * hot paths cache the pointer. Reads for export go through
 * snapshot(), which lists every metric in name order so emitted
 * reports are deterministic.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Create-or-get; the reference lives as long as the registry. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * Create-or-get; @p bounds only applies on creation and must
     * match the registered bounds on later calls (fatal otherwise).
     */
    Histogram &histogram(const std::string &name,
                         const std::vector<uint64_t> &bounds);

    /** Value of a counter, or 0 if @p name was never registered. */
    uint64_t counterValue(const std::string &name) const;
    /** Value of a gauge, or 0.0 if @p name was never registered. */
    double gaugeValue(const std::string &name) const;

    /**
     * Fold @p source into this registry and reset it: counters and
     * histograms add, gauges take the maximum. Absorbing shard
     * registries in any order yields the same result, mirroring
     * ConvergenceTracker::absorb.
     */
    void absorb(MetricRegistry &source);

    /** Point-in-time copy of every metric, sorted by name. */
    struct Snapshot
    {
        std::vector<std::pair<std::string, uint64_t>> counters;
        std::vector<std::pair<std::string, double>> gauges;
        struct HistogramRow
        {
            std::string name;
            std::vector<uint64_t> bounds;
            /** bounds.size() + 1 counts; the last is overflow. */
            std::vector<uint64_t> counts;
            uint64_t count = 0;
            uint64_t sum = 0;
            /** Largest recorded sample; 0 when empty. */
            uint64_t max = 0;

            /** Samples above the last bound. */
            uint64_t
            overflow() const
            {
                return counts.empty() ? 0 : counts.back();
            }
        };
        std::vector<HistogramRow> histograms;

        bool
        empty() const
        {
            return counters.empty() && gauges.empty() &&
                   histograms.empty();
        }
    };

    Snapshot snapshot() const;

  private:
    /** Guards the maps, not the metric values. */
    mutable std::mutex mutex_;
    /** std::map: stable element addresses + sorted iteration. */
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * Quantile estimate from a histogram row: the inclusive upper bound
 * of the bucket where the cumulative count first reaches
 * ceil(q * count) — i.e. an upper bound on the true quantile, tight
 * to one bucket width. The result is clamped to the exact tracked
 * maximum, which is the tighter true bound whenever the top sample
 * sits low in its bucket (and keeps quantiles <= max always). A
 * quantile landing in the overflow bucket (which has no bound)
 * reports the tracked maximum directly, as does q >= 1. Returns 0
 * for an empty histogram. @p q must be in (0, 1].
 */
uint64_t histogramQuantile(
    const MetricRegistry::Snapshot::HistogramRow &row, double q);

/** p50/p90/p99/max of one histogram row (see histogramQuantile). */
struct HistogramSummary
{
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
};

HistogramSummary summarizeHistogram(
    const MetricRegistry::Snapshot::HistogramRow &row);

} // namespace bgpbench::obs

#endif // BGPBENCH_OBS_METRICS_HH
