/**
 * @file
 * Views over the MetricRegistry that replace the former standalone
 * DedupReport / WireReport / ParallelReport structs: producers
 * publish plain named metrics, and these renderers read them back by
 * name, producing the same bytes the old printers did. One registry,
 * one code path, no parallel struct plumbing.
 */

#ifndef BGPBENCH_OBS_VIEWS_HH
#define BGPBENCH_OBS_VIEWS_HH

#include <ostream>
#include <string>

#include "obs/metrics.hh"

namespace bgpbench::obs
{

/**
 * Canonical metric names. Producers publish under these; views and
 * tests read them back. Per-shard parallel metrics are
 * "parallel.shard.<index>.<field>" via shardMetricName().
 */
namespace metric
{

inline constexpr const char *internLookups = "intern.lookups";
inline constexpr const char *internHits = "intern.hits";
inline constexpr const char *internMisses = "intern.misses";
inline constexpr const char *internLiveSets = "intern.live_sets";
inline constexpr const char *internBytesDeduplicated =
    "intern.bytes_deduplicated";

inline constexpr const char *wireAcquires = "wire.acquires";
inline constexpr const char *wirePoolHits = "wire.pool_hits";
inline constexpr const char *wirePoolMisses = "wire.pool_misses";
inline constexpr const char *wireSharedEncodes =
    "wire.shared_encodes";
inline constexpr const char *wireBytesDeduplicated =
    "wire.bytes_deduplicated";
inline constexpr const char *wireOutstandingSegments =
    "wire.outstanding_segments";
inline constexpr const char *wirePeakOutstandingSegments =
    "wire.peak_outstanding_segments";

inline constexpr const char *parallelJobs = "parallel.jobs";
inline constexpr const char *parallelShards = "parallel.shards";
inline constexpr const char *parallelCutLinks = "parallel.cut_links";
inline constexpr const char *parallelEdgeCutRatio =
    "parallel.edge_cut_ratio";
inline constexpr const char *parallelNodeSkew = "parallel.node_skew";
inline constexpr const char *parallelLookaheadNs =
    "parallel.lookahead_ns";
inline constexpr const char *parallelWindows = "parallel.windows";
inline constexpr const char *parallelBarrierWaitNs =
    "parallel.barrier_wait_ns";

/** Sum of opened window lengths (virtual ns — deterministic). */
inline constexpr const char *topoWindowLenNs = "topo.window_len_ns";
/** Host ns workers spent blocked on the window barrier (diagnostic:
 *  nondeterministic, never byte-compared). */
inline constexpr const char *topoBarrierWaitNs =
    "topo.barrier_wait_ns";
/** Shard tasks taken from another worker's deque (diagnostic). */
inline constexpr const char *topoStealCount = "topo.steal_count";

/** Route-map evaluations against a non-empty policy (speakers). */
inline constexpr const char *bgpPolicyEvals = "bgp.policy_evals";
/** Routes rejected by import/export policy (the authoritative
 *  counter; UpdateStats::rejectedByPolicy is the per-UPDATE view). */
inline constexpr const char *bgpPolicyRejects = "bgp.policy_rejects";
/** Loc-RIB installs that produced a multipath (ECMP) group. */
inline constexpr const char *bgpEcmpGroups = "bgp.ecmp_groups";

/** Routes crossing the damping suppress threshold (RFC 2439). */
inline constexpr const char *bgpDampingSuppressed =
    "bgp.damping_suppressed";
/** Suppressed routes re-admitted after decaying below reuse. */
inline constexpr const char *bgpDampingReused = "bgp.damping_reused";
/** Flush rounds where a peer's queue was held back by MRAI. */
inline constexpr const char *bgpMraiDeferrals = "bgp.mrai_deferrals";

/** Distinct AS paths offered per (router, prefix) in one scenario. */
inline constexpr const char *topoPathExploration =
    "topo.path_exploration";

} // namespace metric

/** "parallel.shard.<index>.<field>" */
std::string shardMetricName(size_t shard, const char *field);

/**
 * Print the attribute-interner dedup metrics as an aligned table
 * titled @p title — same bytes as the former printDedupReport.
 */
void printDedupView(std::ostream &os, const std::string &title,
                    const MetricRegistry &registry);

/**
 * Print the wire segment-pool metrics as an aligned table titled
 * @p title — same bytes as the former printWireReport.
 */
void printWireView(std::ostream &os, const std::string &title,
                   const MetricRegistry &registry);

/**
 * Print the parallel-run summary line plus a per-shard utilization
 * table — same bytes as the former printParallelReport. Does nothing
 * when no parallel metrics were published.
 */
void printParallelView(std::ostream &os,
                       const MetricRegistry &registry);

/**
 * Imbalance of executed events across shards: the busiest shard's
 * share over the ideal 1/shards share, minus one (the former
 * ParallelReport::eventImbalance).
 */
double parallelEventImbalance(const MetricRegistry &registry);

} // namespace bgpbench::obs

#endif // BGPBENCH_OBS_VIEWS_HH
