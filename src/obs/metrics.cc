#include "obs/metrics.hh"

#include <algorithm>

#include "net/logging.hh"

namespace bgpbench::obs
{

void
Gauge::noteMax(double value)
{
    double seen = value_.load(std::memory_order_relaxed);
    while (value > seen &&
           !value_.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1])
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        fatal("histogram bucket bounds must be sorted");
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::record(uint64_t sample)
{
    // First bucket whose inclusive upper bound covers the sample;
    // past the last bound it lands in the overflow slot.
    size_t i = std::lower_bound(bounds_.begin(), bounds_.end(),
                                sample) -
               bounds_.begin();
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    if (i > bounds_.size())
        panic("histogram bucket index out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[name];
}

Histogram &
MetricRegistry::histogram(const std::string &name,
                          const std::vector<uint64_t> &bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = histograms_.try_emplace(name, bounds);
    if (!inserted && it->second.bounds() != bounds)
        fatal("histogram '" + name +
              "' re-registered with different bucket bounds");
    return it->second;
}

uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
MetricRegistry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second.value();
}

void
MetricRegistry::absorb(MetricRegistry &source)
{
    // Snapshot-and-reset under the source lock, then fold into this
    // registry under ours; never hold both (absorb is only called
    // from merge points, but lock discipline stays simple this way).
    Snapshot taken;
    {
        std::lock_guard<std::mutex> lock(source.mutex_);
        for (auto &[name, counter] : source.counters_) {
            taken.counters.emplace_back(name, counter.value());
            counter.reset();
        }
        for (auto &[name, gauge] : source.gauges_) {
            taken.gauges.emplace_back(name, gauge.value());
            gauge.reset();
        }
        for (auto &[name, histogram] : source.histograms_) {
            Snapshot::HistogramRow row;
            row.name = name;
            row.bounds = histogram.bounds();
            for (size_t i = 0; i <= row.bounds.size(); ++i)
                row.counts.push_back(histogram.bucketCount(i));
            row.count = histogram.count();
            row.sum = histogram.sum();
            taken.histograms.push_back(std::move(row));
            histogram.reset();
        }
    }
    for (const auto &[name, value] : taken.counters)
        counter(name).add(value);
    for (const auto &[name, value] : taken.gauges)
        gauge(name).noteMax(value);
    for (const auto &row : taken.histograms) {
        Histogram &merged = histogram(row.name, row.bounds);
        for (size_t i = 0; i < row.counts.size(); ++i)
            merged.buckets_[i].fetch_add(row.counts[i],
                                         std::memory_order_relaxed);
        merged.count_.fetch_add(row.count,
                                std::memory_order_relaxed);
        merged.sum_.fetch_add(row.sum, std::memory_order_relaxed);
    }
}

MetricRegistry::Snapshot
MetricRegistry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace_back(name, counter.value());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.emplace_back(name, gauge.value());
    for (const auto &[name, histogram] : histograms_) {
        Snapshot::HistogramRow row;
        row.name = name;
        row.bounds = histogram.bounds();
        for (size_t i = 0; i <= row.bounds.size(); ++i)
            row.counts.push_back(histogram.bucketCount(i));
        row.count = histogram.count();
        row.sum = histogram.sum();
        snap.histograms.push_back(std::move(row));
    }
    return snap;
}

} // namespace bgpbench::obs
