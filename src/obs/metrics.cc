#include "obs/metrics.hh"

#include <algorithm>

#include "net/logging.hh"

namespace bgpbench::obs
{

void
Gauge::noteMax(double value)
{
    double seen = value_.load(std::memory_order_relaxed);
    while (value > seen &&
           !value_.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1])
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        fatal("histogram bucket bounds must be sorted");
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

namespace
{

/** Relaxed fetch-max (no std::atomic::fetch_max until C++26). */
void
noteMaxU64(std::atomic<uint64_t> &slot, uint64_t value)
{
    uint64_t seen = slot.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

void
Histogram::record(uint64_t sample)
{
    // First bucket whose inclusive upper bound covers the sample;
    // past the last bound it lands in the overflow slot.
    size_t i = std::lower_bound(bounds_.begin(), bounds_.end(),
                                sample) -
               bounds_.begin();
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    noteMaxU64(max_, sample);
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    if (i > bounds_.size())
        panic("histogram bucket index out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[name];
}

Histogram &
MetricRegistry::histogram(const std::string &name,
                          const std::vector<uint64_t> &bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = histograms_.try_emplace(name, bounds);
    if (!inserted && it->second.bounds() != bounds)
        fatal("histogram '" + name +
              "' re-registered with different bucket bounds");
    return it->second;
}

uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
MetricRegistry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second.value();
}

void
MetricRegistry::absorb(MetricRegistry &source)
{
    // Snapshot-and-reset under the source lock, then fold into this
    // registry under ours; never hold both (absorb is only called
    // from merge points, but lock discipline stays simple this way).
    Snapshot taken;
    {
        std::lock_guard<std::mutex> lock(source.mutex_);
        for (auto &[name, counter] : source.counters_) {
            taken.counters.emplace_back(name, counter.value());
            counter.reset();
        }
        for (auto &[name, gauge] : source.gauges_) {
            taken.gauges.emplace_back(name, gauge.value());
            gauge.reset();
        }
        for (auto &[name, histogram] : source.histograms_) {
            Snapshot::HistogramRow row;
            row.name = name;
            row.bounds = histogram.bounds();
            for (size_t i = 0; i <= row.bounds.size(); ++i)
                row.counts.push_back(histogram.bucketCount(i));
            row.count = histogram.count();
            row.sum = histogram.sum();
            row.max = histogram.max();
            taken.histograms.push_back(std::move(row));
            histogram.reset();
        }
    }
    for (const auto &[name, value] : taken.counters)
        counter(name).add(value);
    for (const auto &[name, value] : taken.gauges)
        gauge(name).noteMax(value);
    for (const auto &row : taken.histograms) {
        Histogram &merged = histogram(row.name, row.bounds);
        for (size_t i = 0; i < row.counts.size(); ++i)
            merged.buckets_[i].fetch_add(row.counts[i],
                                         std::memory_order_relaxed);
        merged.count_.fetch_add(row.count,
                                std::memory_order_relaxed);
        merged.sum_.fetch_add(row.sum, std::memory_order_relaxed);
        noteMaxU64(merged.max_, row.max);
    }
}

MetricRegistry::Snapshot
MetricRegistry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace_back(name, counter.value());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.emplace_back(name, gauge.value());
    for (const auto &[name, histogram] : histograms_) {
        Snapshot::HistogramRow row;
        row.name = name;
        row.bounds = histogram.bounds();
        for (size_t i = 0; i <= row.bounds.size(); ++i)
            row.counts.push_back(histogram.bucketCount(i));
        row.count = histogram.count();
        row.sum = histogram.sum();
        row.max = histogram.max();
        snap.histograms.push_back(std::move(row));
    }
    return snap;
}

uint64_t
histogramQuantile(const MetricRegistry::Snapshot::HistogramRow &row,
                  double q)
{
    if (row.count == 0)
        return 0;
    if (q <= 0.0 || q > 1.0)
        fatal("histogramQuantile: q must be in (0, 1]");
    // The rank-th smallest sample (1-based), rounding the rank up so
    // p50 of two samples is the first, not an interpolation.
    uint64_t rank = uint64_t(double(row.count) * q);
    if (double(rank) < double(row.count) * q || rank == 0)
        ++rank;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < row.counts.size(); ++i) {
        cumulative += row.counts[i];
        if (cumulative >= rank) {
            // Overflow bucket: no upper bound to quote; the exact
            // maximum is the tightest true statement.
            if (i >= row.bounds.size())
                return row.max;
            // The exact maximum is the tighter true bound when the
            // top sample sits low in its bucket.
            return std::min(row.bounds[i], row.max);
        }
    }
    return row.max;
}

HistogramSummary
summarizeHistogram(const MetricRegistry::Snapshot::HistogramRow &row)
{
    HistogramSummary summary;
    if (row.count == 0)
        return summary;
    summary.p50 = histogramQuantile(row, 0.50);
    summary.p90 = histogramQuantile(row, 0.90);
    summary.p99 = histogramQuantile(row, 0.99);
    summary.max = row.max;
    return summary;
}

} // namespace bgpbench::obs
