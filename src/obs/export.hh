/**
 * @file
 * Registry exporters: render a MetricRegistry snapshot as aligned
 * text, CSV, or JSON. All number formatting goes through the stats
 * helpers (formatDouble / JsonWriter::formatNumber), so the bytes are
 * locale-independent and identical across build modes.
 */

#ifndef BGPBENCH_OBS_EXPORT_HH
#define BGPBENCH_OBS_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/metrics.hh"

namespace bgpbench::obs
{

enum class ExportFormat : uint8_t
{
    Text,
    Csv,
    Json,
};

/** Parse "text" / "csv" / "json"; false on anything else. */
bool parseExportFormat(const std::string &name, ExportFormat &out);

/** Aligned "metric | value" table; histograms one row per bucket. */
void printMetricsText(std::ostream &os,
                      const MetricRegistry::Snapshot &snapshot);

/** "kind,metric,key,value" rows, sorted by metric name per kind. */
void printMetricsCsv(std::ostream &os,
                     const MetricRegistry::Snapshot &snapshot);

/** One JSON object with counters/gauges/histograms members. */
void writeMetricsJson(std::ostream &os,
                      const MetricRegistry::Snapshot &snapshot);

/** Dispatch on @p format. */
void exportMetrics(std::ostream &os,
                   const MetricRegistry::Snapshot &snapshot,
                   ExportFormat format);

} // namespace bgpbench::obs

#endif // BGPBENCH_OBS_EXPORT_HH
