/**
 * @file
 * FIB-side aliases of the generic LPM trie.
 *
 * The trie itself lives in net/lpm_trie.hh so that read-side code
 * (src/serve RIB snapshots) can index non-owning route views with the
 * same structure; the FIB keeps its historical fib::LpmTrie spelling.
 */

#ifndef BGPBENCH_FIB_LPM_TRIE_HH
#define BGPBENCH_FIB_LPM_TRIE_HH

#include "net/lpm_trie.hh"

namespace bgpbench::fib
{

using net::LinearLpm;
using net::LpmTrie;

} // namespace bgpbench::fib

#endif // BGPBENCH_FIB_LPM_TRIE_HH
