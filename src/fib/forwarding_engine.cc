#include "fib/forwarding_engine.hh"

#include "net/checksum.hh"

namespace bgpbench::fib
{

std::string
toString(DropReason reason)
{
    switch (reason) {
      case DropReason::None:
        return "none";
      case DropReason::BadChecksum:
        return "bad-checksum";
      case DropReason::TtlExpired:
        return "ttl-expired";
      case DropReason::NoRoute:
        return "no-route";
    }
    return "?";
}

ForwardResult
ForwardingEngine::process(net::DataPacket &packet)
{
    ++counters_.received;
    ForwardResult result;

    // RFC 1812 5.2.2: verify the IP header checksum.
    if (!packet.checksumValid()) {
        ++counters_.badChecksum;
        result.dropReason = DropReason::BadChecksum;
        return result;
    }

    // RFC 1812 5.2.3/4.2.2.9: a packet whose TTL would reach zero is
    // discarded (and ICMP Time Exceeded sent, which we do not model).
    if (packet.header.ttl <= 1) {
        ++counters_.ttlExpired;
        result.dropReason = DropReason::TtlExpired;
        return result;
    }

    // RFC 1812 5.2.4: route lookup.
    const FibEntry *entry = table_->lookup(packet.header.destination,
                                           &result.lookupNodesVisited);
    if (!entry) {
        ++counters_.noRoute;
        result.dropReason = DropReason::NoRoute;
        return result;
    }

    // Decrement TTL and fix the checksum incrementally (RFC 1624).
    // TTL and protocol share one 16-bit word in the header.
    uint16_t old_word = (uint16_t(packet.header.ttl) << 8) |
                        packet.header.protocol;
    packet.header.ttl -= 1;
    uint16_t new_word = (uint16_t(packet.header.ttl) << 8) |
                        packet.header.protocol;
    packet.header.headerChecksum = net::checksumAdjust(
        packet.header.headerChecksum, old_word, new_word);

    ++counters_.forwarded;
    counters_.bytesForwarded += packet.sizeBytes;
    result.forwarded = true;
    result.nextHop = entry->nextHop;
    result.egressInterface = entry->interface;

    // ECMP: spread flows across the group by (source, destination)
    // hash, so one flow always takes one path (no reordering) while
    // the aggregate load splits. Fibonacci mixing keeps adjacent
    // addresses from mapping to the same member.
    if (!entry->extraHops.empty()) {
        uint64_t flow =
            (uint64_t(packet.header.source.toUint32()) << 32) |
            packet.header.destination.toUint32();
        flow *= 0x9e3779b97f4a7c15ull;
        size_t member =
            size_t((flow >> 32) % (entry->extraHops.size() + 1));
        if (member > 0)
            result.nextHop = entry->extraHops[member - 1];
    }
    return result;
}

} // namespace bgpbench::fib
