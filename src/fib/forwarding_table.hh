/**
 * @file
 * The Forwarding Information Base (FIB): the table the data plane
 * consults, as distinct from the BGP Loc-RIB (paper section III.A:
 * "Loc-RIB is different from the forwarding table used by the
 * router's forwarding engine").
 */

#ifndef BGPBENCH_FIB_FORWARDING_TABLE_HH
#define BGPBENCH_FIB_FORWARDING_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "fib/lpm_trie.hh"
#include "net/ipv4_address.hh"
#include "net/prefix.hh"

namespace bgpbench::fib
{

/** One FIB entry: where packets for a prefix are sent. */
struct FibEntry
{
    net::Ipv4Address nextHop;
    /** Outgoing interface index. */
    uint32_t interface = 0;
    /**
     * ECMP next hops beyond the primary (maximum-paths > 1), in the
     * control plane's deterministic group order. The forwarding
     * engine spreads flows across {nextHop} ∪ extraHops by flow
     * hash; empty in single-path mode.
     */
    std::vector<net::Ipv4Address> extraHops;
};

/** Lifetime counters of a forwarding table. */
struct FibCounters
{
    uint64_t installs = 0;
    uint64_t replaces = 0;
    uint64_t removes = 0;
    uint64_t lookups = 0;
    uint64_t lookupMisses = 0;
};

/**
 * The forwarding table: an LPM trie plus the write-side bookkeeping
 * the control plane performs.
 *
 * Real kernels serialise route updates against lookups with a lock or
 * RCU-style generation counters; the simulated router charges a lock
 * hold time per write, which is what produces the paper's Figure 6(c)
 * forwarding dip while a large table is being installed. This class
 * only counts the writes; the timing lives in the simulator.
 */
class ForwardingTable
{
  public:
    /**
     * Install or replace the route for @p prefix.
     * @return True if this was a new prefix (install), false if it
     *         replaced an existing entry.
     */
    bool install(const net::Prefix &prefix, FibEntry entry);

    /**
     * Remove the route for @p prefix.
     * @return True if the prefix was present.
     */
    bool remove(const net::Prefix &prefix);

    /**
     * Longest-prefix-match lookup.
     *
     * @param addr Destination address.
     * @param visited Optional out-parameter: trie nodes visited.
     * @return The entry, or nullptr if the destination is unroutable.
     */
    const FibEntry *lookup(net::Ipv4Address addr,
                           int *visited = nullptr);

    /** Exact-match query (management plane / tests). */
    const FibEntry *exact(const net::Prefix &prefix) const;

    size_t size() const { return trie_.size(); }
    const FibCounters &counters() const { return counters_; }

  private:
    LpmTrie<FibEntry> trie_;
    FibCounters counters_;
};

} // namespace bgpbench::fib

#endif // BGPBENCH_FIB_FORWARDING_TABLE_HH
