/**
 * @file
 * RFC-1812-compliant IPv4 forwarding engine.
 *
 * Performs the per-packet processing the paper lists in section IV.B:
 * IP header checksum verification, TTL decrement (discarding expired
 * packets), incremental checksum update, and FIB longest-prefix-match
 * lookup. The simulated routers charge cycles per step; this class
 * does the actual work and reports how much of it there was.
 */

#ifndef BGPBENCH_FIB_FORWARDING_ENGINE_HH
#define BGPBENCH_FIB_FORWARDING_ENGINE_HH

#include <cstdint>
#include <string>

#include "fib/forwarding_table.hh"
#include "net/packet.hh"

namespace bgpbench::fib
{

/** Why a packet was not forwarded. */
enum class DropReason : uint8_t
{
    None = 0,
    BadChecksum,
    TtlExpired,
    NoRoute,
};

/** Human-readable drop reason. */
std::string toString(DropReason reason);

/** Outcome of processing one packet. */
struct ForwardResult
{
    bool forwarded = false;
    DropReason dropReason = DropReason::None;
    net::Ipv4Address nextHop;
    uint32_t egressInterface = 0;
    /** LPM trie nodes visited (work metric for the simulator). */
    int lookupNodesVisited = 0;
};

/** Lifetime counters of a forwarding engine. */
struct ForwardingCounters
{
    uint64_t received = 0;
    uint64_t forwarded = 0;
    uint64_t badChecksum = 0;
    uint64_t ttlExpired = 0;
    uint64_t noRoute = 0;
    uint64_t bytesForwarded = 0;
};

/**
 * The forwarding fast path. Owns no packets and no table; it operates
 * on a caller-provided ForwardingTable so the control plane (which
 * owns FIB updates) and the data plane share exactly one table, as in
 * a real router.
 */
class ForwardingEngine
{
  public:
    explicit ForwardingEngine(ForwardingTable *table)
        : table_(table)
    {}

    /**
     * Process one packet per RFC 1812 section 5.2: validate the
     * header checksum, look up the destination, decrement the TTL
     * (dropping expired packets), and incrementally fix the checksum.
     *
     * @param packet The packet; its header is rewritten on success.
     * @return What happened and how much lookup work it took.
     */
    ForwardResult process(net::DataPacket &packet);

    const ForwardingCounters &counters() const { return counters_; }

  private:
    ForwardingTable *table_;
    ForwardingCounters counters_;
};

} // namespace bgpbench::fib

#endif // BGPBENCH_FIB_FORWARDING_ENGINE_HH
