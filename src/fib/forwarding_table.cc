#include "fib/forwarding_table.hh"

namespace bgpbench::fib
{

bool
ForwardingTable::install(const net::Prefix &prefix, FibEntry entry)
{
    bool inserted = trie_.insert(prefix, entry);
    if (inserted)
        ++counters_.installs;
    else
        ++counters_.replaces;
    return inserted;
}

bool
ForwardingTable::remove(const net::Prefix &prefix)
{
    bool removed = trie_.remove(prefix);
    if (removed)
        ++counters_.removes;
    return removed;
}

const FibEntry *
ForwardingTable::lookup(net::Ipv4Address addr, int *visited)
{
    ++counters_.lookups;
    const FibEntry *entry = trie_.lookup(addr, visited);
    if (!entry)
        ++counters_.lookupMisses;
    return entry;
}

const FibEntry *
ForwardingTable::exact(const net::Prefix &prefix) const
{
    return trie_.exact(prefix);
}

} // namespace bgpbench::fib
