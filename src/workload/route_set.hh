/**
 * @file
 * Synthetic routing-table generation.
 *
 * The paper injects "a large routing table" learned from a BGP
 * neighbour. We generate one synthetically: unique CIDR prefixes with
 * Internet-like mask-length mix and random AS paths. Generation is
 * seeded and fully deterministic so every benchmark run processes an
 * identical workload.
 */

#ifndef BGPBENCH_WORKLOAD_ROUTE_SET_HH
#define BGPBENCH_WORKLOAD_ROUTE_SET_HH

#include <cstdint>
#include <vector>

#include "bgp/as_path.hh"
#include "bgp/types.hh"
#include "net/ipv4_address.hh"
#include "net/prefix.hh"

namespace bgpbench::workload
{

/** One generated route before attribute assembly. */
struct RouteSpec
{
    net::Prefix prefix;
    /** Base AS path as seen by the originating test speaker. */
    std::vector<bgp::AsNumber> basePath;
};

/** Parameters of the generator. */
struct RouteSetConfig
{
    size_t count = 5000;
    uint64_t seed = 1;
    /** AS path length range (before the speaker's own AS). */
    int minPathLength = 1;
    int maxPathLength = 4;
    /**
     * Fraction of /24 prefixes; the rest are a mix of /16..../22,
     * echoing the CIDR mask-length distribution of Internet tables.
     */
    double slash24Fraction = 0.55;
};

/**
 * Generate @p config.count distinct prefixes with AS paths.
 * Deterministic in the seed.
 */
std::vector<RouteSpec> generateRouteSet(const RouteSetConfig &config);

/** Pick @p count destination addresses inside the generated routes. */
std::vector<net::Ipv4Address>
destinationPool(const std::vector<RouteSpec> &routes, size_t count,
                uint64_t seed);

} // namespace bgpbench::workload

#endif // BGPBENCH_WORKLOAD_ROUTE_SET_HH
