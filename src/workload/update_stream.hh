/**
 * @file
 * Builds the wire-format UPDATE streams the test speakers inject.
 *
 * Table I's "packet size" dimension is realised here: small packets
 * carry a single prefix per UPDATE message, large packets carry 500
 * prefixes sharing one attribute block (prefixes packed into one
 * UPDATE must share attributes, so in large-packet mode each group of
 * 500 consecutive routes is given a common AS path).
 */

#ifndef BGPBENCH_WORKLOAD_UPDATE_STREAM_HH
#define BGPBENCH_WORKLOAD_UPDATE_STREAM_HH

#include <cstdint>
#include <vector>

#include "bgp/message.hh"
#include "bgp/types.hh"
#include "net/ipv4_address.hh"
#include "workload/route_set.hh"

namespace bgpbench::workload
{

/** How a test speaker frames its announcements. */
struct StreamConfig
{
    /** The sending speaker's AS (first AS of every path). */
    bgp::AsNumber speakerAs = 0;
    /** NEXT_HOP placed on every announcement. */
    net::Ipv4Address nextHop;
    /** Prefixes per UPDATE packet (1 = small, 500 = large). */
    size_t prefixesPerPacket = 1;
    /**
     * Extra copies of the speaker's AS prepended to every path.
     * Scenarios 5/6 give Speaker 2 a longer path than Speaker 1;
     * scenarios 7/8 give Speaker 1 the longer path.
     */
    int extraPrepends = 0;
};

/**
 * One ready-to-send packet: framed wire bytes (as a shared immutable
 * segment, so a packet replayed to many routers is encoded once) plus
 * bookkeeping.
 */
struct StreamPacket
{
    net::WireSegmentPtr wire;
    size_t transactions = 0;
};

/**
 * Build announcement packets for @p routes in order.
 * Deterministic; every call with equal inputs yields equal bytes.
 */
std::vector<StreamPacket>
buildAnnouncementStream(const std::vector<RouteSpec> &routes,
                        const StreamConfig &config);

/** Build withdrawal packets for @p routes in order. */
std::vector<StreamPacket>
buildWithdrawalStream(const std::vector<RouteSpec> &routes,
                      const StreamConfig &config);

/** Total transactions across @p packets. */
size_t streamTransactions(const std::vector<StreamPacket> &packets);

/** Total wire bytes across @p packets. */
size_t streamBytes(const std::vector<StreamPacket> &packets);

} // namespace bgpbench::workload

#endif // BGPBENCH_WORKLOAD_UPDATE_STREAM_HH
