/**
 * @file
 * Cross-traffic (data-plane load) description.
 *
 * The paper's second experiment set injects forwarding traffic while
 * the BGP benchmark runs (section V.B). The router model consumes
 * this config as a fluid arrival process, materialising a sample of
 * real packets per quantum for the RFC-1812 engine.
 */

#ifndef BGPBENCH_WORKLOAD_CROSS_TRAFFIC_HH
#define BGPBENCH_WORKLOAD_CROSS_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "net/ipv4_address.hh"

namespace bgpbench::workload
{

/** Offered data-plane load. */
struct CrossTrafficConfig
{
    /** Offered rate in megabits per second (0 disables). */
    double mbps = 0.0;
    /** Frame size in bytes. */
    uint32_t packetBytes = 1000;
    /** Source address stamped on generated packets. */
    net::Ipv4Address source = net::Ipv4Address(192, 168, 0, 1);
    /**
     * Destination addresses to cycle through; empty means the router
     * model uses its static test route's destination.
     */
    std::vector<net::Ipv4Address> destinations;

    /** Offered packets per second. */
    double
    packetsPerSecond() const
    {
        if (mbps <= 0 || packetBytes == 0)
            return 0.0;
        return mbps * 1e6 / (8.0 * double(packetBytes));
    }
};

} // namespace bgpbench::workload

#endif // BGPBENCH_WORKLOAD_CROSS_TRAFFIC_HH
