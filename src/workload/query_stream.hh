/**
 * @file
 * Synthetic read-side query workload generation.
 *
 * A production BGP speaker answers operators and telemetry collectors
 * while it converges: point lookups ("what is the best path to X"),
 * longest-prefix-match lookups for data-plane addresses, prefix-range
 * scans ("show ip bgp 10.0.0.0/8 longer-prefixes"), and per-peer
 * summary statistics. This module models that client population as a
 * deterministic stream: Zipf-skewed prefix popularity (a few hot
 * prefixes absorb most queries, a long tail absorbs the rest) and a
 * configurable class mix. Generation is seeded and platform-
 * independent, so every benchmark run replays an identical stream.
 */

#ifndef BGPBENCH_WORKLOAD_QUERY_STREAM_HH
#define BGPBENCH_WORKLOAD_QUERY_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4_address.hh"
#include "net/prefix.hh"
#include "workload/rng.hh"

namespace bgpbench::workload
{

/** The query classes a RIB snapshot can answer. */
enum class QueryKind : uint8_t
{
    /** Longest-prefix-match of a data-plane address. */
    Lookup,
    /** Best path of an exact prefix. */
    BestPath,
    /** All routes under a covering prefix. */
    Scan,
    /** Per-peer table summary. */
    PeerStats,
};

/** "lookup" | "best_path" | "scan" | "peer_stats". */
const char *queryKindName(QueryKind kind);

/** One generated query. */
struct Query
{
    QueryKind kind = QueryKind::Lookup;
    /** Lookup target (Lookup only). */
    net::Ipv4Address addr;
    /** Exact prefix (BestPath) or covering range (Scan). */
    net::Prefix prefix;
};

/**
 * Class mix as relative weights (any non-negative scale; they are
 * normalised). The defaults model a telemetry-heavy population:
 * mostly point lookups, some exact best-path queries, few expensive
 * scans, occasional summary polls.
 */
struct QueryMix
{
    double lookup = 88.0;
    double bestPath = 10.0;
    double scan = 1.5;
    double peerStats = 0.5;

    /**
     * Parse "L:B:S:P" (e.g. "88:10:1.5:0.5") relative weights.
     * @return False on malformed input, a weight that fails to
     *         parse, a negative weight, or an all-zero mix.
     */
    static bool parse(const std::string &text, QueryMix &out);

    /** Canonical "L:B:S:P" rendering (formatDouble, 6 digits). */
    std::string toString() const;

    double
    total() const
    {
        return lookup + bestPath + scan + peerStats;
    }
};

/** Parameters of a query stream. */
struct QueryStreamConfig
{
    uint64_t seed = 1;
    QueryMix mix;
    /**
     * Zipf exponent s of the popularity distribution over targets:
     * P(rank r) proportional to 1 / r^s. 0 is uniform; 1 is the
     * classic web/traffic skew.
     */
    double zipfExponent = 1.0;
    /**
     * Bits stripped from a target prefix to form a Scan range, so a
     * scan over a /24 table asks for its covering /16 by default.
     */
    int scanWidenBits = 8;
};

/**
 * Deterministic generator of queries against a fixed target
 * population.
 *
 * The target list is the prefix universe queries are drawn from
 * (normally the prefixes a benchmark's route workload announced —
 * queries for routes that exist; misses come from the address noise
 * below). Popularity rank equals list position: targets[0] is the
 * hottest. Each next() draws the class from the mix and the target
 * from the Zipf distribution; Lookup queries pick a random host
 * address inside the target so consecutive lookups of a hot prefix
 * still exercise distinct addresses.
 */
class QueryStream
{
  public:
    QueryStream(std::vector<net::Prefix> targets,
                const QueryStreamConfig &config);

    /** The next query; deterministic in (targets, config). */
    Query next();

    /** Queries generated so far. */
    uint64_t generated() const { return generated_; }

    const std::vector<net::Prefix> &targets() const { return targets_; }

  private:
    /** Zipf-ranked target index for one uniform draw. */
    size_t drawTarget();

    std::vector<net::Prefix> targets_;
    QueryStreamConfig config_;
    Rng rng_;
    /** Cumulative class weights, normalised to [0, 1]. */
    double classCdf_[4] = {0, 0, 0, 0};
    /** Cumulative Zipf weights, normalised to [0, 1]. */
    std::vector<double> zipfCdf_;
    uint64_t generated_ = 0;
};

} // namespace bgpbench::workload

#endif // BGPBENCH_WORKLOAD_QUERY_STREAM_HH
