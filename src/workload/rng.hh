/**
 * @file
 * Small deterministic PRNG for workload generation.
 *
 * std::mt19937 would work, but its state is large and its distributions
 * are implementation-defined; benchmarks must produce identical
 * workloads on every platform, so we use xoshiro256** with an explicit
 * splitmix64 seeder.
 */

#ifndef BGPBENCH_WORKLOAD_RNG_HH
#define BGPBENCH_WORKLOAD_RNG_HH

#include <cstdint>

namespace bgpbench::workload
{

/** xoshiro256** seeded via splitmix64; fully deterministic. */
class Rng
{
  public:
    explicit Rng(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    uint64_t
    below(uint64_t bound)
    {
        // Modulo bias is irrelevant for workload generation.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state_[4];
};

} // namespace bgpbench::workload

#endif // BGPBENCH_WORKLOAD_RNG_HH
