#include "workload/churn.hh"

#include <unordered_set>

#include "bgp/update_builder.hh"
#include "net/logging.hh"
#include "workload/rng.hh"

namespace bgpbench::workload
{

namespace
{

/** Attributes for one flapper, alternating path length per cycle. */
bgp::PathAttributesPtr
flapAttributes(const RouteSpec &route, const StreamConfig &stream,
               uint32_t cycle)
{
    bgp::PathAttributes attrs;
    attrs.origin = bgp::Origin::Igp;
    attrs.nextHop = stream.nextHop;

    std::vector<bgp::AsNumber> path;
    // Alternate between the base path and a once-prepended variant so
    // every re-announcement is a genuine attribute change.
    int prepends = 1 + stream.extraPrepends + int(cycle % 2);
    for (int i = 0; i < prepends; ++i)
        path.push_back(stream.speakerAs);
    path.insert(path.end(), route.basePath.begin(),
                route.basePath.end());
    attrs.asPath = bgp::AsPath::sequence(std::move(path));
    return bgp::makeAttributes(std::move(attrs));
}

} // namespace

std::vector<StreamPacket>
buildChurnStream(const std::vector<RouteSpec> &routes,
                 const ChurnConfig &config)
{
    if (routes.empty())
        fatal("churn stream requires routes");
    if (config.stream.speakerAs == 0)
        fatal("churn stream requires a speaker AS");
    if (config.withdrawFraction < 0 || config.withdrawFraction > 1)
        fatal("withdraw fraction must be in [0, 1]");

    size_t flappers = std::max<size_t>(
        1, size_t(double(routes.size()) * config.flappingFraction));
    flappers = std::min(flappers, routes.size());

    Rng rng(config.seed);

    struct FlapperState
    {
        bool announced = true; // phase 1 installed everything
        uint32_t cycles = 0;
    };
    std::vector<FlapperState> state(flappers);

    bgp::PackingOptions packing;
    packing.maxPrefixesPerUpdate = config.stream.prefixesPerPacket;
    bgp::UpdateBuilder builder(packing);
    std::unordered_set<net::Prefix> pending;
    std::vector<StreamPacket> packets;

    enum class BatchType
    {
        None,
        Announce,
        Withdraw
    };
    BatchType batch = BatchType::None;

    auto flush = [&]() {
        for (auto &update : builder.build()) {
            StreamPacket pkt;
            pkt.transactions = update.transactionCount();
            pkt.wire = bgp::encodeSegment(update);
            packets.push_back(std::move(pkt));
        }
        pending.clear();
        batch = BatchType::None;
    };

    // Events come in correlated waves, like real instability: a
    // failing link withdraws (or restores) a burst of prefixes at
    // once, which is also what lets large-packet mode actually pack.
    size_t wave_max =
        std::max<size_t>(1, config.stream.prefixesPerPacket);

    size_t announced_count = flappers;
    size_t emitted = 0;
    while (emitted < config.events) {
        bool withdraw = rng.uniform() < config.withdrawFraction &&
                        announced_count > 0;

        size_t wave = 1 + rng.below(wave_max);
        wave = std::min(wave, config.events - emitted);

        size_t added = 0;
        size_t misses = 0;
        while (added < wave && misses < 8) {
            size_t index = rng.below(flappers);
            FlapperState &flapper = state[index];
            const RouteSpec &route = routes[index];
            bool eligible = withdraw ? flapper.announced : true;
            if (!eligible || pending.count(route.prefix)) {
                ++misses;
                continue;
            }
            misses = 0;
            batch =
                withdraw ? BatchType::Withdraw : BatchType::Announce;
            pending.insert(route.prefix);

            if (withdraw) {
                builder.withdraw(route.prefix);
                flapper.announced = false;
                --announced_count;
            } else {
                builder.announce(
                    route.prefix,
                    flapAttributes(route, config.stream,
                                   flapper.cycles));
                if (!flapper.announced) {
                    ++flapper.cycles;
                    ++announced_count;
                }
                flapper.announced = true;
            }
            ++added;
            ++emitted;
        }
        flush();
    }

    // Re-announce anything left withdrawn so the table converges.
    for (size_t i = 0; i < flappers; ++i) {
        if (!state[i].announced) {
            if (batch == BatchType::Withdraw ||
                pending.count(routes[i].prefix)) {
                flush();
            }
            batch = BatchType::Announce;
            pending.insert(routes[i].prefix);
            builder.announce(routes[i].prefix,
                             flapAttributes(routes[i], config.stream,
                                            state[i].cycles));
            state[i].announced = true;
        }
    }
    flush();

    return packets;
}

} // namespace bgpbench::workload
