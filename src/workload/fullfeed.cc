#include "workload/fullfeed.hh"

#include <algorithm>

#include "bgp/attr_intern.hh"
#include "bgp/update_builder.hh"
#include "net/logging.hh"

namespace bgpbench::workload
{

namespace
{

/**
 * Per-length route share in 1/10000 of the table, loosely following
 * the CIDR report for a ~1M-route default-free table: thin supernets,
 * a /16 "classful legacy" bump, and the bulk at /22../24. /24 takes
 * whatever these rows leave over (~62%).
 */
constexpr uint64_t kLengthShare[] = {
    1,    // /8
    1,    // /9
    2,    // /10
    5,    // /11
    10,   // /12
    20,   // /13
    40,   // /14
    70,   // /15
    130,  // /16
    80,   // /17
    140,  // /18
    250,  // /19
    430,  // /20
    450,  // /21
    1250, // /22
    900,  // /23
    0,    // /24 (remainder)
};

} // namespace

FullFeedGenerator::FullFeedGenerator(const FullFeedConfig &config)
    : total_(config.routeCount),
      chunkPrefixes_(config.chunkPrefixes),
      prefixesPerPacket_(config.prefixesPerPacket),
      prefixRng_(config.seed),
      pathRng_(config.seed ^
               0x9e3779b97f4a7c15ULL * (uint64_t(config.feedAs) + 1))
{
    if (total_ == 0)
        fatal("full feed requires a positive route count");
    if (chunkPrefixes_ == 0)
        fatal("full feed requires a positive chunk size");
    if (config.feedAs == 0)
        fatal("full feed requires a feed AS");
    planLengthMix(config);
    buildPathPool(config);
}

void
FullFeedGenerator::planLengthMix(const FullFeedConfig &config)
{
    // Targets per length, each capped at half its address space so the
    // affine bijection never wraps into repeats; the slack (including
    // everything the short lengths cannot hold) lands on /24, whose
    // space covers feeds up to ~8M routes.
    uint64_t assigned = 0;
    for (size_t i = 0; i + 1 < kLengths; ++i) {
        const int length = kMinLength + int(i);
        const uint64_t capacity = (uint64_t(1) << length) / 2;
        const uint64_t target = std::min<uint64_t>(
            total_ * kLengthShare[i] / 10000, capacity);
        remaining_[i] = target;
        assigned += target;
    }
    const uint64_t slashTwentyFourCap = (uint64_t(1) << kMaxLength) / 2;
    if (total_ - assigned > slashTwentyFourCap)
        fatal("full feed route count exceeds the /24 address budget");
    remaining_[kLengths - 1] = total_ - assigned;
    remainingTotal_ = total_;

    // One bijection per length: x -> (a*x + c) mod 2^len with a odd.
    // Derived from the prefix stream so peers sharing a seed share the
    // exact prefix sequence.
    for (size_t i = 0; i < kLengths; ++i) {
        mult_[i] = prefixRng_.next() | 1;
        add_[i] = prefixRng_.next();
    }
    (void)config;
}

void
FullFeedGenerator::buildPathPool(const FullFeedConfig &config)
{
    const size_t attach = std::max<size_t>(1, config.attachCount);
    const size_t nodes = std::max(config.topologyAses, attach + 2);

    // Barabási–Albert preferential attachment, built inline (see the
    // header for why topo:: is off limits here): the first attach+1
    // nodes form a line, then every new node links to `attach`
    // distinct nodes picked degree-proportionally by sampling the
    // edge-endpoints list. parent[] keeps the first link of each node,
    // giving a spanning tree whose root-to-leaf walks serve as paths.
    std::vector<uint32_t> parent(nodes, 0);
    std::vector<uint32_t> endpoints;
    endpoints.reserve(2 * nodes * attach);
    for (size_t i = 1; i <= attach && i < nodes; ++i) {
        parent[i] = uint32_t(i - 1);
        endpoints.push_back(uint32_t(i - 1));
        endpoints.push_back(uint32_t(i));
    }
    std::vector<uint32_t> targets;
    for (size_t i = attach + 1; i < nodes; ++i) {
        targets.clear();
        while (targets.size() < attach) {
            uint32_t pick = endpoints[pathRng_.below(endpoints.size())];
            if (std::find(targets.begin(), targets.end(), pick) ==
                targets.end())
                targets.push_back(pick);
        }
        parent[i] = targets.front();
        for (uint32_t target : targets) {
            endpoints.push_back(target);
            endpoints.push_back(uint32_t(i));
        }
    }

    // Pool entry: the feed peer's AS, then the tree walk from (near)
    // the hub down to a uniformly drawn origin. Uniform origins plus
    // degree-proportional interior nodes reproduce the real shape:
    // hubs transit almost everything, stubs only originate.
    const bgp::AsNumber asBase = 1;
    constexpr size_t kMaxTransitHops = 9;
    pool_.reserve(config.pathPoolSize);
    std::vector<uint32_t> chain;
    for (size_t p = 0; p < config.pathPoolSize; ++p) {
        uint32_t origin = uint32_t(pathRng_.below(nodes));
        chain.clear();
        for (uint32_t node = origin; node != 0; node = parent[node])
            chain.push_back(node);
        chain.push_back(0);
        std::reverse(chain.begin(), chain.end());
        // Long walks lose their hub end, keeping the origin intact —
        // mirrors how distant stubs still show bounded path lengths.
        if (chain.size() > kMaxTransitHops)
            chain.erase(chain.begin(),
                        chain.end() - ptrdiff_t(kMaxTransitHops));

        bgp::PathAttributes attrs;
        attrs.origin = bgp::Origin::Igp;
        attrs.nextHop = config.nextHop;
        std::vector<bgp::AsNumber> path;
        path.reserve(1 + chain.size());
        path.push_back(config.feedAs);
        for (uint32_t node : chain)
            path.push_back(asBase + bgp::AsNumber(node));
        attrs.asPath = bgp::AsPath::sequence(std::move(path));
        pool_.push_back(bgp::makeAttributes(std::move(attrs)));
    }
}

int
FullFeedGenerator::drawLength()
{
    uint64_t pick = prefixRng_.below(remainingTotal_);
    for (size_t i = 0; i < kLengths; ++i) {
        if (pick < remaining_[i]) {
            --remaining_[i];
            --remainingTotal_;
            return kMinLength + int(i);
        }
        pick -= remaining_[i];
    }
    fatal("full feed length mix out of mass"); // unreachable
}

net::Prefix
FullFeedGenerator::prefixAt(int length, uint64_t k) const
{
    const size_t i = size_t(length - kMinLength);
    const uint64_t mask = (uint64_t(1) << length) - 1;
    const uint64_t value = (mult_[i] * k + add_[i]) & mask;
    return net::Prefix(net::Ipv4Address(uint32_t(value << (32 - length))),
                       length);
}

size_t
FullFeedGenerator::nextChunk(std::vector<StreamPacket> &out)
{
    if (done())
        return 0;
    const size_t count = std::min(chunkPrefixes_, total_ - generated_);

    bgp::PackingOptions packing;
    packing.maxPrefixesPerUpdate = prefixesPerPacket_;
    bgp::UpdateBuilder builder(packing);
    for (size_t i = 0; i < count; ++i) {
        const int length = drawLength();
        const size_t slot = size_t(length - kMinLength);
        const net::Prefix prefix = prefixAt(length, emitted_[slot]++);
        // Quadratic skew: a handful of pool paths cover a large share
        // of prefixes, like the dominant transit paths in a real feed.
        const double u = pathRng_.uniform();
        const size_t idx =
            std::min(pool_.size() - 1, size_t(u * u * double(pool_.size())));
        builder.announce(prefix, pool_[idx]);
    }
    generated_ += count;

    for (auto &update : builder.build()) {
        StreamPacket pkt;
        pkt.transactions = update.transactionCount();
        pkt.wire = bgp::encodeSegment(update);
        out.push_back(std::move(pkt));
    }
    return count;
}

} // namespace bgpbench::workload
