#include "workload/query_stream.hh"

#include <algorithm>
#include <cmath>

#include "net/logging.hh"
#include "stats/json.hh"

namespace bgpbench::workload
{

const char *
queryKindName(QueryKind kind)
{
    switch (kind) {
      case QueryKind::Lookup:
        return "lookup";
      case QueryKind::BestPath:
        return "best_path";
      case QueryKind::Scan:
        return "scan";
      case QueryKind::PeerStats:
        return "peer_stats";
    }
    return "?";
}

bool
QueryMix::parse(const std::string &text, QueryMix &out)
{
    double weights[4];
    size_t pos = 0;
    for (int i = 0; i < 4; ++i) {
        size_t colon = text.find(':', pos);
        bool last = i == 3;
        if (last != (colon == std::string::npos))
            return false;
        std::string part =
            text.substr(pos, last ? std::string::npos : colon - pos);
        if (part.empty())
            return false;
        size_t consumed = 0;
        double weight = 0.0;
        try {
            weight = std::stod(part, &consumed);
        } catch (...) {
            return false;
        }
        if (consumed != part.size() || weight < 0.0 ||
            !std::isfinite(weight))
            return false;
        weights[i] = weight;
        pos = colon + 1;
    }
    if (weights[0] + weights[1] + weights[2] + weights[3] <= 0.0)
        return false;
    out.lookup = weights[0];
    out.bestPath = weights[1];
    out.scan = weights[2];
    out.peerStats = weights[3];
    return true;
}

std::string
QueryMix::toString() const
{
    auto fmt = [](double w) {
        return stats::JsonWriter::formatNumber(w);
    };
    return fmt(lookup) + ":" + fmt(bestPath) + ":" + fmt(scan) + ":" +
           fmt(peerStats);
}

QueryStream::QueryStream(std::vector<net::Prefix> targets,
                         const QueryStreamConfig &config)
    : targets_(std::move(targets)), config_(config), rng_(config.seed)
{
    if (targets_.empty())
        fatal("QueryStream requires a non-empty target population");
    double total = config_.mix.total();
    if (total <= 0.0)
        fatal("QueryStream requires a non-zero query mix");
    classCdf_[0] = config_.mix.lookup / total;
    classCdf_[1] = classCdf_[0] + config_.mix.bestPath / total;
    classCdf_[2] = classCdf_[1] + config_.mix.scan / total;
    classCdf_[3] = 1.0;

    // Zipf CDF over ranks 1..N: weight(r) = r^-s. Built once; a draw
    // is a binary search, so the per-query cost is O(log N)
    // regardless of skew.
    zipfCdf_.reserve(targets_.size());
    double cumulative = 0.0;
    for (size_t r = 1; r <= targets_.size(); ++r) {
        cumulative +=
            std::pow(double(r), -config_.zipfExponent);
        zipfCdf_.push_back(cumulative);
    }
    for (double &value : zipfCdf_)
        value /= cumulative;
}

size_t
QueryStream::drawTarget()
{
    double u = rng_.uniform();
    size_t index = size_t(std::lower_bound(zipfCdf_.begin(),
                                           zipfCdf_.end(), u) -
                          zipfCdf_.begin());
    return std::min(index, targets_.size() - 1);
}

Query
QueryStream::next()
{
    ++generated_;
    Query query;
    double u = rng_.uniform();
    if (u < classCdf_[0])
        query.kind = QueryKind::Lookup;
    else if (u < classCdf_[1])
        query.kind = QueryKind::BestPath;
    else if (u < classCdf_[2])
        query.kind = QueryKind::Scan;
    else
        query.kind = QueryKind::PeerStats;

    if (query.kind == QueryKind::PeerStats)
        return query;

    const net::Prefix &target = targets_[drawTarget()];
    switch (query.kind) {
      case QueryKind::Lookup: {
        // A random host inside the target, so repeated lookups of a
        // hot prefix still vary the address bits.
        uint32_t host_bits = 32u - uint32_t(target.length());
        uint32_t noise =
            host_bits == 0
                ? 0
                : uint32_t(rng_.next()) &
                      ((host_bits == 32 ? ~0u : (1u << host_bits) - 1u));
        query.addr =
            net::Ipv4Address(target.address().toUint32() | noise);
        break;
      }
      case QueryKind::BestPath:
        query.prefix = target;
        break;
      case QueryKind::Scan:
        query.prefix = net::Prefix(
            target.address(),
            std::max(0, target.length() - config_.scanWidenBits));
        break;
      case QueryKind::PeerStats:
        break;
    }
    return query;
}

} // namespace bgpbench::workload
