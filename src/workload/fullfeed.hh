/**
 * @file
 * Streaming internet-like full-feed generator.
 *
 * Produces an announce-only feed shaped like a real default-free-zone
 * table: a deterministic CIDR mix over /8../24 whose mass sits at /24,
 * and AS paths drawn from a synthetic Barabási–Albert topology so a
 * few well-connected transit ASes appear on most paths while origins
 * follow the long tail. The generator is streaming by construction:
 * nextChunk() materialises only one chunk of framed packets at a time,
 * so a 1M-prefix feed never stages the whole table in memory and
 * ingestion interleaves with decision/flush in the consumer.
 *
 * Determinism contract: the prefix sequence depends only on
 * (seed, routeCount), never on feedAs — feeding the same seed to
 * several per-peer generators yields the *same* prefixes with
 * per-peer paths, which is how real multi-homed full feeds overlap.
 *
 * Layering: this lives below bgpbench_topo (which links this
 * library), so the preferential-attachment graph is built inline
 * with workload::Rng rather than via topo::Topology.
 */

#ifndef BGPBENCH_WORKLOAD_FULLFEED_HH
#define BGPBENCH_WORKLOAD_FULLFEED_HH

#include <cstdint>
#include <vector>

#include "bgp/path_attributes.hh"
#include "net/prefix.hh"
#include "workload/rng.hh"
#include "workload/update_stream.hh"

namespace bgpbench::workload
{

/** Tunables for one peer's full feed. */
struct FullFeedConfig
{
    /** Workload seed; controls the shared prefix sequence. */
    uint64_t seed = 1;

    /** Total routes to emit. */
    size_t routeCount = 1'000'000;

    /** The announcing peer's AS; first hop of every path. */
    bgp::AsNumber feedAs = 64600;

    /** NEXT_HOP carried by every announcement. */
    net::Ipv4Address nextHop = net::Ipv4Address(10, 0, 0, 1);

    /** Routes per nextChunk() call. */
    size_t chunkPrefixes = 4096;

    /** Packing cap handed to UpdateBuilder (0 = fill to 4096 B). */
    size_t prefixesPerPacket = 0;

    /** Synthetic AS graph size (power-law via BA attachment). */
    size_t topologyAses = 2048;

    /** BA attachment degree (edges per new AS). */
    size_t attachCount = 2;

    /** Distinct AS-path attribute sets to draw from. */
    size_t pathPoolSize = 32768;
};

/**
 * Emits a full feed chunk by chunk. Each chunk is a batch of framed
 * UPDATE packets (grouped by shared attributes, so packing mirrors a
 * real feed where popular paths pack many prefixes per message).
 */
class FullFeedGenerator
{
  public:
    explicit FullFeedGenerator(const FullFeedConfig &config);

    /** Total routes this feed will emit. */
    size_t routeCount() const { return total_; }

    /** Routes emitted so far. */
    size_t generated() const { return generated_; }

    bool done() const { return generated_ == total_; }

    /**
     * Append the next chunk of packets to @p out.
     * @return Routes emitted in this chunk; 0 once the feed is done.
     */
    size_t nextChunk(std::vector<StreamPacket> &out);

    /** Distinct attribute sets in the path pool (for reporting). */
    size_t pathPoolSize() const { return pool_.size(); }

  private:
    /** Smallest generated mask length. */
    static constexpr int kMinLength = 8;
    /** Largest (and most common) generated mask length. */
    static constexpr int kMaxLength = 24;
    static constexpr size_t kLengths = kMaxLength - kMinLength + 1;

    void planLengthMix(const FullFeedConfig &config);
    void buildPathPool(const FullFeedConfig &config);

    /** Draw a mask length weighted by the remaining per-length mass. */
    int drawLength();

    /** The k-th distinct prefix of length @p length. */
    net::Prefix prefixAt(int length, uint64_t k) const;

    size_t total_ = 0;
    size_t generated_ = 0;
    size_t chunkPrefixes_ = 0;
    size_t prefixesPerPacket_ = 0;

    /** Drives the prefix sequence; seeded from seed only. */
    Rng prefixRng_;
    /** Drives path selection; seeded from (seed, feedAs). */
    Rng pathRng_;

    /** Remaining / emitted routes per length (index 0 = /8). */
    uint64_t remaining_[kLengths] = {};
    uint64_t emitted_[kLengths] = {};
    uint64_t remainingTotal_ = 0;

    /**
     * Per-length affine bijection (odd multiplier mod 2^len), so the
     * k-th prefix of a length is unique without any dedup set.
     */
    uint64_t mult_[kLengths] = {};
    uint64_t add_[kLengths] = {};

    std::vector<bgp::PathAttributesPtr> pool_;
};

} // namespace bgpbench::workload

#endif // BGPBENCH_WORKLOAD_FULLFEED_HH
