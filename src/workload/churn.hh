/**
 * @file
 * Incremental-churn workload generation.
 *
 * The paper's motivation (section II): routers typically process on
 * the order of 100 BGP messages per second, with network-wide events
 * (worms, instability) pushing that 2-3 orders of magnitude higher.
 * This module generates sustained announce/withdraw churn over an
 * installed table — the steady-state workload the eight scenarios
 * bracket — for the churn benchmark and the damping experiments.
 */

#ifndef BGPBENCH_WORKLOAD_CHURN_HH
#define BGPBENCH_WORKLOAD_CHURN_HH

#include <cstdint>
#include <vector>

#include "workload/route_set.hh"
#include "workload/update_stream.hh"

namespace bgpbench::workload
{

/** Parameters of the churn generator. */
struct ChurnConfig
{
    /** Stream framing (speaker AS, next hop, packing). */
    StreamConfig stream;
    /** Total routing transactions (announce + withdraw) to emit. */
    size_t events = 10000;
    /**
     * Fraction of events that are withdrawals; each withdrawal of a
     * prefix is eventually followed by its re-announcement.
     */
    double withdrawFraction = 0.4;
    /**
     * Fraction of the route set that participates in churn ("a small
     * set of unstable prefixes causes most updates").
     */
    double flappingFraction = 0.1;
    /** Generator seed. */
    uint64_t seed = 99;
};

/**
 * Build a churn stream over @p routes: a random interleaving of
 * withdrawals and (re-)announcements of a flapping subset, with
 * alternating AS paths so re-announcements are genuine attribute
 * changes. Deterministic in the seed.
 *
 * The stream assumes the routes are already installed (run a Phase-1
 * injection first); every withdrawn prefix is re-announced before the
 * stream moves on, so the table converges back to full size.
 */
std::vector<StreamPacket>
buildChurnStream(const std::vector<RouteSpec> &routes,
                 const ChurnConfig &config);

} // namespace bgpbench::workload

#endif // BGPBENCH_WORKLOAD_CHURN_HH
