#include "workload/route_set.hh"

#include <unordered_set>

#include "net/logging.hh"
#include "workload/rng.hh"

namespace bgpbench::workload
{

std::vector<RouteSpec>
generateRouteSet(const RouteSetConfig &config)
{
    if (config.count == 0)
        fatal("route set count must be positive");
    if (config.minPathLength < 1 ||
        config.maxPathLength < config.minPathLength) {
        fatal("invalid AS path length range");
    }

    Rng rng(config.seed);
    std::vector<RouteSpec> routes;
    routes.reserve(config.count);
    std::unordered_set<net::Prefix> seen;
    seen.reserve(config.count * 2);

    while (routes.size() < config.count) {
        int length;
        if (rng.uniform() < config.slash24Fraction) {
            length = 24;
        } else {
            length = int(rng.range(16, 22));
        }

        // Draw from globally-routable-looking space: first octet in
        // [11, 200], avoiding 127 (loopback).
        uint32_t first = uint32_t(rng.range(11, 200));
        if (first == 127)
            first = 128;
        uint32_t rest = uint32_t(rng.next() & 0x00ffffff);
        net::Prefix prefix(
            net::Ipv4Address((first << 24) | rest), length);
        if (!seen.insert(prefix).second)
            continue;

        RouteSpec spec;
        spec.prefix = prefix;
        int hops = int(rng.range(uint64_t(config.minPathLength),
                                 uint64_t(config.maxPathLength)));
        spec.basePath.reserve(size_t(hops));
        for (int h = 0; h < hops; ++h) {
            spec.basePath.push_back(
                bgp::AsNumber(rng.range(100, 64000)));
        }
        routes.push_back(std::move(spec));
    }

    return routes;
}

std::vector<net::Ipv4Address>
destinationPool(const std::vector<RouteSpec> &routes, size_t count,
                uint64_t seed)
{
    if (routes.empty())
        fatal("destination pool requires routes");

    Rng rng(seed);
    std::vector<net::Ipv4Address> pool;
    pool.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const auto &spec = routes[rng.below(routes.size())];
        // A host address inside the prefix.
        uint32_t host_bits = 32 - uint32_t(spec.prefix.length());
        uint32_t offset =
            host_bits == 0
                ? 0
                : uint32_t(rng.next()) &
                      ((host_bits >= 32) ? ~uint32_t(0)
                                         : ((1u << host_bits) - 1));
        pool.emplace_back(spec.prefix.address().toUint32() | offset);
    }
    return pool;
}

} // namespace bgpbench::workload
