#include "workload/update_stream.hh"

#include "bgp/update_builder.hh"
#include "net/logging.hh"

namespace bgpbench::workload
{

namespace
{

/** Assemble the shared attributes for one packet group. */
bgp::PathAttributesPtr
groupAttributes(const RouteSpec &leader, const StreamConfig &config)
{
    bgp::PathAttributes attrs;
    attrs.origin = bgp::Origin::Igp;
    attrs.nextHop = config.nextHop;

    std::vector<bgp::AsNumber> path;
    path.reserve(1 + size_t(config.extraPrepends) +
                 leader.basePath.size());
    for (int i = 0; i <= config.extraPrepends; ++i)
        path.push_back(config.speakerAs);
    path.insert(path.end(), leader.basePath.begin(),
                leader.basePath.end());
    attrs.asPath = bgp::AsPath::sequence(std::move(path));
    return bgp::makeAttributes(std::move(attrs));
}

std::vector<StreamPacket>
toPackets(std::vector<bgp::UpdateMessage> updates)
{
    std::vector<StreamPacket> packets;
    packets.reserve(updates.size());
    for (const auto &update : updates) {
        StreamPacket pkt;
        pkt.transactions = update.transactionCount();
        pkt.wire = bgp::encodeSegment(update);
        packets.push_back(std::move(pkt));
    }
    return packets;
}

} // namespace

std::vector<StreamPacket>
buildAnnouncementStream(const std::vector<RouteSpec> &routes,
                        const StreamConfig &config)
{
    if (config.speakerAs == 0)
        fatal("stream config requires a speaker AS");
    if (config.prefixesPerPacket == 0)
        fatal("prefixes per packet must be positive");

    bgp::PackingOptions packing;
    packing.maxPrefixesPerUpdate = config.prefixesPerPacket;
    bgp::UpdateBuilder builder(packing);

    size_t group = config.prefixesPerPacket;
    for (size_t i = 0; i < routes.size(); ++i) {
        // Every packet group shares the attributes of its leader so
        // the whole group packs into a single UPDATE.
        const RouteSpec &leader = routes[i - (i % group)];
        builder.announce(routes[i].prefix,
                         groupAttributes(leader, config));
    }
    return toPackets(builder.build());
}

std::vector<StreamPacket>
buildWithdrawalStream(const std::vector<RouteSpec> &routes,
                      const StreamConfig &config)
{
    if (config.prefixesPerPacket == 0)
        fatal("prefixes per packet must be positive");

    bgp::PackingOptions packing;
    packing.maxPrefixesPerUpdate = config.prefixesPerPacket;
    bgp::UpdateBuilder builder(packing);
    for (const auto &route : routes)
        builder.withdraw(route.prefix);
    return toPackets(builder.build());
}

size_t
streamTransactions(const std::vector<StreamPacket> &packets)
{
    size_t total = 0;
    for (const auto &pkt : packets)
        total += pkt.transactions;
    return total;
}

size_t
streamBytes(const std::vector<StreamPacket> &packets)
{
    size_t total = 0;
    for (const auto &pkt : packets)
        total += pkt.wire->size();
    return total;
}

} // namespace bgpbench::workload
