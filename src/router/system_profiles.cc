#include "router/system_profiles.hh"

#include <algorithm>
#include <cctype>

#include "net/logging.hh"

namespace bgpbench::router
{

/*
 * Calibration notes
 * -----------------
 * The cost profiles below are obtained by inverting the additive cost
 * model against the paper's Table III. For a uni-core system, the
 * per-prefix service time of a scenario is the sum of the stage costs
 * it exercises; for a multi-core system the pipeline overlaps and the
 * bottleneck stage dominates.
 *
 * Pentium III (800 MHz), times from Table III:
 *   S5 (small, decision only):  1/1111.1 = 0.90 ms = parse + announce
 *   S6 (large, decision only):  1/3636.4 = 0.275 ms = parse/500 + ann.
 *     => parse ~ 0.63 ms (504k cycles), announce ~ 0.27 ms (219k).
 *   S1 - S5 = 4.5 ms  = rib + fea + kernel-install + 2 IPC hops
 *   S2 - S6 = 2.93 ms = rib + fea + kernel-install (IPC amortised)
 *     => IPC hop ~ 0.79 ms (630k), rib ~ fea ~ 0.75 ms (600k),
 *        kernel install ~ 1.13 ms (900k).
 *   S3/S4 imply withdrawals are cheaper in the bgp stage (~0.15 ms)
 *   and kernel removal cheaper than install (~0.88 ms).
 *   S7 ~ S8 (8.5 ms) despite packing => replacement work is per-prefix:
 *   unbatched IPC change notifications, kernel replace ~ 1.75 ms, and
 *   two advertisements per replacement (announce to Speaker 1 plus
 *   withdrawal of the previously advertised path to Speaker 2).
 *
 * Xeon: same code, ~5% more cycles per op, 3.0 GHz, 2 cores x 2
 * threads; the pipeline makes the kernel/fea stages the bottleneck.
 *
 * IXP2400 XScale: ~5x the cycles per op at 600 MHz (no L2, slow
 * SDRAM), with the decision process hit hardest (~2x extra), plus a
 * large xorp_rtrmgr background load (paper Fig. 3c).
 *
 * Cisco 3620: modelled as a black box: a ~92.5 ms per-message slow
 * path (all small-packet scenarios sit at ~10.7 tps regardless of
 * content) plus small per-prefix table costs that reproduce the
 * large-packet rows.
 */

SystemProfile
pentium3Profile()
{
    SystemProfile p;
    p.name = "PentiumIII";
    p.architecture = Architecture::UniCore;
    p.cpu = sim::CpuConfig{1, 1, 800e6, 0.65};
    p.busLimitMbps = 315.0; // PCI bus limitation (paper V.B)

    CostProfile &c = p.costs;
    c.msgParse = 480e3;
    c.msgPerByte = 16;
    c.announcePrefix = 219e3;
    c.withdrawPrefix = 120e3;
    c.advertisePrefix = 1000e3;
    c.msgSend = 480e3;
    c.policyPerEntry = 1.1e3;
    c.ribChange = 600e3;
    c.feaChange = 600e3;
    c.kernelRouteInstall = 900e3;
    c.kernelRouteRemove = 700e3;
    c.kernelRouteReplace = 1400e3;
    c.ipcPerMessage = 630e3;
    c.ipcBatchMax = 100;
    c.rtrmgrCyclesPerSecond = 6e6;
    c.policyCyclesPerSecond = 2e6;
    c.sessionPollCycles = 20e3;
    c.irqPerPacket = 5300;
    c.forwardPerPacket = 3000;
    c.lookupPerNode = 60;
    return p;
}

SystemProfile
xeonProfile()
{
    SystemProfile p;
    p.name = "Xeon";
    p.architecture = Architecture::DualCore;
    p.cpu = sim::CpuConfig{2, 2, 3.0e9, 0.65};
    p.busLimitMbps = 784.0; // PCI Express limitation (paper V.B)

    CostProfile &c = p.costs;
    // Same code base as the Pentium III; ~5% more cycles per op at
    // 3.75x the clock.
    c.msgParse = 504e3;
    c.msgPerByte = 17;
    c.announcePrefix = 230e3;
    c.withdrawPrefix = 126e3;
    c.advertisePrefix = 1050e3;
    c.msgSend = 504e3;
    c.policyPerEntry = 1.15e3;
    c.ribChange = 630e3;
    c.feaChange = 630e3;
    c.kernelRouteInstall = 945e3;
    c.kernelRouteRemove = 735e3;
    c.kernelRouteReplace = 1470e3;
    c.ipcPerMessage = 661e3;
    c.ipcBatchMax = 100;
    c.rtrmgrCyclesPerSecond = 12e6;
    c.policyCyclesPerSecond = 3e6;
    c.sessionPollCycles = 20e3;
    c.irqPerPacket = 6000;
    c.forwardPerPacket = 4000;
    c.lookupPerNode = 30;
    return p;
}

SystemProfile
ixp2400Profile()
{
    SystemProfile p;
    p.name = "IXP2400";
    p.architecture = Architecture::NetworkProcessor;
    p.cpu = sim::CpuConfig{1, 1, 600e6, 0.65};
    p.busLimitMbps = 940.0; // network interconnect (paper V.B)
    p.separateDataPlane = true;

    CostProfile &c = p.costs;
    // XScale: ~5x the cycles per operation (no L2 cache, slow
    // memory); the pointer-chasing decision process suffers ~2x more.
    c.msgParse = 2400e3;
    c.msgPerByte = 80;
    c.announcePrefix = 2190e3;
    c.withdrawPrefix = 600e3;
    c.advertisePrefix = 5000e3;
    c.msgSend = 2400e3;
    c.policyPerEntry = 11e3;
    c.ribChange = 3000e3;
    c.feaChange = 3000e3;
    c.kernelRouteInstall = 4500e3;
    c.kernelRouteRemove = 3500e3;
    c.kernelRouteReplace = 7000e3;
    c.ipcPerMessage = 3150e3;
    c.ipcBatchMax = 100;
    // The router manager is a considerable share of the small XScale
    // (paper Fig. 3c).
    c.rtrmgrCyclesPerSecond = 150e6;
    c.policyCyclesPerSecond = 10e6;
    c.sessionPollCycles = 100e3;
    // Forwarding runs entirely on the eight packet processors; these
    // costs are never charged to the control CPU.
    c.irqPerPacket = 0;
    c.forwardPerPacket = 0;
    c.lookupPerNode = 0;
    return p;
}

SystemProfile
ciscoProfile()
{
    SystemProfile p;
    p.name = "Cisco";
    p.architecture = Architecture::Commercial;
    p.cpu = sim::CpuConfig{1, 1, 133e6, 0.65};
    p.busLimitMbps = 78.0; // 100 Mbps ports (paper V.B)
    p.monolithicControl = true;

    CostProfile &c = p.costs;
    // Black-box IOS model: a ~92.5 ms per-message slow path puts all
    // small-packet scenarios at ~10.7 tps; per-prefix costs are small.
    c.msgGateNs = 92'500'000;
    c.msgParse = 40e3;
    c.msgPerByte = 4;
    c.announcePrefix = 15.2e3;
    c.withdrawPrefix = 8.0e3;
    c.advertisePrefix = 1.5e3;
    c.msgSend = 10e3;
    c.policyPerEntry = 80;
    c.ribChange = 0;
    c.feaChange = 0;
    c.kernelRouteInstall = 13.4e3;
    c.kernelRouteRemove = 12.9e3;
    c.kernelRouteReplace = 13.4e3;
    c.ipcPerMessage = 0;
    c.ipcBatchMax = 1000;
    c.rtrmgrCyclesPerSecond = 0;
    c.policyCyclesPerSecond = 0;
    c.sessionPollCycles = 5e3;
    c.irqPerPacket = 1500;
    c.forwardPerPacket = 12000;
    c.lookupPerNode = 0;
    return p;
}

std::vector<SystemProfile>
allSystemProfiles()
{
    return {pentium3Profile(), xeonProfile(), ixp2400Profile(),
            ciscoProfile()};
}

SystemProfile
profileByName(const std::string &name)
{
    std::string lower;
    for (char ch : name)
        lower.push_back(char(std::tolower((unsigned char)ch)));

    for (auto &profile : allSystemProfiles()) {
        std::string pl;
        for (char ch : profile.name)
            pl.push_back(char(std::tolower((unsigned char)ch)));
        if (pl == lower)
            return profile;
    }
    fatal("unknown system profile: '" + name + "'");
}

} // namespace bgpbench::router
