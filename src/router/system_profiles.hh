/**
 * @file
 * The four router system configurations of the paper's Table II.
 */

#ifndef BGPBENCH_ROUTER_SYSTEM_PROFILES_HH
#define BGPBENCH_ROUTER_SYSTEM_PROFILES_HH

#include <string>
#include <vector>

#include "router/cost_model.hh"
#include "sim/cpu.hh"

namespace bgpbench::router
{

/** Architectural class of a system (paper section IV.A). */
enum class Architecture
{
    UniCore,
    DualCore,
    NetworkProcessor,
    Commercial,
};

/** Complete description of one router platform. */
struct SystemProfile
{
    std::string name;
    Architecture architecture = Architecture::UniCore;
    sim::CpuConfig cpu;
    CostProfile costs;
    /**
     * Hard forwarding ceiling in Mbps (paper section V.B: PCI bus,
     * PCIe bus, network interconnect, or port speed).
     */
    double busLimitMbps = 1000.0;
    /**
     * True when forwarding runs on dedicated packet processors that
     * never touch the control CPU (the network processor router).
     */
    bool separateDataPlane = false;
    /**
     * True when all control processing runs in a single process
     * (the commercial router's monolithic IOS image) rather than the
     * five-process XORP suite.
     */
    bool monolithicControl = false;
    /** TCP receive buffer per BGP session, bytes (flow control). */
    size_t rxBufferBytes = 65536;
};

/** @name The paper's four systems (Table II)
 *  @{
 */
/** Intel Pentium III 800 MHz, Linux 2.6, XORP 1.3 (uni-core). */
SystemProfile pentium3Profile();
/** Dual-core Intel Xeon 3.0 GHz with HT, Linux 2.6, XORP 1.3. */
SystemProfile xeonProfile();
/** Intel IXP2400: XScale 600 MHz control CPU, 8 packet processors. */
SystemProfile ixp2400Profile();
/** Cisco 3620 running IOS 12.1 (black-box commercial router). */
SystemProfile ciscoProfile();
/** @} */

/** All four, in the paper's column order. */
std::vector<SystemProfile> allSystemProfiles();

/** Look up a profile by (case-insensitive) name; fatal if unknown. */
SystemProfile profileByName(const std::string &name);

} // namespace bgpbench::router

#endif // BGPBENCH_ROUTER_SYSTEM_PROFILES_HH
