/**
 * @file
 * Per-operation cost model of a BGP router system.
 *
 * The simulated routers execute the real protocol stack; this model
 * determines how many virtual CPU cycles each operation costs on a
 * given platform. The values for the four paper systems are derived
 * by inverting the additive cost model against the paper's Table III
 * (see system_profiles.cc for the arithmetic); the structure — what
 * is charged where — mirrors the XORP process pipeline described in
 * the paper's Figure 3 and the kernel data path of section IV.B.
 *
 * Stage accounting:
 *   - xorp_bgp: per-message parse, per-prefix decision, outbound
 *     update construction;
 *   - xorp_rib: Loc-RIB redistribution, IPC with bgp/fea;
 *   - xorp_fea: forwarding-engine abstraction, IPC with the kernel;
 *   - kernel ("system"): FIB writes and, on shared-data-path systems,
 *     packet forwarding; "interrupts" is the per-packet IRQ context.
 * On one core the stages serialise; on multiple cores they pipeline,
 * which is the mechanism behind the paper's uni/dual-core gap.
 */

#ifndef BGPBENCH_ROUTER_COST_MODEL_HH
#define BGPBENCH_ROUTER_COST_MODEL_HH

#include <cstdint>

#include "sim/time.hh"

namespace bgpbench::router
{

/** All per-operation costs of one platform, in CPU cycles. */
struct CostProfile
{
    /** @name Control plane: xorp_bgp (or the monolithic process)
     *  @{
     */
    /** Fixed cost of receiving one BGP message (socket + parse). */
    double msgParse = 0;
    /** Additional parse cost per wire byte. */
    double msgPerByte = 0;
    /** Adj-RIB-In update + decision process, per announced prefix. */
    double announcePrefix = 0;
    /** Adj-RIB-In removal + decision process, per withdrawn prefix. */
    double withdrawPrefix = 0;
    /** Adj-RIB-Out maintenance + update build, per prefix sent. */
    double advertisePrefix = 0;
    /** Fixed cost of emitting one outbound message. */
    double msgSend = 0;
    /**
     * Route-map evaluation cost per entry walked per evaluated
     * prefix, charged on import (per announced prefix) and export
     * (per advertised prefix) when the session carries a policy.
     * Zero keeps the paper's policy-free configuration.
     */
    double policyPerEntry = 0;
    /**
     * Serialisation latency per inbound BGP message in nanoseconds —
     * time the control process takes to get around to the next
     * message regardless of CPU availability. Dominant on the
     * commercial router, whose ~10 msg/s small-packet ceiling
     * (Table III) is a per-packet slow path, not a cycle shortage.
     */
    sim::SimTime msgGateNs = 0;
    /** @} */

    /** @name Control plane: rib / fea / kernel pipeline stages
     *  @{
     */
    /** xorp_rib work per Loc-RIB change. */
    double ribChange = 0;
    /** xorp_fea work per forwarding-table change pushed down. */
    double feaChange = 0;
    /** Kernel FIB insert of a new prefix. */
    double kernelRouteInstall = 0;
    /** Kernel FIB removal. */
    double kernelRouteRemove = 0;
    /** Kernel FIB replace of an existing prefix's next hop. */
    double kernelRouteReplace = 0;
    /** Cost of one inter-process message (charged per batch hop). */
    double ipcPerMessage = 0;
    /**
     * Maximum route changes per IPC batch for bulk installs and
     * removals. Replacements of existing routes flow as individual
     * change notifications and never batch — this is what keeps
     * scenarios 7/8 slow even with large packets (Table III).
     */
    uint32_t ipcBatchMax = 1;
    /** @} */

    /** @name Background processes
     *  @{
     */
    /** xorp_rtrmgr management overhead, cycles per second. */
    double rtrmgrCyclesPerSecond = 0;
    /** xorp_policy configuration traffic, cycles per second. */
    double policyCyclesPerSecond = 0;
    /** Session timer poll job, cycles per poll. */
    double sessionPollCycles = 0;
    /** @} */

    /** @name Data plane
     *  @{
     */
    /** Interrupt context cost per received data packet. */
    double irqPerPacket = 0;
    /** Kernel forwarding cost per packet (checksum, TTL, queueing). */
    double forwardPerPacket = 0;
    /** Additional cost per LPM trie node visited during lookup. */
    double lookupPerNode = 0;
    /**
     * Input queue depth expressed as nanoseconds of kernel work;
     * packets arriving while the kernel backlog exceeds this are
     * dropped (receive ring overflow).
     */
    sim::SimTime queueLimitNs = 40'000'000; // 40 ms
    /** @} */
};

} // namespace bgpbench::router

#endif // BGPBENCH_ROUTER_COST_MODEL_HH
