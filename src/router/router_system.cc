#include "router/router_system.hh"

#include <algorithm>
#include <cmath>

#include "net/logging.hh"
#include "net/packet.hh"

namespace bgpbench::router
{

namespace
{

bgp::SpeakerConfig
speakerConfigFor(const RouterConfig &config)
{
    bgp::SpeakerConfig sc;
    sc.localAs = config.localAs;
    sc.routerId = config.routerId;
    sc.localAddress = config.address;
    sc.holdTimeSec = config.holdTimeSec;
    sc.damping = config.damping;
    // Outbound updates pack as many prefixes as fit in 4096 bytes,
    // like a real stack; the test speakers control their own packing.
    sc.packing = bgp::PackingOptions{};
    return sc;
}

} // namespace

RouterSystem::RouterSystem(sim::Simulator *sim, SystemProfile profile,
                           RouterConfig config)
    : sim_(sim), profile_(std::move(profile)),
      config_(std::move(config)), cpu_(profile_.cpu),
      speaker_(speakerConfigFor(config_), this), engine_(&fib_),
      fwdBytes_(config_.statsIntervalSec, "forwarded-bytes"),
      drops_(config_.statsIntervalSec, "dropped-packets"),
      alive_(std::make_shared<bool>(true))
{
    panicIf(sim_ == nullptr, "router requires a simulator");
    if (config_.peers.empty())
        fatal("router configured with no BGP peers");

    // Kernel-context processes, pinned to CPU 0 as on an
    // unconfigured Linux 2.6 (no irqbalance).
    irqProc_ = std::make_unique<sim::SimProcess>(sim::SimProcess::Config{
        "interrupts", sim::priority::interrupt, 0});
    kernelProc_ =
        std::make_unique<sim::SimProcess>(sim::SimProcess::Config{
            "system", sim::priority::kernel, 0});
    cpu_.addProcess(irqProc_.get());
    cpu_.addProcess(kernelProc_.get());

    auto add_control = [this](const std::string &name) {
        controlProcs_.push_back(std::make_unique<sim::SimProcess>(
            sim::SimProcess::Config{name, sim::priority::user, -1}));
        cpu_.addProcess(controlProcs_.back().get());
        return controlProcs_.back().get();
    };

    if (profile_.monolithicControl) {
        sim::SimProcess *ios = add_control("ios");
        bgpProc_ = ios;
        ribProc_ = ios;
        feaProc_ = ios;
        rtrmgrProc_ = ios;
        policyProc_ = ios;
    } else {
        bgpProc_ = add_control("xorp_bgp");
        feaProc_ = add_control("xorp_fea");
        ribProc_ = add_control("xorp_rib");
        policyProc_ = add_control("xorp_policy");
        rtrmgrProc_ = add_control("xorp_rtrmgr");
    }

    // Register peers with the protocol engine and create ports.
    ports_.resize(config_.peers.size());
    for (size_t i = 0; i < config_.peers.size(); ++i) {
        speaker_.addPeer(config_.peers[i]);
        ports_[i].peerId = config_.peers[i].id;
        ports_[i].importPolicyEntries =
            config_.peers[i].importPolicy.size();
        ports_[i].exportPolicyEntries =
            config_.peers[i].exportPolicy.size();
    }

    // Track CPU load of every process ("top" style, % of one core).
    loadTracker_ = std::make_unique<sim::CpuLoadTracker>(
        profile_.cpu.cyclesPerSecond, config_.statsIntervalSec);
    for (auto &proc : controlProcs_)
        loadTracker_->track(proc.get());
    loadTracker_->track(irqProc_.get());
    loadTracker_->track(kernelProc_.get());
}

RouterSystem::~RouterSystem()
{
    running_ = false;
    *alive_ = false;
}

void
RouterSystem::start()
{
    panicIf(running_, "router started twice");
    running_ = true;

    // Scheduling quantum: traffic arrivals + CPU time allocation.
    sim_->scheduleEvery(config_.quantum, [this, alive = alive_]() {
        if (!*alive || !running_)
            return false;
        quantumTick();
        return true;
    });

    // Session timers: a real stack wakes up to emit KEEPALIVEs and
    // check hold timers; the work is charged to the BGP process.
    sim_->scheduleEvery(sim::nsFromSec(1.0), [this, alive = alive_]() {
        if (!*alive || !running_)
            return false;
        bgpProc_->post(uint64_t(profile_.costs.sessionPollCycles),
                       [this]() {
                           speaker_.pollTimers(sim_->now());
                       });
        return true;
    });

    // Background management processes (xorp_rtrmgr, xorp_policy).
    const auto &costs = profile_.costs;
    if (costs.rtrmgrCyclesPerSecond > 0 ||
        costs.policyCyclesPerSecond > 0) {
        sim_->scheduleEvery(sim::nsFromMs(100), [this, alive = alive_]() {
            if (!*alive || !running_)
                return false;
            const auto &c = profile_.costs;
            if (c.rtrmgrCyclesPerSecond > 0) {
                rtrmgrProc_->post(
                    uint64_t(c.rtrmgrCyclesPerSecond * 0.1));
            }
            if (c.policyCyclesPerSecond > 0) {
                policyProc_->post(
                    uint64_t(c.policyCyclesPerSecond * 0.1));
            }
            return true;
        });
    }

    // Instrumentation sampling.
    sim_->scheduleEvery(sim::nsFromSec(config_.statsIntervalSec),
                        [this, alive = alive_]() {
                            if (!*alive || !running_)
                                return false;
                            loadTracker_->sample(sim_->now());
                            return true;
                        });
}

void
RouterSystem::shutdown()
{
    running_ = false;
}

void
RouterSystem::connectPeer(size_t port)
{
    panicIf(port >= ports_.size(), "bad port index");
    bgp::PeerId peer = ports_[port].peerId;
    speaker_.startPeer(peer, sim_->now());
    speaker_.tcpEstablished(peer, sim_->now());
}

size_t
RouterSystem::rxSpace(size_t port) const
{
    panicIf(port >= ports_.size(), "bad port index");
    size_t used = ports_[port].queuedBytes;
    return used >= profile_.rxBufferBytes
               ? 0
               : profile_.rxBufferBytes - used;
}

void
RouterSystem::deliverToPort(size_t port, net::WireSegmentPtr segment)
{
    panicIf(port >= ports_.size(), "bad port index");
    Port &p = ports_[port];
    ++controlPlane_.segmentsReceived;

    // NIC interrupt for the control-plane segment.
    if (profile_.costs.irqPerPacket > 0 && !profile_.separateDataPlane)
        irqProc_->post(uint64_t(profile_.costs.irqPerPacket));

    p.decoder.feed(std::move(segment));

    bgp::DecodeError error;
    while (true) {
        size_t pre = p.decoder.bufferedBytes();
        auto msg = p.decoder.next(error);
        if (!msg) {
            if (error) {
                // Malformed stream: a real router sends the matching
                // NOTIFICATION and drops the session; stopPeer emits
                // a CEASE and invalidates the peer's routes.
                speaker_.stopPeer(p.peerId, sim_->now());
            }
            break;
        }
        size_t consumed = pre - p.decoder.bufferedBytes();
        inbound_.push_back(
            InboundMessage{port, std::move(*msg), consumed});
        p.queuedBytes += consumed;
        ++pendingControlWork_;
    }

    maybeDispatch();
}

void
RouterSystem::deliverToPort(size_t port, std::vector<uint8_t> bytes)
{
    deliverToPort(port,
                  net::BufferPool::global().wrap(std::move(bytes)));
}

void
RouterSystem::setPortTransmitHandler(
    size_t port, std::function<void(net::WireSegmentPtr)> handler)
{
    panicIf(port >= ports_.size(), "bad port index");
    ports_[port].transmitHandler = std::move(handler);
}

void
RouterSystem::setPortDrainHandler(size_t port,
                                  std::function<void()> handler)
{
    panicIf(port >= ports_.size(), "bad port index");
    ports_[port].drainHandler = std::move(handler);
}

void
RouterSystem::setCrossTraffic(workload::CrossTrafficConfig config)
{
    crossTraffic_ = std::move(config);
    arrivalCarry_ = 0.0;
    nextDestination_ = 0;
}

void
RouterSystem::installStaticRoute(const net::Prefix &prefix,
                                 net::Ipv4Address next_hop,
                                 uint32_t interface)
{
    fib_.install(prefix, fib::FibEntry{next_hop, interface});
}

bool
RouterSystem::controlDrained() const
{
    return pendingControlWork_ == 0 && inbound_.empty() &&
           !dispatchBusy_;
}

void
RouterSystem::postCounted(sim::SimProcess *proc, double cycles,
                          std::function<void()> apply)
{
    ++pendingControlWork_;
    proc->post(uint64_t(std::max(0.0, cycles)),
               [this, apply = std::move(apply)]() {
                   if (apply)
                       apply();
                   --pendingControlWork_;
               });
}

double
RouterSystem::messageCost(const InboundMessage &inbound) const
{
    const CostProfile &c = profile_.costs;
    double cost =
        c.msgParse + c.msgPerByte * double(inbound.wireBytes);
    if (const auto *update =
            std::get_if<bgp::UpdateMessage>(&inbound.msg)) {
        cost += c.announcePrefix * double(update->nlri.size());
        cost += c.withdrawPrefix *
                double(update->withdrawnRoutes.size());
        // Import route-map walk, charged per announced prefix.
        cost += c.policyPerEntry *
                double(ports_[inbound.port].importPolicyEntries) *
                double(update->nlri.size());
    }
    return cost;
}

void
RouterSystem::maybeDispatch()
{
    if (dispatchBusy_ || inbound_.empty())
        return;
    if (sim_->now() < gateReady_)
        return;

    InboundMessage inbound = std::move(inbound_.front());
    inbound_.pop_front();
    dispatchBusy_ = true;

    double cost = messageCost(inbound);
    bgpProc_->post(
        uint64_t(cost), [this, inbound = std::move(inbound)]() {
            Port &port = ports_[inbound.port];

            fibBatch_.clear();
            lastLocRibChanges_ = 0;
            speaker_.handleMessage(port.peerId, inbound.msg,
                                   sim_->now());
            ++controlPlane_.messagesDispatched;

            bool defer_gate = false;
            if (!fibBatch_.empty() || lastLocRibChanges_ > 0) {
                // On monolithic systems the gate restarts only once
                // the control process has finished the message's
                // route writes too (postFibPipeline arms it).
                defer_gate = profile_.monolithicControl &&
                             !fibBatch_.empty();
                postFibPipeline(std::move(fibBatch_),
                                lastLocRibChanges_);
                fibBatch_.clear();
            }

            port.queuedBytes -= std::min(port.queuedBytes,
                                         inbound.wireBytes);
            dispatchBusy_ = false;
            // A deferred gate blocks dispatch entirely until the
            // route writes complete and arm the real deadline.
            gateReady_ = defer_gate
                             ? sim::simTimeNever
                             : sim_->now() + profile_.costs.msgGateNs;
            --pendingControlWork_;

            if (port.drainHandler)
                port.drainHandler();
            maybeDispatch();
        });
}

void
RouterSystem::onTransmit(bgp::PeerId to, bgp::MessageType type,
                         net::WireSegmentPtr wire, size_t transactions)
{
    (void)type;
    const CostProfile &c = profile_.costs;
    double cost =
        c.msgSend + c.advertisePrefix * double(transactions);

    // Find the port carrying this peer.
    size_t port = ports_.size();
    for (size_t i = 0; i < ports_.size(); ++i) {
        if (ports_[i].peerId == to) {
            port = i;
            break;
        }
    }
    panicIf(port == ports_.size(), "transmit to unknown peer");
    // Export route-map walk, charged per advertised prefix.
    cost += c.policyPerEntry *
            double(ports_[port].exportPolicyEntries) *
            double(transactions);

    postCounted(bgpProc_, cost,
                [this, port, wire = std::move(wire)]() mutable {
                    ++controlPlane_.messagesTransmitted;
                    if (ports_[port].transmitHandler)
                        ports_[port].transmitHandler(std::move(wire));
                });
}

void
RouterSystem::onFibUpdate(const bgp::FibUpdate &update)
{
    fibBatch_.push_back(update);
}

void
RouterSystem::onUpdateProcessed(bgp::PeerId from,
                                const bgp::UpdateStats &stats)
{
    (void)from;
    lastLocRibChanges_ += stats.locRibChanges;
}

void
RouterSystem::postFibPipeline(std::vector<bgp::FibUpdate> batch,
                              size_t loc_rib_changes)
{
    const CostProfile &c = profile_.costs;

    // Classify changes against the FIB as it stands; between phases
    // the pipeline is drained, so this matches apply-time reality.
    double kernel_cycles = 0;
    size_t bulk_changes = 0;
    size_t replacements = 0;
    for (const auto &update : batch) {
        bool exists = fib_.exact(update.prefix) != nullptr;
        if (update.isWithdraw()) {
            kernel_cycles += c.kernelRouteRemove;
            ++bulk_changes;
        } else if (exists) {
            kernel_cycles += c.kernelRouteReplace;
            ++replacements;
        } else {
            kernel_cycles += c.kernelRouteInstall;
            ++bulk_changes;
        }
    }

    // Bulk installs/removals batch onto IPC messages; replacements
    // flow as individual change notifications (see cost_model.hh).
    size_t ipc_messages = replacements;
    if (bulk_changes > 0) {
        ipc_messages += (bulk_changes + c.ipcBatchMax - 1) /
                        c.ipcBatchMax;
    }

    double rib_cycles = c.ribChange * double(loc_rib_changes) +
                        c.ipcPerMessage * double(ipc_messages);
    double fea_cycles = c.feaChange * double(batch.size()) +
                        c.ipcPerMessage * double(ipc_messages);

    // On the monolithic commercial router the routing table is
    // maintained by the same IOS process that parses updates, so
    // route writes serialise with message processing instead of
    // overlapping the per-message gate.
    sim::SimProcess *route_proc = profile_.monolithicControl
                                      ? bgpProc_
                                      : kernelProc_.get();

    postCounted(
        ribProc_, rib_cycles,
        [this, batch = std::move(batch), fea_cycles, kernel_cycles,
         route_proc]() mutable {
            postCounted(
                feaProc_, fea_cycles,
                [this, batch = std::move(batch), kernel_cycles,
                 route_proc]() mutable {
                    postCounted(
                        route_proc, kernel_cycles,
                        [this, batch = std::move(batch)]() {
                            for (const auto &update : batch) {
                                if (update.isWithdraw()) {
                                    fib_.remove(update.prefix);
                                } else {
                                    fib::FibEntry entry{
                                        *update.nextHop, 1};
                                    entry.extraHops =
                                        update.extraHops;
                                    fib_.install(update.prefix,
                                                 std::move(entry));
                                }
                                ++controlPlane_.fibChangesApplied;
                            }
                            if (profile_.monolithicControl) {
                                gateReady_ =
                                    sim_->now() +
                                    profile_.costs.msgGateNs;
                                maybeDispatch();
                            }
                        });
                });
        });
}

void
RouterSystem::quantumTick()
{
    double quantum_sec = sim::toSeconds(config_.quantum);
    crossTrafficTick(quantum_sec);
    maybeDispatch();
    cpu_.step(config_.quantum);
}

void
RouterSystem::crossTrafficTick(double quantum_sec)
{
    double pps = crossTraffic_.packetsPerSecond();
    if (pps <= 0)
        return;

    const CostProfile &c = profile_.costs;
    double t = sim::toSeconds(sim_->now());

    double offered = pps * quantum_sec + arrivalCarry_;
    auto n = uint64_t(offered);
    arrivalCarry_ = offered - double(n);
    if (n == 0)
        return;
    dataPlane_.offeredPackets += n;

    // The bus/port limit caps what ever reaches the forwarding path.
    double bus_pps = profile_.busLimitMbps * 1e6 /
                     (8.0 * double(crossTraffic_.packetBytes));
    uint64_t accepted = n;
    if (pps > bus_pps) {
        auto bus_drop = uint64_t(std::round(
            double(n) * (1.0 - bus_pps / pps)));
        bus_drop = std::min(bus_drop, n);
        accepted -= bus_drop;
        dataPlane_.busDrops += bus_drop;
    }
    if (accepted == 0)
        return;

    auto forward_batch = [this, t](uint64_t count) {
        // Materialise a small sample of real packets so the actual
        // RFC-1812 engine (checksum, TTL, trie lookup) is exercised;
        // the rest of the batch is accounted statistically.
        uint64_t sample = std::min<uint64_t>(count, 2);
        int visited_total = 0;
        bool routable = true;
        for (uint64_t s = 0; s < sample; ++s) {
            net::Ipv4Address dest =
                crossTraffic_.destinations.empty()
                    ? net::Ipv4Address(198, 18, 0, 1)
                    : crossTraffic_.destinations
                          [nextDestination_++ %
                           crossTraffic_.destinations.size()];
            net::DataPacket pkt = net::makeDataPacket(
                crossTraffic_.source, dest,
                crossTraffic_.packetBytes);
            auto result = engine_.process(pkt);
            visited_total += result.lookupNodesVisited;
            routable = routable && result.forwarded;
        }
        if (sample > 0)
            lastAvgLookupNodes_ =
                double(visited_total) / double(sample);

        if (!routable) {
            dataPlane_.queueDrops += count;
            drops_.add(t, double(count));
            return;
        }
        dataPlane_.forwardedPackets += count;
        uint64_t bytes = count * crossTraffic_.packetBytes;
        dataPlane_.forwardedBytes += bytes;
        fwdBytes_.add(t, double(bytes));
    };

    if (profile_.separateDataPlane) {
        // Dedicated packet processors: zero control-CPU cost.
        forward_batch(accepted);
        return;
    }

    // Receive-queue overflow: drop when the kernel is too far behind.
    double backlog_ns = double(kernelProc_->backlogCycles()) /
                        profile_.cpu.cyclesPerSecond * 1e9;
    if (backlog_ns > double(c.queueLimitNs)) {
        dataPlane_.queueDrops += accepted;
        drops_.add(t, double(accepted));
        // Interrupts still fire for dropped packets.
        irqProc_->post(
            uint64_t(c.irqPerPacket * double(accepted)));
        return;
    }

    irqProc_->post(uint64_t(c.irqPerPacket * double(accepted)));

    double fwd_cycles =
        double(accepted) *
        (c.forwardPerPacket + c.lookupPerNode * lastAvgLookupNodes_);
    kernelProc_->post(uint64_t(fwd_cycles),
                      [forward_batch, accepted]() {
                          forward_batch(accepted);
                      });
}

} // namespace bgpbench::router
