/**
 * @file
 * The simulated router under test.
 *
 * One class models all four of the paper's systems; the differences —
 * uni-core vs dual-core, separate packet processors, monolithic
 * control — come entirely from the SystemProfile:
 *
 *   - A real BgpSpeaker performs all protocol work; every operation
 *     is paced by jobs on simulated processes (the XORP suite:
 *     xorp_bgp, xorp_policy, xorp_rib, xorp_fea, xorp_rtrmgr — or a
 *     single monolithic process for the commercial router).
 *   - The kernel data path ("interrupts" + "system" processes, pinned
 *     to CPU 0) forwards cross-traffic with the real RFC-1812 engine
 *     and applies FIB writes, so control and data plane contend for
 *     the CPU exactly as the paper describes — unless the profile
 *     declares a separate data plane (the network processor).
 *   - BGP sessions terminate at bounded receive buffers, providing
 *     the TCP backpressure that lets a slow router pace fast test
 *     speakers.
 */

#ifndef BGPBENCH_ROUTER_ROUTER_SYSTEM_HH
#define BGPBENCH_ROUTER_ROUTER_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "bgp/speaker.hh"
#include "fib/forwarding_engine.hh"
#include "fib/forwarding_table.hh"
#include "router/system_profiles.hh"
#include "sim/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/load_tracker.hh"
#include "sim/process.hh"
#include "stats/time_series.hh"
#include "workload/cross_traffic.hh"

namespace bgpbench::router
{

/** Router-local configuration (independent of the platform). */
struct RouterConfig
{
    bgp::AsNumber localAs = 65000;
    bgp::RouterId routerId = 0x0a000001;
    net::Ipv4Address address = net::Ipv4Address(10, 0, 0, 1);
    uint16_t holdTimeSec = 180;
    /** BGP neighbours; peer ids double as port indices. */
    std::vector<bgp::PeerConfig> peers;
    /** Route flap damping for the router's speaker (RFC 2439). */
    bgp::DampingConfig damping;
    /** Scheduling quantum. */
    sim::SimTime quantum = sim::nsFromMs(1);
    /** CPU-load / forwarding-rate sampling interval. */
    double statsIntervalSec = 1.0;
};

/** Data-plane counters. */
struct DataPlaneCounters
{
    uint64_t offeredPackets = 0;
    uint64_t forwardedPackets = 0;
    uint64_t forwardedBytes = 0;
    /** Dropped because the offered rate exceeds the bus/port limit. */
    uint64_t busDrops = 0;
    /** Dropped because the kernel input queue overflowed. */
    uint64_t queueDrops = 0;
};

/** Control-plane accounting beyond the speaker's own counters. */
struct ControlPlaneCounters
{
    uint64_t segmentsReceived = 0;
    uint64_t messagesDispatched = 0;
    uint64_t messagesTransmitted = 0;
    uint64_t fibChangesApplied = 0;
};

/**
 * The router under test. See file comment.
 */
class RouterSystem : private bgp::SpeakerEvents
{
  public:
    /**
     * @param sim The simulation this router lives in; must outlive
     *        the router.
     * @param profile Platform description (one of the four systems).
     * @param config Router-local configuration.
     */
    RouterSystem(sim::Simulator *sim, SystemProfile profile,
                 RouterConfig config);
    ~RouterSystem() override;

    RouterSystem(const RouterSystem &) = delete;
    RouterSystem &operator=(const RouterSystem &) = delete;

    /** Begin operation: schedules the quantum and sampling events. */
    void start();

    /** Stop scheduling further events (the simulation winds down). */
    void shutdown();

    /** @name Control-plane ports (one per configured peer)
     *  @{
     */
    size_t portCount() const { return ports_.size(); }

    /** Report TCP establishment on @p port: the OPEN exchange runs. */
    void connectPeer(size_t port);

    /** Free space in the port's receive buffer. */
    size_t rxSpace(size_t port) const;

    /** Deliver one TCP segment from the peer (must fit rxSpace). */
    void deliverToPort(size_t port, net::WireSegmentPtr segment);

    /** Owned-bytes convenience overload: wraps into a segment. */
    void deliverToPort(size_t port, std::vector<uint8_t> bytes);

    /**
     * Install the handler receiving segments the router sends. The
     * segment is shared and immutable — it may simultaneously sit on
     * other peers' queues.
     */
    void setPortTransmitHandler(
        size_t port,
        std::function<void(net::WireSegmentPtr)> handler);

    /** Install the handler called when receive-buffer space frees. */
    void setPortDrainHandler(size_t port, std::function<void()> handler);
    /** @} */

    /** @name Data plane
     *  @{
     */
    /** Set the offered cross-traffic load (replaces any previous). */
    void setCrossTraffic(workload::CrossTrafficConfig config);

    /**
     * Install a static route (as the benchmark testbed does for the
     * cross-traffic path, so forwarding does not depend on BGP
     * convergence).
     */
    void installStaticRoute(const net::Prefix &prefix,
                            net::Ipv4Address next_hop,
                            uint32_t interface);
    /** @} */

    /**
     * True when no control-plane work is queued or in flight: all
     * received updates fully processed through to the FIB. Periodic
     * maintenance (rtrmgr, timers) is ignored.
     */
    bool controlDrained() const;

    /** @name Introspection
     *  @{
     */
    bgp::BgpSpeaker &speaker() { return speaker_; }
    const bgp::BgpSpeaker &speaker() const { return speaker_; }
    fib::ForwardingTable &fib() { return fib_; }
    const fib::ForwardingTable &fib() const { return fib_; }
    const SystemProfile &profile() const { return profile_; }
    const DataPlaneCounters &dataPlane() const { return dataPlane_; }
    const ControlPlaneCounters &controlPlane() const
    {
        return controlPlane_;
    }
    sim::CpuLoadTracker &loadTracker() { return *loadTracker_; }
    /** Forwarded bytes per stats bucket. */
    const stats::TimeSeries &forwardingBytesSeries() const
    {
        return fwdBytes_;
    }
    /** Dropped packets per stats bucket. */
    const stats::TimeSeries &dropSeries() const { return drops_; }
    /** @} */

  private:
    struct Port
    {
        bgp::PeerId peerId = 0;
        bgp::StreamDecoder decoder;
        size_t queuedBytes = 0;
        /** Route-map entries on this session (policy cost model). */
        size_t importPolicyEntries = 0;
        size_t exportPolicyEntries = 0;
        std::function<void(net::WireSegmentPtr)> transmitHandler;
        std::function<void()> drainHandler;
    };

    struct InboundMessage
    {
        size_t port;
        bgp::Message msg;
        size_t wireBytes;
    };

    // SpeakerEvents implementation.
    void onTransmit(bgp::PeerId to, bgp::MessageType type,
                    net::WireSegmentPtr wire,
                    size_t transactions) override;
    void onFibUpdate(const bgp::FibUpdate &update) override;
    void onUpdateProcessed(bgp::PeerId from,
                           const bgp::UpdateStats &stats) override;

    /** Post a job that counts toward controlDrained(). */
    void postCounted(sim::SimProcess *proc, double cycles,
                     std::function<void()> apply);

    /** Dispatch the next queued inbound message if allowed. */
    void maybeDispatch();

    /** Per-message bgp-stage cost. */
    double messageCost(const InboundMessage &inbound) const;

    /** Launch the rib->fea->kernel pipeline for collected changes. */
    void postFibPipeline(std::vector<bgp::FibUpdate> batch,
                         size_t loc_rib_changes);

    /** One scheduling quantum: traffic arrivals + CPU step. */
    void quantumTick();

    /** Handle this quantum's share of cross-traffic. */
    void crossTrafficTick(double quantum_sec);

    sim::Simulator *sim_;
    SystemProfile profile_;
    RouterConfig config_;

    // Simulated processes.
    std::unique_ptr<sim::SimProcess> irqProc_;
    std::unique_ptr<sim::SimProcess> kernelProc_;
    std::vector<std::unique_ptr<sim::SimProcess>> controlProcs_;
    sim::SimProcess *bgpProc_ = nullptr;
    sim::SimProcess *ribProc_ = nullptr;
    sim::SimProcess *feaProc_ = nullptr;
    sim::SimProcess *rtrmgrProc_ = nullptr;
    sim::SimProcess *policyProc_ = nullptr;
    sim::CpuModel cpu_;

    // Protocol engine and forwarding state.
    bgp::BgpSpeaker speaker_;
    fib::ForwardingTable fib_;
    fib::ForwardingEngine engine_;

    // Inbound control path.
    std::vector<Port> ports_;
    std::deque<InboundMessage> inbound_;
    bool dispatchBusy_ = false;
    sim::SimTime gateReady_ = 0;
    uint64_t pendingControlWork_ = 0;

    // Event-collection state, valid during speaker calls.
    std::vector<bgp::FibUpdate> fibBatch_;
    size_t lastLocRibChanges_ = 0;

    // Data plane state.
    workload::CrossTrafficConfig crossTraffic_;
    double arrivalCarry_ = 0.0;
    double lastAvgLookupNodes_ = 24.0;
    size_t nextDestination_ = 0;

    // Instrumentation.
    std::unique_ptr<sim::CpuLoadTracker> loadTracker_;
    stats::TimeSeries fwdBytes_;
    stats::TimeSeries drops_;
    DataPlaneCounters dataPlane_;
    ControlPlaneCounters controlPlane_;

    bool running_ = false;
    /** Guards periodic events against outliving the router. */
    std::shared_ptr<bool> alive_;
};

} // namespace bgpbench::router

#endif // BGPBENCH_ROUTER_ROUTER_SYSTEM_HH
