/**
 * @file
 * The serve scenario: a convergence run with the read side attached.
 *
 * runServeScenario() executes exactly the announce scenario of
 * topo::runAnnounceScenario — same phases, same virtual-time
 * schedule, same ConvergenceReport bytes — while one node's speaker
 * publishes epoch snapshots of its Loc-RIB and a query engine serves
 * a synthetic client population against them. The run has two
 * measured read-side phases:
 *
 *  1. concurrent: paced readers issue queries while the network
 *     converges (the interference measurement — does serving reads
 *     slow the decision process, and what staleness do readers see?);
 *  2. throughput: after convergence the readers run a fixed query
 *     count flat out against the final table (the capacity
 *     measurement).
 *
 * Attaching the read side must not change the simulation: snapshots
 * are published at virtual-time boundaries the speaker reached
 * anyway, and readers only ever touch immutable snapshots, so the
 * convergence report is byte-identical with readers on or off — the
 * determinism suite asserts this at several shard counts.
 */

#ifndef BGPBENCH_SERVE_SERVE_RUNNER_HH
#define BGPBENCH_SERVE_SERVE_RUNNER_HH

#include <cstdint>
#include <string>

#include "serve/query_engine.hh"
#include "topo/scenarios.hh"

namespace bgpbench::serve
{

/** Knobs of one serve scenario run. */
struct ServeRunConfig
{
    topo::ScenarioOptions scenario;
    QueryEngineConfig engine;
    /** Node whose Loc-RIB is published (see BgpSpeaker). */
    size_t publisherNode = 0;
    /**
     * Snapshot granularity: 0 publishes at flush boundaries, N > 0
     * after every N decision-process runs that changed the RIB.
     */
    uint64_t snapshotEvery = 0;
    /** Run paced readers during the convergence phase. */
    bool concurrentReaders = true;
    /** Run the flat-out throughput phase after convergence. */
    bool throughputPhase = true;
};

/** Everything one serve scenario run produced. */
struct ServeRunResult
{
    /** Byte-identical to runAnnounceScenario on the same inputs. */
    topo::ConvergenceReport convergence;
    /** Host wall time of the convergence (write-side) phase. */
    uint64_t convergenceHostNs = 0;
    /** Read-side results while converging (empty when disabled). */
    ServeReport concurrent;
    /** Read-side results against the final table (empty if disabled). */
    ServeReport throughput;
    uint64_t snapshotsPublished = 0;
    /** Epoch (Loc-RIB version) of the final snapshot. */
    uint64_t finalEpoch = 0;
    /** Routes in the final snapshot. */
    uint64_t tableSize = 0;
};

/**
 * Run the announce scenario on @p topology with the read side
 * attached. @p shape labels the report like the plain runners do.
 */
ServeRunResult runServeScenario(topo::Topology topology,
                                const std::string &shape,
                                const ServeRunConfig &config);

/**
 * The query-target population of a serve run: every prefix the
 * announce scenario will originate, hottest-first in origination
 * order. Exposed so tests and benchmarks can build matching streams.
 */
std::vector<net::Prefix> serveTargets(size_t nodes,
                                      size_t prefixesPerNode);

} // namespace bgpbench::serve

#endif // BGPBENCH_SERVE_SERVE_RUNNER_HH
