#include "serve/query_engine.hh"

#include <algorithm>
#include <chrono>

#include "net/logging.hh"
#include "net/wire_segment.hh"
#include "stats/json.hh"

namespace bgpbench::serve
{

namespace
{

/**
 * Latency bucket bounds in nanoseconds: powers of two from 64 ns to
 * 1 ms. Anything slower lands in the overflow bucket and is quoted
 * via the tracked maximum.
 */
std::vector<uint64_t>
latencyBoundsNs()
{
    std::vector<uint64_t> bounds;
    for (uint64_t b = 64; b <= 1048576; b *= 2)
        bounds.push_back(b);
    return bounds;
}

std::string
latencyMetricName(workload::QueryKind kind)
{
    return std::string("serve.latency.") + workload::queryKindName(kind);
}

uint64_t
nowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

} // namespace

QueryEngine::QueryEngine(const SnapshotPublisher &publisher,
                         std::vector<net::Prefix> targets,
                         const QueryEngineConfig &config)
    : publisher_(publisher), config_(config)
{
    if (config_.readers < 1)
        fatal("QueryEngine requires at least one reader");
    if (config_.batchSize < 1)
        fatal("QueryEngine requires a non-zero batch size");
    readers_.reserve(size_t(config_.readers));
    for (int r = 0; r < config_.readers; ++r) {
        auto reader = std::make_unique<Reader>();
        workload::QueryStreamConfig stream = config_.stream;
        stream.seed = config_.seed + uint64_t(r);
        reader->stream = std::make_unique<workload::QueryStream>(
            targets, stream);
        reader->metrics = std::make_unique<obs::MetricRegistry>();
        readers_.push_back(std::move(reader));
    }
}

bool
QueryEngine::execute(const RibSnapshot &snapshot,
                     const workload::Query &query, Reader &reader)
{
    using workload::QueryKind;
    // Response encoding mirrors what a management-plane daemon would
    // put on the socket: a kind byte, the epoch, then the answer.
    net::BufferPool *pool =
        config_.encodeResponses ? &net::BufferPool::global() : nullptr;

    switch (query.kind) {
      case QueryKind::Lookup: {
        const SnapshotRoute *route = snapshot.lookup(query.addr);
        if (pool) {
            net::ByteWriter writer = pool->writer(24);
            writer.writeU8(uint8_t(query.kind));
            writer.writeU32(uint32_t(snapshot.epoch()));
            writer.writeAddress(query.addr);
            if (route) {
                writer.writeAddress(route->prefix.address());
                writer.writeU8(uint8_t(route->prefix.length()));
                writer.writeU32(uint32_t(route->peer));
            }
            reader.encodedBytes += pool->seal(std::move(writer))->size();
        }
        return route != nullptr;
      }
      case QueryKind::BestPath: {
        const SnapshotRoute *route = snapshot.bestPath(query.prefix);
        if (pool) {
            net::ByteWriter writer = pool->writer(32);
            writer.writeU8(uint8_t(query.kind));
            writer.writeU32(uint32_t(snapshot.epoch()));
            writer.writeAddress(query.prefix.address());
            writer.writeU8(uint8_t(query.prefix.length()));
            if (route) {
                writer.writeU32(uint32_t(route->peer));
                writer.writeU8(route->locallyOriginated ? 1 : 0);
                writer.writeU16(uint16_t(
                    route->attributes
                        ? route->attributes->asPath.pathLength()
                        : 0));
            }
            reader.encodedBytes += pool->seal(std::move(writer))->size();
        }
        return route != nullptr;
      }
      case QueryKind::Scan: {
        size_t visited = 0;
        if (pool) {
            net::ByteWriter writer =
                pool->writer(16 + config_.scanLimit * 9);
            writer.writeU8(uint8_t(query.kind));
            writer.writeU32(uint32_t(snapshot.epoch()));
            writer.writeAddress(query.prefix.address());
            writer.writeU8(uint8_t(query.prefix.length()));
            visited = snapshot.scan(
                query.prefix, config_.scanLimit,
                [&writer](const SnapshotRoute &route) {
                    writer.writeAddress(route.prefix.address());
                    writer.writeU8(uint8_t(route.prefix.length()));
                    writer.writeU32(uint32_t(route.peer));
                });
            reader.encodedBytes += pool->seal(std::move(writer))->size();
        } else {
            visited = snapshot.scan(query.prefix, config_.scanLimit,
                                    [](const SnapshotRoute &) {});
        }
        reader.routesScanned += visited;
        return visited > 0;
      }
      case QueryKind::PeerStats: {
        const auto &peers = snapshot.peerSummaries();
        if (pool) {
            net::ByteWriter writer = pool->writer(8 + peers.size() * 12);
            writer.writeU8(uint8_t(query.kind));
            writer.writeU32(uint32_t(snapshot.epoch()));
            writer.writeU16(uint16_t(peers.size()));
            for (const PeerTableSummary &peer : peers) {
                writer.writeU32(uint32_t(peer.peer));
                writer.writeU32(uint32_t(peer.bestPaths));
            }
            reader.encodedBytes += pool->seal(std::move(writer))->size();
        }
        return !peers.empty();
      }
    }
    return false;
}

void
QueryEngine::readerLoop(Reader &reader, uint64_t quota)
{
    const std::vector<uint64_t> bounds = latencyBoundsNs();
    obs::Histogram *latency[4];
    for (int k = 0; k < 4; ++k)
        latency[k] = &reader.metrics->histogram(
            latencyMetricName(workload::QueryKind(k)), bounds);

    const uint64_t started = nowNs();
    uint64_t last = started;
    bool sawSnapshot = false;
    while (!stopFlag_.load(std::memory_order_relaxed)) {
        RibSnapshotPtr snapshot = publisher_.current();
        if (!sawSnapshot) {
            reader.firstEpoch = snapshot->epoch();
            sawSnapshot = true;
        }
        reader.lastEpoch = snapshot->epoch();

        uint64_t batch = quota ? config_.batchSize : config_.pacedBatch;
        if (quota)
            batch = std::min(batch, quota - reader.queries);
        for (uint64_t i = 0; i < batch; ++i) {
            workload::Query query = reader.stream->next();
            size_t k = size_t(query.kind);
            bool hit = execute(*snapshot, query, reader);
            uint64_t now = nowNs();
            latency[k]->record(now - last);
            last = now;
            ++reader.perClass[k];
            if (hit)
                ++reader.hits[k];
            ++reader.queries;
        }
        if (quota && reader.queries >= quota)
            break;
        if (!quota) {
            if (config_.pacedIntervalNs > 0) {
                // Sliced so stop() never waits a full interval for
                // the reader to notice the flag.
                uint64_t slept = 0;
                while (slept < config_.pacedIntervalNs &&
                       !stopFlag_.load(std::memory_order_relaxed)) {
                    uint64_t slice = std::min<uint64_t>(
                        config_.pacedIntervalNs - slept, 500000);
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(slice));
                    slept += slice;
                }
            } else {
                std::this_thread::yield();
            }
            // The pause must not be charged to the next query.
            last = nowNs();
        }
    }
    reader.wallNs = nowNs() - started;
}

void
QueryEngine::startPaced()
{
    if (pacedRunning_)
        fatal("QueryEngine: paced readers already running");
    stopFlag_.store(false, std::memory_order_relaxed);
    pacedRunning_ = true;
    for (auto &reader : readers_)
        reader->thread =
            std::thread([this, r = reader.get()] { readerLoop(*r, 0); });
}

void
QueryEngine::stop()
{
    if (!pacedRunning_)
        return;
    stopFlag_.store(true, std::memory_order_relaxed);
    for (auto &reader : readers_)
        if (reader->thread.joinable())
            reader->thread.join();
    pacedRunning_ = false;
}

ServeReport
QueryEngine::runFixed()
{
    if (pacedRunning_)
        fatal("QueryEngine: stop paced readers before runFixed");
    stopFlag_.store(false, std::memory_order_relaxed);
    for (auto &reader : readers_)
        reader->thread = std::thread(
            [this, r = reader.get()] {
                readerLoop(*r, config_.queriesPerReader);
            });
    for (auto &reader : readers_)
        reader->thread.join();
    return report();
}

ServeReport
QueryEngine::report()
{
    ServeReport out;
    for (auto &reader : readers_) {
        out.queries += reader->queries;
        out.wallNs = std::max(out.wallNs, reader->wallNs);
        out.encodedBytes += reader->encodedBytes;
        out.routesScanned += reader->routesScanned;
        if (reader->firstEpoch < out.firstEpoch || out.firstEpoch == 0)
            out.firstEpoch = reader->firstEpoch;
        out.lastEpoch = std::max(out.lastEpoch, reader->lastEpoch);
    }

    // Merge the per-reader latency histograms by row (bounds are
    // identical across readers). snapshot() rather than absorb() so
    // report() leaves the registries intact — absorbInto() is the
    // draining path.
    std::vector<obs::MetricRegistry::Snapshot::HistogramRow> rows;
    for (auto &reader : readers_) {
        obs::MetricRegistry::Snapshot snap = reader->metrics->snapshot();
        for (auto &row : snap.histograms) {
            auto it = std::find_if(rows.begin(), rows.end(),
                                   [&row](const auto &existing) {
                                       return existing.name == row.name;
                                   });
            if (it == rows.end()) {
                rows.push_back(row);
                continue;
            }
            for (size_t i = 0; i < row.counts.size(); ++i)
                it->counts[i] += row.counts[i];
            it->count += row.count;
            it->sum += row.sum;
            it->max = std::max(it->max, row.max);
        }
    }

    for (int k = 0; k < 4; ++k) {
        QueryClassStats stats;
        stats.kind = workload::QueryKind(k);
        for (auto &reader : readers_) {
            stats.queries += reader->perClass[k];
            stats.hits += reader->hits[k];
        }
        std::string name = latencyMetricName(stats.kind);
        auto it = std::find_if(rows.begin(), rows.end(),
                               [&name](const auto &row) {
                                   return row.name == name;
                               });
        if (it != rows.end())
            stats.latencyNs = obs::summarizeHistogram(*it);
        out.classes.push_back(stats);
    }

    if (out.wallNs > 0)
        out.queriesPerSec =
            double(out.queries) * 1e9 / double(out.wallNs);
    return out;
}

void
QueryEngine::absorbInto(obs::MetricRegistry &target)
{
    for (auto &reader : readers_)
        target.absorb(*reader->metrics);
}

void
writeServeReportJson(stats::JsonWriter &json, const ServeReport &report)
{
    json.beginObject();
    json.field("queries", report.queries);
    json.field("wall_ms", double(report.wallNs) / 1e6);
    json.field("queries_per_sec", report.queriesPerSec);
    json.field("encoded_bytes", report.encodedBytes);
    json.field("routes_scanned", report.routesScanned);
    json.field("first_epoch", report.firstEpoch);
    json.field("last_epoch", report.lastEpoch);
    json.key("classes");
    json.beginArray();
    for (const QueryClassStats &cls : report.classes) {
        json.beginObject();
        json.field("class", workload::queryKindName(cls.kind));
        json.field("queries", cls.queries);
        json.field("hits", cls.hits);
        json.field("p50_ns", cls.latencyNs.p50);
        json.field("p90_ns", cls.latencyNs.p90);
        json.field("p99_ns", cls.latencyNs.p99);
        json.field("max_ns", cls.latencyNs.max);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace bgpbench::serve
