/**
 * @file
 * Immutable, epoch-stamped Loc-RIB snapshots — the read side of the
 * speaker.
 *
 * A RibSnapshot is a self-contained copy of one speaker's Loc-RIB at
 * a publication point: the routes in ascending prefix order, an LPM
 * trie indexing them (the generic net::LpmTrie over *indexes* into
 * the route array, so the trie stores 4-byte values, not routes),
 * and per-peer summary counts. Attribute sets are shared with the
 * writer via PathAttributesPtr — interning (PR 2) makes them
 * immutable and refcounted, so a snapshot costs one pointer per
 * route, not a deep copy of paths.
 *
 * Once built, a snapshot never changes; readers on any thread may
 * query it freely while the decision process races ahead publishing
 * newer epochs. A reader holding an old epoch keeps it valid for as
 * long as it holds the shared_ptr (RCU-style grace by refcount).
 *
 * The build-time checksum covers every route key and the epoch;
 * verifyChecksum() lets stress tests assert that no torn state is
 * ever observable through a published pointer.
 */

#ifndef BGPBENCH_SERVE_SNAPSHOT_HH
#define BGPBENCH_SERVE_SNAPSHOT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/rib.hh"
#include "bgp/route.hh"
#include "net/lpm_trie.hh"
#include "net/prefix.hh"

namespace bgpbench::serve
{

/** One best path as frozen into a snapshot. */
struct SnapshotRoute
{
    net::Prefix prefix;
    /** Shared immutable attribute set (interned). */
    bgp::PathAttributesPtr attributes;
    /** Peer the best path was learned from (or localPeerId). */
    bgp::PeerId peer = 0;
    bool locallyOriginated = false;
    /**
     * ECMP next hops beyond the best path's (maximum-paths > 1), in
     * the decision process's deterministic group order — empty in
     * single-path mode, keeping snapshot bytes and checksums
     * identical to the classic shape.
     */
    std::vector<net::Ipv4Address> extraHops;
};

/** Per-peer contribution to the snapshot. */
struct PeerTableSummary
{
    bgp::PeerId peer = 0;
    /** Best paths in the table learned from this peer. */
    uint64_t bestPaths = 0;
};

class RibSnapshot;
using RibSnapshotPtr = std::shared_ptr<const RibSnapshot>;

class RibSnapshot
{
  public:
    /** The empty table at epoch 0 (a publisher's initial state). */
    RibSnapshot() : checksum_(computeChecksum(0, {})) {}

    /**
     * Freeze @p rib into an immutable snapshot.
     *
     * @param rib The live Loc-RIB (caller must be its owner thread).
     * @param epoch Monotonic version stamp (the speaker's
     *        ribVersion()).
     * @param publishedAtNs Virtual time of the publication.
     */
    static RibSnapshotPtr build(const bgp::LocRib &rib, uint64_t epoch,
                                uint64_t publishedAtNs);

    uint64_t epoch() const { return epoch_; }
    uint64_t publishedAtNs() const { return publishedAtNs_; }
    size_t size() const { return routes_.size(); }
    bool empty() const { return routes_.empty(); }

    /** Best path of the exact prefix, or null. */
    const SnapshotRoute *
    bestPath(const net::Prefix &prefix) const
    {
        const uint32_t *index = trie_.exact(prefix);
        return index ? &routes_[*index] : nullptr;
    }

    /**
     * Longest-prefix-match of @p addr, or null when no route covers
     * it. @p visited optionally receives the trie nodes walked.
     */
    const SnapshotRoute *
    lookup(net::Ipv4Address addr, int *visited = nullptr) const
    {
        const uint32_t *index = trie_.lookup(addr, visited);
        return index ? &routes_[*index] : nullptr;
    }

    /**
     * Visit every route covered by @p range in ascending prefix
     * order, stopping after @p limit routes (0 = unlimited).
     *
     * @return Number of routes visited.
     */
    template <typename Fn>
    size_t
    scan(const net::Prefix &range, size_t limit, Fn &&fn) const
    {
        // Covered routes all have addresses inside [range.address(),
        // range broadcast]; within that slice, entries shorter than
        // the range (e.g. 0.0.0.0/0 when scanning 10/8) share its
        // base address but are not covered, hence the covers() check.
        size_t visited = 0;
        for (size_t i = firstInRange(range); i < routes_.size(); ++i) {
            const SnapshotRoute &route = routes_[i];
            if (!rangeSpans(range, route.prefix))
                break;
            if (!range.covers(route.prefix))
                continue;
            fn(route);
            if (++visited == limit)
                break;
        }
        return visited;
    }

    /** Per-peer best-path counts, sorted by peer id. */
    const std::vector<PeerTableSummary> &
    peerSummaries() const
    {
        return peers_;
    }

    /** All routes, sorted by (address, length). */
    const std::vector<SnapshotRoute> &routes() const { return routes_; }

    /** Build-time FNV-1a over the epoch and every route key. */
    uint64_t checksum() const { return checksum_; }

    /**
     * Recompute the checksum from the visible content and compare.
     * Immutability makes this tautological — which is the point: a
     * torn or half-published snapshot could not pass.
     */
    bool verifyChecksum() const;

  private:
    /** Index of the first route with address >= range.address(). */
    size_t firstInRange(const net::Prefix &range) const;
    /** Route address still inside the range's address span? */
    static bool rangeSpans(const net::Prefix &range,
                           const net::Prefix &prefix);
    /** FNV-1a over epoch + route keys. */
    static uint64_t computeChecksum(
        uint64_t epoch, const std::vector<SnapshotRoute> &routes);

    uint64_t epoch_ = 0;
    uint64_t publishedAtNs_ = 0;
    uint64_t checksum_ = 0;
    std::vector<SnapshotRoute> routes_;
    net::LpmTrie<uint32_t> trie_;
    std::vector<PeerTableSummary> peers_;
};

} // namespace bgpbench::serve

#endif // BGPBENCH_SERVE_SNAPSHOT_HH
