/**
 * @file
 * Epoch publication: the bridge from the single-threaded decision
 * process to any number of reader threads.
 *
 * SnapshotPublisher implements bgp::RibListener. Each time the bound
 * speaker publishes (per flush or per N decisions, see
 * BgpSpeaker::bindRibListener), the publisher freezes the Loc-RIB
 * into a RibSnapshot and swaps it into the current-epoch slot.
 * Readers call current() to acquire the newest epoch; the shared_ptr
 * they get back pins that snapshot for as long as they hold it, so a
 * reader mid-scan is never invalidated by the writer racing ahead —
 * the classic RCU shape, with reference counting standing in for
 * grace periods (DESIGN.md section 13).
 *
 * The slot itself is a mutex-guarded shared_ptr rather than
 * std::atomic<shared_ptr>: the critical section is a single pointer
 * copy (snapshot construction happens outside it), which is the same
 * cost class as libstdc++'s own implementation — a pointer-sized
 * spinlock — but portable and ThreadSanitizer-clean (the library's
 * relaxed spinlock release defeats TSan's happens-before analysis).
 * All query work runs on the acquired snapshot with no lock held.
 */

#ifndef BGPBENCH_SERVE_PUBLISHER_HH
#define BGPBENCH_SERVE_PUBLISHER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "bgp/speaker.hh"
#include "serve/snapshot.hh"

namespace bgpbench::serve
{

class SnapshotPublisher : public bgp::RibListener
{
  public:
    /** Starts at the empty table (epoch 0) so readers never see null. */
    SnapshotPublisher()
        : current_(std::make_shared<const RibSnapshot>())
    {}

    /** Writer side: freeze the RIB and publish it (RibListener). */
    void
    onRibPublish(const bgp::LocRib &rib, uint64_t version,
                 bgp::SessionFsm::TimeNs now) override
    {
        RibSnapshotPtr snapshot =
            RibSnapshot::build(rib, version, uint64_t(now));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            current_ = std::move(snapshot);
        }
        published_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Reader side: acquire the newest snapshot (never null). */
    RibSnapshotPtr
    current() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return current_;
    }

    /** Snapshots published since construction. */
    uint64_t
    published() const
    {
        return published_.load(std::memory_order_relaxed);
    }

  private:
    mutable std::mutex mutex_;
    RibSnapshotPtr current_;
    std::atomic<uint64_t> published_{0};
};

} // namespace bgpbench::serve

#endif // BGPBENCH_SERVE_PUBLISHER_HH
