#include "serve/snapshot.hh"

#include <algorithm>
#include <map>

namespace bgpbench::serve
{

RibSnapshotPtr
RibSnapshot::build(const bgp::LocRib &rib, uint64_t epoch,
                   uint64_t publishedAtNs)
{
    auto snapshot = std::make_shared<RibSnapshot>();
    snapshot->epoch_ = epoch;
    snapshot->publishedAtNs_ = publishedAtNs;

    snapshot->routes_.reserve(rib.size());
    std::map<bgp::PeerId, uint64_t> per_peer;
    rib.forEach([&](const net::Prefix &prefix,
                    const bgp::LocRib::Entry &entry) {
        SnapshotRoute route;
        route.prefix = prefix;
        route.attributes = entry.best.attributes;
        route.peer = entry.best.peer;
        route.locallyOriginated = entry.best.locallyOriginated;
        for (const bgp::Candidate &alt : entry.multipath) {
            net::Ipv4Address hop = alt.attributes->nextHop;
            if (hop != route.attributes->nextHop &&
                std::find(route.extraHops.begin(),
                          route.extraHops.end(),
                          hop) == route.extraHops.end()) {
                route.extraHops.push_back(hop);
            }
        }
        snapshot->routes_.push_back(std::move(route));
        ++per_peer[entry.best.peer];
    });
    // LocRib::forEach guarantees ascending (address, length) order in
    // both storage backends, so the route array arrives sorted and
    // every field of the snapshot (route array, scan output,
    // checksum) is a pure function of the table content.

    for (size_t i = 0; i < snapshot->routes_.size(); ++i)
        snapshot->trie_.insert(snapshot->routes_[i].prefix, uint32_t(i));

    snapshot->peers_.reserve(per_peer.size());
    for (const auto &[peer, count] : per_peer)
        snapshot->peers_.push_back({peer, count});

    snapshot->checksum_ = computeChecksum(epoch, snapshot->routes_);
    return snapshot;
}

bool
RibSnapshot::verifyChecksum() const
{
    return computeChecksum(epoch_, routes_) == checksum_;
}

uint64_t
RibSnapshot::computeChecksum(uint64_t epoch,
                             const std::vector<SnapshotRoute> &routes)
{
    // FNV-1a over the epoch and each route's (address, length, peer)
    // key. Attribute bytes are deliberately excluded: they are shared
    // immutable interned objects, so tearing there is impossible.
    uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](uint64_t value) {
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (value >> shift) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    mix(epoch);
    for (const SnapshotRoute &route : routes) {
        mix((uint64_t(route.prefix.address().toUint32()) << 8) |
            uint64_t(route.prefix.length()));
        mix(route.peer);
        // ECMP hops contribute per element, so a single-path snapshot
        // (no extra hops) hashes exactly as it always did.
        for (net::Ipv4Address hop : route.extraHops)
            mix(hop.toUint32());
    }
    return hash;
}

size_t
RibSnapshot::firstInRange(const net::Prefix &range) const
{
    auto it = std::lower_bound(
        routes_.begin(), routes_.end(), range.address(),
        [](const SnapshotRoute &route, net::Ipv4Address addr) {
            return route.prefix.address() < addr;
        });
    return size_t(it - routes_.begin());
}

bool
RibSnapshot::rangeSpans(const net::Prefix &range,
                        const net::Prefix &prefix)
{
    uint32_t last = range.address().toUint32() |
                    ~net::maskForLength(range.length());
    return prefix.address().toUint32() <= last;
}

} // namespace bgpbench::serve
