/**
 * @file
 * Multi-threaded read-side query engine over published RIB snapshots.
 *
 * The engine owns M reader threads, each with its own deterministic
 * QueryStream and its own obs::MetricRegistry (the per-shard pattern
 * of the parallel engine: no shared mutable metric state on the hot
 * path; registries are absorbed after the threads join, and absorb()
 * is order-independent, so the merged numbers do not depend on thread
 * arrival order).
 *
 * Each reader re-acquires the newest snapshot at batch boundaries,
 * executes the batch against that one epoch, and optionally encodes
 * every response into a pooled WireSegment (the cost a real speaker
 * would pay to put the answer on a management-plane socket). Latency
 * is recorded per query class into fixed-bucket nanosecond
 * histograms; wall-clock timestamps never influence results, only
 * measurements.
 *
 * Two running modes cover the two benchmark questions:
 *  - paced (yieldBetweenBatches): readers run concurrently with the
 *    decision process to measure interference, yielding between
 *    batches so the measurement works even on a single hardware
 *    thread;
 *  - flat-out (runFixed): a fixed query count per reader measures
 *    peak sustained throughput against a quiescent table.
 */

#ifndef BGPBENCH_SERVE_QUERY_ENGINE_HH
#define BGPBENCH_SERVE_QUERY_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "serve/publisher.hh"
#include "serve/snapshot.hh"
#include "workload/query_stream.hh"

namespace bgpbench::stats
{
class JsonWriter;
} // namespace bgpbench::stats

namespace bgpbench::serve
{

/** Parameters of one query-engine run. */
struct QueryEngineConfig
{
    /** Reader thread count. */
    int readers = 4;
    /** Queries each reader executes in runFixed(). */
    uint64_t queriesPerReader = 100000;
    /** Queries executed against one snapshot acquisition. */
    uint64_t batchSize = 256;
    /**
     * Paced mode: queries per polling burst. Paced readers model
     * fixed-rate telemetry pollers, not spinning clients — each
     * burst samples latency and staleness, then the reader sleeps.
     */
    uint64_t pacedBatch = 32;
    /**
     * Paced mode: sleep between bursts. Bounds the read side's CPU
     * share (4 readers x 32 queries / 5 ms is well under a percent
     * of one core), which is what keeps the decision process
     * unmolested even when readers outnumber hardware threads.
     */
    uint64_t pacedIntervalNs = 5000000;
    /** Encode every response into a pooled WireSegment. */
    bool encodeResponses = true;
    /** Base seed; reader r streams with seed + r. */
    uint64_t seed = 1;
    workload::QueryStreamConfig stream;
    /** Routes a Scan query visits at most. */
    size_t scanLimit = 64;
};

/** Per-class outcome of a run. */
struct QueryClassStats
{
    workload::QueryKind kind = workload::QueryKind::Lookup;
    uint64_t queries = 0;
    /** Queries answered from the table (miss = no covering route). */
    uint64_t hits = 0;
    obs::HistogramSummary latencyNs;
};

/** Outcome of one engine run. */
struct ServeReport
{
    uint64_t queries = 0;
    /** Aggregate wall time (max over readers), nanoseconds. */
    uint64_t wallNs = 0;
    double queriesPerSec = 0.0;
    /** Response bytes encoded into wire segments. */
    uint64_t encodedBytes = 0;
    /** Routes visited by Scan queries. */
    uint64_t routesScanned = 0;
    /** Snapshot epochs observed: first and last across all readers. */
    uint64_t firstEpoch = 0;
    uint64_t lastEpoch = 0;
    std::vector<QueryClassStats> classes;
};

/**
 * Emit @p report as one JSON object (the "concurrent"/"throughput"
 * objects of BENCH_query_serve.json; field reference in README.md).
 */
void writeServeReportJson(stats::JsonWriter &json,
                          const ServeReport &report);

class QueryEngine
{
  public:
    /**
     * @param publisher Source of snapshots; must outlive the engine.
     * @param targets Prefix population queries are drawn from.
     */
    QueryEngine(const SnapshotPublisher &publisher,
                std::vector<net::Prefix> targets,
                const QueryEngineConfig &config);

    ~QueryEngine() { stop(); }

    QueryEngine(const QueryEngine &) = delete;
    QueryEngine &operator=(const QueryEngine &) = delete;

    /**
     * Start paced readers that run until stop(): execute a batch,
     * yield (if configured), repeat. Used to load the read side while
     * a convergence run drives the write side.
     */
    void startPaced();

    /** Join paced readers (idempotent; no-op if none are running). */
    void stop();

    /**
     * Run every reader for exactly queriesPerReader queries, flat
     * out, and return the merged report. Not concurrent with paced
     * mode.
     */
    ServeReport runFixed();

    /**
     * Merge all per-reader metrics + counters into a report (called
     * internally by runFixed; call after stop() for paced runs).
     * Resets nothing; a second call returns the same totals.
     */
    ServeReport report();

    /**
     * Fold the per-reader metric registries into @p target (e.g. the
     * benchmark's report registry). Call after stop()/runFixed().
     */
    void absorbInto(obs::MetricRegistry &target);

  private:
    struct Reader
    {
        std::unique_ptr<workload::QueryStream> stream;
        std::unique_ptr<obs::MetricRegistry> metrics;
        std::thread thread;
        uint64_t queries = 0;
        uint64_t hits[4] = {0, 0, 0, 0};
        uint64_t perClass[4] = {0, 0, 0, 0};
        uint64_t encodedBytes = 0;
        uint64_t routesScanned = 0;
        uint64_t wallNs = 0;
        uint64_t firstEpoch = 0;
        uint64_t lastEpoch = 0;
    };

    /** Execute one query against @p snapshot; returns hit/miss. */
    bool execute(const RibSnapshot &snapshot, const workload::Query &query,
                 Reader &reader);

    /** Reader body: batches until @p stopFlag (0 = until quota). */
    void readerLoop(Reader &reader, uint64_t quota);

    const SnapshotPublisher &publisher_;
    QueryEngineConfig config_;
    std::vector<std::unique_ptr<Reader>> readers_;
    std::atomic<bool> stopFlag_{false};
    bool pacedRunning_ = false;
};

} // namespace bgpbench::serve

#endif // BGPBENCH_SERVE_QUERY_ENGINE_HH
