#include "serve/serve_runner.hh"

#include <chrono>

#include "serve/publisher.hh"

namespace bgpbench::serve
{

namespace
{

uint64_t
hostNowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

/** Mirrors the phase recording of the scenario runners. */
class PhaseRecorder
{
  public:
    explicit PhaseRecorder(const topo::ScenarioOptions &opts)
    {
        if (opts.simConfig.obs)
            tracer_.attach(&opts.simConfig.obs->trace);
    }

    void
    phase(const char *name, sim::SimTime begin, sim::SimTime end)
    {
        tracer_.complete(name, "phase", obs::kTrackPhases, 0, begin,
                         end);
    }

  private:
    obs::Tracer tracer_;
};

} // namespace

std::vector<net::Prefix>
serveTargets(size_t nodes, size_t prefixesPerNode)
{
    std::vector<net::Prefix> targets;
    targets.reserve(nodes * prefixesPerNode);
    for (size_t node = 0; node < nodes; ++node)
        for (size_t j = 0; j < prefixesPerNode; ++j)
            targets.push_back(topo::scenarioPrefix(node, j));
    return targets;
}

ServeRunResult
runServeScenario(topo::Topology topology, const std::string &shape,
                 const ServeRunConfig &config)
{
    ServeRunResult result;
    const topo::ScenarioOptions &opts = config.scenario;
    const size_t nodes = topology.nodeCount();

    topo::TopologySim sim(std::move(topology), opts.simConfig);

    SnapshotPublisher publisher;
    sim.speaker(config.publisherNode)
        .bindRibListener(&publisher, config.snapshotEvery);

    std::vector<net::Prefix> targets =
        serveTargets(nodes, opts.prefixesPerNode);

    // Two engines so the two phases report independently: the paced
    // one rides the convergence run, the fixed one measures capacity
    // against the settled table afterwards.
    QueryEngine paced(publisher, targets, config.engine);
    if (config.concurrentReaders)
        paced.startPaced();

    // From here the write side is a faithful copy of
    // runAnnounceScenario: same calls, same virtual-time schedule,
    // hence the same report bytes whether readers are attached or
    // not.
    const uint64_t hostStart = hostNowNs();
    PhaseRecorder phases(opts);
    sim::SimTime mark = sim.now();
    bool converged = sim.runToConvergence(opts.limitNs);
    sim.tracker().markPhaseStart(sim.now());
    phases.phase("establish", mark, sim.now());
    mark = sim.now();
    {
        sim::SimTime now = sim.now();
        for (size_t node = 0; node < sim.topology().nodeCount(); ++node)
            for (size_t j = 0; j < opts.prefixesPerNode; ++j)
                sim.originate(node, topo::scenarioPrefix(node, j), now);
    }
    converged = converged && sim.runToConvergence(opts.limitNs);
    phases.phase("announce", mark, sim.now());
    result.convergence = sim.report("announce", shape);
    result.convergence.converged = converged && sim.locRibsConsistent();
    if (opts.simConfig.obs)
        sim.publishParallelMetrics(opts.simConfig.obs->metrics);
    result.convergenceHostNs = hostNowNs() - hostStart;

    if (config.concurrentReaders) {
        paced.stop();
        result.concurrent = paced.report();
        if (opts.simConfig.obs)
            paced.absorbInto(opts.simConfig.obs->metrics);
    }

    if (config.throughputPhase) {
        QueryEngine fixed(publisher, targets, config.engine);
        result.throughput = fixed.runFixed();
        if (opts.simConfig.obs)
            fixed.absorbInto(opts.simConfig.obs->metrics);
    }

    RibSnapshotPtr final_snapshot = publisher.current();
    result.snapshotsPublished = publisher.published();
    result.finalEpoch = final_snapshot->epoch();
    result.tableSize = final_snapshot->size();
    return result;
}

} // namespace bgpbench::serve
