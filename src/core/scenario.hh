/**
 * @file
 * The eight benchmark scenarios of the paper's Table I.
 */

#ifndef BGPBENCH_CORE_SCENARIO_HH
#define BGPBENCH_CORE_SCENARIO_HH

#include <string>
#include <vector>

namespace bgpbench::core
{

/** BGP operation exercised by a scenario (Table I rows). */
enum class BgpOperation
{
    /** Phase-1 bulk announcements into empty RIBs (power-up). */
    StartupAnnounce,
    /** Phase-3 withdrawals of every previously announced prefix. */
    EndingWithdraw,
    /**
     * Phase-3 announcements with a longer AS path: the decision
     * process runs but keeps the old best; no forwarding change.
     */
    IncrementalNoChange,
    /**
     * Phase-3 announcements with a shorter AS path: every prefix's
     * best path is replaced and the forwarding table updated.
     */
    IncrementalChange,
};

/** UPDATE packet size class (Table I columns). */
enum class PacketSize
{
    /** One prefix per UPDATE message. */
    Small,
    /** 500 prefixes per UPDATE message. */
    Large,
};

/** One benchmark scenario. */
struct Scenario
{
    int number = 1;
    BgpOperation operation = BgpOperation::StartupAnnounce;
    PacketSize packetSize = PacketSize::Small;

    /** Prefixes per UPDATE for this packet-size class. */
    size_t
    prefixesPerPacket() const
    {
        return packetSize == PacketSize::Small ? 1 : 500;
    }

    /** Whether the measured phase changes the forwarding table. */
    bool
    changesForwardingTable() const
    {
        return operation != BgpOperation::IncrementalNoChange;
    }

    /** Whether the measured phase is Phase 1 (else Phase 3). */
    bool
    measuresPhase1() const
    {
        return operation == BgpOperation::StartupAnnounce;
    }

    /** Whether the scenario runs Phase 2 (Speaker 2 connects). */
    bool
    usesSecondSpeaker() const
    {
        return operation == BgpOperation::IncrementalNoChange ||
               operation == BgpOperation::IncrementalChange;
    }

    /** "Scenario N". */
    std::string name() const;

    /** One-line description matching the paper's section III.D. */
    std::string description() const;
};

/** Scenario by Table I number (1..8); fatal outside the range. */
Scenario scenarioByNumber(int number);

/** All eight scenarios, in table order. */
std::vector<Scenario> allScenarios();

} // namespace bgpbench::core

#endif // BGPBENCH_CORE_SCENARIO_HH
