#include "core/runtime_config.hh"

#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string>

#include "bgp/attr_intern.hh"
#include "bgp/prefix_table.hh"
#include "net/wire_segment.hh"
#include "stats/report.hh"
#include "workload/query_stream.hh"

namespace bgpbench::core
{

namespace
{

const char *
getEnv(const char *name)
{
    const char *value = std::getenv(name);
    return value && *value ? value : nullptr;
}

/** BGPBENCH_NO_INTERN / BGPBENCH_SWEEP style: exactly "1" is set. */
bool
envFlagIsOne(const char *name)
{
    const char *value = getEnv(name);
    return value && std::strcmp(value, "1") == 0;
}

/** BGPBENCH_NO_SEGMENT_SHARING style: any value but "0…" is set. */
bool
envFlagIsNonZero(const char *name)
{
    const char *value = getEnv(name);
    return value && value[0] != '0';
}

} // namespace

const char *
configOriginName(ConfigOrigin origin)
{
    switch (origin) {
      case ConfigOrigin::Default:
        return "default";
      case ConfigOrigin::Environment:
        return "environment";
      case ConfigOrigin::CommandLine:
        return "command line";
    }
    return "?";
}

RuntimeConfig
RuntimeConfig::fromEnvironment()
{
    RuntimeConfig config;
    if (envFlagIsOne("BGPBENCH_NO_INTERN"))
        config.intern_ = {false, ConfigOrigin::Environment};
    if (envFlagIsOne("BGPBENCH_NO_PREFIX_TREE"))
        config.prefixTree_ = {false, ConfigOrigin::Environment};
    if (envFlagIsNonZero("BGPBENCH_NO_SEGMENT_SHARING"))
        config.segmentSharing_ = {false, ConfigOrigin::Environment};
    if (envFlagIsOne("BGPBENCH_NO_ADAPTIVE_SYNC"))
        config.adaptiveSync_ = {false, ConfigOrigin::Environment};
    if (envFlagIsOne("BGPBENCH_SWEEP"))
        config.sweep_ = {true, ConfigOrigin::Environment};
    if (const char *value = getEnv("BGPBENCH_JOBS")) {
        config.jobs_ = {
            size_t(std::strtoull(value, nullptr, 10)),
            ConfigOrigin::Environment,
        };
    }
    if (const char *value = getEnv("BGPBENCH_SERVE_READERS")) {
        size_t readers = size_t(std::strtoull(value, nullptr, 10));
        if (readers > 0)
            config.serveReaders_ = {readers, ConfigOrigin::Environment};
    }
    if (const char *value = getEnv("BGPBENCH_SNAPSHOT_EVERY")) {
        config.snapshotEvery_ = {
            std::strtoull(value, nullptr, 10),
            ConfigOrigin::Environment,
        };
    }
    if (const char *value = getEnv("BGPBENCH_QUERY_MIX")) {
        workload::QueryMix mix;
        if (workload::QueryMix::parse(value, mix))
            config.queryMix_ = {value, ConfigOrigin::Environment};
    }
    if (const char *value = getEnv("BGPBENCH_MAX_PATHS")) {
        size_t paths = size_t(std::strtoull(value, nullptr, 10));
        if (paths > 0)
            config.maxPaths_ = {paths, ConfigOrigin::Environment};
    }
    if (const char *value = getEnv("BGPBENCH_MRAI_MS")) {
        config.mraiMs_ = {
            std::strtoull(value, nullptr, 10),
            ConfigOrigin::Environment,
        };
    }
    if (envFlagIsOne("BGPBENCH_DAMPING"))
        config.damping_ = {true, ConfigOrigin::Environment};
    return config;
}

void
RuntimeConfig::overrideIntern(bool enabled)
{
    intern_ = {enabled, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overridePrefixTree(bool enabled)
{
    prefixTree_ = {enabled, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideSegmentSharing(bool enabled)
{
    segmentSharing_ = {enabled, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideSweep(bool enabled)
{
    sweep_ = {enabled, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideJobs(size_t jobs)
{
    jobs_ = {jobs, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideAdaptiveSync(bool enabled)
{
    adaptiveSync_ = {enabled, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideServeReaders(size_t readers)
{
    serveReaders_ = {readers, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideSnapshotEvery(uint64_t every)
{
    snapshotEvery_ = {every, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideQueryMix(std::string mix)
{
    queryMix_ = {std::move(mix), ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideMaxPaths(size_t paths)
{
    maxPaths_ = {paths, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideMraiMs(uint64_t ms)
{
    mraiMs_ = {ms, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::overrideDamping(bool enabled)
{
    damping_ = {enabled, ConfigOrigin::CommandLine};
}

void
RuntimeConfig::apply() const
{
    // The default steers interners built later (worker threads); the
    // calling thread's interner may already exist, so flip it too.
    bgp::setInternDefault(intern_.value);
    bgp::AttributeInterner::global().setEnabled(intern_.value);
    // Speakers latch the backend at construction; apply() runs before
    // any speaker exists, mirroring the interner contract above.
    bgp::setPrefixTreeDefault(prefixTree_.value);
    net::setSegmentSharing(segmentSharing_.value);
}

void
RuntimeConfig::dump(std::ostream &out) const
{
    auto onOff = [](bool value) { return value ? "on" : "off"; };
    stats::TextTable table({"setting", "value", "source"});
    table.addRow({"interning", onOff(intern_.value),
                  configOriginName(intern_.origin)});
    table.addRow({"prefix tree", onOff(prefixTree_.value),
                  configOriginName(prefixTree_.origin)});
    table.addRow({"segment sharing", onOff(segmentSharing_.value),
                  configOriginName(segmentSharing_.origin)});
    table.addRow({"sweep", onOff(sweep_.value),
                  configOriginName(sweep_.origin)});
    table.addRow({"jobs",
                  jobs_.value == 0 ? std::string("auto")
                                   : std::to_string(jobs_.value),
                  configOriginName(jobs_.origin)});
    table.addRow({"adaptive sync", onOff(adaptiveSync_.value),
                  configOriginName(adaptiveSync_.origin)});
    table.addRow({"serve readers", std::to_string(serveReaders_.value),
                  configOriginName(serveReaders_.origin)});
    table.addRow({"snapshot every",
                  snapshotEvery_.value == 0
                      ? std::string("flush")
                      : std::to_string(snapshotEvery_.value),
                  configOriginName(snapshotEvery_.origin)});
    table.addRow({"query mix", queryMix_.value,
                  configOriginName(queryMix_.origin)});
    table.addRow({"max paths", std::to_string(maxPaths_.value),
                  configOriginName(maxPaths_.origin)});
    table.addRow({"mrai ms",
                  mraiMs_.value == 0 ? std::string("off")
                                     : std::to_string(mraiMs_.value),
                  configOriginName(mraiMs_.origin)});
    table.addRow({"damping", onOff(damping_.value),
                  configOriginName(damping_.origin)});
    table.print(out);
}

} // namespace bgpbench::core
