/**
 * @file
 * The process-wide runtime switches, read once at startup.
 *
 * Historically each switch lived in the subsystem it toggles:
 * BGPBENCH_NO_INTERN inside the attribute interner,
 * BGPBENCH_NO_SEGMENT_SHARING inside the wire buffer pool,
 * BGPBENCH_SWEEP / BGPBENCH_JOBS inside individual benchmark mains.
 * RuntimeConfig gathers them behind one struct with a documented
 * precedence — command line beats environment beats built-in default —
 * and remembers where each value came from so `bgpbench config` can
 * show the effective configuration.
 *
 * Intended use: fromEnvironment() early in main(), override*() while
 * parsing argv, then one apply() BEFORE any worker thread spawns (the
 * attribute interner is per-thread and latches the process default at
 * construction).
 */

#ifndef BGPBENCH_CORE_RUNTIME_CONFIG_HH
#define BGPBENCH_CORE_RUNTIME_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace bgpbench::core
{

/** Where a RuntimeConfig value came from (lowest to highest). */
enum class ConfigOrigin
{
    Default,
    Environment,
    CommandLine,
};

/** "default" | "environment" | "command line". */
const char *configOriginName(ConfigOrigin origin);

class RuntimeConfig
{
  public:
    /** One switch plus the provenance of its current value. */
    template <typename T>
    struct Setting
    {
        T value{};
        ConfigOrigin origin = ConfigOrigin::Default;
    };

    /** Built-in defaults only; ignores the environment. */
    RuntimeConfig() = default;

    /**
     * Defaults overlaid with the BGPBENCH_* environment variables
     * (BGPBENCH_NO_INTERN=1, BGPBENCH_NO_SEGMENT_SHARING=<non-zero>,
     * BGPBENCH_NO_PREFIX_TREE=1, BGPBENCH_NO_ADAPTIVE_SYNC=1,
     * BGPBENCH_SWEEP=1, BGPBENCH_JOBS=<n>,
     * BGPBENCH_SERVE_READERS=<n>, BGPBENCH_SNAPSHOT_EVERY=<n>,
     * BGPBENCH_QUERY_MIX=<L:B:S:P>, BGPBENCH_MAX_PATHS=<n>,
     * BGPBENCH_MRAI_MS=<n>, BGPBENCH_DAMPING=1).
     * Unset or unparsable variables leave the default in place.
     */
    static RuntimeConfig fromEnvironment();

    /** Attribute-set hash-consing (ablation switch). */
    bool internEnabled() const { return intern_.value; }
    /** Shared-prefix-tree RIB storage (ablation switch). */
    bool prefixTree() const { return prefixTree_.value; }
    /** Wire segment sharing across receivers (ablation switch). */
    bool segmentSharing() const { return segmentSharing_.value; }
    /** Benchmarks: also run the jobs-sweep section. */
    bool sweep() const { return sweep_.value; }
    /** Topology worker threads; 1 = sequential, 0 = auto. */
    size_t jobs() const { return jobs_.value; }
    /** Adaptive sync windows in the parallel engine (ablation). */
    bool adaptiveSync() const { return adaptiveSync_.value; }
    /** Serve workload reader threads. */
    size_t serveReaders() const { return serveReaders_.value; }
    /** Snapshot granularity: 0 = per flush, N = per N decisions. */
    uint64_t snapshotEvery() const { return snapshotEvery_.value; }
    /** Query class mix "L:B:S:P" (workload::QueryMix::parse form). */
    const std::string &queryMix() const { return queryMix_.value; }
    /** BGP maximum-paths (ECMP width); 1 = single best path. */
    size_t maxPaths() const { return maxPaths_.value; }
    /** Per-session MRAI in ms; 0 (paper default) = no batching. */
    uint64_t mraiMs() const { return mraiMs_.value; }
    /** Route flap damping (RFC 2439) in topology scenarios. */
    bool damping() const { return damping_.value; }

    ConfigOrigin internOrigin() const { return intern_.origin; }
    ConfigOrigin prefixTreeOrigin() const
    {
        return prefixTree_.origin;
    }
    ConfigOrigin segmentSharingOrigin() const
    {
        return segmentSharing_.origin;
    }
    ConfigOrigin sweepOrigin() const { return sweep_.origin; }
    ConfigOrigin jobsOrigin() const { return jobs_.origin; }
    ConfigOrigin adaptiveSyncOrigin() const
    {
        return adaptiveSync_.origin;
    }
    ConfigOrigin serveReadersOrigin() const
    {
        return serveReaders_.origin;
    }
    ConfigOrigin snapshotEveryOrigin() const
    {
        return snapshotEvery_.origin;
    }
    ConfigOrigin queryMixOrigin() const { return queryMix_.origin; }
    ConfigOrigin maxPathsOrigin() const { return maxPaths_.origin; }
    ConfigOrigin mraiMsOrigin() const { return mraiMs_.origin; }
    ConfigOrigin dampingOrigin() const { return damping_.origin; }

    /** Command-line overrides (highest precedence). */
    void overrideIntern(bool enabled);
    void overridePrefixTree(bool enabled);
    void overrideSegmentSharing(bool enabled);
    void overrideSweep(bool enabled);
    void overrideJobs(size_t jobs);
    void overrideAdaptiveSync(bool enabled);
    void overrideServeReaders(size_t readers);
    void overrideSnapshotEvery(uint64_t every);
    void overrideQueryMix(std::string mix);
    void overrideMaxPaths(size_t paths);
    void overrideMraiMs(uint64_t ms);
    void overrideDamping(bool enabled);

    /**
     * Push the switches into their subsystems: the process-wide
     * intern default, the calling thread's already-built interner,
     * and the wire pool's sharing flag. Call before spawning worker
     * threads — interners built afterwards latch the new default,
     * ones built before it keep their own setting.
     */
    void apply() const;

    /** Aligned name/value/source dump (the `config` subcommand). */
    void dump(std::ostream &out) const;

  private:
    Setting<bool> intern_{true, ConfigOrigin::Default};
    Setting<bool> prefixTree_{true, ConfigOrigin::Default};
    Setting<bool> segmentSharing_{true, ConfigOrigin::Default};
    Setting<bool> sweep_{false, ConfigOrigin::Default};
    Setting<size_t> jobs_{1, ConfigOrigin::Default};
    Setting<bool> adaptiveSync_{true, ConfigOrigin::Default};
    Setting<size_t> serveReaders_{4, ConfigOrigin::Default};
    Setting<uint64_t> snapshotEvery_{0, ConfigOrigin::Default};
    Setting<std::string> queryMix_{"88:10:1.5:0.5",
                                   ConfigOrigin::Default};
    Setting<size_t> maxPaths_{1, ConfigOrigin::Default};
    Setting<uint64_t> mraiMs_{0, ConfigOrigin::Default};
    Setting<bool> damping_{false, ConfigOrigin::Default};
};

} // namespace bgpbench::core

#endif // BGPBENCH_CORE_RUNTIME_CONFIG_HH
