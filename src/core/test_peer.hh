/**
 * @file
 * Scripted BGP test speaker (the benchmark's "Speaker 1"/"Speaker 2").
 *
 * The speakers surrounding the router under test are measurement
 * harness, not subjects: they run at zero simulated cost (the paper's
 * speakers were far faster than any router tested) but speak real
 * BGP-4 on the wire — OPEN/KEEPALIVE handshake, hold-timer keepalives,
 * and pre-built UPDATE streams. Sending respects the router's receive
 * buffer, which models the TCP backpressure that lets a slow router
 * pace a fast sender.
 */

#ifndef BGPBENCH_CORE_TEST_PEER_HH
#define BGPBENCH_CORE_TEST_PEER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "bgp/message.hh"
#include "bgp/types.hh"
#include "net/ipv4_address.hh"
#include "router/router_system.hh"
#include "sim/event_queue.hh"
#include "workload/update_stream.hh"

namespace bgpbench::core
{

/** Test speaker configuration. */
struct TestPeerConfig
{
    bgp::AsNumber asn = 65001;
    bgp::RouterId routerId = 0x0a000101;
    net::Ipv4Address address = net::Ipv4Address(10, 0, 1, 2);
    uint16_t holdTimeSec = 180;
    /** Interval between keepalives the peer emits once established. */
    double keepaliveSec = 30.0;
};

/** What the test peer has received from the router under test. */
struct TestPeerCounters
{
    uint64_t updatesReceived = 0;
    uint64_t announcementsReceived = 0;
    uint64_t withdrawalsReceived = 0;
    uint64_t keepalivesReceived = 0;
    uint64_t notificationsReceived = 0;
    uint64_t refreshesReceived = 0;
    uint64_t segmentsSent = 0;

    uint64_t
    transactionsReceived() const
    {
        return announcementsReceived + withdrawalsReceived;
    }
};

/**
 * One scripted speaker attached to a router port. Construct, then
 * connect(); once established() the queued stream flows under flow
 * control.
 */
class TestPeer
{
  public:
    /**
     * @param sim Simulation clock/event source.
     * @param config Speaker identity.
     * @param router The router under test; must outlive the peer.
     * @param port The router port this peer attaches to.
     */
    TestPeer(sim::Simulator *sim, TestPeerConfig config,
             router::RouterSystem *router, size_t port);
    ~TestPeer();

    TestPeer(const TestPeer &) = delete;
    TestPeer &operator=(const TestPeer &) = delete;

    /** Bring the transport up and run the OPEN exchange. */
    void connect();

    /** True once the session has reached Established on our side. */
    bool established() const { return established_; }

    /** Queue packets to send (flows once established). */
    void enqueueStream(std::vector<workload::StreamPacket> packets);

    /** Ask the router to re-send its table (RFC 2918). */
    void sendRouteRefresh();

    /** True when every queued packet has been handed to the router. */
    bool
    sendComplete() const
    {
        return sendQueue_.empty();
    }

    /** Packets still waiting for receive-buffer space. */
    size_t pendingPackets() const { return sendQueue_.size(); }

    const TestPeerCounters &counters() const { return counters_; }

  private:
    /** Push queued packets while the router has buffer space. */
    void pump();

    /** Handle a segment transmitted by the router. */
    void receive(net::WireSegmentPtr segment);

    /** Send one wire segment into the router port (assumes space). */
    void sendSegment(net::WireSegmentPtr segment);

    sim::Simulator *sim_;
    TestPeerConfig config_;
    router::RouterSystem *router_;
    size_t port_;

    /** Guards periodic events against outliving the peer. */
    std::shared_ptr<bool> alive_;

    bgp::StreamDecoder decoder_;
    bool connected_ = false;
    bool established_ = false;
    std::deque<workload::StreamPacket> sendQueue_;
    TestPeerCounters counters_;
};

} // namespace bgpbench::core

#endif // BGPBENCH_CORE_TEST_PEER_HH
