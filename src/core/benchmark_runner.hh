/**
 * @file
 * The BGP benchmark: the paper's three-phase methodology (Figure 1)
 * driving one router under test through any of the eight scenarios
 * (Table I), with or without forwarding cross-traffic, reporting the
 * transactions-per-second metric of section III.C.
 */

#ifndef BGPBENCH_CORE_BENCHMARK_RUNNER_HH
#define BGPBENCH_CORE_BENCHMARK_RUNNER_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "bgp/policy.hh"
#include "core/scenario.hh"
#include "core/test_peer.hh"
#include "obs/observability.hh"
#include "router/router_system.hh"
#include "router/system_profiles.hh"
#include "sim/event_queue.hh"
#include "workload/cross_traffic.hh"
#include "workload/route_set.hh"

namespace bgpbench::core
{

/** Benchmark parameters independent of scenario and platform. */
struct BenchmarkConfig
{
    /** Size of the injected routing table. */
    size_t prefixCount = 4000;
    /** Workload generation seed. */
    uint64_t seed = 42;
    /** Offered forwarding load during all phases (0 = none). */
    double crossTrafficMbps = 0.0;
    /** Cross-traffic frame size. */
    uint32_t crossPacketBytes = 1000;
    /** Enable RFC 2439 flap damping on the router under test. */
    bool dampingEnabled = false;
    /** Safety cap on simulated time per run. */
    sim::SimTime simTimeLimit = sim::nsFromSec(36000.0);
    /** Speaker 1 / Speaker 2 / router-under-test AS numbers. */
    bgp::AsNumber speaker1As = 65001;
    bgp::AsNumber speaker2As = 65002;
    bgp::AsNumber routerAs = 65000;
    /**
     * Session policies attached to both peers of the router under
     * test (empty = accept unmodified, the paper's configuration).
     * This is how the policy-cost benches re-run the Table III
     * scenarios with route-maps in the hot path.
     */
    bgp::Policy importPolicy;
    bgp::Policy exportPolicy;
    /**
     * Observability sinks for the run, or null (detached — the
     * default). When set, the router-under-test's speaker is bound
     * to the registry and the three benchmark phases (plus session
     * establishment) are recorded as virtual-time trace spans.
     * Timing results are unaffected either way. Must outlive the
     * runner.
     */
    obs::RunObservability *obs = nullptr;
};

/** Timing of one benchmark phase. */
struct PhaseResult
{
    double startSec = 0.0;
    double durationSec = 0.0;
    size_t transactions = 0;

    double
    transactionsPerSecond() const
    {
        return durationSec > 0 ? double(transactions) / durationSec
                               : 0.0;
    }
};

/** Outcome of one scenario run on one system. */
struct BenchmarkResult
{
    Scenario scenario;
    std::string systemName;
    double crossTrafficMbps = 0.0;

    PhaseResult phase1;
    std::optional<PhaseResult> phase2;
    std::optional<PhaseResult> phase3;

    /** The paper's metric: TPS of the scenario's measured phase. */
    double measuredTps = 0.0;
    bool timedOut = false;

    router::DataPlaneCounters dataPlane;
    bgp::SpeakerCounters speakerCounters;
};

/**
 * Runs benchmark scenarios against a fresh simulated router per run.
 *
 * After run() returns, the simulation, router, and test peers remain
 * alive and inspectable (router(), simulator(), speaker counters,
 * CPU-load series) until the next run() or destruction — this is how
 * the figure benches extract their time series.
 */
class BenchmarkRunner
{
  public:
    BenchmarkRunner(router::SystemProfile profile,
                    BenchmarkConfig config);
    ~BenchmarkRunner();

    /** Execute @p scenario from a cold start; returns the result. */
    BenchmarkResult run(const Scenario &scenario);

    /** The router of the most recent run (valid after run()). */
    router::RouterSystem &router();
    /** The simulator of the most recent run. */
    sim::Simulator &simulator();
    /** Speaker 1 of the most recent run. */
    TestPeer &speaker1();
    /** Speaker 2 of the most recent run (valid if the scenario used
     *  one). */
    TestPeer &speaker2();

    const BenchmarkConfig &config() const { return config_; }
    const router::SystemProfile &profile() const { return profile_; }

  private:
    /** Build the simulation world for one run. */
    void setUp(const Scenario &scenario);

    /**
     * Advance simulated time until @p done returns true or the time
     * limit passes.
     * @return False on timeout.
     */
    bool runUntil(const std::function<bool()> &done);

    router::SystemProfile profile_;
    BenchmarkConfig config_;
    /** Feeds config_.obs->trace when sinks are attached. */
    obs::Tracer tracer_;

    std::vector<workload::RouteSpec> routes_;
    std::unique_ptr<sim::Simulator> sim_;
    std::unique_ptr<router::RouterSystem> router_;
    std::unique_ptr<TestPeer> speaker1_;
    std::unique_ptr<TestPeer> speaker2_;
};

} // namespace bgpbench::core

#endif // BGPBENCH_CORE_BENCHMARK_RUNNER_HH
