#include "core/benchmark_runner.hh"

#include "net/logging.hh"
#include "workload/update_stream.hh"

namespace bgpbench::core
{

namespace
{

/** Prefix the static cross-traffic route covers (RFC 2544 space). */
const net::Prefix crossTrafficPrefix =
    net::Prefix(net::Ipv4Address(198, 18, 0, 0), 15);

} // namespace

BenchmarkRunner::BenchmarkRunner(router::SystemProfile profile,
                                 BenchmarkConfig config)
    : profile_(std::move(profile)), config_(config)
{
    if (config_.prefixCount == 0)
        fatal("benchmark requires at least one prefix");

    workload::RouteSetConfig rc;
    rc.count = config_.prefixCount;
    rc.seed = config_.seed;
    routes_ = workload::generateRouteSet(rc);
}

BenchmarkRunner::~BenchmarkRunner() = default;

router::RouterSystem &
BenchmarkRunner::router()
{
    panicIf(!router_, "no benchmark has run yet");
    return *router_;
}

sim::Simulator &
BenchmarkRunner::simulator()
{
    panicIf(!sim_, "no benchmark has run yet");
    return *sim_;
}

TestPeer &
BenchmarkRunner::speaker1()
{
    panicIf(!speaker1_, "no benchmark has run yet");
    return *speaker1_;
}

TestPeer &
BenchmarkRunner::speaker2()
{
    panicIf(!speaker2_, "no benchmark has run yet");
    return *speaker2_;
}

void
BenchmarkRunner::setUp(const Scenario &scenario)
{
    (void)scenario;

    // Tear down the previous run first (peers reference the router).
    speaker2_.reset();
    speaker1_.reset();
    router_.reset();
    sim_.reset();

    sim_ = std::make_unique<sim::Simulator>();

    router::RouterConfig rc;
    rc.localAs = config_.routerAs;
    rc.routerId = 0x0a000001;
    rc.address = net::Ipv4Address(10, 0, 0, 1);
    rc.damping.enabled = config_.dampingEnabled;

    bgp::PeerConfig p1;
    p1.id = 0;
    p1.asn = config_.speaker1As;
    p1.address = net::Ipv4Address(10, 0, 1, 2);
    p1.importPolicy = config_.importPolicy;
    p1.exportPolicy = config_.exportPolicy;
    bgp::PeerConfig p2;
    p2.id = 1;
    p2.asn = config_.speaker2As;
    p2.address = net::Ipv4Address(10, 0, 2, 2);
    p2.importPolicy = config_.importPolicy;
    p2.exportPolicy = config_.exportPolicy;
    rc.peers = {p1, p2};

    router_ = std::make_unique<router::RouterSystem>(sim_.get(),
                                                     profile_, rc);

    if (config_.crossTrafficMbps > 0) {
        // Static route for the cross-traffic path: the testbed
        // forwards measurement traffic independently of BGP
        // convergence.
        router_->installStaticRoute(crossTrafficPrefix,
                                    net::Ipv4Address(10, 0, 2, 2), 2);

        workload::CrossTrafficConfig ct;
        ct.mbps = config_.crossTrafficMbps;
        ct.packetBytes = config_.crossPacketBytes;
        ct.source = net::Ipv4Address(10, 0, 3, 2);
        for (int i = 0; i < 32; ++i) {
            ct.destinations.push_back(net::Ipv4Address(
                198, 18, uint8_t(i * 7), uint8_t(1 + i)));
        }
        router_->setCrossTraffic(ct);
    }

    TestPeerConfig s1;
    s1.asn = config_.speaker1As;
    s1.routerId = 0x0a000102;
    s1.address = net::Ipv4Address(10, 0, 1, 2);
    speaker1_ = std::make_unique<TestPeer>(sim_.get(), s1,
                                           router_.get(), 0);

    TestPeerConfig s2;
    s2.asn = config_.speaker2As;
    s2.routerId = 0x0a000202;
    s2.address = net::Ipv4Address(10, 0, 2, 2);
    speaker2_ = std::make_unique<TestPeer>(sim_.get(), s2,
                                           router_.get(), 1);

    if (config_.obs) {
        tracer_.attach(&config_.obs->trace);
        router_->speaker().bindObservability(&config_.obs->metrics,
                                             &tracer_, 0);
    } else {
        tracer_.detach();
    }

    router_->start();
}

bool
BenchmarkRunner::runUntil(const std::function<bool()> &done)
{
    const sim::SimTime step = sim::nsFromMs(1);
    while (!done()) {
        if (sim_->now() >= config_.simTimeLimit)
            return false;
        sim_->runUntil(sim_->now() + step);
    }
    return true;
}

BenchmarkResult
BenchmarkRunner::run(const Scenario &scenario)
{
    setUp(scenario);

    BenchmarkResult result;
    result.scenario = scenario;
    result.systemName = profile_.name;
    result.crossTrafficMbps = config_.crossTrafficMbps;

    const size_t n = routes_.size();
    auto &speaker = router_->speaker();

    // --- Session establishment (Speaker 1) ---------------------------
    sim::SimTime establish_begin = sim_->now();
    speaker1_->connect();
    bool established = runUntil([&]() {
        return speaker1_->established() &&
               speaker.sessionState(0) ==
                   bgp::SessionState::Established &&
               router_->controlDrained();
    });
    tracer_.complete("establish", "phase", obs::kTrackPhases, 0,
                     establish_begin, sim_->now());
    if (!established) {
        result.timedOut = true;
        return result;
    }

    // --- Phase 1: Speaker 1 injects the routing table ----------------
    workload::StreamConfig s1_cfg;
    s1_cfg.speakerAs = config_.speaker1As;
    s1_cfg.nextHop = net::Ipv4Address(10, 0, 1, 2);
    s1_cfg.prefixesPerPacket = scenario.prefixesPerPacket();
    // In scenarios 7/8 Speaker 1's paths must be longer than Speaker
    // 2's later ones, so that Speaker 2's replace every best path.
    s1_cfg.extraPrepends =
        scenario.operation == BgpOperation::IncrementalChange ? 2 : 0;

    sim::SimTime phase1_begin = sim_->now();
    double t0 = sim::toSeconds(phase1_begin);
    speaker1_->enqueueStream(
        workload::buildAnnouncementStream(routes_, s1_cfg));
    bool ok = runUntil([&]() {
        return speaker1_->sendComplete() &&
               speaker.counters().announcementsProcessed >= n &&
               router_->controlDrained();
    });
    tracer_.complete("phase1", "phase", obs::kTrackPhases, 0,
                     phase1_begin, sim_->now());
    result.phase1.startSec = t0;
    result.phase1.durationSec = sim::toSeconds(sim_->now()) - t0;
    result.phase1.transactions = n;
    if (!ok) {
        result.timedOut = true;
        return result;
    }

    // --- Phase 2: route propagation to Speaker 2 ---------------------
    if (scenario.usesSecondSpeaker()) {
        sim::SimTime phase2_begin = sim_->now();
        double t2 = sim::toSeconds(phase2_begin);
        speaker2_->connect();
        ok = runUntil([&]() {
            return speaker2_->established() &&
                   speaker2_->counters().announcementsReceived >= n &&
                   router_->controlDrained();
        });
        tracer_.complete("phase2", "phase", obs::kTrackPhases, 0,
                         phase2_begin, sim_->now());
        PhaseResult phase2;
        phase2.startSec = t2;
        phase2.durationSec = sim::toSeconds(sim_->now()) - t2;
        phase2.transactions =
            speaker2_->counters().announcementsReceived;
        result.phase2 = phase2;
        if (!ok) {
            result.timedOut = true;
            return result;
        }
    }

    // --- Phase 3 ------------------------------------------------------
    if (scenario.operation != BgpOperation::StartupAnnounce) {
        sim::SimTime phase3_begin = sim_->now();
        double t3 = sim::toSeconds(phase3_begin);
        PhaseResult phase3;
        phase3.startSec = t3;
        phase3.transactions = n;

        switch (scenario.operation) {
          case BgpOperation::EndingWithdraw: {
            workload::StreamConfig wd = s1_cfg;
            speaker1_->enqueueStream(
                workload::buildWithdrawalStream(routes_, wd));
            ok = runUntil([&]() {
                return speaker1_->sendComplete() &&
                       speaker.counters().withdrawalsProcessed >= n &&
                       router_->controlDrained();
            });
            break;
          }

          case BgpOperation::IncrementalNoChange:
          case BgpOperation::IncrementalChange: {
            workload::StreamConfig s2_cfg;
            s2_cfg.speakerAs = config_.speaker2As;
            s2_cfg.nextHop = net::Ipv4Address(10, 0, 2, 2);
            s2_cfg.prefixesPerPacket = scenario.prefixesPerPacket();
            // Longer paths when the best must not change (5/6);
            // Speaker 1 already has the longer paths in 7/8.
            s2_cfg.extraPrepends =
                scenario.operation ==
                        BgpOperation::IncrementalNoChange
                    ? 2
                    : 0;
            speaker2_->enqueueStream(
                workload::buildAnnouncementStream(routes_, s2_cfg));
            ok = runUntil([&]() {
                return speaker2_->sendComplete() &&
                       speaker.counters().announcementsProcessed >=
                           2 * n &&
                       router_->controlDrained();
            });
            break;
          }

          case BgpOperation::StartupAnnounce:
            break;
        }

        tracer_.complete("phase3", "phase", obs::kTrackPhases, 0,
                         phase3_begin, sim_->now());
        phase3.durationSec = sim::toSeconds(sim_->now()) - t3;
        result.phase3 = phase3;
        if (!ok) {
            result.timedOut = true;
            return result;
        }
    }

    result.measuredTps = scenario.measuresPhase1()
                             ? result.phase1.transactionsPerSecond()
                             : result.phase3->transactionsPerSecond();
    result.dataPlane = router_->dataPlane();
    result.speakerCounters = speaker.counters();
    return result;
}

} // namespace bgpbench::core
