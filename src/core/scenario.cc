#include "core/scenario.hh"

#include "net/logging.hh"

namespace bgpbench::core
{

std::string
Scenario::name() const
{
    return "Scenario " + std::to_string(number);
}

std::string
Scenario::description() const
{
    std::string size =
        packetSize == PacketSize::Small ? "small packets"
                                        : "large packets";
    switch (operation) {
      case BgpOperation::StartupAnnounce:
        return "start-up: bulk route announcements (" + size + ")";
      case BgpOperation::EndingWithdraw:
        return "ending: bulk route withdrawals (" + size + ")";
      case BgpOperation::IncrementalNoChange:
        return "incremental: longer-path announcements, no "
               "forwarding-table change (" + size + ")";
      case BgpOperation::IncrementalChange:
        return "incremental: shorter-path announcements replacing "
               "every best path (" + size + ")";
    }
    return "?";
}

Scenario
scenarioByNumber(int number)
{
    if (number < 1 || number > 8)
        fatal("scenario number must be in [1, 8]");

    static const BgpOperation ops[4] = {
        BgpOperation::StartupAnnounce,
        BgpOperation::EndingWithdraw,
        BgpOperation::IncrementalNoChange,
        BgpOperation::IncrementalChange,
    };

    Scenario s;
    s.number = number;
    s.operation = ops[(number - 1) / 2];
    s.packetSize =
        (number % 2 == 1) ? PacketSize::Small : PacketSize::Large;
    return s;
}

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> out;
    for (int n = 1; n <= 8; ++n)
        out.push_back(scenarioByNumber(n));
    return out;
}

} // namespace bgpbench::core
