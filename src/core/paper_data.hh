/**
 * @file
 * Reference numbers from the paper, used by the benchmark harness to
 * print side-by-side comparisons and by the shape tests in
 * tests/core to assert that the reproduction preserves the paper's
 * qualitative results.
 */

#ifndef BGPBENCH_CORE_PAPER_DATA_HH
#define BGPBENCH_CORE_PAPER_DATA_HH

#include <array>
#include <string>

namespace bgpbench::core::paper
{

/** Column order of Table III. */
enum SystemIndex
{
    PentiumIII = 0,
    Xeon = 1,
    Ixp2400 = 2,
    Cisco = 3,
};

/** System names in Table III column order. */
inline constexpr std::array<const char *, 4> systemNames = {
    "PentiumIII", "Xeon", "IXP2400", "Cisco"};

/**
 * Table III: BGP performance without cross-traffic in transactions
 * per second. Indexed [scenario-1][system].
 */
inline constexpr std::array<std::array<double, 4>, 8> table3Tps = {{
    {185.2, 2105.3, 24.1, 10.7},      // Scenario 1
    {312.5, 2247.2, 36.4, 2492.9},    // Scenario 2
    {204.1, 2898.6, 26.7, 10.4},      // Scenario 3
    {344.8, 1941.7, 43.5, 2927.5},    // Scenario 4
    {1111.1, 3389.8, 85.7, 10.9},     // Scenario 5
    {3636.4, 10000.0, 230.8, 3332.3}, // Scenario 6
    {116.6, 784.3, 11.6, 10.7},       // Scenario 7
    {118.7, 673.4, 14.9, 2445.2},     // Scenario 8
}};

/**
 * Section V.B: maximum forwardable data rate per system in Mbps
 * (PCI bus, PCI Express bus, network interconnect, 100 Mbps ports).
 */
inline constexpr std::array<double, 4> maxCrossTrafficMbps = {
    315.0, 784.0, 940.0, 78.0};

/** Paper value lookup by profile name; -1 when unknown. */
inline int
systemIndexByName(const std::string &name)
{
    for (size_t i = 0; i < systemNames.size(); ++i) {
        if (name == systemNames[i])
            return int(i);
    }
    return -1;
}

} // namespace bgpbench::core::paper

#endif // BGPBENCH_CORE_PAPER_DATA_HH
