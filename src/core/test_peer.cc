#include "core/test_peer.hh"

#include "net/logging.hh"

namespace bgpbench::core
{

TestPeer::TestPeer(sim::Simulator *sim, TestPeerConfig config,
                   router::RouterSystem *router, size_t port)
    : sim_(sim), config_(config), router_(router), port_(port),
      alive_(std::make_shared<bool>(true))
{
    panicIf(sim_ == nullptr || router_ == nullptr,
            "test peer requires a simulator and a router");

    router_->setPortTransmitHandler(
        port_, [this](net::WireSegmentPtr segment) {
            receive(std::move(segment));
        });
    router_->setPortDrainHandler(port_, [this]() { pump(); });
}

void
TestPeer::connect()
{
    panicIf(connected_, "test peer connected twice");
    connected_ = true;

    // Bring the router's side of the TCP connection up, then send our
    // OPEN (both sides open simultaneously, as BGP allows).
    router_->connectPeer(port_);

    bgp::OpenMessage open;
    open.myAs = config_.asn;
    open.holdTimeSec = config_.holdTimeSec;
    open.bgpIdentifier = config_.routerId;
    sendSegment(bgp::encodeSegment(open));

    // Keepalives for the router's hold timer. The stream's UPDATEs
    // also refresh it, but quiet gaps (e.g. between phases) need
    // explicit keepalives.
    sim_->scheduleEvery(
        sim::nsFromSec(config_.keepaliveSec),
        [this, alive = alive_]() {
            if (!*alive)
                return false;
            if (!established_)
                return true;
            sendSegment(bgp::encodeSegment(bgp::KeepaliveMessage{}));
            return true;
        });
}

TestPeer::~TestPeer()
{
    *alive_ = false;
}

void
TestPeer::sendRouteRefresh()
{
    sendSegment(bgp::encodeSegment(bgp::RouteRefreshMessage{}));
}

void
TestPeer::enqueueStream(std::vector<workload::StreamPacket> packets)
{
    for (auto &pkt : packets)
        sendQueue_.push_back(std::move(pkt));
    pump();
}

void
TestPeer::pump()
{
    if (!established_)
        return;
    while (!sendQueue_.empty() &&
           router_->rxSpace(port_) >= sendQueue_.front().wire->size()) {
        sendSegment(std::move(sendQueue_.front().wire));
        sendQueue_.pop_front();
    }
}

void
TestPeer::sendSegment(net::WireSegmentPtr segment)
{
    ++counters_.segmentsSent;
    router_->deliverToPort(port_, std::move(segment));
}

void
TestPeer::receive(net::WireSegmentPtr segment)
{
    decoder_.feed(std::move(segment));

    bgp::DecodeError error;
    while (auto msg = decoder_.next(error)) {
        switch (bgp::messageType(*msg)) {
          case bgp::MessageType::Open:
            // Acknowledge the router's OPEN.
            sendSegment(
                bgp::encodeSegment(bgp::KeepaliveMessage{}));
            break;

          case bgp::MessageType::Keepalive:
            ++counters_.keepalivesReceived;
            if (!established_) {
                established_ = true;
                pump();
            }
            break;

          case bgp::MessageType::Update: {
            const auto &update = std::get<bgp::UpdateMessage>(*msg);
            ++counters_.updatesReceived;
            counters_.announcementsReceived += update.nlri.size();
            counters_.withdrawalsReceived +=
                update.withdrawnRoutes.size();
            break;
          }

          case bgp::MessageType::Notification:
            ++counters_.notificationsReceived;
            established_ = false;
            break;

          case bgp::MessageType::RouteRefresh:
            ++counters_.refreshesReceived;
            break;
        }
    }
    panicIf(bool(error),
            "router sent a malformed message to a test peer: " +
                error.detail);
}

} // namespace bgpbench::core
