#include "bgp/types.hh"

namespace bgpbench::bgp
{

std::string
toString(MessageType type)
{
    switch (type) {
      case MessageType::Open:
        return "OPEN";
      case MessageType::Update:
        return "UPDATE";
      case MessageType::Notification:
        return "NOTIFICATION";
      case MessageType::Keepalive:
        return "KEEPALIVE";
      case MessageType::RouteRefresh:
        return "ROUTE-REFRESH";
    }
    return "UNKNOWN(" + std::to_string(int(type)) + ")";
}

std::string
toString(Origin origin)
{
    switch (origin) {
      case Origin::Igp:
        return "IGP";
      case Origin::Egp:
        return "EGP";
      case Origin::Incomplete:
        return "INCOMPLETE";
    }
    return "INVALID(" + std::to_string(int(origin)) + ")";
}

std::string
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None:
        return "none";
      case ErrorCode::MessageHeaderError:
        return "message-header-error";
      case ErrorCode::OpenMessageError:
        return "open-message-error";
      case ErrorCode::UpdateMessageError:
        return "update-message-error";
      case ErrorCode::HoldTimerExpired:
        return "hold-timer-expired";
      case ErrorCode::FsmError:
        return "fsm-error";
      case ErrorCode::Cease:
        return "cease";
    }
    return "unknown(" + std::to_string(int(code)) + ")";
}

} // namespace bgpbench::bgp
