#include "bgp/as_path.hh"

#include <algorithm>

namespace bgpbench::bgp
{

AsPath
AsPath::sequence(std::initializer_list<AsNumber> asns)
{
    return sequence(std::vector<AsNumber>(asns));
}

AsPath
AsPath::sequence(std::vector<AsNumber> asns)
{
    AsPath path;
    if (!asns.empty()) {
        path.segments_.push_back(
            Segment{SegmentType::AsSequence, std::move(asns)});
    }
    return path;
}

void
AsPath::addSegment(Segment segment)
{
    segments_.push_back(std::move(segment));
}

void
AsPath::prepend(AsNumber asn)
{
    // RFC 4271 5.1.2: extend a leading AS_SEQUENCE if it has room for
    // one more AS (segment max is 255 entries), else prepend a new
    // sequence segment.
    if (!segments_.empty() &&
        segments_.front().type == SegmentType::AsSequence &&
        segments_.front().asns.size() < 255) {
        auto &front = segments_.front().asns;
        front.insert(front.begin(), asn);
    } else {
        segments_.insert(segments_.begin(),
                         Segment{SegmentType::AsSequence, {asn}});
    }
}

int
AsPath::pathLength() const
{
    int length = 0;
    for (const auto &seg : segments_) {
        if (seg.type == SegmentType::AsSequence)
            length += int(seg.asns.size());
        else
            length += 1;
    }
    return length;
}

bool
AsPath::contains(AsNumber asn) const
{
    for (const auto &seg : segments_) {
        if (std::find(seg.asns.begin(), seg.asns.end(), asn) !=
            seg.asns.end()) {
            return true;
        }
    }
    return false;
}

AsNumber
AsPath::firstAs() const
{
    for (const auto &seg : segments_) {
        if (!seg.asns.empty())
            return seg.asns.front();
    }
    return 0;
}

AsNumber
AsPath::originAs() const
{
    for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
        if (!it->asns.empty())
            return it->asns.back();
    }
    return 0;
}

void
AsPath::encodeValue(net::ByteWriter &writer) const
{
    for (const auto &seg : segments_) {
        writer.writeU8(uint8_t(seg.type));
        writer.writeU8(uint8_t(seg.asns.size()));
        for (AsNumber asn : seg.asns)
            writer.writeU16(asn);
    }
}

size_t
AsPath::encodedValueSize() const
{
    size_t size = 0;
    for (const auto &seg : segments_)
        size += 2 + 2 * seg.asns.size();
    return size;
}

AsPath
AsPath::decodeValue(net::ByteReader &reader)
{
    AsPath path;
    while (reader.ok() && reader.remaining() > 0) {
        Segment seg;
        uint8_t type = reader.readU8();
        if (type != uint8_t(SegmentType::AsSet) &&
            type != uint8_t(SegmentType::AsSequence)) {
            reader.markError();
            return path;
        }
        seg.type = SegmentType(type);

        uint8_t count = reader.readU8();
        if (count == 0) {
            reader.markError();
            return path;
        }
        seg.asns.reserve(count);
        for (int i = 0; i < count; ++i)
            seg.asns.push_back(reader.readU16());

        if (!reader.ok())
            return path;
        path.segments_.push_back(std::move(seg));
    }
    return path;
}

std::string
AsPath::toString() const
{
    std::string out;
    for (const auto &seg : segments_) {
        if (!out.empty())
            out.push_back(' ');
        bool set = seg.type == SegmentType::AsSet;
        if (set)
            out.push_back('{');
        for (size_t i = 0; i < seg.asns.size(); ++i) {
            if (i)
                out.push_back(set ? ',' : ' ');
            out += std::to_string(seg.asns[i]);
        }
        if (set)
            out.push_back('}');
    }
    return out;
}

} // namespace bgpbench::bgp
