#include "bgp/rib.hh"

namespace bgpbench::bgp
{

bool
AdjRibIn::update(const net::Prefix &prefix, PathAttributesPtr received,
                 PathAttributesPtr effective)
{
    auto [it, inserted] = routes_.try_emplace(prefix);
    if (!inserted &&
        sameAttributeValue(it->second.received, received) &&
        sameAttributeValue(it->second.effective, effective)) {
        return false;
    }
    it->second.received = std::move(received);
    it->second.effective = std::move(effective);
    return true;
}

bool
AdjRibIn::withdraw(const net::Prefix &prefix)
{
    return routes_.erase(prefix) > 0;
}

const AdjRibIn::Entry *
AdjRibIn::find(const net::Prefix &prefix) const
{
    auto it = routes_.find(prefix);
    return it == routes_.end() ? nullptr : &it->second;
}

bool
LocRib::select(const net::Prefix &prefix, Candidate best)
{
    auto [it, inserted] = routes_.try_emplace(prefix);
    bool changed =
        inserted ||
        !sameAttributeValue(it->second.best.attributes,
                            best.attributes) ||
        it->second.best.peer != best.peer;
    it->second.best = std::move(best);
    return changed;
}

bool
LocRib::remove(const net::Prefix &prefix)
{
    return routes_.erase(prefix) > 0;
}

const LocRib::Entry *
LocRib::find(const net::Prefix &prefix) const
{
    auto it = routes_.find(prefix);
    return it == routes_.end() ? nullptr : &it->second;
}

bool
AdjRibOut::advertise(const net::Prefix &prefix, PathAttributesPtr attrs)
{
    auto [it, inserted] = routes_.try_emplace(prefix);
    if (!inserted && sameAttributeValue(it->second, attrs))
        return false;
    it->second = std::move(attrs);
    return true;
}

bool
AdjRibOut::withdraw(const net::Prefix &prefix)
{
    return routes_.erase(prefix) > 0;
}

const PathAttributesPtr *
AdjRibOut::find(const net::Prefix &prefix) const
{
    auto it = routes_.find(prefix);
    return it == routes_.end() ? nullptr : &it->second;
}

} // namespace bgpbench::bgp
