#include "bgp/rib.hh"

namespace bgpbench::bgp
{

bool
AdjRibIn::update(const net::Prefix &prefix, PathAttributesPtr received,
                 PathAttributesPtr effective)
{
    auto [entry, inserted] = store_.obtain(prefix);
    if (!inserted &&
        sameAttributeValue(entry->received, received) &&
        sameAttributeValue(entry->effective, effective)) {
        return false;
    }
    entry->received = std::move(received);
    entry->effective = std::move(effective);
    return true;
}

bool
AdjRibIn::withdraw(const net::Prefix &prefix)
{
    return store_.erase(prefix);
}

const AdjRibIn::Entry *
AdjRibIn::find(const net::Prefix &prefix) const
{
    return store_.find(prefix);
}

bool
LocRib::select(const net::Prefix &prefix, Candidate best)
{
    auto [entry, inserted] = store_.obtain(prefix);
    bool changed =
        inserted ||
        !sameAttributeValue(entry->best.attributes,
                            best.attributes) ||
        entry->best.peer != best.peer;
    entry->best = std::move(best);
    return changed;
}

bool
LocRib::remove(const net::Prefix &prefix)
{
    return store_.erase(prefix);
}

const LocRib::Entry *
LocRib::find(const net::Prefix &prefix) const
{
    return store_.find(prefix);
}

bool
AdjRibOut::advertise(const net::Prefix &prefix, PathAttributesPtr attrs)
{
    auto [entry, inserted] = store_.obtain(prefix);
    if (!inserted && sameAttributeValue(*entry, attrs))
        return false;
    *entry = std::move(attrs);
    return true;
}

bool
AdjRibOut::advertiseAt(Slot slot, const net::Prefix &prefix,
                       PathAttributesPtr attrs)
{
    if (!store_.treeMode() || slot == SharedPrefixTable::npos)
        return advertise(prefix, std::move(attrs));
    auto [entry, inserted] = store_.obtainAt(slot);
    if (!inserted && sameAttributeValue(*entry, attrs))
        return false;
    *entry = std::move(attrs);
    return true;
}

bool
AdjRibOut::withdraw(const net::Prefix &prefix)
{
    return store_.erase(prefix);
}

bool
AdjRibOut::withdrawAt(Slot slot, const net::Prefix &prefix)
{
    if (!store_.treeMode())
        return withdraw(prefix);
    return store_.eraseAt(slot);
}

const PathAttributesPtr *
AdjRibOut::find(const net::Prefix &prefix) const
{
    return store_.find(prefix);
}

} // namespace bgpbench::bgp
