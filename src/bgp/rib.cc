#include "bgp/rib.hh"

namespace bgpbench::bgp
{

namespace
{

/** Attribute equality through shared pointers (null-safe). */
bool
sameAttrs(const PathAttributesPtr &a, const PathAttributesPtr &b)
{
    if (a == b)
        return true;
    if (!a || !b)
        return false;
    return *a == *b;
}

} // namespace

bool
AdjRibIn::update(const net::Prefix &prefix, PathAttributesPtr received,
                 PathAttributesPtr effective)
{
    auto [it, inserted] = routes_.try_emplace(prefix);
    if (!inserted && sameAttrs(it->second.received, received) &&
        sameAttrs(it->second.effective, effective)) {
        return false;
    }
    it->second.received = std::move(received);
    it->second.effective = std::move(effective);
    return true;
}

bool
AdjRibIn::withdraw(const net::Prefix &prefix)
{
    return routes_.erase(prefix) > 0;
}

const AdjRibIn::Entry *
AdjRibIn::find(const net::Prefix &prefix) const
{
    auto it = routes_.find(prefix);
    return it == routes_.end() ? nullptr : &it->second;
}

void
AdjRibIn::forEach(const std::function<void(const net::Prefix &,
                                           const Entry &)> &fn) const
{
    for (const auto &[prefix, entry] : routes_)
        fn(prefix, entry);
}

bool
LocRib::select(const net::Prefix &prefix, Candidate best)
{
    auto [it, inserted] = routes_.try_emplace(prefix);
    bool changed =
        inserted ||
        !sameAttrs(it->second.best.attributes, best.attributes) ||
        it->second.best.peer != best.peer;
    it->second.best = std::move(best);
    return changed;
}

bool
LocRib::remove(const net::Prefix &prefix)
{
    return routes_.erase(prefix) > 0;
}

const LocRib::Entry *
LocRib::find(const net::Prefix &prefix) const
{
    auto it = routes_.find(prefix);
    return it == routes_.end() ? nullptr : &it->second;
}

void
LocRib::forEach(const std::function<void(const net::Prefix &,
                                         const Entry &)> &fn) const
{
    for (const auto &[prefix, entry] : routes_)
        fn(prefix, entry);
}

bool
AdjRibOut::advertise(const net::Prefix &prefix, PathAttributesPtr attrs)
{
    auto [it, inserted] = routes_.try_emplace(prefix);
    if (!inserted && sameAttrs(it->second, attrs))
        return false;
    it->second = std::move(attrs);
    return true;
}

bool
AdjRibOut::withdraw(const net::Prefix &prefix)
{
    return routes_.erase(prefix) > 0;
}

const PathAttributesPtr *
AdjRibOut::find(const net::Prefix &prefix) const
{
    auto it = routes_.find(prefix);
    return it == routes_.end() ? nullptr : &it->second;
}

void
AdjRibOut::forEach(
    const std::function<void(const net::Prefix &,
                             const PathAttributesPtr &)> &fn) const
{
    for (const auto &[prefix, attrs] : routes_)
        fn(prefix, attrs);
}

} // namespace bgpbench::bgp
