#include "bgp/rib.hh"

namespace bgpbench::bgp
{

bool
AdjRibIn::update(const net::Prefix &prefix, PathAttributesPtr received,
                 PathAttributesPtr effective)
{
    auto [entry, inserted] = store_.obtain(prefix);
    if (!inserted &&
        sameAttributeValue(entry->received, received) &&
        sameAttributeValue(entry->effective, effective)) {
        return false;
    }
    entry->received = std::move(received);
    entry->effective = std::move(effective);
    return true;
}

bool
AdjRibIn::withdraw(const net::Prefix &prefix)
{
    return store_.erase(prefix);
}

const AdjRibIn::Entry *
AdjRibIn::find(const net::Prefix &prefix) const
{
    return store_.find(prefix);
}

bool
LocRib::select(const net::Prefix &prefix, Candidate best)
{
    return select(prefix, std::move(best), {}).bestChanged;
}

LocRib::SelectOutcome
LocRib::select(const net::Prefix &prefix, Candidate best,
               std::vector<Candidate> multipath)
{
    auto [entry, inserted] = store_.obtain(prefix);
    SelectOutcome outcome;
    outcome.bestChanged =
        inserted ||
        !sameAttributeValue(entry->best.attributes,
                            best.attributes) ||
        entry->best.peer != best.peer;
    bool group_changed = entry->multipath.size() != multipath.size();
    for (size_t i = 0; !group_changed && i < multipath.size(); ++i) {
        group_changed =
            !sameAttributeValue(entry->multipath[i].attributes,
                                multipath[i].attributes) ||
            entry->multipath[i].peer != multipath[i].peer;
    }
    outcome.groupChanged = outcome.bestChanged || group_changed;
    entry->best = std::move(best);
    entry->multipath = std::move(multipath);
    return outcome;
}

bool
LocRib::remove(const net::Prefix &prefix)
{
    return store_.erase(prefix);
}

const LocRib::Entry *
LocRib::find(const net::Prefix &prefix) const
{
    return store_.find(prefix);
}

bool
AdjRibOut::advertise(const net::Prefix &prefix, PathAttributesPtr attrs)
{
    auto [entry, inserted] = store_.obtain(prefix);
    if (!inserted && sameAttributeValue(*entry, attrs))
        return false;
    *entry = std::move(attrs);
    return true;
}

bool
AdjRibOut::advertiseAt(Slot slot, const net::Prefix &prefix,
                       PathAttributesPtr attrs)
{
    if (!store_.treeMode() || slot == SharedPrefixTable::npos)
        return advertise(prefix, std::move(attrs));
    auto [entry, inserted] = store_.obtainAt(slot);
    if (!inserted && sameAttributeValue(*entry, attrs))
        return false;
    *entry = std::move(attrs);
    return true;
}

bool
AdjRibOut::withdraw(const net::Prefix &prefix)
{
    return store_.erase(prefix);
}

bool
AdjRibOut::withdrawAt(Slot slot, const net::Prefix &prefix)
{
    if (!store_.treeMode())
        return withdraw(prefix);
    return store_.eraseAt(slot);
}

const PathAttributesPtr *
AdjRibOut::find(const net::Prefix &prefix) const
{
    return store_.find(prefix);
}

} // namespace bgpbench::bgp
