/**
 * @file
 * Per-peer BGP session finite state machine (RFC 4271 section 8).
 *
 * The FSM is transport-agnostic: the owner reports TCP-level events
 * (established / closed) and delivers decoded messages; the FSM
 * returns the messages to transmit and exposes its state. Timers are
 * driven by an explicit clock parameter (nanoseconds) so the FSM runs
 * identically under the discrete-event simulator and in standalone
 * library use.
 */

#ifndef BGPBENCH_BGP_SESSION_HH
#define BGPBENCH_BGP_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/message.hh"
#include "bgp/types.hh"

namespace bgpbench::bgp
{

/** Session FSM states (RFC 4271 section 8.2.2). */
enum class SessionState : uint8_t
{
    Idle,
    Connect,
    Active,
    OpenSent,
    OpenConfirm,
    Established,
};

/**
 * Human-readable state name as a static string (trace events store
 * the pointer without copying).
 */
const char *sessionStateName(SessionState state);

/** Human-readable state name. */
std::string toString(SessionState state);

/** Static configuration of one session. */
struct SessionConfig
{
    AsNumber localAs = 0;
    RouterId localId = 0;
    /** Hold time we propose in our OPEN (seconds; 0 disables). */
    uint16_t holdTimeSec = proto::defaultHoldTimeSec;
    /** Peer AS we expect; 0 accepts any (RFC 4271 6.2 Bad Peer AS). */
    AsNumber expectedPeerAs = 0;
};

/**
 * The session FSM. All inputs take the current time in nanoseconds;
 * all outputs are appended to the caller-supplied transmit list.
 */
class SessionFsm
{
  public:
    using TimeNs = uint64_t;

    explicit SessionFsm(SessionConfig config)
        : config_(config)
    {}

    SessionState state() const { return state_; }
    bool established() const
    {
        return state_ == SessionState::Established;
    }

    /** Negotiated hold time (valid once >= OpenConfirm). */
    uint16_t negotiatedHoldTimeSec() const { return negotiatedHoldSec_; }

    /** Peer facts learned from its OPEN. */
    AsNumber peerAs() const { return peerAs_; }
    RouterId peerRouterId() const { return peerRouterId_; }

    /** Operator start: begin connecting. */
    void start(TimeNs now);

    /** Operator stop: send CEASE if up and go Idle. */
    void stop(TimeNs now, std::vector<Message> &tx);

    /** Transport reports the TCP connection came up. */
    void tcpEstablished(TimeNs now, std::vector<Message> &tx);

    /** Transport reports the TCP connection dropped. */
    void tcpClosed(TimeNs now);

    /**
     * Deliver a decoded message from the peer.
     *
     * @param msg The message.
     * @param now Current time.
     * @param tx Messages to transmit are appended here.
     * @return True if the session survives; false if it was torn down
     *         (a NOTIFICATION may have been appended to @p tx).
     */
    bool handleMessage(const Message &msg, TimeNs now,
                       std::vector<Message> &tx);

    /**
     * Drive timers: emits KEEPALIVEs when due and tears the session
     * down with a NOTIFICATION if the peer's hold timer expired.
     *
     * @return True if the session is still up (or coming up).
     */
    bool poll(TimeNs now, std::vector<Message> &tx);

    /** Earliest time poll() has work to do; TimeNs max when idle. */
    TimeNs nextTimerDeadline() const;

    /** Count of state transitions, for tests and traces. */
    uint64_t transitionCount() const { return transitions_; }

  private:
    static constexpr TimeNs nsPerSec = 1'000'000'000ull;

    void moveTo(SessionState next);
    void resetTimers(TimeNs now);
    void teardown(ErrorCode code, uint8_t subcode,
                  std::vector<Message> &tx);

    SessionConfig config_;
    SessionState state_ = SessionState::Idle;
    uint16_t negotiatedHoldSec_ = 0;
    AsNumber peerAs_ = 0;
    RouterId peerRouterId_ = 0;
    TimeNs holdDeadline_ = ~TimeNs(0);
    TimeNs nextKeepalive_ = ~TimeNs(0);
    uint64_t transitions_ = 0;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_SESSION_HH
