#include "bgp/attr_intern.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.hh"
#include "obs/views.hh"

namespace bgpbench::bgp
{

namespace
{

bool
internDisabledByEnv()
{
    const char *value = std::getenv("BGPBENCH_NO_INTERN");
    return value && std::strcmp(value, "1") == 0;
}

std::atomic<bool> internDefault{!internDisabledByEnv()};

/** Never-zero owner ids; 0 means "not interned" on PathAttributes. */
uint64_t
nextInternerId()
{
    // Atomic: interners are constructed lazily on several threads
    // (one per parallel-simulation worker).
    static std::atomic<uint64_t> next{0};
    return ++next;
}

} // namespace

size_t
attributesHeapBytes(const PathAttributes &attrs)
{
    size_t bytes = sizeof(PathAttributes);
    bytes += attrs.asPath.segments().capacity() *
             sizeof(AsPath::Segment);
    for (const auto &segment : attrs.asPath.segments())
        bytes += segment.asns.capacity() * sizeof(AsNumber);
    bytes += attrs.communities.capacity() * sizeof(uint32_t);
    bytes += attrs.clusterList.capacity() * sizeof(uint32_t);
    return bytes;
}

bool
internDefaultEnabled()
{
    return internDefault.load(std::memory_order_relaxed);
}

void
setInternDefault(bool enabled)
{
    internDefault.store(enabled, std::memory_order_relaxed);
}

AttributeInterner::AttributeInterner()
    : id_(nextInternerId()), enabled_(internDefaultEnabled())
{}

AttributeInterner &
AttributeInterner::global()
{
    // One interner per thread: the parallel topology engine runs one
    // speaker shard per worker, and a shared table would need a lock
    // on the hottest allocation path. Canonical sets from different
    // threads carry different owner ids, so sameAttributeValue()
    // falls back to hash-guarded deep comparison across shards —
    // slower, but correct, and cross-shard attribute comparisons are
    // rare (RIB contents stay shard-local).
    static thread_local AttributeInterner interner;
    return interner;
}

PathAttributesPtr
AttributeInterner::intern(PathAttributes attrs)
{
    if (!enabled_) {
        return std::make_shared<const PathAttributes>(
            std::move(attrs));
    }

    ++lookups_;
    uint64_t hash = attrs.hash();
    auto &bucket = table_[hash];
    for (auto it = bucket.begin(); it != bucket.end();) {
        if (auto canonical = it->lock()) {
            if (*canonical == attrs) {
                ++hits_;
                bytesDeduplicated_ += attributesHeapBytes(attrs);
                return canonical;
            }
            ++it;
        } else {
            // Lazy reclamation of slots whose set died.
            it = bucket.erase(it);
            --tracked_;
        }
    }

    ++misses_;
    auto canonical =
        std::make_shared<PathAttributes>(std::move(attrs));
    // Moving never propagates intern state (a moved-to object is not
    // the table-held canonical until we say so): re-stamp the hash we
    // already computed and mark this instance as ours.
    canonical->intern_.hash = hash;
    canonical->intern_.owner = id_;
    bucket.emplace_back(canonical);
    ++tracked_;
    maybeSweep();
    return canonical;
}

size_t
AttributeInterner::sweepExpired()
{
    size_t reclaimed = 0;
    for (auto it = table_.begin(); it != table_.end();) {
        auto &bucket = it->second;
        for (auto slot = bucket.begin(); slot != bucket.end();) {
            if (slot->expired()) {
                slot = bucket.erase(slot);
                ++reclaimed;
            } else {
                ++slot;
            }
        }
        if (bucket.empty())
            it = table_.erase(it);
        else
            ++it;
    }
    tracked_ -= reclaimed;
    ++sweeps_;
    return reclaimed;
}

void
AttributeInterner::maybeSweep()
{
    if (tracked_ < sweepThreshold_)
        return;
    sweepExpired();
    // Re-arm so the next sweep happens once the table doubles again;
    // total sweep work stays linear in the number of insertions.
    sweepThreshold_ = std::max<size_t>(1024, tracked_ * 2);
}

void
AttributeInterner::clear()
{
    for (auto &[hash, bucket] : table_) {
        for (auto &slot : bucket) {
            // Unmark survivors; their cached hash stays valid (the
            // value is unchanged), only the canonical claim is gone.
            if (auto canonical = slot.lock())
                canonical->intern_.owner = 0;
        }
    }
    table_.clear();
    tracked_ = 0;
    sweepThreshold_ = 1024;
}

AttributeInterner::Stats
AttributeInterner::stats() const
{
    Stats s;
    s.lookups = lookups_;
    s.hits = hits_;
    s.misses = misses_;
    s.sweeps = sweeps_;
    s.bytesDeduplicated = bytesDeduplicated_;
    s.trackedSets = tracked_;
    for (const auto &[hash, bucket] : table_) {
        for (const auto &slot : bucket) {
            if (!slot.expired())
                ++s.liveSets;
        }
    }
    return s;
}

void
AttributeInterner::publishStats(obs::MetricRegistry &registry) const
{
    Stats s = stats();
    registry.counter(obs::metric::internLookups).add(s.lookups);
    registry.counter(obs::metric::internHits).add(s.hits);
    registry.counter(obs::metric::internMisses).add(s.misses);
    registry.counter("intern.sweeps").add(s.sweeps);
    registry.counter(obs::metric::internBytesDeduplicated)
        .add(s.bytesDeduplicated);
    // Census values are levels, not event counts: gauges, merged by
    // max, so absorbing per-thread publishes keeps the largest table.
    registry.gauge(obs::metric::internLiveSets)
        .noteMax(double(s.liveSets));
    registry.gauge("intern.tracked_sets")
        .noteMax(double(s.trackedSets));
}

void
AttributeInterner::resetStats()
{
    lookups_ = 0;
    hits_ = 0;
    misses_ = 0;
    sweeps_ = 0;
    bytesDeduplicated_ = 0;
}

} // namespace bgpbench::bgp
