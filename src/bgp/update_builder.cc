#include "bgp/update_builder.hh"

#include <algorithm>

namespace bgpbench::bgp
{

void
UpdateBuilder::announce(const net::Prefix &prefix,
                        PathAttributesPtr attrs)
{
    removePending(prefix);
    withdrawals_.erase(
        std::remove(withdrawals_.begin(), withdrawals_.end(), prefix),
        withdrawals_.end());
    groupFor(attrs).prefixes.push_back(prefix);
}

void
UpdateBuilder::withdraw(const net::Prefix &prefix)
{
    removePending(prefix);
    if (std::find(withdrawals_.begin(), withdrawals_.end(), prefix) ==
        withdrawals_.end()) {
        withdrawals_.push_back(prefix);
    }
}

bool
UpdateBuilder::empty() const
{
    return withdrawals_.empty() && groups_.empty();
}

size_t
UpdateBuilder::pendingTransactions() const
{
    size_t count = withdrawals_.size();
    for (const auto &group : groups_)
        count += group.prefixes.size();
    return count;
}

UpdateBuilder::Group &
UpdateBuilder::groupFor(const PathAttributesPtr &attrs)
{
    for (auto &group : groups_) {
        if (group.attributes == attrs ||
            (group.attributes && attrs &&
             *group.attributes == *attrs)) {
            return group;
        }
    }
    groups_.push_back(Group{attrs, {}});
    return groups_.back();
}

bool
UpdateBuilder::removePending(const net::Prefix &prefix)
{
    for (auto &group : groups_) {
        auto it = std::find(group.prefixes.begin(),
                            group.prefixes.end(), prefix);
        if (it != group.prefixes.end()) {
            group.prefixes.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<UpdateMessage>
UpdateBuilder::build()
{
    std::vector<UpdateMessage> messages;

    // Fixed per-message overhead: header (19) + withdrawn-routes
    // length (2) + attribute-block length (2).
    constexpr size_t fixed_overhead = proto::headerBytes + 4;

    // Withdrawal-only messages.
    {
        size_t budget = proto::maxMessageBytes - fixed_overhead;
        UpdateMessage msg;
        size_t used = 0;
        for (const auto &prefix : withdrawals_) {
            size_t need = 1 + prefix.wireOctets();
            bool cap = options_.maxPrefixesPerUpdate > 0 &&
                       msg.withdrawnRoutes.size() >=
                           options_.maxPrefixesPerUpdate;
            if ((used + need > budget || cap) &&
                !msg.withdrawnRoutes.empty()) {
                messages.push_back(std::move(msg));
                msg = UpdateMessage{};
                used = 0;
            }
            msg.withdrawnRoutes.push_back(prefix);
            used += need;
        }
        if (!msg.withdrawnRoutes.empty())
            messages.push_back(std::move(msg));
    }

    // Announcement messages, one run per attribute group.
    for (auto &group : groups_) {
        if (group.prefixes.empty())
            continue;
        size_t attrs_size =
            group.attributes ? group.attributes->encodedSize() : 0;
        size_t budget =
            proto::maxMessageBytes - fixed_overhead - attrs_size;

        UpdateMessage msg;
        msg.attributes = group.attributes;
        size_t used = 0;
        for (const auto &prefix : group.prefixes) {
            size_t need = 1 + prefix.wireOctets();
            bool cap = options_.maxPrefixesPerUpdate > 0 &&
                       msg.nlri.size() >=
                           options_.maxPrefixesPerUpdate;
            if ((used + need > budget || cap) && !msg.nlri.empty()) {
                messages.push_back(std::move(msg));
                msg = UpdateMessage{};
                msg.attributes = group.attributes;
                used = 0;
            }
            msg.nlri.push_back(prefix);
            used += need;
        }
        if (!msg.nlri.empty())
            messages.push_back(std::move(msg));
    }

    groups_.clear();
    withdrawals_.clear();
    return messages;
}

} // namespace bgpbench::bgp
