#include "bgp/update_builder.hh"

#include <algorithm>

namespace bgpbench::bgp
{

void
UpdateBuilder::announce(const net::Prefix &prefix,
                        PathAttributesPtr attrs)
{
    removePending(prefix);
    size_t g = groupIndexFor(attrs);
    Group &group = groups_[g];
    group.prefixes.push_back(prefix);
    group.alive.push_back(1);
    pending_.emplace(
        prefix,
        Location{uint32_t(g), uint32_t(group.prefixes.size() - 1)});
}

void
UpdateBuilder::withdraw(const net::Prefix &prefix)
{
    auto it = pending_.find(prefix);
    if (it != pending_.end()) {
        if (it->second.group == kWithdrawal)
            return; // already pending as a withdrawal
        Group &group = groups_[it->second.group];
        group.alive[it->second.slot] = 0;
        ++group.deadCount;
        it->second =
            Location{kWithdrawal, uint32_t(withdrawals_.size())};
    } else {
        pending_.emplace(
            prefix,
            Location{kWithdrawal, uint32_t(withdrawals_.size())});
    }
    withdrawals_.push_back(prefix);
    withdrawalsAlive_.push_back(1);
}

size_t
UpdateBuilder::groupIndexFor(const PathAttributesPtr &attrs)
{
    auto [it, inserted] = groupIndex_.try_emplace(attrs);
    if (inserted) {
        it->second = groups_.size();
        groups_.push_back(Group{attrs, {}, {}, 0});
    }
    return it->second;
}

void
UpdateBuilder::removePending(const net::Prefix &prefix)
{
    auto it = pending_.find(prefix);
    if (it == pending_.end())
        return;
    if (it->second.group == kWithdrawal) {
        withdrawalsAlive_[it->second.slot] = 0;
        ++deadWithdrawals_;
    } else {
        Group &group = groups_[it->second.group];
        group.alive[it->second.slot] = 0;
        ++group.deadCount;
    }
    pending_.erase(it);
}

std::vector<UpdateMessage>
UpdateBuilder::build()
{
    std::vector<UpdateMessage> messages;
    messages.reserve(groups_.size() + 1);

    // Fixed per-message overhead: header (19) + withdrawn-routes
    // length (2) + attribute-block length (2).
    constexpr size_t fixed_overhead = proto::headerBytes + 4;

    size_t cap = options_.maxPrefixesPerUpdate;
    auto chunk_reserve = [cap](size_t live) {
        return cap > 0 ? std::min(cap, live) : live;
    };

    // Withdrawal-only messages.
    if (deadWithdrawals_ < withdrawals_.size()) {
        size_t live = withdrawals_.size() - deadWithdrawals_;
        size_t budget = proto::maxMessageBytes - fixed_overhead;
        UpdateMessage msg;
        msg.withdrawnRoutes.reserve(chunk_reserve(live));
        size_t used = 0;
        for (size_t i = 0; i < withdrawals_.size(); ++i) {
            if (!withdrawalsAlive_[i])
                continue;
            const net::Prefix &prefix = withdrawals_[i];
            size_t need = 1 + prefix.wireOctets();
            bool at_cap =
                cap > 0 && msg.withdrawnRoutes.size() >= cap;
            if ((used + need > budget || at_cap) &&
                !msg.withdrawnRoutes.empty()) {
                live -= msg.withdrawnRoutes.size();
                messages.push_back(std::move(msg));
                msg = UpdateMessage{};
                msg.withdrawnRoutes.reserve(chunk_reserve(live));
                used = 0;
            }
            msg.withdrawnRoutes.push_back(prefix);
            used += need;
        }
        if (!msg.withdrawnRoutes.empty())
            messages.push_back(std::move(msg));
    }

    // Announcement messages, one run per attribute group in creation
    // order.
    for (Group &group : groups_) {
        size_t live = group.prefixes.size() - group.deadCount;
        if (live == 0)
            continue;
        size_t attrs_size =
            group.attributes ? group.attributes->encodedSize() : 0;
        size_t budget =
            proto::maxMessageBytes - fixed_overhead - attrs_size;

        UpdateMessage msg;
        msg.attributes = group.attributes;
        msg.nlri.reserve(chunk_reserve(live));
        size_t used = 0;
        for (size_t i = 0; i < group.prefixes.size(); ++i) {
            if (!group.alive[i])
                continue;
            const net::Prefix &prefix = group.prefixes[i];
            size_t need = 1 + prefix.wireOctets();
            bool at_cap = cap > 0 && msg.nlri.size() >= cap;
            if ((used + need > budget || at_cap) &&
                !msg.nlri.empty()) {
                live -= msg.nlri.size();
                messages.push_back(std::move(msg));
                msg = UpdateMessage{};
                msg.attributes = group.attributes;
                msg.nlri.reserve(chunk_reserve(live));
                used = 0;
            }
            msg.nlri.push_back(prefix);
            used += need;
        }
        if (!msg.nlri.empty())
            messages.push_back(std::move(msg));
    }

    groups_.clear();
    groupIndex_.clear();
    withdrawals_.clear();
    withdrawalsAlive_.clear();
    deadWithdrawals_ = 0;
    pending_.clear();
    return messages;
}

} // namespace bgpbench::bgp
