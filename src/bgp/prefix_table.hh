/**
 * @file
 * SharedPrefixTable: one prefix-tree key structure per speaker, shared
 * by every RIB as slot-indexed value columns.
 *
 * PR 2 shared attribute *values* across RIBs by interning; this shares
 * the *key set*. A speaker with N established peers holds the same ~1M
 * prefixes in N Adj-RIBs-In, the Loc-RIB, and N Adj-RIBs-Out — 2N+1
 * copies of every key under the hash-map design. Here the speaker owns
 * a single PrefixTree mapping each live prefix to a small integer
 * slot; each RIB then stores only a dense per-slot value column (a
 * vector indexed by slot plus a presence bitset). Adding a peer costs
 * one value column, not another copy of the key set, and the decision
 * sweep resolves a prefix to its slot once and reads every peer's
 * entry by direct indexing.
 *
 * Slots are reference counted (one count per column entry holding the
 * slot) and recycled through a free list, so column indices stay dense
 * under churn and columns never need compaction.
 */

#ifndef BGPBENCH_BGP_PREFIX_TABLE_HH
#define BGPBENCH_BGP_PREFIX_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/prefix.hh"
#include "net/prefix_tree.hh"

namespace bgpbench::bgp
{

/**
 * Process-wide default for whether RIBs share a prefix tree (the
 * BGPBENCH_NO_PREFIX_TREE=1 ablation switch flips it off, falling
 * back to the per-RIB hash maps). Mirrors internDefaultEnabled():
 * the environment seeds the default so bare test binaries honour the
 * switch, and core::RuntimeConfig::apply() overrides it before any
 * speaker is constructed.
 */
bool prefixTreeDefaultEnabled();
void setPrefixTreeDefault(bool enabled);

/**
 * The shared prefix -> slot table one speaker's RIBs sit on.
 *
 * A slot is live while any column references it (acquire/addRef/
 * release are the column-side protocol); releasing the last reference
 * erases the prefix from the tree and recycles the slot. slotSpan()
 * only grows, so a column sized to slotSpan() can always be indexed
 * by any live slot.
 */
class SharedPrefixTable
{
  public:
    using Slot = uint32_t;
    static constexpr Slot npos = ~Slot(0);

    /** The slot of @p prefix, or npos if not present. */
    Slot
    find(const net::Prefix &prefix) const
    {
        const Slot *slot = tree_.find(prefix);
        return slot ? *slot : npos;
    }

    /**
     * Find-or-create the slot for @p prefix and take one reference on
     * it. Every acquire must be balanced by one release.
     */
    Slot acquire(const net::Prefix &prefix);

    /** Take an additional reference on a live slot. */
    void
    addRef(Slot slot)
    {
        ++slotRefs_[slot];
    }

    /**
     * Drop one reference; the last release erases the prefix from the
     * tree and recycles the slot.
     */
    void
    release(Slot slot)
    {
        if (--slotRefs_[slot] == 0) {
            tree_.erase(slotPrefix_[slot]);
            freeSlots_.push_back(slot);
        }
    }

    /** The prefix a live slot stands for. */
    const net::Prefix &
    prefixOf(Slot slot) const
    {
        return slotPrefix_[slot];
    }

    /** Number of live prefixes. */
    size_t prefixCount() const { return tree_.size(); }

    /**
     * One past the largest slot ever issued; columns indexed by slot
     * must be at least this long. Monotonic.
     */
    size_t slotSpan() const { return slotPrefix_.size(); }

    /**
     * Capacity the slot arrays have actually reserved; columns size
     * to this so column growth tracks the table's own growth policy
     * (exactly n after reserve(n), geometric otherwise).
     */
    size_t slotCapacity() const { return slotPrefix_.capacity(); }

    /**
     * Visit every live (prefix, slot) in ascending (address, length)
     * order — the guaranteed iteration order all RIB forEach walks
     * inherit.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        tree_.forEach(fn);
    }

    /** Pre-size tree and slot arrays for @p prefixes entries. */
    void
    reserve(size_t prefixes)
    {
        tree_.reserve(prefixes);
        slotPrefix_.reserve(prefixes);
        slotRefs_.reserve(prefixes);
    }

    /** Bytes held by the tree arena and the slot side-arrays. */
    size_t
    memoryBytes() const
    {
        return tree_.memoryBytes() +
               slotPrefix_.capacity() * sizeof(net::Prefix) +
               slotRefs_.capacity() * sizeof(uint32_t) +
               freeSlots_.capacity() * sizeof(Slot);
    }

    /** Live tree nodes (prefix entries + compression joints). */
    size_t nodeCount() const { return tree_.nodeCount(); }

  private:
    net::PrefixTree<Slot> tree_;
    /** slot -> prefix (needed by release() to erase from the tree). */
    std::vector<net::Prefix> slotPrefix_;
    /** slot -> number of column entries holding it. */
    std::vector<uint32_t> slotRefs_;
    std::vector<Slot> freeSlots_;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_PREFIX_TABLE_HH
