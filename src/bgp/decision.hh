/**
 * @file
 * The BGP decision process (RFC 4271 section 9.1).
 */

#ifndef BGPBENCH_BGP_DECISION_HH
#define BGPBENCH_BGP_DECISION_HH

#include <optional>
#include <vector>

#include "bgp/route.hh"

namespace bgpbench::bgp
{

/** Tuning knobs for route selection. */
struct DecisionConfig
{
    /** LOCAL_PREF assumed when the attribute is absent (eBGP). */
    uint32_t defaultLocalPref = 100;
    /**
     * Compare MED between routes from different neighbour ASes
     * (vendor "always-compare-med"). When false, MED only breaks ties
     * between routes whose AS_PATH starts with the same AS, per
     * RFC 4271 9.1.2.2 c).
     */
    bool alwaysCompareMed = false;
    /**
     * Vendor "maximum-paths": the ECMP group depth. 1 (the default)
     * selects a single best path, reproducing the classic decision
     * process exactly; N > 1 lets up to N candidates that tie through
     * the whole tie-break ladder short of the final router-id step
     * share the forwarding load (RFC 7938 section 6.1 datacenter
     * ECMP).
     */
    size_t maxPaths = 1;
};

/**
 * Three-way comparison of two candidate routes for the same prefix.
 *
 * Implements the de-facto standard selection order the paper relies
 * on ("most vendors implement the best path selection based on the
 * length of AS path"):
 *
 *   0. locally originated routes first (vendor "weight")
 *   1. higher LOCAL_PREF (degree of preference)
 *   2. shorter AS_PATH
 *   3. lower ORIGIN (IGP < EGP < INCOMPLETE)
 *   4. lower MED (see DecisionConfig::alwaysCompareMed)
 *   5. eBGP-learned over iBGP-learned
 *   6. lower peer BGP identifier
 *
 * @return Negative if @p a is preferred, positive if @p b is
 *         preferred, zero only for indistinguishable candidates.
 */
int compareCandidates(const Candidate &a, const Candidate &b,
                      const DecisionConfig &config = {});

/**
 * Select the best candidate for a prefix.
 *
 * @param candidates All import-accepted routes for the prefix.
 * @return Index of the best candidate, or std::nullopt if the list is
 *         empty.
 */
std::optional<size_t>
selectBest(const std::vector<Candidate> &candidates,
           const DecisionConfig &config = {});

/**
 * True when @p a and @p b tie through every tie-break step *before*
 * the final router-id comparison (steps 0-5b of compareCandidates) —
 * the multipath-equivalence test of vendor "maximum-paths": such
 * routes are equally good by policy and path quality and differ only
 * in the deterministic last-resort tiebreak.
 */
bool multipathEquivalent(const Candidate &a, const Candidate &b,
                         const DecisionConfig &config = {});

/**
 * Select the ECMP group for a prefix: the best candidate plus every
 * candidate multipath-equivalent to it, ordered by the full
 * tie-break ladder (best first, then ascending router-id — a
 * deterministic order depending only on the candidate set, never on
 * arrival or thread interleaving), truncated to config.maxPaths.
 *
 * With maxPaths == 1 this returns exactly {selectBest(...)}.
 *
 * @return Candidate indexes, best first; empty if @p candidates is.
 */
std::vector<size_t>
selectMultipath(const std::vector<Candidate> &candidates,
                const DecisionConfig &config = {});

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_DECISION_HH
