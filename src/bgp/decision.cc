#include "bgp/decision.hh"

#include <algorithm>

#include "net/logging.hh"

namespace bgpbench::bgp
{

int
compareCandidates(const Candidate &a, const Candidate &b,
                  const DecisionConfig &config)
{
    panicIf(!a.attributes || !b.attributes,
            "decision process given a candidate without attributes");

    const PathAttributes &pa = *a.attributes;
    const PathAttributes &pb = *b.attributes;

    // 0. Locally originated routes outrank learned ones (the vendor
    //    "weight" step that precedes LOCAL_PREF).
    if (a.locallyOriginated != b.locallyOriginated)
        return a.locallyOriginated ? -1 : 1;

    // 1. Higher LOCAL_PREF wins.
    uint32_t lp_a = pa.localPref.value_or(config.defaultLocalPref);
    uint32_t lp_b = pb.localPref.value_or(config.defaultLocalPref);
    if (lp_a != lp_b)
        return lp_a > lp_b ? -1 : 1;

    // 2. Shorter AS_PATH wins.
    int len_a = pa.asPath.pathLength();
    int len_b = pb.asPath.pathLength();
    if (len_a != len_b)
        return len_a < len_b ? -1 : 1;

    // 3. Lower ORIGIN wins.
    if (pa.origin != pb.origin)
        return pa.origin < pb.origin ? -1 : 1;

    // 4. Lower MED wins, when comparable. Absent MED counts as 0
    //    (the common vendor default).
    bool med_comparable =
        config.alwaysCompareMed ||
        (pa.asPath.firstAs() != 0 &&
         pa.asPath.firstAs() == pb.asPath.firstAs());
    if (med_comparable) {
        uint32_t med_a = pa.med.value_or(0);
        uint32_t med_b = pb.med.value_or(0);
        if (med_a != med_b)
            return med_a < med_b ? -1 : 1;
    }

    // 5. Prefer eBGP-learned routes over iBGP-learned ones.
    if (a.externalSession != b.externalSession)
        return a.externalSession ? -1 : 1;

    // 5b. RFC 4456 section 9: shorter CLUSTER_LIST wins (fewer
    //     reflection hops).
    size_t cl_a = pa.clusterList.size();
    size_t cl_b = pb.clusterList.size();
    if (cl_a != cl_b)
        return cl_a < cl_b ? -1 : 1;

    // 6. Lowest BGP identifier, using the ORIGINATOR_ID of reflected
    //    routes in place of the peer's (RFC 4456 section 9).
    RouterId id_a = pa.originatorId.value_or(a.peerRouterId);
    RouterId id_b = pb.originatorId.value_or(b.peerRouterId);
    if (id_a != id_b)
        return id_a < id_b ? -1 : 1;

    return 0;
}

std::optional<size_t>
selectBest(const std::vector<Candidate> &candidates,
           const DecisionConfig &config)
{
    if (candidates.empty())
        return std::nullopt;

    size_t best = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
        if (compareCandidates(candidates[i], candidates[best],
                              config) < 0) {
            best = i;
        }
    }
    return best;
}

bool
multipathEquivalent(const Candidate &a, const Candidate &b,
                    const DecisionConfig &config)
{
    panicIf(!a.attributes || !b.attributes,
            "multipath equivalence given a candidate without "
            "attributes");

    const PathAttributes &pa = *a.attributes;
    const PathAttributes &pb = *b.attributes;

    if (a.locallyOriginated != b.locallyOriginated)
        return false;
    if (pa.localPref.value_or(config.defaultLocalPref) !=
        pb.localPref.value_or(config.defaultLocalPref)) {
        return false;
    }
    if (pa.asPath.pathLength() != pb.asPath.pathLength())
        return false;
    if (pa.origin != pb.origin)
        return false;
    // MED only separates candidates when the comparison step would
    // actually run (same neighbour AS, or always-compare-med).
    bool med_comparable =
        config.alwaysCompareMed ||
        (pa.asPath.firstAs() != 0 &&
         pa.asPath.firstAs() == pb.asPath.firstAs());
    if (med_comparable && pa.med.value_or(0) != pb.med.value_or(0))
        return false;
    if (a.externalSession != b.externalSession)
        return false;
    if (pa.clusterList.size() != pb.clusterList.size())
        return false;
    return true;
}

std::vector<size_t>
selectMultipath(const std::vector<Candidate> &candidates,
                const DecisionConfig &config)
{
    auto best = selectBest(candidates, config);
    if (!best)
        return {};
    std::vector<size_t> group{*best};
    if (config.maxPaths <= 1)
        return group;

    for (size_t i = 0; i < candidates.size(); ++i) {
        if (i != *best &&
            multipathEquivalent(candidates[i], candidates[*best],
                                config)) {
            group.push_back(i);
        }
    }

    // Deterministic group order: the full tie-break ladder (ending in
    // the router-id step), with the candidate index as the final
    // tiebreak for truly indistinguishable entries. The candidate
    // vector itself is built in peer-id order, so this depends only
    // on the route set.
    std::sort(group.begin(), group.end(), [&](size_t x, size_t y) {
        int cmp = compareCandidates(candidates[x], candidates[y],
                                    config);
        if (cmp != 0)
            return cmp < 0;
        return x < y;
    });
    if (group.size() > config.maxPaths)
        group.resize(config.maxPaths);
    return group;
}

} // namespace bgpbench::bgp
