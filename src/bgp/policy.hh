/**
 * @file
 * Quagga-style policy engine for import/export filtering.
 *
 * BGP route selection "is always policy-based" (paper, section III.A).
 * This module provides the policy machinery at production richness:
 *
 *  - Named, reusable match objects: PrefixList (seq-numbered entries
 *    with le/ge length bounds, compiled onto a net::LpmTrie so a
 *    lookup costs O(32) node visits instead of O(entries)), AsPathSet,
 *    and CommunityList.
 *
 *  - RouteMap: an ordered list of seq-numbered entries, each with
 *    permit/deny semantics, match clauses (named lists and/or inline
 *    conditions), set-actions (local-pref, MED, as-path prepend,
 *    community add/delete/set, next-hop), and `continue`-style
 *    fallthrough to a later entry.
 *
 *  - Copy-on-write set-ops: match clauses evaluate against the
 *    *original* attributes and the accumulated set-actions are applied
 *    once at accept time — and only if they would actually change the
 *    attribute bundle. An accepted route whose bundle is unchanged
 *    keeps its interned PathAttributesPtr (no allocation); a changed
 *    bundle is copied exactly once and re-canonicalised through
 *    AttributeInterner via makeAttributes().
 *
 * Evaluation semantics (documented invariants, pinned by tests):
 *
 *  - Entries are evaluated in ascending seq order; the first matching
 *    entry decides. A matching deny entry rejects immediately. A
 *    matching permit entry accumulates its set-actions and terminates
 *    with accept — unless it carries a continue clause, in which case
 *    evaluation resumes at the continue target (0 = next entry) and
 *    further matching permit entries accumulate more set-actions. A
 *    deny matched while continuing still rejects. Running off the end
 *    after at least one permit matched accepts with the accumulated
 *    set-actions (the last matched disposition applies).
 *
 *  - A route matching no entry is handled by the map's no-match
 *    action: Deny for natively built route-maps (the Quagga implicit
 *    deny), Permit-unmodified for maps built from the legacy flat
 *    PolicyRule list (preserving the historical accept-by-default).
 *
 * The legacy flat-rule surface (PolicyMatch / PolicyAction /
 * PolicyRule and the Policy(std::vector<PolicyRule>) constructor) is
 * kept as a thin description layer: it compiles onto a RouteMap with
 * identical observable behaviour, so existing call sites and tests
 * did not have to move.
 */

#ifndef BGPBENCH_BGP_POLICY_HH
#define BGPBENCH_BGP_POLICY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/path_attributes.hh"
#include "net/ipv4_address.hh"
#include "net/lpm_trie.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** Tri-state result of evaluating a named match list. */
enum class ListMatch
{
    NoMatch,
    Permit,
    Deny,
};

/**
 * A named ip prefix-list: seq-numbered entries with ge/le prefix-
 * length bounds, first (lowest-seq) matching entry decides, implicit
 * no-match when nothing matches.
 *
 * Entries are compiled onto a net::LpmTrie keyed by entry prefix, so
 * evaluating a route walks at most prefix.length()+1 trie nodes and
 * inspects only the entries whose prefix actually covers the route —
 * the classic Quagga trick that makes 1000-entry filters affordable
 * on full-table churn.
 */
class PrefixList
{
  public:
    struct Entry
    {
        uint32_t seq = 0;
        bool permit = true;
        net::Prefix prefix;
        /** Resolved length bounds (see add()). */
        int minLength = 0;
        int maxLength = 32;
    };

    PrefixList() = default;
    explicit PrefixList(std::string name) : name_(std::move(name)) {}

    /**
     * Append an entry.
     *
     * Bounds follow the familiar ge/le rules: neither given matches
     * the exact prefix length only; `ge` alone matches lengths in
     * [ge, 32]; `le` alone matches [prefix.length(), le]; both match
     * [ge, le]. A route matches an entry when the entry's prefix
     * covers it and its length is within the bounds.
     */
    PrefixList &add(uint32_t seq, bool permit,
                    const net::Prefix &prefix,
                    std::optional<int> ge = std::nullopt,
                    std::optional<int> le = std::nullopt);

    const std::string &name() const { return name_; }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const std::vector<Entry> &entries() const { return entries_; }

    /** First (lowest-seq) matching entry decides; compiled lookup. */
    ListMatch evaluate(const net::Prefix &prefix) const;

    /**
     * Reference linear-scan evaluation (the oracle the compiled path
     * is property-tested against, and the micro-bench baseline).
     */
    ListMatch evaluateLinear(const net::Prefix &prefix) const;

  private:
    std::string name_;
    /** Sorted by seq. */
    std::vector<Entry> entries_;
    /** entry prefix -> indexes into entries_ with that prefix. */
    net::LpmTrie<std::vector<uint32_t>> trie_;
};

/**
 * A named as-path match set (the spirit of Quagga's as-path access
 * lists, over structured predicates instead of regexes): seq-numbered
 * entries, first match decides.
 */
class AsPathSet
{
  public:
    struct Entry
    {
        uint32_t seq = 0;
        bool permit = true;
        /** Matches paths containing this AS anywhere. */
        std::optional<AsNumber> contains;
        /** Matches paths originated by this AS. */
        std::optional<AsNumber> originAs;
        /** Matches paths at least this long. */
        std::optional<int> minLength;
        /** Matches paths at most this long. */
        std::optional<int> maxLength;
    };

    AsPathSet() = default;
    explicit AsPathSet(std::string name) : name_(std::move(name)) {}

    AsPathSet &add(Entry entry);

    const std::string &name() const { return name_; }
    size_t size() const { return entries_.size(); }
    const std::vector<Entry> &entries() const { return entries_; }

    ListMatch evaluate(const AsPath &path) const;

  private:
    std::string name_;
    std::vector<Entry> entries_;
};

/**
 * A named community list (RFC 1997): seq-numbered entries each
 * requiring one community value, first match decides.
 */
class CommunityList
{
  public:
    struct Entry
    {
        uint32_t seq = 0;
        bool permit = true;
        uint32_t community = 0;
    };

    CommunityList() = default;
    explicit CommunityList(std::string name) : name_(std::move(name))
    {}

    CommunityList &add(uint32_t seq, bool permit, uint32_t community);

    const std::string &name() const { return name_; }
    size_t size() const { return entries_.size(); }
    const std::vector<Entry> &entries() const { return entries_; }

    /** @p communities must be sorted (PathAttributes invariant). */
    ListMatch evaluate(const std::vector<uint32_t> &communities) const;

  private:
    std::string name_;
    std::vector<Entry> entries_;
};

/** Match conditions; unset fields match anything. */
struct PolicyMatch
{
    /** Matches routes whose prefix is covered by this prefix. */
    std::optional<net::Prefix> prefixCoveredBy;
    /** Matches routes whose prefix length is at least this. */
    std::optional<int> minPrefixLength;
    /** Matches routes whose prefix length is at most this. */
    std::optional<int> maxPrefixLength;
    /** Matches routes whose AS_PATH contains this AS. */
    std::optional<AsNumber> asPathContains;
    /** Matches routes originated by this AS. */
    std::optional<AsNumber> originAs;
    /** Matches routes carrying this community. */
    std::optional<uint32_t> hasCommunity;
    /** Matches routes whose AS_PATH length is at least this. */
    std::optional<int> minAsPathLength;

    /** True if @p prefix / @p attrs satisfy every set condition. */
    bool matches(const net::Prefix &prefix,
                 const PathAttributes &attrs) const;
};

/**
 * The set-clauses of one route-map entry. Applied copy-on-write:
 * wouldChange() decides whether an attribute copy is needed at all.
 */
struct SetActions
{
    std::optional<uint32_t> localPref;
    std::optional<uint32_t> med;
    /** Prepend the local AS this many extra times (export side). */
    int prependCount = 0;
    /** Rewrite NEXT_HOP. */
    std::optional<net::Ipv4Address> nextHop;
    /**
     * Communities to add / strip. RouteMap::add() sorts and dedupes
     * all three community vectors, so entries may be written in any
     * order; free-standing SetActions users must keep them sorted.
     */
    std::vector<uint32_t> addCommunities;
    std::vector<uint32_t> deleteCommunities;
    /**
     * Replace the community set wholesale with `communities` ("set
     * community ..."; empty replacement = "set community none").
     * Replacement runs before add/delete.
     */
    bool replaceCommunities = false;
    std::vector<uint32_t> communities;

    bool empty() const;

    /**
     * Would applying these actions to @p attrs produce a different
     * attribute bundle? @p prepend_as is the AS used for prepends
     * (0 on import, where prepending is a no-op).
     */
    bool wouldChange(const PathAttributes &attrs,
                     AsNumber prepend_as) const;

    /** Apply in place (replace, add, delete, scalars, prepend). */
    void applyTo(PathAttributes &attrs, AsNumber prepend_as) const;
};

/** Modifications applied by an accepting legacy rule. */
struct PolicyAction
{
    /** Reject the route outright. */
    bool reject = false;
    std::optional<uint32_t> setLocalPref;
    std::optional<uint32_t> setMed;
    /** Prepend our own AS this many extra times (export side). */
    int prependCount = 0;
    /** Community to add. */
    std::optional<uint32_t> addCommunity;
    /** Community to strip. */
    std::optional<uint32_t> removeCommunity;
};

/** One ordered legacy rule. */
struct PolicyRule
{
    std::string name;
    PolicyMatch match;
    PolicyAction action;
};

/** Copy-on-write / disposition tallies of route-map evaluation. */
struct PolicyEvalStats
{
    /** apply() evaluations against a non-trivial map. */
    uint64_t evals = 0;
    uint64_t rejects = 0;
    /** Accepted routes returned with their original pointer. */
    uint64_t cowHits = 0;
    /** Accepted routes that needed a copy + re-intern. */
    uint64_t cowCopies = 0;

    double
    cowHitRatio() const
    {
        uint64_t accepted = cowHits + cowCopies;
        return accepted ? double(cowHits) / double(accepted) : 1.0;
    }
};

/**
 * One route-map entry: match clauses (all present clauses must pass;
 * a named list passes only when it evaluates to Permit), a
 * disposition, set-actions, and an optional continue clause.
 */
struct RouteMapEntry
{
    uint32_t seq = 10;
    bool permit = true;
    std::shared_ptr<const PrefixList> prefixList;
    std::shared_ptr<const AsPathSet> asPathSet;
    std::shared_ptr<const CommunityList> communityList;
    /** Inline conditions (legacy-style); all unset matches anything. */
    PolicyMatch match;
    SetActions set;
    /**
     * Continue evaluating after this permit entry matches: resume at
     * the first entry with seq >= *continueTo (0 = the next entry).
     * Targets at or before this entry's seq are clamped forward, so
     * evaluation always terminates.
     */
    std::optional<uint32_t> continueTo;

    bool matches(const net::Prefix &prefix,
                 const PathAttributes &attrs) const;
};

/**
 * A named, ordered route-map. Immutable once wrapped into a Policy
 * (share via shared_ptr<const RouteMap>); building is config-time.
 */
class RouteMap
{
  public:
    /** Disposition for routes matching no entry. */
    enum class NoMatch
    {
        /** Quagga implicit deny (native route-maps). */
        Deny,
        /** Accept unmodified (legacy flat-rule compatibility). */
        Permit,
    };

    explicit RouteMap(std::string name = "",
                      NoMatch no_match = NoMatch::Deny)
        : name_(std::move(name)), noMatch_(no_match)
    {}

    /** Insert an entry, kept sorted by seq (stable for equal seq). */
    RouteMap &add(RouteMapEntry entry);

    const std::string &name() const { return name_; }
    NoMatch noMatchAction() const { return noMatch_; }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const std::vector<RouteMapEntry> &entries() const
    {
        return entries_;
    }

    /**
     * Evaluate the map against a route (see file comment for the
     * exact semantics).
     *
     * @param prefix The route's destination.
     * @param attrs The route's attributes (shared, never modified).
     * @param prepend_as AS used for prepend set-actions (0 on
     *        import).
     * @param stats Optional evaluation tallies.
     * @return The (possibly modified, possibly same) attributes, or
     *         null if the route is rejected.
     */
    PathAttributesPtr apply(const net::Prefix &prefix,
                            const PathAttributesPtr &attrs,
                            AsNumber prepend_as = 0,
                            PolicyEvalStats *stats = nullptr) const;

  private:
    /**
     * Walk the entries with the documented first-match/continue
     * semantics, invoking fn(entry) on each matching permit entry.
     * @return Permit / Deny / NoMatch.
     */
    template <typename Fn>
    ListMatch walk(const net::Prefix &prefix,
                   const PathAttributes &attrs, Fn &&fn) const;

    std::string name_;
    NoMatch noMatch_;
    /** Sorted by seq. */
    std::vector<RouteMapEntry> entries_;
};

/**
 * The policy attachment point: a cheap copyable handle over an
 * immutable RouteMap. The empty policy accepts everything unmodified
 * (and is recognised by the speaker's fast paths).
 */
class Policy
{
  public:
    /** The empty policy accepts everything unmodified. */
    Policy() = default;

    /** Attach a route-map (shared, immutable). */
    explicit Policy(std::shared_ptr<const RouteMap> map)
        : map_(std::move(map))
    {}

    /** Legacy: compile a flat first-match rule list (see file doc). */
    explicit Policy(std::vector<PolicyRule> rules);

    /** Append a legacy rule at lowest priority (recompiles). */
    void addRule(PolicyRule rule);

    /**
     * True when the policy cannot affect any route: no map, or a map
     * with no entries that accepts on no-match. The speaker's export
     * memo fast path keys off this.
     */
    bool
    empty() const
    {
        return !map_ ||
               (map_->empty() &&
                map_->noMatchAction() == RouteMap::NoMatch::Permit);
    }

    /** Number of route-map entries. */
    size_t size() const { return map_ ? map_->size() : 0; }

    const std::shared_ptr<const RouteMap> &routeMap() const
    {
        return map_;
    }

    /**
     * Apply the policy to a route.
     *
     * @param prefix The route's destination.
     * @param attrs The route's attributes (shared, not modified).
     * @param prepend_as AS used for prepend actions (the local AS);
     *        pass 0 on import where prepending is meaningless.
     * @param stats Optional evaluation tallies.
     * @return The (possibly modified, possibly same) attributes, or
     *         null if the route is rejected.
     */
    PathAttributesPtr
    apply(const net::Prefix &prefix, const PathAttributesPtr &attrs,
          AsNumber prepend_as = 0,
          PolicyEvalStats *stats = nullptr) const
    {
        if (!attrs)
            return nullptr;
        if (!map_)
            return attrs;
        return map_->apply(prefix, attrs, prepend_as, stats);
    }

  private:
    /** Legacy rules retained so addRule() can recompile. */
    std::vector<PolicyRule> legacyRules_;
    std::shared_ptr<const RouteMap> map_;
};

/** Convenience: a policy that rejects routes covered by @p prefix. */
Policy makeRejectPrefixPolicy(const net::Prefix &prefix);

/** Convenience: a policy setting LOCAL_PREF for routes from one AS. */
Policy makeLocalPrefForAsPolicy(AsNumber asn, uint32_t local_pref);

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_POLICY_HH
