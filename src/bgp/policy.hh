/**
 * @file
 * Route-map-style policy engine for import/export filtering.
 *
 * BGP route selection "is always policy-based" (paper, section III.A);
 * this module provides the policy hook: an ordered list of rules, each
 * with match conditions and either a reject or an accept-with-
 * modifications action. First matching rule wins; a route matching no
 * rule is accepted unmodified.
 */

#ifndef BGPBENCH_BGP_POLICY_HH
#define BGPBENCH_BGP_POLICY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/path_attributes.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** Match conditions; unset fields match anything. */
struct PolicyMatch
{
    /** Matches routes whose prefix is covered by this prefix. */
    std::optional<net::Prefix> prefixCoveredBy;
    /** Matches routes whose prefix length is at least this. */
    std::optional<int> minPrefixLength;
    /** Matches routes whose prefix length is at most this. */
    std::optional<int> maxPrefixLength;
    /** Matches routes whose AS_PATH contains this AS. */
    std::optional<AsNumber> asPathContains;
    /** Matches routes originated by this AS. */
    std::optional<AsNumber> originAs;
    /** Matches routes carrying this community. */
    std::optional<uint32_t> hasCommunity;
    /** Matches routes whose AS_PATH length is at least this. */
    std::optional<int> minAsPathLength;

    /** True if @p prefix / @p attrs satisfy every set condition. */
    bool matches(const net::Prefix &prefix,
                 const PathAttributes &attrs) const;
};

/** Modifications applied by an accepting rule. */
struct PolicyAction
{
    /** Reject the route outright. */
    bool reject = false;
    std::optional<uint32_t> setLocalPref;
    std::optional<uint32_t> setMed;
    /** Prepend our own AS this many extra times (export side). */
    int prependCount = 0;
    /** Community to add. */
    std::optional<uint32_t> addCommunity;
    /** Community to strip. */
    std::optional<uint32_t> removeCommunity;
};

/** One ordered rule. */
struct PolicyRule
{
    std::string name;
    PolicyMatch match;
    PolicyAction action;
};

/**
 * An ordered rule list evaluated first-match.
 */
class Policy
{
  public:
    /** The empty policy accepts everything unmodified. */
    Policy() = default;

    explicit Policy(std::vector<PolicyRule> rules)
        : rules_(std::move(rules))
    {}

    /** Append a rule at lowest priority. */
    void addRule(PolicyRule rule) { rules_.push_back(std::move(rule)); }

    bool empty() const { return rules_.empty(); }
    size_t size() const { return rules_.size(); }

    /**
     * Apply the policy to a route.
     *
     * @param prefix The route's destination.
     * @param attrs The route's attributes (shared, not modified).
     * @param prepend_as AS used for prependCount actions (the local
     *        AS); pass 0 on import where prepending is meaningless.
     * @return The (possibly modified, possibly same) attributes, or
     *         null if the route is rejected.
     */
    PathAttributesPtr apply(const net::Prefix &prefix,
                            const PathAttributesPtr &attrs,
                            AsNumber prepend_as = 0) const;

  private:
    std::vector<PolicyRule> rules_;
};

/** Convenience: a policy that rejects routes covered by @p prefix. */
Policy makeRejectPrefixPolicy(const net::Prefix &prefix);

/** Convenience: a policy setting LOCAL_PREF for routes from one AS. */
Policy makeLocalPrefForAsPolicy(AsNumber asn, uint32_t local_pref);

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_POLICY_HH
