/**
 * @file
 * The set of path attributes attached to a BGP route, with wire
 * encoding and decoding of the UPDATE attribute block.
 */

#ifndef BGPBENCH_BGP_PATH_ATTRIBUTES_HH
#define BGPBENCH_BGP_PATH_ATTRIBUTES_HH

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/as_path.hh"
#include "bgp/types.hh"
#include "net/byte_io.hh"
#include "net/ipv4_address.hh"

namespace bgpbench::bgp
{

/**
 * Decode failure description, mapping onto the NOTIFICATION that a
 * conforming speaker would send (RFC 4271 section 6).
 */
struct DecodeError
{
    ErrorCode code = ErrorCode::None;
    uint8_t subcode = 0;
    std::string detail;

    /** True when an error is present. */
    explicit operator bool() const { return code != ErrorCode::None; }
};

/** AGGREGATOR attribute value (RFC 4271 section 5.1.7). */
struct Aggregator
{
    AsNumber asn = 0;
    net::Ipv4Address address;

    auto operator<=>(const Aggregator &) const = default;
};

/**
 * Decoded path attributes of one route.
 *
 * The well-known mandatory attributes (ORIGIN, AS_PATH, NEXT_HOP) are
 * plain members; the optional ones are std::optional. Attribute sets
 * are shared between all prefixes announced in one UPDATE via
 * PathAttributesPtr, which is what makes large packed UPDATEs cheap to
 * store — mirroring how real BGP implementations share attribute
 * blocks.
 */
struct PathAttributes
{
    Origin origin = Origin::Igp;
    AsPath asPath;
    net::Ipv4Address nextHop;
    std::optional<uint32_t> med;
    std::optional<uint32_t> localPref;
    bool atomicAggregate = false;
    std::optional<Aggregator> aggregator;
    /** RFC 1997 communities, kept sorted for canonical comparison. */
    std::vector<uint32_t> communities;
    /** RFC 4456: router id of the route's original iBGP injector. */
    std::optional<RouterId> originatorId;
    /** RFC 4456: cluster ids the route was reflected through. */
    std::vector<uint32_t> clusterList;

    /**
     * Deep structural equality over the attribute fields only (the
     * hash cache and interning mark are excluded). Cached hashes are
     * used as a cheap reject before the field-by-field compare.
     */
    bool operator==(const PathAttributes &other) const;

    /**
     * Content hash over every attribute field, computed once and
     * cached (the struct is immutable once shared). Never zero.
     */
    uint64_t hash() const;

    /**
     * True if this instance is the canonical copy held by an
     * AttributeInterner: two distinct interned instances *of the same
     * interner* are guaranteed to differ in value.
     */
    bool interned() const { return intern_.owner != 0; }

    /**
     * Id of the AttributeInterner whose canonical instance this is,
     * or 0 when not interned. Distinct canonicals are only guaranteed
     * value-unequal when their owners match: separate interner
     * instances (tests) can each canonicalise the same value.
     */
    uint64_t internOwner() const { return intern_.owner; }

    /**
     * Encode the complete "Path Attributes" block of an UPDATE
     * (RFC 4271 section 4.3), excluding the leading two-byte total
     * length which the message encoder owns.
     */
    void encode(net::ByteWriter &writer) const;

    /** Size in bytes of the encoded attribute block. */
    size_t encodedSize() const;

    /**
     * Decode an attribute block of exactly @p reader's contents.
     *
     * Performs the RFC 4271 section 6.3 checks: flag validity, length
     * validity, mandatory attribute presence, ORIGIN range, NEXT_HOP
     * syntax, duplicate attribute rejection.
     *
     * @param reader Reader spanning the attribute block.
     * @param error Filled in on failure.
     * @return The attributes, or std::nullopt with @p error set.
     */
    static std::optional<PathAttributes>
    decode(net::ByteReader &reader, DecodeError &error);

    /** Short human-readable rendering for traces. */
    std::string toString() const;

  private:
    friend class AttributeInterner;

    /**
     * Interner bookkeeping carried by each instance: the lazily
     * computed content hash (0 = not yet computed) and the id of the
     * AttributeInterner whose canonical instance this is (0 = not
     * interned). Deliberately does NOT propagate on copy or move:
     * callers copy an attribute set precisely in order to mutate the
     * copy, so the destination must start cold — a stale hash or
     * canonical mark on a mutated copy would file it under the wrong
     * interner bucket and make every pointer-identity and cached-hash
     * fast path downstream report equal values as unequal.
     */
    struct InternState
    {
        uint64_t hash = 0;
        uint64_t owner = 0;

        InternState() = default;
        InternState(const InternState &) noexcept {}
        InternState(InternState &&other) noexcept { other.reset(); }
        InternState &
        operator=(const InternState &) noexcept
        {
            reset();
            return *this;
        }
        InternState &
        operator=(InternState &&other) noexcept
        {
            reset();
            other.reset();
            return *this;
        }
        void
        reset() noexcept
        {
            hash = 0;
            owner = 0;
        }
    };

    mutable InternState intern_;
};

/** Routes share immutable attribute blocks. */
using PathAttributesPtr = std::shared_ptr<const PathAttributes>;

/**
 * Build a shared attribute block. Routed through the global
 * AttributeInterner so equal-valued sets share one canonical
 * instance (unless interning is disabled for ablation).
 */
PathAttributesPtr makeAttributes(PathAttributes attrs);

/**
 * Null-safe attribute equality through shared pointers — the hot
 * comparison of the whole update pipeline (RIB change detection,
 * outbound grouping). Pointer identity decides in O(1) for interned
 * sets in both directions: equal pointers are equal values, and two
 * *distinct* canonicals of the *same* interner are guaranteed
 * unequal. Canonicals of different interner instances (tests spin up
 * their own) carry no such guarantee, so they fall through to the
 * cached-hash reject and deep compare like non-canonical instances.
 */
inline bool
sameAttributeValue(const PathAttributesPtr &a,
                   const PathAttributesPtr &b)
{
    if (a == b)
        return true;
    if (!a || !b)
        return false;
    if (a->interned() && a->internOwner() == b->internOwner())
        return false;
    if (a->hash() != b->hash())
        return false;
    return *a == *b;
}

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_PATH_ATTRIBUTES_HH
