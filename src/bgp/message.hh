/**
 * @file
 * BGP-4 message structures and wire codec (RFC 4271 section 4).
 *
 * Messages are encoded to and decoded from the exact on-the-wire
 * format: 16-byte all-ones marker, 2-byte length, 1-byte type, then
 * the type-specific body. A StreamDecoder reassembles messages from a
 * TCP-like byte stream, since BGP has no record boundaries of its own.
 */

#ifndef BGPBENCH_BGP_MESSAGE_HH
#define BGPBENCH_BGP_MESSAGE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "bgp/path_attributes.hh"
#include "bgp/types.hh"
#include "net/byte_io.hh"
#include "net/prefix.hh"
#include "net/wire_segment.hh"

namespace bgpbench::bgp
{

/** OPEN message body (RFC 4271 section 4.2). */
struct OpenMessage
{
    uint8_t version = proto::version;
    AsNumber myAs = 0;
    uint16_t holdTimeSec = proto::defaultHoldTimeSec;
    RouterId bgpIdentifier = 0;
    /** Raw optional parameters block (unparsed; none are needed). */
    std::vector<uint8_t> optionalParameters;
};

/** UPDATE message body (RFC 4271 section 4.3). */
struct UpdateMessage
{
    std::vector<net::Prefix> withdrawnRoutes;
    /** Shared attribute block; null when the update only withdraws. */
    PathAttributesPtr attributes;
    std::vector<net::Prefix> nlri;

    /** Total routing transactions carried: withdrawals + announcements. */
    size_t transactionCount() const
    {
        return withdrawnRoutes.size() + nlri.size();
    }
};

/** KEEPALIVE has no body (RFC 4271 section 4.4). */
struct KeepaliveMessage
{
};

/** NOTIFICATION message body (RFC 4271 section 4.5). */
struct NotificationMessage
{
    ErrorCode errorCode = ErrorCode::Cease;
    uint8_t errorSubcode = 0;
    std::vector<uint8_t> data;
};

/**
 * ROUTE-REFRESH message body (RFC 2918): asks the peer to re-send
 * its Adj-RIB-Out for one address family.
 */
struct RouteRefreshMessage
{
    /** Address family identifier; 1 = IPv4. */
    uint16_t afi = 1;
    /** Subsequent AFI; 1 = unicast. */
    uint8_t safi = 1;
};

/** Any decoded BGP message. */
using Message =
    std::variant<OpenMessage, UpdateMessage, KeepaliveMessage,
                 NotificationMessage, RouteRefreshMessage>;

/** Type of a decoded Message variant. */
MessageType messageType(const Message &msg);

/** @name Streaming encoders
 *  Append one complete framed message (marker/length/type + body) to
 *  an existing writer; the writer may carry a pooled buffer.
 *  @{
 */
void encodeMessageTo(net::ByteWriter &writer, const OpenMessage &msg);
void encodeMessageTo(net::ByteWriter &writer, const UpdateMessage &msg);
void encodeMessageTo(net::ByteWriter &writer,
                     const KeepaliveMessage &msg);
void encodeMessageTo(net::ByteWriter &writer,
                     const NotificationMessage &msg);
void encodeMessageTo(net::ByteWriter &writer,
                     const RouteRefreshMessage &msg);
void encodeMessageTo(net::ByteWriter &writer, const Message &msg);
/** @} */

/** @name Whole-message encoders
 *  Each returns a complete framed message (marker/length/type + body).
 *  @{
 */
std::vector<uint8_t> encodeMessage(const OpenMessage &msg);
std::vector<uint8_t> encodeMessage(const UpdateMessage &msg);
std::vector<uint8_t> encodeMessage(const KeepaliveMessage &msg);
std::vector<uint8_t> encodeMessage(const NotificationMessage &msg);
std::vector<uint8_t> encodeMessage(const RouteRefreshMessage &msg);
std::vector<uint8_t> encodeMessage(const Message &msg);
/** @} */

/** @name Segment encoders
 *  Encode one framed message into an immutable shared WireSegment
 *  drawn from @p pool (the calling thread's pool by default). The
 *  segment can then ride every peer queue and link without copies.
 *  @{
 */
net::WireSegmentPtr
encodeSegment(const OpenMessage &msg,
              net::BufferPool &pool = net::BufferPool::global());
net::WireSegmentPtr
encodeSegment(const UpdateMessage &msg,
              net::BufferPool &pool = net::BufferPool::global());
net::WireSegmentPtr
encodeSegment(const KeepaliveMessage &msg,
              net::BufferPool &pool = net::BufferPool::global());
net::WireSegmentPtr
encodeSegment(const NotificationMessage &msg,
              net::BufferPool &pool = net::BufferPool::global());
net::WireSegmentPtr
encodeSegment(const RouteRefreshMessage &msg,
              net::BufferPool &pool = net::BufferPool::global());
net::WireSegmentPtr
encodeSegment(const Message &msg,
              net::BufferPool &pool = net::BufferPool::global());
/** @} */

/** @name Encoded-size predictors
 *  Size in bytes the framed encoding of the message will occupy —
 *  exactly encodeMessage(msg).size(), without encoding. The update
 *  builder uses the UPDATE form to pack prefixes up to the 4096-byte
 *  limit; the segment encoders use them to size pool buffers.
 *  @{
 */
size_t encodedSize(const OpenMessage &msg);
size_t encodedSize(const UpdateMessage &msg);
size_t encodedSize(const KeepaliveMessage &msg);
size_t encodedSize(const NotificationMessage &msg);
size_t encodedSize(const RouteRefreshMessage &msg);
size_t encodedSize(const Message &msg);
/** @} */

/**
 * Decode one complete framed message from @p wire.
 *
 * @param wire Exactly one message (as framed by its length field).
 * @param error Filled in on failure with the NOTIFICATION a conforming
 *              speaker would send.
 * @return The message, or std::nullopt with @p error set.
 */
std::optional<Message> decodeMessage(std::span<const uint8_t> wire,
                                     DecodeError &error);

/**
 * Incremental framer/decoder for a TCP-like byte stream.
 *
 * Feed arbitrary chunks with feed(); poll complete messages with
 * next(). The decoder validates the marker and length fields
 * (RFC 4271 section 6.1) and reports errors sticky-fashion: after a
 * framing error the stream is unusable, exactly as a real session
 * would be torn down.
 */
class StreamDecoder
{
  public:
    /** Append raw bytes received from the peer (staging copy). */
    void feed(std::span<const uint8_t> bytes);

    /**
     * Append a shared segment received from the peer. With segment
     * sharing enabled the decoder borrows the segment — frames that
     * fall entirely inside it decode straight from its span with no
     * staging copy; only frames straddling a segment boundary are
     * spilled into the staging buffer. With sharing disabled the
     * bytes are copied immediately (the seed's behaviour).
     */
    void feed(net::WireSegmentPtr segment);

    /**
     * Extract the next complete message if one is buffered.
     *
     * @param error Set if the stream contains a malformed message.
     * @return A message, or std::nullopt if more bytes are needed or
     *         an error occurred (check @p error).
     */
    std::optional<Message> next(DecodeError &error);

    /** Bytes buffered but not yet consumed (staged + borrowed). */
    size_t
    bufferedBytes() const
    {
        return buffer_.size() - consumed_ + segmentBytes_;
    }

    /**
     * Footprint of the staging buffer, including already-consumed
     * bytes not yet compacted away. Bounded by the compaction
     * threshold plus one maximum message; the buffer-hygiene
     * regression test pins that bound.
     */
    size_t stagingBytes() const { return buffer_.size(); }

    /** True after any framing/decode error. */
    bool failed() const { return failed_; }

  private:
    /**
     * Compact once consumed staging bytes pass this threshold, so the
     * staging buffer cannot grow without bound under sustained
     * partial-frame feeding.
     */
    static constexpr size_t compactThresholdBytes = 4096;

    /** Drop consumed staging bytes once past the threshold. */
    void maybeCompact();

    /** Move bytes from borrowed segments into the staging buffer
     *  until it holds at least @p need unconsumed bytes. */
    void spillTo(size_t need);

    /** Copy every borrowed byte into the staging buffer. */
    void spillAll();

    std::vector<uint8_t> buffer_;
    size_t consumed_ = 0;
    /** Borrowed, not-yet-staged segments, in stream order after any
     *  staged bytes in buffer_. */
    std::deque<net::WireSegmentPtr> segments_;
    /** Bytes of segments_.front() already consumed or spilled. */
    size_t segmentOffset_ = 0;
    /** Unconsumed bytes across all of segments_. */
    size_t segmentBytes_ = 0;
    bool failed_ = false;
};

/** @name NLRI helpers (RFC 4271 section 4.3)
 *  @{
 */
/** Encode a prefix list in NLRI form (length octet + prefix octets). */
void encodeNlri(net::ByteWriter &writer,
                const std::vector<net::Prefix> &prefixes);
/** Bytes the NLRI encoding of @p prefixes occupies. */
size_t nlriSize(const std::vector<net::Prefix> &prefixes);
/**
 * Decode an NLRI block spanning the whole @p reader. On malformed
 * input the reader's error flag is set.
 */
std::vector<net::Prefix> decodeNlri(net::ByteReader &reader);
/** @} */

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_MESSAGE_HH
