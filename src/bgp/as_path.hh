/**
 * @file
 * AS_PATH attribute: ordered record of the ASes a route traversed.
 */

#ifndef BGPBENCH_BGP_AS_PATH_HH
#define BGPBENCH_BGP_AS_PATH_HH

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "bgp/types.hh"
#include "net/byte_io.hh"

namespace bgpbench::bgp
{

/**
 * The AS_PATH path attribute (RFC 4271 section 5.1.2).
 *
 * An AS path is a sequence of segments; each segment is either an
 * ordered AS_SEQUENCE or an unordered AS_SET (produced by route
 * aggregation). Path length for the decision process counts each
 * sequence member as 1 and each whole set as 1.
 */
class AsPath
{
  public:
    /** Segment type codes as they appear on the wire. */
    enum class SegmentType : uint8_t
    {
        AsSet = 1,
        AsSequence = 2,
    };

    struct Segment
    {
        SegmentType type = SegmentType::AsSequence;
        std::vector<AsNumber> asns;

        auto operator<=>(const Segment &) const = default;
    };

    /** The empty path (routes originated locally). */
    AsPath() = default;

    /** Convenience: a single AS_SEQUENCE segment. */
    static AsPath sequence(std::initializer_list<AsNumber> asns);

    /** Convenience: a single AS_SEQUENCE segment from a vector. */
    static AsPath sequence(std::vector<AsNumber> asns);

    const std::vector<Segment> &segments() const { return segments_; }

    /** Append a segment (used by the decoder and aggregation). */
    void addSegment(Segment segment);

    /**
     * Prepend @p asn as a speaker does when advertising to an eBGP
     * peer (RFC 4271 section 5.1.2): extends the leading AS_SEQUENCE
     * or creates one.
     */
    void prepend(AsNumber asn);

    /**
     * Decision-process path length: sequence members count 1 each,
     * every AS_SET counts 1 regardless of size.
     */
    int pathLength() const;

    /** True if @p asn appears anywhere in the path (loop detection). */
    bool contains(AsNumber asn) const;

    /** First AS of the path (the neighbouring AS), 0 if empty. */
    AsNumber firstAs() const;

    /** Last AS of the path (the origin AS), 0 if empty. */
    AsNumber originAs() const;

    /** True if the path has no segments. */
    bool empty() const { return segments_.empty(); }

    /**
     * Encode the attribute *value* (segments only, no attribute
     * header) to @p writer.
     */
    void encodeValue(net::ByteWriter &writer) const;

    /** Size in bytes of the encoded attribute value. */
    size_t encodedValueSize() const;

    /**
     * Decode an attribute value. Consumes the entire reader; on
     * malformed input the reader's error flag is set.
     */
    static AsPath decodeValue(net::ByteReader &reader);

    /** Render e.g. "100 200 {300,400}". */
    std::string toString() const;

    auto operator<=>(const AsPath &) const = default;

  private:
    std::vector<Segment> segments_;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_AS_PATH_HH
