/**
 * @file
 * Routing-table serialisation, in the spirit of MRT TABLE_DUMP
 * (RFC 6396): snapshot a Loc-RIB to bytes and parse it back.
 *
 * Research workflows around BGP benchmarks constantly move routing
 * tables between tools (the paper injects "a large routing table";
 * real studies replay RouteViews/RIPE dumps). This module provides a
 * compact, versioned binary snapshot built on the same wire
 * primitives as the protocol codec.
 */

#ifndef BGPBENCH_BGP_TABLE_IO_HH
#define BGPBENCH_BGP_TABLE_IO_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/path_attributes.hh"
#include "bgp/rib.hh"
#include "bgp/route.hh"
#include "net/byte_io.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** One route of a table snapshot. */
struct TableDumpEntry
{
    net::Prefix prefix;
    Candidate best;
};

/**
 * Serialise @p rib to a table-dump blob. Entries are emitted in
 * canonical (sorted) prefix order so equal tables produce equal
 * bytes.
 */
std::vector<uint8_t> dumpTable(const LocRib &rib);

/** Serialise an explicit entry list (already ordered as desired). */
std::vector<uint8_t>
dumpTable(const std::vector<TableDumpEntry> &entries);

/**
 * Streaming table-dump parser: decode one entry at a time over the
 * blob, so consumers can install routes as they arrive instead of
 * materialising the whole entry vector first. The route count from
 * the header is available up front for pre-sizing.
 *
 * @code
 *   TableDumpReader reader(blob);
 *   rib.reserve(reader.routeCount());
 *   TableDumpEntry entry;
 *   while (reader.next(entry))
 *       rib.select(entry.prefix, std::move(entry.best));
 *   if (reader.failed())
 *       ... reader.error() ...
 * @endcode
 */
class TableDumpReader
{
  public:
    /** Validates the header; failed() reports a bad one. */
    explicit TableDumpReader(std::span<const uint8_t> blob);

    /** Route count from the header (0 if the header was bad). */
    uint32_t routeCount() const { return count_; }

    /**
     * Decode the next entry into @p entry.
     * @return True on success; false at end of table or on error
     *         (distinguish with failed()).
     */
    bool next(TableDumpEntry &entry);

    bool failed() const { return failed_; }
    const DecodeError &error() const { return error_; }

  private:
    void setError(std::string detail);

    net::ByteReader reader_;
    DecodeError error_;
    uint32_t count_ = 0;
    uint32_t parsed_ = 0;
    bool failed_ = false;
};

/**
 * Parse a table-dump blob into a staged entry vector.
 *
 * @param blob The snapshot bytes.
 * @param error Filled in on malformed input.
 * @return The entries, or std::nullopt with @p error set.
 */
std::optional<std::vector<TableDumpEntry>>
parseTableDump(std::span<const uint8_t> blob, DecodeError &error);

/**
 * Stream a table-dump blob straight into @p rib: pre-sizes from the
 * route-count header and installs entries as they decode, avoiding
 * the staged vector of parseTableDump.
 *
 * @return Number of routes installed; on a malformed blob @p error is
 *         set and the routes decoded before the error remain
 *         installed.
 */
size_t loadTable(std::span<const uint8_t> blob, LocRib &rib,
                 DecodeError &error);

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_TABLE_IO_HH
