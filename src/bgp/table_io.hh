/**
 * @file
 * Routing-table serialisation, in the spirit of MRT TABLE_DUMP
 * (RFC 6396): snapshot a Loc-RIB to bytes and parse it back.
 *
 * Research workflows around BGP benchmarks constantly move routing
 * tables between tools (the paper injects "a large routing table";
 * real studies replay RouteViews/RIPE dumps). This module provides a
 * compact, versioned binary snapshot built on the same wire
 * primitives as the protocol codec.
 */

#ifndef BGPBENCH_BGP_TABLE_IO_HH
#define BGPBENCH_BGP_TABLE_IO_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/path_attributes.hh"
#include "bgp/rib.hh"
#include "bgp/route.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** One route of a table snapshot. */
struct TableDumpEntry
{
    net::Prefix prefix;
    Candidate best;
};

/**
 * Serialise @p rib to a table-dump blob. Entries are emitted in
 * canonical (sorted) prefix order so equal tables produce equal
 * bytes.
 */
std::vector<uint8_t> dumpTable(const LocRib &rib);

/** Serialise an explicit entry list (already ordered as desired). */
std::vector<uint8_t>
dumpTable(const std::vector<TableDumpEntry> &entries);

/**
 * Parse a table-dump blob.
 *
 * @param blob The snapshot bytes.
 * @param error Filled in on malformed input.
 * @return The entries, or std::nullopt with @p error set.
 */
std::optional<std::vector<TableDumpEntry>>
parseTableDump(std::span<const uint8_t> blob, DecodeError &error);

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_TABLE_IO_HH
