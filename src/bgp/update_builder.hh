/**
 * @file
 * Packs pending route changes into a minimal sequence of UPDATE
 * messages.
 *
 * An UPDATE carries one attribute block, so announcements are grouped
 * by attribute set; each group is chunked to respect the 4096-byte
 * message limit (RFC 4271 section 4.1) and, optionally, an explicit
 * prefixes-per-message cap — the knob the benchmark uses to emit
 * "small" (1 prefix) versus "large" (500 prefixes) packets (Table I).
 */

#ifndef BGPBENCH_BGP_UPDATE_BUILDER_HH
#define BGPBENCH_BGP_UPDATE_BUILDER_HH

#include <cstddef>
#include <vector>

#include "bgp/message.hh"
#include "bgp/path_attributes.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** Packing policy for UpdateBuilder. */
struct PackingOptions
{
    /**
     * Hard cap on prefixes per UPDATE (announcements and withdrawals
     * counted separately). 0 means "as many as fit in 4096 bytes".
     */
    size_t maxPrefixesPerUpdate = 0;
};

/**
 * Accumulates announcements and withdrawals, then emits packed
 * UPDATE messages.
 *
 * A later withdraw of a pending announcement (or vice versa)
 * supersedes it, so one flush never contains contradictory state for
 * a prefix.
 */
class UpdateBuilder
{
  public:
    explicit UpdateBuilder(PackingOptions options = {})
        : options_(options)
    {}

    /** Queue an announcement of @p prefix with @p attrs. */
    void announce(const net::Prefix &prefix, PathAttributesPtr attrs);

    /** Queue a withdrawal of @p prefix. */
    void withdraw(const net::Prefix &prefix);

    /** True if nothing is queued. */
    bool empty() const;

    /** Number of queued transactions. */
    size_t pendingTransactions() const;

    /**
     * Emit the queued changes as packed UPDATEs and reset the
     * builder. Withdrawals are emitted first (they free table space
     * on the receiver), then one run of messages per attribute group.
     */
    std::vector<UpdateMessage> build();

  private:
    struct Group
    {
        PathAttributesPtr attributes;
        std::vector<net::Prefix> prefixes;
    };

    /** Find or create the group for @p attrs. */
    Group &groupFor(const PathAttributesPtr &attrs);

    /** Remove @p prefix from any pending group; true if found. */
    bool removePending(const net::Prefix &prefix);

    PackingOptions options_;
    std::vector<Group> groups_;
    std::vector<net::Prefix> withdrawals_;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_UPDATE_BUILDER_HH
