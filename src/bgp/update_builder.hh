/**
 * @file
 * Packs pending route changes into a minimal sequence of UPDATE
 * messages.
 *
 * An UPDATE carries one attribute block, so announcements are grouped
 * by attribute set; each group is chunked to respect the 4096-byte
 * message limit (RFC 4271 section 4.1) and, optionally, an explicit
 * prefixes-per-message cap — the knob the benchmark uses to emit
 * "small" (1 prefix) versus "large" (500 prefixes) packets (Table I).
 *
 * Grouping is indexed: attribute sets resolve to their group through a
 * hash map (pointer identity for interned sets, content hash plus deep
 * equality otherwise), and every pending prefix records its location
 * so superseding a pending change is O(1). The full-table
 * advertisement path of the paper's scenarios used to scan
 * O(groups × prefixes); both scans are gone.
 */

#ifndef BGPBENCH_BGP_UPDATE_BUILDER_HH
#define BGPBENCH_BGP_UPDATE_BUILDER_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/message.hh"
#include "bgp/path_attributes.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** Packing policy for UpdateBuilder. */
struct PackingOptions
{
    /**
     * Hard cap on prefixes per UPDATE (announcements and withdrawals
     * counted separately). 0 means "as many as fit in 4096 bytes".
     */
    size_t maxPrefixesPerUpdate = 0;
};

/**
 * Accumulates announcements and withdrawals, then emits packed
 * UPDATE messages.
 *
 * A later withdraw of a pending announcement (or vice versa)
 * supersedes it, so one flush never contains contradictory state for
 * a prefix.
 */
class UpdateBuilder
{
  public:
    explicit UpdateBuilder(PackingOptions options = {})
        : options_(options)
    {}

    /** Queue an announcement of @p prefix with @p attrs. */
    void announce(const net::Prefix &prefix, PathAttributesPtr attrs);

    /** Queue a withdrawal of @p prefix. */
    void withdraw(const net::Prefix &prefix);

    /** True if nothing is queued. */
    bool empty() const { return pending_.empty(); }

    /** Number of queued transactions. */
    size_t pendingTransactions() const { return pending_.size(); }

    /**
     * Emit the queued changes as packed UPDATEs and reset the
     * builder. Withdrawals are emitted first (they free table space
     * on the receiver), then one run of messages per attribute group
     * in group-creation order; within a group, prefixes keep
     * announcement order.
     */
    std::vector<UpdateMessage> build();

  private:
    /**
     * One attribute group. Superseded prefixes are tombstoned (their
     * alive flag cleared) rather than erased, preserving both O(1)
     * supersession and the emission order of the surviving prefixes.
     */
    struct Group
    {
        PathAttributesPtr attributes;
        std::vector<net::Prefix> prefixes;
        /** Parallel to prefixes; 0 = superseded, skip at build(). */
        std::vector<uint8_t> alive;
        size_t deadCount = 0;
    };

    /** Where a pending prefix currently lives. */
    struct Location
    {
        /** Group index, or kWithdrawal. */
        uint32_t group = 0;
        /** Slot within the group's (or withdrawal) vector. */
        uint32_t slot = 0;
    };

    static constexpr uint32_t kWithdrawal = ~uint32_t(0);

    /** Group lookup: content hash (cached per attribute set). */
    struct AttrsHash
    {
        size_t
        operator()(const PathAttributesPtr &attrs) const
        {
            return attrs ? size_t(attrs->hash()) : 0;
        }
    };

    /** Group lookup: value equality with the pointer fast path. */
    struct AttrsEqual
    {
        bool
        operator()(const PathAttributesPtr &a,
                   const PathAttributesPtr &b) const
        {
            return sameAttributeValue(a, b);
        }
    };

    /** Find or create the group for @p attrs; returns its index. */
    size_t groupIndexFor(const PathAttributesPtr &attrs);

    /** Tombstone @p prefix's pending slot, if any, and forget it. */
    void removePending(const net::Prefix &prefix);

    PackingOptions options_;
    std::vector<Group> groups_;
    /** Attribute set -> index into groups_. */
    std::unordered_map<PathAttributesPtr, size_t, AttrsHash,
                       AttrsEqual>
        groupIndex_;
    std::vector<net::Prefix> withdrawals_;
    /** Parallel to withdrawals_; 0 = superseded. */
    std::vector<uint8_t> withdrawalsAlive_;
    size_t deadWithdrawals_ = 0;
    /** Every live pending prefix and where it sits. */
    std::unordered_map<net::Prefix, Location> pending_;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_UPDATE_BUILDER_HH
