#include "bgp/message.hh"

#include <algorithm>

#include "net/logging.hh"

namespace bgpbench::bgp
{

namespace
{

/** Begin a framed message: marker + placeholder length + type. */
size_t
beginMessage(net::ByteWriter &writer, MessageType type)
{
    writer.writeFill(proto::markerBytes, 0xff);
    size_t length_offset = writer.size();
    writer.writeU16(0); // patched by endMessage
    writer.writeU8(uint8_t(type));
    return length_offset;
}

/** Patch the length field and sanity-check the size limit. */
void
endMessage(net::ByteWriter &writer, size_t length_offset)
{
    panicIf(writer.size() > proto::maxMessageBytes,
            "encoded BGP message exceeds 4096 bytes");
    writer.patchU16(length_offset, uint16_t(writer.size()));
}

} // namespace

MessageType
messageType(const Message &msg)
{
    if (std::holds_alternative<OpenMessage>(msg))
        return MessageType::Open;
    if (std::holds_alternative<UpdateMessage>(msg))
        return MessageType::Update;
    if (std::holds_alternative<KeepaliveMessage>(msg))
        return MessageType::Keepalive;
    if (std::holds_alternative<RouteRefreshMessage>(msg))
        return MessageType::RouteRefresh;
    return MessageType::Notification;
}

void
encodeNlri(net::ByteWriter &writer,
           const std::vector<net::Prefix> &prefixes)
{
    for (const auto &prefix : prefixes) {
        writer.writeU8(uint8_t(prefix.length()));
        uint32_t bits = prefix.address().toUint32();
        for (int i = 0; i < prefix.wireOctets(); ++i)
            writer.writeU8(uint8_t(bits >> (24 - 8 * i)));
    }
}

size_t
nlriSize(const std::vector<net::Prefix> &prefixes)
{
    size_t size = 0;
    for (const auto &prefix : prefixes)
        size += 1 + prefix.wireOctets();
    return size;
}

std::vector<net::Prefix>
decodeNlri(net::ByteReader &reader)
{
    std::vector<net::Prefix> prefixes;
    // Each encoded prefix is >= 2 octets (length byte + at least one
    // address octet) except the rare default route, so this bound is
    // tight for real tables and avoids the doubling reallocations a
    // 500-prefix NLRI run would otherwise trigger.
    prefixes.reserve(reader.remaining() / 2 + 1);
    while (reader.ok() && reader.remaining() > 0) {
        uint8_t length = reader.readU8();
        if (length > 32) {
            reader.markError();
            return prefixes;
        }
        int octets = (length + 7) / 8;
        uint32_t bits = 0;
        for (int i = 0; i < octets; ++i)
            bits |= uint32_t(reader.readU8()) << (24 - 8 * i);
        if (!reader.ok())
            return prefixes;
        prefixes.emplace_back(net::Ipv4Address(bits), length);
    }
    return prefixes;
}

void
encodeMessageTo(net::ByteWriter &writer, const OpenMessage &msg)
{
    size_t len_off = beginMessage(writer, MessageType::Open);
    writer.writeU8(msg.version);
    writer.writeU16(msg.myAs);
    writer.writeU16(msg.holdTimeSec);
    writer.writeU32(msg.bgpIdentifier);
    writer.writeU8(uint8_t(msg.optionalParameters.size()));
    writer.writeBytes(msg.optionalParameters);
    endMessage(writer, len_off);
}

void
encodeMessageTo(net::ByteWriter &writer, const UpdateMessage &msg)
{
    size_t len_off = beginMessage(writer, MessageType::Update);

    size_t withdrawn_len_off = writer.size();
    writer.writeU16(0);
    encodeNlri(writer, msg.withdrawnRoutes);
    writer.patchU16(withdrawn_len_off,
                    uint16_t(writer.size() - withdrawn_len_off - 2));

    size_t attrs_len_off = writer.size();
    writer.writeU16(0);
    if (msg.attributes)
        msg.attributes->encode(writer);
    writer.patchU16(attrs_len_off,
                    uint16_t(writer.size() - attrs_len_off - 2));

    encodeNlri(writer, msg.nlri);
    endMessage(writer, len_off);
}

void
encodeMessageTo(net::ByteWriter &writer, const KeepaliveMessage &)
{
    size_t len_off = beginMessage(writer, MessageType::Keepalive);
    endMessage(writer, len_off);
}

void
encodeMessageTo(net::ByteWriter &writer, const NotificationMessage &msg)
{
    size_t len_off = beginMessage(writer, MessageType::Notification);
    writer.writeU8(uint8_t(msg.errorCode));
    writer.writeU8(msg.errorSubcode);
    writer.writeBytes(msg.data);
    endMessage(writer, len_off);
}

void
encodeMessageTo(net::ByteWriter &writer, const RouteRefreshMessage &msg)
{
    size_t len_off = beginMessage(writer, MessageType::RouteRefresh);
    writer.writeU16(msg.afi);
    writer.writeU8(0); // reserved
    writer.writeU8(msg.safi);
    endMessage(writer, len_off);
}

void
encodeMessageTo(net::ByteWriter &writer, const Message &msg)
{
    std::visit([&writer](const auto &m) { encodeMessageTo(writer, m); },
               msg);
}

namespace
{

template <typename MessageT>
std::vector<uint8_t>
encodeToVector(const MessageT &msg)
{
    net::ByteWriter writer(encodedSize(msg));
    encodeMessageTo(writer, msg);
    return writer.take();
}

template <typename MessageT>
net::WireSegmentPtr
encodeToSegment(const MessageT &msg, net::BufferPool &pool)
{
    net::ByteWriter writer = pool.writer(encodedSize(msg));
    encodeMessageTo(writer, msg);
    return pool.seal(std::move(writer));
}

} // namespace

std::vector<uint8_t>
encodeMessage(const OpenMessage &msg)
{
    return encodeToVector(msg);
}

std::vector<uint8_t>
encodeMessage(const UpdateMessage &msg)
{
    return encodeToVector(msg);
}

std::vector<uint8_t>
encodeMessage(const KeepaliveMessage &msg)
{
    return encodeToVector(msg);
}

std::vector<uint8_t>
encodeMessage(const NotificationMessage &msg)
{
    return encodeToVector(msg);
}

std::vector<uint8_t>
encodeMessage(const RouteRefreshMessage &msg)
{
    return encodeToVector(msg);
}

std::vector<uint8_t>
encodeMessage(const Message &msg)
{
    return std::visit(
        [](const auto &m) { return encodeMessage(m); }, msg);
}

net::WireSegmentPtr
encodeSegment(const OpenMessage &msg, net::BufferPool &pool)
{
    return encodeToSegment(msg, pool);
}

net::WireSegmentPtr
encodeSegment(const UpdateMessage &msg, net::BufferPool &pool)
{
    return encodeToSegment(msg, pool);
}

net::WireSegmentPtr
encodeSegment(const KeepaliveMessage &msg, net::BufferPool &pool)
{
    return encodeToSegment(msg, pool);
}

net::WireSegmentPtr
encodeSegment(const NotificationMessage &msg, net::BufferPool &pool)
{
    return encodeToSegment(msg, pool);
}

net::WireSegmentPtr
encodeSegment(const RouteRefreshMessage &msg, net::BufferPool &pool)
{
    return encodeToSegment(msg, pool);
}

net::WireSegmentPtr
encodeSegment(const Message &msg, net::BufferPool &pool)
{
    return std::visit(
        [&pool](const auto &m) { return encodeSegment(m, pool); },
        msg);
}

size_t
encodedSize(const OpenMessage &msg)
{
    return proto::headerBytes + 10 + msg.optionalParameters.size();
}

size_t
encodedSize(const UpdateMessage &msg)
{
    size_t size = proto::headerBytes + 2 + 2;
    size += nlriSize(msg.withdrawnRoutes);
    if (msg.attributes)
        size += msg.attributes->encodedSize();
    size += nlriSize(msg.nlri);
    return size;
}

size_t
encodedSize(const KeepaliveMessage &)
{
    return proto::headerBytes;
}

size_t
encodedSize(const NotificationMessage &msg)
{
    return proto::headerBytes + 2 + msg.data.size();
}

size_t
encodedSize(const RouteRefreshMessage &)
{
    return proto::headerBytes + 4;
}

size_t
encodedSize(const Message &msg)
{
    return std::visit(
        [](const auto &m) { return encodedSize(m); }, msg);
}

namespace
{

std::optional<Message>
decodeOpen(net::ByteReader &body, DecodeError &error)
{
    auto fail = [&error](OpenSubcode subcode, std::string detail)
        -> std::optional<Message> {
        error = DecodeError{ErrorCode::OpenMessageError,
                            uint8_t(subcode), std::move(detail)};
        return std::nullopt;
    };

    OpenMessage msg;
    msg.version = body.readU8();
    msg.myAs = body.readU16();
    msg.holdTimeSec = body.readU16();
    msg.bgpIdentifier = body.readU32();
    uint8_t opt_len = body.readU8();

    if (!body.ok() || body.remaining() != opt_len) {
        error = DecodeError{
            ErrorCode::MessageHeaderError,
            uint8_t(HeaderSubcode::BadMessageLength), "OPEN body"};
        return std::nullopt;
    }
    if (msg.version != proto::version) {
        return fail(OpenSubcode::UnsupportedVersionNumber,
                    "version " + std::to_string(msg.version));
    }
    if (msg.myAs == 0)
        return fail(OpenSubcode::BadPeerAs, "AS 0");
    if (msg.bgpIdentifier == 0)
        return fail(OpenSubcode::BadBgpIdentifier, "identifier 0");
    // RFC 4271 4.2: hold time must be 0 or >= 3 seconds.
    if (msg.holdTimeSec == 1 || msg.holdTimeSec == 2) {
        return fail(OpenSubcode::UnacceptableHoldTime,
                    "hold time " + std::to_string(msg.holdTimeSec));
    }

    auto opt = body.readBytes(opt_len);
    msg.optionalParameters.assign(opt.begin(), opt.end());
    return Message(std::move(msg));
}

std::optional<Message>
decodeUpdate(net::ByteReader &body, DecodeError &error)
{
    auto fail = [&error](UpdateSubcode subcode, std::string detail)
        -> std::optional<Message> {
        error = DecodeError{ErrorCode::UpdateMessageError,
                            uint8_t(subcode), std::move(detail)};
        return std::nullopt;
    };

    UpdateMessage msg;

    uint16_t withdrawn_len = body.readU16();
    if (!body.ok() || body.remaining() < withdrawn_len) {
        return fail(UpdateSubcode::MalformedAttributeList,
                    "withdrawn routes length");
    }
    {
        net::ByteReader wd = body.subReader(withdrawn_len);
        msg.withdrawnRoutes = decodeNlri(wd);
        if (!wd.ok()) {
            return fail(UpdateSubcode::InvalidNetworkField,
                        "withdrawn routes NLRI");
        }
    }

    uint16_t attrs_len = body.readU16();
    if (!body.ok() || body.remaining() < attrs_len) {
        return fail(UpdateSubcode::MalformedAttributeList,
                    "attribute block length");
    }
    if (attrs_len > 0) {
        net::ByteReader ar = body.subReader(attrs_len);
        auto attrs = PathAttributes::decode(ar, error);
        if (!attrs)
            return std::nullopt;
        msg.attributes = makeAttributes(std::move(*attrs));
    }

    msg.nlri = decodeNlri(body);
    if (!body.ok())
        return fail(UpdateSubcode::InvalidNetworkField, "NLRI");

    // RFC 4271 6.3: NLRI present requires the mandatory attributes.
    if (!msg.nlri.empty() && !msg.attributes) {
        return fail(UpdateSubcode::MissingWellKnownAttribute,
                    "NLRI without attributes");
    }

    return Message(std::move(msg));
}

std::optional<Message>
decodeNotification(net::ByteReader &body, DecodeError &error)
{
    if (body.remaining() < 2) {
        error = DecodeError{ErrorCode::MessageHeaderError,
                            uint8_t(HeaderSubcode::BadMessageLength),
                            "NOTIFICATION body"};
        return std::nullopt;
    }
    NotificationMessage msg;
    msg.errorCode = ErrorCode(body.readU8());
    msg.errorSubcode = body.readU8();
    auto rest = body.readBytes(body.remaining());
    msg.data.assign(rest.begin(), rest.end());
    return Message(std::move(msg));
}

} // namespace

std::optional<Message>
decodeMessage(std::span<const uint8_t> wire, DecodeError &error)
{
    error = DecodeError{};
    net::ByteReader reader(wire);

    auto marker = reader.readBytes(proto::markerBytes);
    if (!reader.ok() ||
        !std::all_of(marker.begin(), marker.end(),
                     [](uint8_t b) { return b == 0xff; })) {
        error = DecodeError{
            ErrorCode::MessageHeaderError,
            uint8_t(HeaderSubcode::ConnectionNotSynchronized),
            "bad marker"};
        return std::nullopt;
    }

    uint16_t length = reader.readU16();
    uint8_t type = reader.readU8();
    if (!reader.ok() || length != wire.size() ||
        length < proto::minMessageBytes ||
        length > proto::maxMessageBytes) {
        error = DecodeError{ErrorCode::MessageHeaderError,
                            uint8_t(HeaderSubcode::BadMessageLength),
                            "length " + std::to_string(length)};
        return std::nullopt;
    }

    switch (MessageType(type)) {
      case MessageType::Open:
        return decodeOpen(reader, error);
      case MessageType::Update:
        return decodeUpdate(reader, error);
      case MessageType::Keepalive:
        if (length != proto::headerBytes) {
            error = DecodeError{
                ErrorCode::MessageHeaderError,
                uint8_t(HeaderSubcode::BadMessageLength),
                "KEEPALIVE with body"};
            return std::nullopt;
        }
        return Message(KeepaliveMessage{});
      case MessageType::Notification:
        return decodeNotification(reader, error);

      case MessageType::RouteRefresh: {
        if (length != proto::headerBytes + 4) {
            error = DecodeError{
                ErrorCode::MessageHeaderError,
                uint8_t(HeaderSubcode::BadMessageLength),
                "ROUTE-REFRESH length"};
            return std::nullopt;
        }
        RouteRefreshMessage msg;
        msg.afi = reader.readU16();
        reader.skip(1);
        msg.safi = reader.readU8();
        return Message(msg);
      }
    }

    error = DecodeError{ErrorCode::MessageHeaderError,
                        uint8_t(HeaderSubcode::BadMessageType),
                        "type " + std::to_string(type)};
    return std::nullopt;
}

void
StreamDecoder::maybeCompact()
{
    // Threshold compaction keeps the staging footprint bounded under
    // sustained partial-frame feeding while amortising the memmove;
    // also compact cheaply whenever consumed bytes dominate.
    if (consumed_ >= compactThresholdBytes ||
        (consumed_ > 0 && consumed_ >= buffer_.size() / 2)) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + ptrdiff_t(consumed_));
        consumed_ = 0;
    }
}

void
StreamDecoder::spillTo(size_t need)
{
    while (buffer_.size() - consumed_ < need && !segments_.empty()) {
        const net::WireSegmentPtr &seg = segments_.front();
        size_t avail = seg->size() - segmentOffset_;
        size_t want =
            std::min(avail, need - (buffer_.size() - consumed_));
        buffer_.insert(buffer_.end(),
                       seg->data() + segmentOffset_,
                       seg->data() + segmentOffset_ + want);
        segmentOffset_ += want;
        segmentBytes_ -= want;
        if (segmentOffset_ == seg->size()) {
            segments_.pop_front();
            segmentOffset_ = 0;
        }
    }
}

void
StreamDecoder::spillAll()
{
    spillTo(buffer_.size() - consumed_ + segmentBytes_);
}

void
StreamDecoder::feed(std::span<const uint8_t> bytes)
{
    if (failed_)
        return;
    maybeCompact();
    // Raw bytes must land after every byte already queued, so any
    // borrowed segments are staged first to keep stream order.
    spillAll();
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void
StreamDecoder::feed(net::WireSegmentPtr segment)
{
    if (failed_ || !segment || segment->size() == 0)
        return;
    maybeCompact();
    if (!net::segmentSharingEnabled()) {
        // Ablation/compat mode: copy-per-hop, as the seed did.
        auto bytes = segment->bytes();
        buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
        return;
    }
    segmentBytes_ += segment->size();
    segments_.push_back(std::move(segment));
}

std::optional<Message>
StreamDecoder::next(DecodeError &error)
{
    error = DecodeError{};
    if (failed_) {
        error = DecodeError{
            ErrorCode::MessageHeaderError,
            uint8_t(HeaderSubcode::ConnectionNotSynchronized),
            "stream already failed"};
        return std::nullopt;
    }

    auto framedLength = [this,
                         &error](const uint8_t *head) -> uint16_t {
        uint16_t length = (uint16_t(head[proto::markerBytes]) << 8) |
                          head[proto::markerBytes + 1];
        if (length < proto::minMessageBytes ||
            length > proto::maxMessageBytes) {
            failed_ = true;
            error =
                DecodeError{ErrorCode::MessageHeaderError,
                            uint8_t(HeaderSubcode::BadMessageLength),
                            "framed length " + std::to_string(length)};
            return 0;
        }
        return length;
    };

    // Zero-copy fast path: nothing staged and the front segment holds
    // the whole next frame — decode straight from the borrowed span.
    if (buffer_.size() == consumed_ && !segments_.empty()) {
        const net::WireSegmentPtr &seg = segments_.front();
        size_t avail = seg->size() - segmentOffset_;
        if (avail >= proto::headerBytes) {
            const uint8_t *head = seg->data() + segmentOffset_;
            uint16_t length = framedLength(head);
            if (failed_)
                return std::nullopt;
            if (avail >= length) {
                auto msg = decodeMessage({head, length}, error);
                if (!msg) {
                    failed_ = true;
                    return std::nullopt;
                }
                segmentOffset_ += length;
                segmentBytes_ -= length;
                if (segmentOffset_ == seg->size()) {
                    segments_.pop_front();
                    segmentOffset_ = 0;
                }
                return msg;
            }
        }
        // Frame straddles the segment boundary: fall through to the
        // staging path, which spills only what the frame needs.
    }

    size_t available = buffer_.size() - consumed_ + segmentBytes_;
    if (available < proto::headerBytes)
        return std::nullopt;

    spillTo(proto::headerBytes);
    uint16_t length = framedLength(buffer_.data() + consumed_);
    if (failed_)
        return std::nullopt;
    if (available < length)
        return std::nullopt;

    spillTo(length);
    auto msg = decodeMessage({buffer_.data() + consumed_, length},
                             error);
    if (!msg) {
        failed_ = true;
        return std::nullopt;
    }
    consumed_ += length;
    maybeCompact();
    return msg;
}

} // namespace bgpbench::bgp
