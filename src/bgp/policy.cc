#include "bgp/policy.hh"

#include <algorithm>

namespace bgpbench::bgp
{

bool
PolicyMatch::matches(const net::Prefix &prefix,
                     const PathAttributes &attrs) const
{
    if (prefixCoveredBy && !prefixCoveredBy->covers(prefix))
        return false;
    if (minPrefixLength && prefix.length() < *minPrefixLength)
        return false;
    if (maxPrefixLength && prefix.length() > *maxPrefixLength)
        return false;
    if (asPathContains && !attrs.asPath.contains(*asPathContains))
        return false;
    if (originAs && attrs.asPath.originAs() != *originAs)
        return false;
    if (hasCommunity &&
        !std::binary_search(attrs.communities.begin(),
                            attrs.communities.end(), *hasCommunity)) {
        return false;
    }
    if (minAsPathLength && attrs.asPath.pathLength() < *minAsPathLength)
        return false;
    return true;
}

PathAttributesPtr
Policy::apply(const net::Prefix &prefix, const PathAttributesPtr &attrs,
              AsNumber prepend_as) const
{
    if (!attrs)
        return nullptr;

    for (const auto &rule : rules_) {
        if (!rule.match.matches(prefix, *attrs))
            continue;

        const PolicyAction &action = rule.action;
        if (action.reject)
            return nullptr;

        bool modifies = action.setLocalPref || action.setMed ||
                        action.addCommunity || action.removeCommunity ||
                        (action.prependCount > 0 && prepend_as != 0);
        if (!modifies)
            return attrs;

        PathAttributes out = *attrs;
        if (action.setLocalPref)
            out.localPref = *action.setLocalPref;
        if (action.setMed)
            out.med = *action.setMed;
        if (action.addCommunity) {
            auto pos = std::lower_bound(out.communities.begin(),
                                        out.communities.end(),
                                        *action.addCommunity);
            if (pos == out.communities.end() ||
                *pos != *action.addCommunity) {
                out.communities.insert(pos, *action.addCommunity);
            }
        }
        if (action.removeCommunity) {
            auto [first, last] = std::equal_range(
                out.communities.begin(), out.communities.end(),
                *action.removeCommunity);
            out.communities.erase(first, last);
        }
        if (prepend_as != 0) {
            for (int i = 0; i < action.prependCount; ++i)
                out.asPath.prepend(prepend_as);
        }
        return makeAttributes(std::move(out));
    }

    return attrs;
}

Policy
makeRejectPrefixPolicy(const net::Prefix &prefix)
{
    PolicyRule rule;
    rule.name = "reject " + prefix.toString();
    rule.match.prefixCoveredBy = prefix;
    rule.action.reject = true;
    return Policy({std::move(rule)});
}

Policy
makeLocalPrefForAsPolicy(AsNumber asn, uint32_t local_pref)
{
    PolicyRule rule;
    rule.name = "local-pref " + std::to_string(local_pref) + " for AS" +
                std::to_string(asn);
    rule.match.asPathContains = asn;
    rule.action.setLocalPref = local_pref;
    return Policy({std::move(rule)});
}

} // namespace bgpbench::bgp
