#include "bgp/policy.hh"

#include <algorithm>

namespace bgpbench::bgp
{

// --- PrefixList -------------------------------------------------------

PrefixList &
PrefixList::add(uint32_t seq, bool permit, const net::Prefix &prefix,
                std::optional<int> ge, std::optional<int> le)
{
    Entry entry;
    entry.seq = seq;
    entry.permit = permit;
    entry.prefix = prefix;
    // Resolve the ge/le rules once at build time (see header).
    if (ge)
        entry.minLength = *ge;
    else
        entry.minLength = prefix.length();
    if (le)
        entry.maxLength = *le;
    else if (ge)
        entry.maxLength = 32;
    else
        entry.maxLength = prefix.length();
    // An entry can never match a route it does not cover.
    entry.minLength = std::max(entry.minLength, prefix.length());

    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry.seq,
        [](uint32_t s, const Entry &e) { return s < e.seq; });
    entries_.insert(pos, entry);

    // Rebuild the trie's index vectors: insertion shifted the indexes
    // of every later entry. Build is config-time; keep it simple.
    trie_ = net::LpmTrie<std::vector<uint32_t>>();
    for (uint32_t i = 0; i < entries_.size(); ++i) {
        const net::Prefix &key = entries_[i].prefix;
        if (const auto *bucket = trie_.exact(key)) {
            std::vector<uint32_t> grown = *bucket;
            grown.push_back(i);
            trie_.insert(key, std::move(grown));
        } else {
            trie_.insert(key, {i});
        }
    }
    return *this;
}

ListMatch
PrefixList::evaluate(const net::Prefix &prefix) const
{
    const Entry *best = nullptr;
    trie_.forEachCovering(
        prefix, [&](int, const std::vector<uint32_t> &bucket) {
            for (uint32_t index : bucket) {
                const Entry &entry = entries_[index];
                if (prefix.length() < entry.minLength ||
                    prefix.length() > entry.maxLength) {
                    continue;
                }
                if (!best || entry.seq < best->seq)
                    best = &entry;
            }
        });
    if (!best)
        return ListMatch::NoMatch;
    return best->permit ? ListMatch::Permit : ListMatch::Deny;
}

ListMatch
PrefixList::evaluateLinear(const net::Prefix &prefix) const
{
    for (const Entry &entry : entries_) {
        if (!entry.prefix.covers(prefix))
            continue;
        if (prefix.length() < entry.minLength ||
            prefix.length() > entry.maxLength) {
            continue;
        }
        return entry.permit ? ListMatch::Permit : ListMatch::Deny;
    }
    return ListMatch::NoMatch;
}

// --- AsPathSet --------------------------------------------------------

AsPathSet &
AsPathSet::add(Entry entry)
{
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry.seq,
        [](uint32_t s, const Entry &e) { return s < e.seq; });
    entries_.insert(pos, std::move(entry));
    return *this;
}

ListMatch
AsPathSet::evaluate(const AsPath &path) const
{
    for (const Entry &entry : entries_) {
        if (entry.contains && !path.contains(*entry.contains))
            continue;
        if (entry.originAs && path.originAs() != *entry.originAs)
            continue;
        if (entry.minLength && path.pathLength() < *entry.minLength)
            continue;
        if (entry.maxLength && path.pathLength() > *entry.maxLength)
            continue;
        return entry.permit ? ListMatch::Permit : ListMatch::Deny;
    }
    return ListMatch::NoMatch;
}

// --- CommunityList ----------------------------------------------------

CommunityList &
CommunityList::add(uint32_t seq, bool permit, uint32_t community)
{
    Entry entry{seq, permit, community};
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry.seq,
        [](uint32_t s, const Entry &e) { return s < e.seq; });
    entries_.insert(pos, entry);
    return *this;
}

ListMatch
CommunityList::evaluate(const std::vector<uint32_t> &communities) const
{
    for (const Entry &entry : entries_) {
        if (!std::binary_search(communities.begin(), communities.end(),
                                entry.community)) {
            continue;
        }
        return entry.permit ? ListMatch::Permit : ListMatch::Deny;
    }
    return ListMatch::NoMatch;
}

// --- PolicyMatch ------------------------------------------------------

bool
PolicyMatch::matches(const net::Prefix &prefix,
                     const PathAttributes &attrs) const
{
    if (prefixCoveredBy && !prefixCoveredBy->covers(prefix))
        return false;
    if (minPrefixLength && prefix.length() < *minPrefixLength)
        return false;
    if (maxPrefixLength && prefix.length() > *maxPrefixLength)
        return false;
    if (asPathContains && !attrs.asPath.contains(*asPathContains))
        return false;
    if (originAs && attrs.asPath.originAs() != *originAs)
        return false;
    if (hasCommunity &&
        !std::binary_search(attrs.communities.begin(),
                            attrs.communities.end(), *hasCommunity)) {
        return false;
    }
    if (minAsPathLength && attrs.asPath.pathLength() < *minAsPathLength)
        return false;
    return true;
}

// --- SetActions -------------------------------------------------------

bool
SetActions::empty() const
{
    return !localPref && !med && prependCount == 0 && !nextHop &&
           addCommunities.empty() && deleteCommunities.empty() &&
           !replaceCommunities;
}

bool
SetActions::wouldChange(const PathAttributes &attrs,
                        AsNumber prepend_as) const
{
    if (localPref && attrs.localPref != localPref)
        return true;
    if (med && attrs.med != med)
        return true;
    if (prependCount > 0 && prepend_as != 0)
        return true;
    if (nextHop && attrs.nextHop != *nextHop)
        return true;
    if (replaceCommunities) {
        // Replacement wins over the incoming set; add/delete below
        // then operate on the replacement, so compare the final set.
        std::vector<uint32_t> out = communities;
        for (uint32_t c : addCommunities) {
            auto pos = std::lower_bound(out.begin(), out.end(), c);
            if (pos == out.end() || *pos != c)
                out.insert(pos, c);
        }
        for (uint32_t c : deleteCommunities) {
            auto [first, last] =
                std::equal_range(out.begin(), out.end(), c);
            out.erase(first, last);
        }
        return out != attrs.communities;
    }
    for (uint32_t c : addCommunities) {
        if (!std::binary_search(attrs.communities.begin(),
                                attrs.communities.end(), c)) {
            return true;
        }
    }
    for (uint32_t c : deleteCommunities) {
        if (std::binary_search(attrs.communities.begin(),
                               attrs.communities.end(), c)) {
            return true;
        }
    }
    return false;
}

void
SetActions::applyTo(PathAttributes &attrs, AsNumber prepend_as) const
{
    if (localPref)
        attrs.localPref = *localPref;
    if (med)
        attrs.med = *med;
    if (nextHop)
        attrs.nextHop = *nextHop;
    if (replaceCommunities)
        attrs.communities = communities;
    for (uint32_t c : addCommunities) {
        auto pos = std::lower_bound(attrs.communities.begin(),
                                    attrs.communities.end(), c);
        if (pos == attrs.communities.end() || *pos != c)
            attrs.communities.insert(pos, c);
    }
    for (uint32_t c : deleteCommunities) {
        auto [first, last] =
            std::equal_range(attrs.communities.begin(),
                             attrs.communities.end(), c);
        attrs.communities.erase(first, last);
    }
    if (prepend_as != 0) {
        for (int i = 0; i < prependCount; ++i)
            attrs.asPath.prepend(prepend_as);
    }
}

// --- RouteMap ---------------------------------------------------------

bool
RouteMapEntry::matches(const net::Prefix &prefix,
                       const PathAttributes &attrs) const
{
    if (prefixList &&
        prefixList->evaluate(prefix) != ListMatch::Permit) {
        return false;
    }
    if (asPathSet &&
        asPathSet->evaluate(attrs.asPath) != ListMatch::Permit) {
        return false;
    }
    if (communityList &&
        communityList->evaluate(attrs.communities) !=
            ListMatch::Permit) {
        return false;
    }
    return match.matches(prefix, attrs);
}

RouteMap &
RouteMap::add(RouteMapEntry entry)
{
    // Canonicalise the community vectors once at build time: apply()
    // and wouldChange() binary-search them, and a replacement set is
    // adopted wholesale as the route's (sorted) community list.
    auto canon = [](std::vector<uint32_t> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    canon(entry.set.addCommunities);
    canon(entry.set.deleteCommunities);
    canon(entry.set.communities);
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry.seq,
        [](uint32_t s, const RouteMapEntry &e) { return s < e.seq; });
    entries_.insert(pos, std::move(entry));
    return *this;
}

template <typename Fn>
ListMatch
RouteMap::walk(const net::Prefix &prefix, const PathAttributes &attrs,
               Fn &&fn) const
{
    bool matched_permit = false;
    size_t i = 0;
    while (i < entries_.size()) {
        const RouteMapEntry &entry = entries_[i];
        if (!entry.matches(prefix, attrs)) {
            ++i;
            continue;
        }
        if (!entry.permit)
            return ListMatch::Deny;
        matched_permit = true;
        fn(entry);
        if (!entry.continueTo)
            return ListMatch::Permit;
        if (*entry.continueTo == 0) {
            ++i;
            continue;
        }
        // Jump to the continue target, clamped strictly forward so
        // evaluation terminates even on a misconfigured backward
        // target.
        size_t next = size_t(
            std::lower_bound(
                entries_.begin(), entries_.end(), *entry.continueTo,
                [](const RouteMapEntry &e, uint32_t s) {
                    return e.seq < s;
                }) -
            entries_.begin());
        i = std::max(next, i + 1);
    }
    return matched_permit ? ListMatch::Permit : ListMatch::NoMatch;
}

PathAttributesPtr
RouteMap::apply(const net::Prefix &prefix,
                const PathAttributesPtr &attrs, AsNumber prepend_as,
                PolicyEvalStats *stats) const
{
    if (!attrs)
        return nullptr;
    if (stats)
        ++stats->evals;

    // Pass 1: disposition plus "would any accumulated set-action
    // actually change the bundle?". Matches evaluate against the
    // original attributes (see header), so this pass is pure.
    bool changes = false;
    ListMatch outcome =
        walk(prefix, *attrs, [&](const RouteMapEntry &entry) {
            if (!changes &&
                entry.set.wouldChange(*attrs, prepend_as)) {
                changes = true;
            }
        });

    if (outcome == ListMatch::Deny ||
        (outcome == ListMatch::NoMatch && noMatch_ == NoMatch::Deny)) {
        if (stats)
            ++stats->rejects;
        return nullptr;
    }
    if (!changes) {
        // Copy-on-write hit: the route passes through untouched and
        // keeps its interned pointer identity — no allocation.
        if (stats)
            ++stats->cowHits;
        return attrs;
    }

    // Pass 2 (only for bundles that really change): copy once, apply
    // every matched entry's set-actions in match order, and
    // re-canonicalise through the interner.
    PathAttributes out = *attrs;
    walk(prefix, *attrs, [&](const RouteMapEntry &entry) {
        entry.set.applyTo(out, prepend_as);
    });
    if (stats)
        ++stats->cowCopies;
    return makeAttributes(std::move(out));
}

// --- Policy (legacy flat-rule compatibility) --------------------------

namespace
{

/** Compile the legacy flat rule list onto an accept-by-default map. */
std::shared_ptr<const RouteMap>
compileLegacyRules(const std::vector<PolicyRule> &rules)
{
    auto map = std::make_shared<RouteMap>("legacy",
                                          RouteMap::NoMatch::Permit);
    uint32_t seq = 10;
    for (const PolicyRule &rule : rules) {
        RouteMapEntry entry;
        entry.seq = seq;
        seq += 10;
        entry.match = rule.match;
        const PolicyAction &action = rule.action;
        entry.permit = !action.reject;
        if (!action.reject) {
            entry.set.localPref = action.setLocalPref;
            entry.set.med = action.setMed;
            entry.set.prependCount = action.prependCount;
            if (action.addCommunity)
                entry.set.addCommunities = {*action.addCommunity};
            if (action.removeCommunity)
                entry.set.deleteCommunities = {*action.removeCommunity};
        }
        map->add(std::move(entry));
    }
    return map;
}

} // namespace

Policy::Policy(std::vector<PolicyRule> rules)
    : legacyRules_(std::move(rules))
{
    if (!legacyRules_.empty())
        map_ = compileLegacyRules(legacyRules_);
}

void
Policy::addRule(PolicyRule rule)
{
    legacyRules_.push_back(std::move(rule));
    map_ = compileLegacyRules(legacyRules_);
}

Policy
makeRejectPrefixPolicy(const net::Prefix &prefix)
{
    // Natively on the route-map engine: a deny entry matching a
    // single-entry prefix-list covering the prefix and all its
    // more-specifics, accepting everything else unmodified (the
    // historical helper semantics).
    auto list = std::make_shared<PrefixList>("reject-" +
                                             prefix.toString());
    list->add(5, true, prefix, std::nullopt, 32);
    auto map = std::make_shared<RouteMap>("reject " + prefix.toString(),
                                          RouteMap::NoMatch::Permit);
    RouteMapEntry entry;
    entry.seq = 10;
    entry.permit = false;
    entry.prefixList = std::move(list);
    map->add(std::move(entry));
    return Policy(std::move(map));
}

Policy
makeLocalPrefForAsPolicy(AsNumber asn, uint32_t local_pref)
{
    auto set = std::make_shared<AsPathSet>("as-" + std::to_string(asn));
    AsPathSet::Entry match;
    match.seq = 5;
    match.permit = true;
    match.contains = asn;
    set->add(match);
    auto map = std::make_shared<RouteMap>(
        "local-pref " + std::to_string(local_pref) + " for AS" +
            std::to_string(asn),
        RouteMap::NoMatch::Permit);
    RouteMapEntry entry;
    entry.seq = 10;
    entry.asPathSet = std::move(set);
    entry.set.localPref = local_pref;
    map->add(std::move(entry));
    return Policy(std::move(map));
}

} // namespace bgpbench::bgp
