/**
 * @file
 * Route flap damping (RFC 2439).
 *
 * The paper motivates BGP benchmarking with routing instability
 * (section II, ref. [5]): routers continuously process updates, and
 * unstable routes multiply that load. Flap damping is the classic
 * defence: each flap adds a penalty that decays exponentially; a
 * route whose penalty exceeds the suppress threshold is ignored until
 * it decays below the reuse threshold.
 *
 * Decay is anchor-based: each history stores the penalty value at the
 * simulated time it was last *charged* and every read computes
 * penalty * 2^(-(now - anchor) / halfLife) from that fixed anchor.
 * Reads never rebase the anchor, so the observed trajectory is a pure
 * function of the flap times — querying a history more or less often
 * (as parallel shard layouts do) cannot perturb the floating-point
 * path or shift a suppress/reuse boundary.
 */

#ifndef BGPBENCH_BGP_DAMPING_HH
#define BGPBENCH_BGP_DAMPING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/route.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** RFC 2439 parameters (defaults follow common vendor practice). */
struct DampingConfig
{
    /** Master switch; damping is off unless enabled. */
    bool enabled = false;
    /** Penalty added per withdrawal. */
    double withdrawPenalty = 1000.0;
    /** Penalty added per re-announcement of a withdrawn route. */
    double reAnnouncePenalty = 500.0;
    /** Penalty added per attribute change. */
    double attributeChangePenalty = 500.0;
    /** Penalty above which the route is suppressed. */
    double suppressThreshold = 2000.0;
    /** Penalty below which a suppressed route is reused. */
    double reuseThreshold = 750.0;
    /** Exponential decay half-life in seconds. */
    double halfLifeSec = 900.0;
    /** Penalty ceiling (bounds maximum suppression time). */
    double maxPenalty = 12000.0;
};

/**
 * Per-(peer, prefix) flap history with anchor-based exponential
 * decay. All reads are const and side-effect free; only recording a
 * flap (or harvesting reusable routes) mutates state.
 */
class FlapDamper
{
  public:
    using TimeNs = uint64_t;

    explicit FlapDamper(DampingConfig config)
        : config_(config),
          halfLifeNs_(config.halfLifeSec * 1e9)
    {}

    const DampingConfig &config() const { return config_; }

    /**
     * Record a withdrawal flap.
     * @return True if the route is now suppressed.
     */
    bool onWithdraw(PeerId peer, const net::Prefix &prefix,
                    TimeNs now);

    /**
     * Record an announcement.
     *
     * @param attribute_change True when the announcement changes the
     *        stored attributes of an existing route (a path flap
     *        rather than a fresh route).
     * @return True if the route is (still) suppressed and must not
     *         enter the decision process.
     */
    bool onAnnounce(PeerId peer, const net::Prefix &prefix,
                    bool attribute_change, TimeNs now);

    /** Current suppression state (pure read; no decay rebase). */
    bool isSuppressed(PeerId peer, const net::Prefix &prefix,
                      TimeNs now) const;

    /** Current decayed penalty (0 when untracked). */
    double penalty(PeerId peer, const net::Prefix &prefix,
                   TimeNs now) const;

    /**
     * Collect routes whose suppression has lapsed since the last
     * call; the speaker re-runs the decision process for them. Also
     * garbage-collects negligible histories.
     */
    std::vector<std::pair<PeerId, net::Prefix>>
    takeReusable(TimeNs now);

    /**
     * Earliest simulated time at which any suppressed route could
     * cross the reuse threshold, or 0 when nothing is suppressed.
     * This is a scheduling hint (an upper bound rounded up to whole
     * ns, clamped to >= now + 1): the caller wakes up then and lets
     * takeReusable() decide by the exact predicate, re-arming if a
     * route needs marginally longer.
     */
    TimeNs nextReuseTime(TimeNs now) const;

    size_t trackedRoutes() const { return histories_.size(); }

    /** Number of currently suppressed routes (after decay). */
    size_t suppressedCount(TimeNs now) const;

    /** Total not-suppressed -> suppressed transitions recorded. */
    uint64_t suppressTransitions() const { return suppressTransitions_; }

    /** Total suppressed -> reusable transitions harvested. */
    uint64_t reuseTransitions() const { return reuseTransitions_; }

  private:
    struct Key
    {
        PeerId peer;
        net::Prefix prefix;

        bool
        operator==(const Key &other) const
        {
            return peer == other.peer && prefix == other.prefix;
        }
    };

    struct KeyHash
    {
        size_t
        operator()(const Key &key) const
        {
            size_t h = std::hash<net::Prefix>()(key.prefix);
            return h ^ (size_t(key.peer) * 0x9e3779b97f4a7c15ULL);
        }
    };

    struct History
    {
        /** Penalty value at @ref anchor (the last charge time). */
        double penalty = 0.0;
        /** Simulated time the penalty was last charged. */
        TimeNs anchor = 0;
        /**
         * Sticky suppression flag: set when the penalty crosses the
         * suppress threshold, cleared only by takeReusable() so each
         * suppression episode is harvested exactly once.
         */
        bool suppressed = false;
    };

    /** Penalty decayed from the anchor to @p now (pure). */
    double decayedPenalty(const History &history, TimeNs now) const;

    /** Effective suppression at @p now (flag and above reuse). */
    bool effectivelySuppressed(const History &history,
                               TimeNs now) const;

    /** Add a flap penalty and re-evaluate suppression. */
    bool addPenalty(PeerId peer, const net::Prefix &prefix,
                    double penalty, TimeNs now);

    DampingConfig config_;
    double halfLifeNs_;
    std::unordered_map<Key, History, KeyHash> histories_;
    uint64_t suppressTransitions_ = 0;
    uint64_t reuseTransitions_ = 0;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_DAMPING_HH
