/**
 * @file
 * BgpSpeaker: a complete BGP-4 speaker tying together sessions, the
 * three RIBs, the policy engine, the decision process, and outbound
 * update packing.
 *
 * The speaker is transport-agnostic and clock-explicit: the owner
 * delivers bytes (or decoded messages) with a timestamp and receives
 * transmissions, FIB changes, and statistics through the
 * SpeakerEvents interface. This is what lets the same protocol engine
 * run (a) standalone in examples and tests, (b) as the zero-cost test
 * speakers of the benchmark harness, and (c) inside the simulated
 * router systems where every operation is charged virtual CPU cycles.
 */

#ifndef BGPBENCH_BGP_SPEAKER_HH
#define BGPBENCH_BGP_SPEAKER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/damping.hh"
#include "bgp/decision.hh"
#include "bgp/message.hh"
#include "bgp/policy.hh"
#include "bgp/rib.hh"
#include "bgp/route.hh"
#include "bgp/session.hh"
#include "bgp/update_builder.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "net/ipv4_address.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** Speaker-wide configuration. */
struct SpeakerConfig
{
    AsNumber localAs = 0;
    RouterId routerId = 0;
    /** Address installed as NEXT_HOP on eBGP advertisements. */
    net::Ipv4Address localAddress;
    uint16_t holdTimeSec = proto::defaultHoldTimeSec;
    DecisionConfig decision;
    /** Outbound packing policy (small vs large packets, Table I). */
    PackingOptions packing;
    /** Route flap damping (RFC 2439); disabled by default. */
    DampingConfig damping;
    /**
     * Minimum Route Advertisement Interval per session, in ns of the
     * speaker's virtual clock (RFC 4271 section 9.2.1.1, applied per
     * peer rather than per destination). 0 disables MRAI batching —
     * the paper's measurements run without it, so 0 is the default.
     * While the interval runs, outbound changes stay queued in the
     * peer's UpdateBuilder, where supersession collapses transient
     * announce/withdraw churn before anything reaches the wire.
     */
    uint64_t mraiNs = 0;
    /**
     * Route-reflection cluster id (RFC 4456); 0 means "use the
     * router id". Only meaningful when peers are marked as clients.
     */
    uint32_t clusterId = 0;
};

/** Per-peer configuration. */
struct PeerConfig
{
    PeerId id = 0;
    /** Peer AS; a value equal to the local AS makes the session iBGP. */
    AsNumber asn = 0;
    net::Ipv4Address address;
    Policy importPolicy;
    Policy exportPolicy;
    /**
     * True if this iBGP peer is a route-reflection client of ours
     * (RFC 4456). iBGP-learned routes are reflected to clients, and
     * client routes are reflected to everyone.
     */
    bool routeReflectorClient = false;
};

/** Counters describing the processing of one inbound UPDATE. */
struct UpdateStats
{
    size_t announcedPrefixes = 0;
    size_t withdrawnPrefixes = 0;
    size_t rejectedByPolicy = 0;
    size_t locRibChanges = 0;
    size_t fibChanges = 0;
    size_t advertisedPrefixes = 0;
};

/** Aggregate lifetime counters of a speaker. */
struct SpeakerCounters
{
    uint64_t updatesReceived = 0;
    uint64_t announcementsProcessed = 0;
    uint64_t withdrawalsProcessed = 0;
    uint64_t decisionRuns = 0;
    uint64_t locRibChanges = 0;
    uint64_t fibChanges = 0;
    uint64_t updatesSent = 0;
    uint64_t prefixesAdvertised = 0;
    uint64_t notificationsSent = 0;
    /** Announcements ignored because the route was damped. */
    uint64_t announcementsSuppressed = 0;
    /** Flush rounds where a peer's queue was held back by MRAI. */
    uint64_t mraiDeferrals = 0;

    /** Total inbound routing transactions (paper's metric unit). */
    uint64_t
    transactionsProcessed() const
    {
        return announcementsProcessed + withdrawalsProcessed;
    }
};

/**
 * Event sink for everything a speaker does that the outside world can
 * observe. All callbacks are invoked synchronously from within the
 * speaker call that triggered them.
 */
class SpeakerEvents
{
  public:
    virtual ~SpeakerEvents() = default;

    /**
     * A message must be transmitted to @p to. One call corresponds to
     * one TCP segment / "packet" in the paper's terminology.
     *
     * @param to Destination peer.
     * @param type Message type (for accounting without re-decoding).
     * @param wire Complete framed wire encoding as a shared immutable
     *             segment. An UPDATE fanned out to several peers
     *             passes the *same* segment to each; sinks must not
     *             assume exclusive ownership.
     * @param transactions Routing transactions carried (UPDATE only).
     */
    virtual void onTransmit(PeerId to, MessageType type,
                            net::WireSegmentPtr wire,
                            size_t transactions) = 0;

    /** The Loc-RIB change requires a forwarding-table change. */
    virtual void onFibUpdate(const FibUpdate &update) { (void)update; }

    /** A session changed FSM state. */
    virtual void
    onSessionStateChange(PeerId peer, SessionState previous,
                         SessionState current)
    {
        (void)peer;
        (void)previous;
        (void)current;
    }

    /** An inbound UPDATE finished processing. */
    virtual void
    onUpdateProcessed(PeerId from, const UpdateStats &stats)
    {
        (void)from;
        (void)stats;
    }

    /**
     * The speaker has deferred work (an MRAI-held queue or a damped
     * route awaiting reuse) and asks to have serviceWakeup() called
     * at simulated time @p at or later. Owners without a scheduler
     * may ignore this and keep driving pollTimers() instead; @p at is
     * an upper bound, and serviceWakeup() is idempotent, so spurious
     * or early wakeups are harmless.
     */
    virtual void
    onWakeupRequested(SessionFsm::TimeNs at)
    {
        (void)at;
    }
};

/**
 * Read-side publication hook: a consumer of Loc-RIB versions (the
 * serve-layer snapshot publisher). The speaker invokes it
 * synchronously on its own thread at the configured granularity;
 * implementations must only *read* the RIB (typically copying it
 * into an immutable snapshot) — mutating the speaker from the hook
 * is undefined. Keeping the interface here (rather than in
 * src/serve) lets the protocol library stay ignorant of who consumes
 * the versions.
 */
class RibListener
{
  public:
    virtual ~RibListener() = default;

    /**
     * The Loc-RIB reached a publication point.
     *
     * @param rib The live Loc-RIB (valid only for the duration of
     *        the call; copy what you need).
     * @param version Monotonic Loc-RIB change count — two calls with
     *        the same version have identical content.
     * @param now The speaker's virtual clock at the publication.
     */
    virtual void onRibPublish(const LocRib &rib, uint64_t version,
                              SessionFsm::TimeNs now) = 0;
};

/**
 * A BGP-4 speaker.
 *
 * Typical standalone use:
 * @code
 *   BgpSpeaker speaker(config, &events);
 *   speaker.addPeer(peer_config);
 *   speaker.startPeer(peer_id, now);
 *   speaker.tcpEstablished(peer_id, now);   // transport came up
 *   speaker.receiveBytes(peer_id, bytes, now);
 * @endcode
 */
class BgpSpeaker
{
  public:
    using TimeNs = SessionFsm::TimeNs;

    /**
     * @param config Speaker configuration.
     * @param events Event sink; must outlive the speaker.
     */
    BgpSpeaker(SpeakerConfig config, SpeakerEvents *events);

    /** Register a peer. Fatal if the id is already in use. */
    void addPeer(PeerConfig config);

    /** Begin connecting to a peer (operator ManualStart). */
    void startPeer(PeerId peer, TimeNs now);

    /** Stop a peer session and flush its routes. */
    void stopPeer(PeerId peer, TimeNs now);

    /** The transport to @p peer came up: the OPEN exchange begins. */
    void tcpEstablished(PeerId peer, TimeNs now);

    /** The transport to @p peer dropped: routes are invalidated. */
    void tcpClosed(PeerId peer, TimeNs now);

    /**
     * Deliver raw bytes from @p peer. Frames, decodes, and processes
     * every complete message; on a decode error, sends the
     * corresponding NOTIFICATION and tears the session down.
     */
    void receiveBytes(PeerId peer, std::span<const uint8_t> bytes,
                      TimeNs now);

    /**
     * Deliver a shared wire segment from @p peer. Equivalent to
     * receiveBytes() but lets the stream decoder frame over the
     * borrowed segment without a staging copy.
     */
    void receiveSegment(PeerId peer, net::WireSegmentPtr segment,
                        TimeNs now);

    /** Deliver one already-decoded message from @p peer. */
    void handleMessage(PeerId peer, const Message &msg, TimeNs now);

    /** Drive keepalive/hold timers for all sessions. */
    void pollTimers(TimeNs now);

    /**
     * Service deferred work at a time previously requested through
     * SpeakerEvents::onWakeupRequested(): re-admit damped routes
     * whose suppression lapsed and flush MRAI-held queues whose
     * interval expired. Idempotent — calling with nothing due only
     * re-arms the next wakeup (if any work remains deferred).
     */
    void serviceWakeup(TimeNs now);

    /**
     * Originate a route locally (as if redistributed from an IGP).
     * Runs the decision process and advertises as appropriate.
     */
    void originate(const net::Prefix &prefix, PathAttributesPtr attrs,
                   TimeNs now);

    /** Withdraw a locally originated route. */
    void withdrawLocal(const net::Prefix &prefix, TimeNs now);

    /** @name Introspection
     *  @{
     */
    SessionState sessionState(PeerId peer) const;
    const LocRib &locRib() const { return locRib_; }
    const AdjRibIn &adjRibIn(PeerId peer) const;
    const AdjRibOut &adjRibOut(PeerId peer) const;
    const SpeakerCounters &counters() const { return counters_; }
    const SpeakerConfig &config() const { return config_; }

    /**
     * Attach this speaker to a run's observability sinks. Metric
     * handles are resolved once here (under the registry's
     * registration lock) so the hot paths only touch pre-resolved
     * pointers; several speakers may share one registry (one per
     * shard) and their counts aggregate. @p track is the trace lane
     * (tid) for this speaker's events — the owning node id in a
     * topology run. Null arguments detach; detached instrumentation
     * is a single branch per site. Trace timestamps come from the
     * caller-supplied virtual clock (the `now` of each entry point),
     * so binding can never perturb simulation behaviour.
     */
    void bindObservability(obs::MetricRegistry *registry,
                           obs::Tracer *tracer, uint32_t track);

    /**
     * Attach a Loc-RIB publication listener (null detaches).
     *
     * @param listener Receives onRibPublish() on this speaker's
     *        thread; must outlive the speaker or be detached first.
     * @param everyDecisions Publication granularity: 0 publishes at
     *        the end of every flush round whose decisions changed the
     *        Loc-RIB (the natural "batch boundary" of UPDATE
     *        processing); N > 0 publishes after every N decision
     *        runs, bounding staleness under long flushes. Either way
     *        a publication only fires when the Loc-RIB actually
     *        changed since the last one.
     */
    void bindRibListener(RibListener *listener,
                         uint64_t everyDecisions = 0);

    /** Monotonic Loc-RIB change count (see RibListener). */
    uint64_t ribVersion() const { return ribVersion_; }
    /** Flap-damping state (live; decays lazily on access). */
    FlapDamper &damper() { return damper_; }
    std::vector<PeerId> peerIds() const;
    /**
     * The shared prefix table all RIBs sit on, or null when the
     * hash-map backend is active (BGPBENCH_NO_PREFIX_TREE=1).
     */
    const SharedPrefixTable *
    prefixTable() const
    {
        return prefixTable_.get();
    }
    /**
     * Structural bytes held by RIB storage: the shared key table
     * (once) plus every RIB's value column / hash map.
     */
    size_t ribMemoryBytes() const;
    /**
     * Pre-size RIB storage for @p prefixes distinct routes: the
     * shared prefix table (arena and slot arrays) and every existing
     * RIB's column or hash map. A router provisioned for a full feed
     * knows its table scale up front; reserving exactly removes the
     * geometric-growth slack from every column. New peers added
     * later still size their columns to the table's capacity.
     */
    void reserveRoutes(size_t prefixes);
    /** @} */

    /** Pseudo peer-id used for locally originated routes. */
    static constexpr PeerId localPeerId = ~PeerId(0);

  private:
    struct Peer
    {
        PeerConfig config;
        SessionFsm fsm;
        StreamDecoder decoder;
        AdjRibIn ribIn;
        AdjRibOut ribOut;
        UpdateBuilder pending;
        /**
         * Earliest time the next UPDATE may be sent to this peer
         * (MRAI, RFC 4271 section 9.2.1.1); 0 when the interval is
         * idle. Reset on session loss together with the pending
         * queue.
         */
        TimeNs mraiReadyAt = 0;
        bool externalSession = true;
        /**
         * eBGP export transform memo, used when the export policy is
         * empty: interned best-path attributes -> the transformed
         * (prepended, next-hop-rewritten) attributes, or null when
         * sender-side loop avoidance suppresses the route. Keyed by
         * the owning shared pointer, so a dead attribute set can
         * never alias a recycled address. The transform is a pure
         * function of the input attributes, so memoisation cannot
         * change behaviour. Cleared on session loss.
         */
        std::unordered_map<PathAttributesPtr, PathAttributesPtr>
            exportMemo;

        Peer(PeerConfig cfg, SessionConfig session_cfg,
             PackingOptions packing, SharedPrefixTable *table)
            : config(std::move(cfg)), fsm(session_cfg), ribIn(table),
              ribOut(table), pending(packing)
        {}
    };

    /** exportMemo is trimmed (see trimExportMemo) at this size. */
    static constexpr size_t exportMemoCap = 8192;

    /**
     * Bounded eviction for Peer::exportMemo once it reaches
     * exportMemoCap: drop entries whose input attribute set is dead
     * everywhere else first, then shed arbitrary entries down to half
     * the cap so hot entries are not flushed wholesale and at least
     * cap/2 insertions pass before the next trim (amortised O(1)).
     */
    static void trimExportMemo(Peer &peer);

    Peer &peerRef(PeerId peer);
    const Peer &peerRef(PeerId peer) const;

    /** Send @p msgs to @p peer through the event sink. */
    void transmit(Peer &peer, const std::vector<Message> &msgs);

    /**
     * Send freshly built UPDATEs to @p peer, encoding each exactly
     * once per flush: a message whose content matches one already
     * encoded for another peer in the same flushPending() round (the
     * common full-mesh fan-out case) reuses the cached shared segment
     * instead of re-encoding.
     */
    void transmitUpdates(Peer &peer,
                         std::vector<UpdateMessage> &&updates);

    /** Decode-and-handle loop shared by the receive entry points. */
    void drainDecoder(Peer &peer, TimeNs now);

    /** Process an UPDATE from an established peer. */
    void processUpdate(Peer &from, const UpdateMessage &msg,
                       TimeNs now);

    /**
     * Re-run the decision process for @p prefix and propagate the
     * outcome (Loc-RIB, FIB, Adj-RIB-Out).
     */
    void runDecision(const net::Prefix &prefix, UpdateStats &stats,
                     TimeNs now);

    /**
     * Update a single peer's Adj-RIB-Out for the new best route.
     * @p slot is the prefix's pre-resolved shared-table slot (npos in
     * hash mode), giving the fan-out O(1) column writes.
     */
    void updateAdjOut(Peer &peer, const net::Prefix &prefix,
                      SharedPrefixTable::Slot slot,
                      const Candidate *best, UpdateStats &stats);

    /** Flush all pending per-peer builders into UPDATE messages. */
    void flushPending(TimeNs now);

    /** Full-table advertisement when a session reaches Established. */
    void advertiseFullTable(Peer &peer, TimeNs now);

    /** Drop all routes learned from @p peer (session loss). */
    void invalidatePeerRoutes(Peer &peer, TimeNs now);

    /**
     * Ask the owner (via SpeakerEvents) for a serviceWakeup() call at
     * @p at or later. Requests already covered by an earlier-or-equal
     * armed wakeup are elided so steady churn does not flood the
     * owner's scheduler.
     */
    void requestWakeup(TimeNs at);

    /** Arm the wakeup for the damper's next reuse boundary, if any. */
    void armDampingWakeup(TimeNs now);

    /** Mirror damper transition counters into obs (as deltas). */
    void syncDampingObs();

    /** Track FSM state transitions and fire callbacks. */
    void noteStateChange(Peer &peer, SessionState before, TimeNs now);

    /** Keep establishedPeers_ in sync with one peer's FSM state. */
    void markEstablished(Peer &peer);
    void unmarkEstablished(Peer &peer);

    /** Compute the eBGP export of @p attrs for @p peer (memo miss). */
    PathAttributesPtr ebgpExport(const Peer &peer,
                                 const PathAttributesPtr &attrs) const;

    /**
     * One encode-once cache entry: the UPDATE exactly as encoded plus
     * its segment. Holding the message (not just a hash) lets cache
     * hits verify full content equality — a hash collision must never
     * put the wrong bytes on a wire.
     */
    struct CachedWire
    {
        UpdateMessage message;
        net::WireSegmentPtr wire;
    };

    /** Pre-resolved observability handles; all null when detached. */
    struct ObsHandles
    {
        obs::Tracer *tracer = nullptr;
        uint32_t track = 0;
        obs::Counter *updatesReceived = nullptr;
        obs::Counter *updatesSent = nullptr;
        obs::Counter *prefixesAdvertised = nullptr;
        obs::Counter *decisionRuns = nullptr;
        obs::Counter *locRibChanges = nullptr;
        obs::Counter *fibChanges = nullptr;
        obs::Counter *sessionTransitions = nullptr;
        obs::Counter *policyEvals = nullptr;
        obs::Counter *policyRejects = nullptr;
        obs::Counter *ecmpGroups = nullptr;
        obs::Counter *dampingSuppressed = nullptr;
        obs::Counter *dampingReused = nullptr;
        obs::Counter *mraiDeferrals = nullptr;
        obs::Histogram *decisionCandidates = nullptr;
    };

    /**
     * Publish the Loc-RIB to the bound listener if it changed since
     * the last publication, and reset the granularity counters.
     */
    void publishRib(TimeNs now);

    /** Per-flush / per-N-decisions publication check. */
    void
    maybePublishRib(TimeNs now, bool flushBoundary)
    {
        if (!ribListener_ || !ribDirty_)
            return;
        if (publishEveryDecisions_ == 0
                ? flushBoundary
                : decisionsSincePublish_ >= publishEveryDecisions_)
            publishRib(now);
    }

    SpeakerConfig config_;
    SpeakerEvents *events_;
    ObsHandles obs_;
    /** Read-side publication hook (see bindRibListener). */
    RibListener *ribListener_ = nullptr;
    uint64_t publishEveryDecisions_ = 0;
    uint64_t ribVersion_ = 0;
    uint64_t decisionsSincePublish_ = 0;
    bool ribDirty_ = false;
    /**
     * The one prefix -> slot key structure every RIB of this speaker
     * shares (see prefix_table.hh); null in hash-map ablation mode.
     * Declared before the RIBs so it outlives their destruction.
     */
    std::unique_ptr<SharedPrefixTable> prefixTable_;
    std::map<PeerId, std::unique_ptr<Peer>> peers_;
    /**
     * Per-flush encode cache: content hash of an UPDATE -> encodings
     * produced this flushPending() round. Lives across the peer loop
     * of one flush (that is where fan-out duplication arises) and is
     * emptied at the end so segments are not retained once queued.
     */
    std::unordered_map<uint64_t, std::vector<CachedWire>> encodeCache_;
    /**
     * Peers currently in Established state, sorted by peer id (the
     * iteration order of peers_). The per-prefix decision sweep and
     * the Adj-RIB-Out fan-out walk this instead of the full peer map,
     * so idle/configured-but-down peers cost nothing per prefix.
     */
    std::vector<Peer *> establishedPeers_;
    /** Locally originated routes (pseudo Adj-RIB-In). */
    AdjRibIn localRoutes_;
    FlapDamper damper_;
    LocRib locRib_;
    SpeakerCounters counters_;
    /**
     * Time of the earliest wakeup currently armed with the owner, or
     * 0 when none is outstanding. serviceWakeup() clears it; the
     * owner may deliver wakeups late or more than once, both benign.
     */
    TimeNs wakeupArmedAt_ = 0;
    /** Damper transition counts already mirrored into obs. */
    uint64_t dampingSuppressedSeen_ = 0;
    uint64_t dampingReusedSeen_ = 0;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_SPEAKER_HH
