#include "bgp/path_attributes.hh"

#include <algorithm>

#include "bgp/attr_intern.hh"

namespace bgpbench::bgp
{

bool
PathAttributes::operator==(const PathAttributes &other) const
{
    if (intern_.hash != 0 && other.intern_.hash != 0 &&
        intern_.hash != other.intern_.hash) {
        return false;
    }
    return origin == other.origin && nextHop == other.nextHop &&
           med == other.med && localPref == other.localPref &&
           atomicAggregate == other.atomicAggregate &&
           aggregator == other.aggregator &&
           originatorId == other.originatorId &&
           asPath == other.asPath &&
           communities == other.communities &&
           clusterList == other.clusterList;
}

uint64_t
PathAttributes::hash() const
{
    if (intern_.hash != 0)
        return intern_.hash;

    // FNV-1a over every field, with explicit presence markers so an
    // absent optional cannot collide with a present zero.
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };

    mix(uint64_t(origin));
    for (const auto &segment : asPath.segments()) {
        mix(uint64_t(segment.type));
        mix(segment.asns.size());
        for (AsNumber asn : segment.asns)
            mix(asn);
    }
    mix(nextHop.toUint32());
    mix(med.has_value());
    mix(med.value_or(0));
    mix(localPref.has_value());
    mix(localPref.value_or(0));
    mix(atomicAggregate);
    mix(aggregator.has_value());
    if (aggregator) {
        mix(aggregator->asn);
        mix(aggregator->address.toUint32());
    }
    mix(communities.size());
    for (uint32_t community : communities)
        mix(community);
    mix(originatorId.has_value());
    mix(originatorId.value_or(0));
    mix(clusterList.size());
    for (uint32_t cluster : clusterList)
        mix(cluster);

    if (h == 0)
        h = 0x9e3779b97f4a7c15ull;
    intern_.hash = h;
    return h;
}

namespace
{

/**
 * Append one attribute with header. Uses the extended-length flag
 * automatically when the value exceeds 255 bytes.
 */
void
writeAttribute(net::ByteWriter &writer, uint8_t flags, AttrType type,
               const std::vector<uint8_t> &value)
{
    if (value.size() > 255)
        flags |= attr_flags::extendedLength;
    writer.writeU8(flags);
    writer.writeU8(uint8_t(type));
    if (flags & attr_flags::extendedLength)
        writer.writeU16(uint16_t(value.size()));
    else
        writer.writeU8(uint8_t(value.size()));
    writer.writeBytes(value);
}

constexpr uint8_t wellKnown = attr_flags::transitive;
constexpr uint8_t optTransitive =
    attr_flags::optional | attr_flags::transitive;
constexpr uint8_t optNonTransitive = attr_flags::optional;

} // namespace

void
PathAttributes::encode(net::ByteWriter &writer) const
{
    // ORIGIN
    writeAttribute(writer, wellKnown, AttrType::Origin,
                   {uint8_t(origin)});

    // AS_PATH
    {
        net::ByteWriter value(asPath.encodedValueSize());
        asPath.encodeValue(value);
        writeAttribute(writer, wellKnown, AttrType::AsPath,
                       value.bytes());
    }

    // NEXT_HOP
    {
        net::ByteWriter value(4);
        value.writeAddress(nextHop);
        writeAttribute(writer, wellKnown, AttrType::NextHop,
                       value.bytes());
    }

    if (med) {
        net::ByteWriter value(4);
        value.writeU32(*med);
        writeAttribute(writer, optNonTransitive,
                       AttrType::MultiExitDisc, value.bytes());
    }

    if (localPref) {
        net::ByteWriter value(4);
        value.writeU32(*localPref);
        writeAttribute(writer, wellKnown, AttrType::LocalPref,
                       value.bytes());
    }

    if (atomicAggregate)
        writeAttribute(writer, wellKnown, AttrType::AtomicAggregate, {});

    if (aggregator) {
        net::ByteWriter value(6);
        value.writeU16(aggregator->asn);
        value.writeAddress(aggregator->address);
        writeAttribute(writer, optTransitive, AttrType::Aggregator,
                       value.bytes());
    }

    if (!communities.empty()) {
        net::ByteWriter value(4 * communities.size());
        for (uint32_t community : communities)
            value.writeU32(community);
        writeAttribute(writer, optTransitive, AttrType::Community,
                       value.bytes());
    }

    if (originatorId) {
        net::ByteWriter value(4);
        value.writeU32(*originatorId);
        writeAttribute(writer, optNonTransitive,
                       AttrType::OriginatorId, value.bytes());
    }

    if (!clusterList.empty()) {
        net::ByteWriter value(4 * clusterList.size());
        for (uint32_t cluster : clusterList)
            value.writeU32(cluster);
        writeAttribute(writer, optNonTransitive,
                       AttrType::ClusterList, value.bytes());
    }
}

size_t
PathAttributes::encodedSize() const
{
    auto attr_size = [](size_t value_size) {
        return value_size + (value_size > 255 ? 4 : 3);
    };

    size_t size = attr_size(1);                            // ORIGIN
    size += attr_size(asPath.encodedValueSize());          // AS_PATH
    size += attr_size(4);                                  // NEXT_HOP
    if (med)
        size += attr_size(4);
    if (localPref)
        size += attr_size(4);
    if (atomicAggregate)
        size += attr_size(0);
    if (aggregator)
        size += attr_size(6);
    if (!communities.empty())
        size += attr_size(4 * communities.size());
    if (originatorId)
        size += attr_size(4);
    if (!clusterList.empty())
        size += attr_size(4 * clusterList.size());
    return size;
}

std::optional<PathAttributes>
PathAttributes::decode(net::ByteReader &reader, DecodeError &error)
{
    auto fail = [&error](UpdateSubcode subcode, std::string detail)
        -> std::optional<PathAttributes> {
        error.code = ErrorCode::UpdateMessageError;
        error.subcode = uint8_t(subcode);
        error.detail = std::move(detail);
        return std::nullopt;
    };

    PathAttributes attrs;
    bool seen_origin = false;
    bool seen_as_path = false;
    bool seen_next_hop = false;
    uint32_t seen_mask = 0;

    while (reader.remaining() > 0) {
        uint8_t flags = reader.readU8();
        uint8_t type = reader.readU8();
        size_t length = (flags & attr_flags::extendedLength)
                            ? reader.readU16()
                            : reader.readU8();
        if (!reader.ok() || reader.remaining() < length) {
            return fail(UpdateSubcode::AttributeLengthError,
                        "attribute overruns block");
        }

        // RFC 4271 6.3: an attribute may appear at most once.
        if (type < 32) {
            if (seen_mask & (1u << type)) {
                return fail(UpdateSubcode::MalformedAttributeList,
                            "duplicate attribute type " +
                                std::to_string(type));
            }
            seen_mask |= 1u << type;
        }

        net::ByteReader value = reader.subReader(length);

        auto check_flags = [&](uint8_t expected) {
            constexpr uint8_t mask =
                attr_flags::optional | attr_flags::transitive;
            return (flags & mask) == expected;
        };

        switch (AttrType(type)) {
          case AttrType::Origin:
            if (!check_flags(wellKnown)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "ORIGIN flags");
            }
            if (length != 1) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "ORIGIN length");
            }
            {
                uint8_t raw = value.readU8();
                if (raw > uint8_t(Origin::Incomplete)) {
                    return fail(UpdateSubcode::InvalidOriginAttribute,
                                "ORIGIN value " + std::to_string(raw));
                }
                attrs.origin = Origin(raw);
            }
            seen_origin = true;
            break;

          case AttrType::AsPath:
            if (!check_flags(wellKnown)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "AS_PATH flags");
            }
            attrs.asPath = AsPath::decodeValue(value);
            if (!value.ok()) {
                return fail(UpdateSubcode::MalformedAsPath,
                            "AS_PATH segments");
            }
            seen_as_path = true;
            break;

          case AttrType::NextHop:
            if (!check_flags(wellKnown)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "NEXT_HOP flags");
            }
            if (length != 4) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "NEXT_HOP length");
            }
            attrs.nextHop = value.readAddress();
            if (attrs.nextHop.isZero()) {
                return fail(UpdateSubcode::InvalidNextHopAttribute,
                            "NEXT_HOP 0.0.0.0");
            }
            seen_next_hop = true;
            break;

          case AttrType::MultiExitDisc:
            if (!check_flags(optNonTransitive)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "MED flags");
            }
            if (length != 4) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "MED length");
            }
            attrs.med = value.readU32();
            break;

          case AttrType::LocalPref:
            if (!check_flags(wellKnown)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "LOCAL_PREF flags");
            }
            if (length != 4) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "LOCAL_PREF length");
            }
            attrs.localPref = value.readU32();
            break;

          case AttrType::AtomicAggregate:
            if (!check_flags(wellKnown)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "ATOMIC_AGGREGATE flags");
            }
            if (length != 0) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "ATOMIC_AGGREGATE length");
            }
            attrs.atomicAggregate = true;
            break;

          case AttrType::Aggregator:
            if (!check_flags(optTransitive)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "AGGREGATOR flags");
            }
            if (length != 6) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "AGGREGATOR length");
            }
            attrs.aggregator =
                Aggregator{value.readU16(), value.readAddress()};
            break;

          case AttrType::Community:
            if (!(flags & attr_flags::optional)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "COMMUNITY flags");
            }
            if (length % 4 != 0) {
                return fail(UpdateSubcode::OptionalAttributeError,
                            "COMMUNITY length");
            }
            attrs.communities.reserve(attrs.communities.size() +
                                      length / 4);
            for (size_t i = 0; i < length / 4; ++i)
                attrs.communities.push_back(value.readU32());
            std::sort(attrs.communities.begin(),
                      attrs.communities.end());
            break;

          case AttrType::OriginatorId:
            if (!check_flags(optNonTransitive)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "ORIGINATOR_ID flags");
            }
            if (length != 4) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "ORIGINATOR_ID length");
            }
            attrs.originatorId = value.readU32();
            break;

          case AttrType::ClusterList:
            if (!check_flags(optNonTransitive)) {
                return fail(UpdateSubcode::AttributeFlagsError,
                            "CLUSTER_LIST flags");
            }
            if (length % 4 != 0 || length == 0) {
                return fail(UpdateSubcode::AttributeLengthError,
                            "CLUSTER_LIST length");
            }
            attrs.clusterList.reserve(attrs.clusterList.size() +
                                      length / 4);
            for (size_t i = 0; i < length / 4; ++i)
                attrs.clusterList.push_back(value.readU32());
            break;

          default:
            if (!(flags & attr_flags::optional)) {
                return fail(
                    UpdateSubcode::UnrecognizedWellKnownAttribute,
                    "well-known attribute type " + std::to_string(type));
            }
            // Unrecognised optional attributes are skipped; a full
            // implementation would forward transitive ones with the
            // partial bit set, which no benchmark scenario exercises.
            break;
        }

        if (!reader.ok()) {
            return fail(UpdateSubcode::AttributeLengthError,
                        "truncated attribute");
        }
    }

    if (!seen_origin || !seen_as_path || !seen_next_hop) {
        return fail(UpdateSubcode::MissingWellKnownAttribute,
                    "mandatory attribute missing");
    }

    return attrs;
}

std::string
PathAttributes::toString() const
{
    std::string out = "origin=" + bgp::toString(origin) +
                      " as-path=[" + asPath.toString() + "]" +
                      " next-hop=" + nextHop.toString();
    if (localPref)
        out += " local-pref=" + std::to_string(*localPref);
    if (med)
        out += " med=" + std::to_string(*med);
    if (atomicAggregate)
        out += " atomic-aggregate";
    return out;
}

PathAttributesPtr
makeAttributes(PathAttributes attrs)
{
    return AttributeInterner::global().intern(std::move(attrs));
}

} // namespace bgpbench::bgp
