#include "bgp/damping.hh"

#include <cmath>

namespace bgpbench::bgp
{

double
FlapDamper::decayedPenalty(const History &history, TimeNs now) const
{
    if (now <= history.anchor)
        return history.penalty;
    // exp2 keeps half-life arithmetic exact at the boundaries that
    // matter for the benchmark: exp2(-1.0) == 0.5, so the penalty
    // halves exactly once per half-life of simulated nanoseconds.
    double half_lives = double(now - history.anchor) / halfLifeNs_;
    return history.penalty * std::exp2(-half_lives);
}

bool
FlapDamper::effectivelySuppressed(const History &history,
                                  TimeNs now) const
{
    return history.suppressed &&
           decayedPenalty(history, now) >= config_.reuseThreshold;
}

bool
FlapDamper::addPenalty(PeerId peer, const net::Prefix &prefix,
                       double penalty, TimeNs now)
{
    auto &history = histories_[Key{peer, prefix}];
    history.penalty =
        std::min(decayedPenalty(history, now) + penalty,
                 config_.maxPenalty);
    history.anchor = now;
    if (history.penalty >= config_.suppressThreshold &&
        !history.suppressed) {
        history.suppressed = true;
        ++suppressTransitions_;
    }
    return effectivelySuppressed(history, now);
}

bool
FlapDamper::onWithdraw(PeerId peer, const net::Prefix &prefix,
                       TimeNs now)
{
    if (!config_.enabled)
        return false;
    return addPenalty(peer, prefix, config_.withdrawPenalty, now);
}

bool
FlapDamper::onAnnounce(PeerId peer, const net::Prefix &prefix,
                       bool attribute_change, TimeNs now)
{
    if (!config_.enabled)
        return false;

    auto it = histories_.find(Key{peer, prefix});
    bool known_flapper = it != histories_.end();

    if (!known_flapper) {
        // First sighting: announcements of fresh routes carry no
        // penalty (RFC 2439 section 4.4.2).
        return false;
    }

    double penalty = attribute_change
                         ? config_.attributeChangePenalty
                         : config_.reAnnouncePenalty;
    return addPenalty(peer, prefix, penalty, now);
}

bool
FlapDamper::isSuppressed(PeerId peer, const net::Prefix &prefix,
                         TimeNs now) const
{
    if (!config_.enabled)
        return false;
    auto it = histories_.find(Key{peer, prefix});
    if (it == histories_.end())
        return false;
    return effectivelySuppressed(it->second, now);
}

double
FlapDamper::penalty(PeerId peer, const net::Prefix &prefix,
                    TimeNs now) const
{
    auto it = histories_.find(Key{peer, prefix});
    if (it == histories_.end())
        return 0.0;
    return decayedPenalty(it->second, now);
}

std::vector<std::pair<PeerId, net::Prefix>>
FlapDamper::takeReusable(TimeNs now)
{
    std::vector<std::pair<PeerId, net::Prefix>> reusable;
    for (auto it = histories_.begin(); it != histories_.end();) {
        History &history = it->second;
        double decayed = decayedPenalty(history, now);
        if (history.suppressed &&
            decayed < config_.reuseThreshold) {
            history.suppressed = false;
            ++reuseTransitions_;
            reusable.emplace_back(it->first.peer, it->first.prefix);
        }

        // Garbage-collect histories that have decayed to noise.
        if (!history.suppressed &&
            decayed < config_.reuseThreshold / 8.0) {
            it = histories_.erase(it);
        } else {
            ++it;
        }
    }
    return reusable;
}

FlapDamper::TimeNs
FlapDamper::nextReuseTime(TimeNs now) const
{
    TimeNs earliest = 0;
    for (const auto &[key, history] : histories_) {
        if (!history.suppressed)
            continue;
        TimeNs at = now + 1;
        if (history.penalty > config_.reuseThreshold) {
            // Half-lives until the anchored penalty reaches the
            // reuse threshold; ceil to whole ns so the wakeup lands
            // at-or-after the exact crossing.
            double half_lives =
                std::log2(history.penalty / config_.reuseThreshold);
            double delay_ns = std::ceil(half_lives * halfLifeNs_);
            TimeNs cross = history.anchor + TimeNs(delay_ns);
            at = std::max(cross, now + 1);
        }
        if (earliest == 0 || at < earliest)
            earliest = at;
    }
    return earliest;
}

size_t
FlapDamper::suppressedCount(TimeNs now) const
{
    size_t count = 0;
    for (const auto &[key, history] : histories_)
        count += effectivelySuppressed(history, now);
    return count;
}

} // namespace bgpbench::bgp
