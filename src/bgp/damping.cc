#include "bgp/damping.hh"

#include <cmath>

namespace bgpbench::bgp
{

namespace
{
constexpr double nsPerSec = 1e9;
} // namespace

void
FlapDamper::decay(History &history, TimeNs now) const
{
    if (now <= history.lastUpdate) {
        return;
    }
    double dt = double(now - history.lastUpdate) / nsPerSec;
    history.penalty *=
        std::exp2(-dt / config_.halfLifeSec);
    history.lastUpdate = now;
    if (history.suppressed &&
        history.penalty < config_.reuseThreshold) {
        history.suppressed = false;
    }
}

bool
FlapDamper::addPenalty(PeerId peer, const net::Prefix &prefix,
                       double penalty, TimeNs now)
{
    auto &history = histories_[Key{peer, prefix}];
    if (history.lastUpdate == 0 && history.penalty == 0.0)
        history.lastUpdate = now;
    decay(history, now);
    history.penalty =
        std::min(history.penalty + penalty, config_.maxPenalty);
    if (history.penalty >= config_.suppressThreshold)
        history.suppressed = true;
    return history.suppressed;
}

bool
FlapDamper::onWithdraw(PeerId peer, const net::Prefix &prefix,
                       TimeNs now)
{
    if (!config_.enabled)
        return false;
    return addPenalty(peer, prefix, config_.withdrawPenalty, now);
}

bool
FlapDamper::onAnnounce(PeerId peer, const net::Prefix &prefix,
                       bool attribute_change, TimeNs now)
{
    if (!config_.enabled)
        return false;

    auto it = histories_.find(Key{peer, prefix});
    bool known_flapper = it != histories_.end();

    if (!known_flapper) {
        // First sighting: announcements of fresh routes carry no
        // penalty (RFC 2439 section 4.4.2).
        return false;
    }

    double penalty = attribute_change
                         ? config_.attributeChangePenalty
                         : config_.reAnnouncePenalty;
    return addPenalty(peer, prefix, penalty, now);
}

bool
FlapDamper::isSuppressed(PeerId peer, const net::Prefix &prefix,
                         TimeNs now)
{
    if (!config_.enabled)
        return false;
    auto it = histories_.find(Key{peer, prefix});
    if (it == histories_.end())
        return false;
    decay(it->second, now);
    return it->second.suppressed;
}

double
FlapDamper::penalty(PeerId peer, const net::Prefix &prefix,
                    TimeNs now)
{
    auto it = histories_.find(Key{peer, prefix});
    if (it == histories_.end())
        return 0.0;
    decay(it->second, now);
    return it->second.penalty;
}

std::vector<std::pair<PeerId, net::Prefix>>
FlapDamper::takeReusable(TimeNs now)
{
    std::vector<std::pair<PeerId, net::Prefix>> reusable;
    for (auto it = histories_.begin(); it != histories_.end();) {
        bool was_suppressed = it->second.suppressed;
        decay(it->second, now);
        if (was_suppressed && !it->second.suppressed)
            reusable.emplace_back(it->first.peer, it->first.prefix);

        // Garbage-collect histories that have decayed to noise.
        if (!it->second.suppressed &&
            it->second.penalty < config_.reuseThreshold / 8.0) {
            it = histories_.erase(it);
        } else {
            ++it;
        }
    }
    return reusable;
}

size_t
FlapDamper::suppressedCount(TimeNs now)
{
    size_t count = 0;
    for (auto &[key, history] : histories_) {
        decay(history, now);
        count += history.suppressed;
    }
    return count;
}

} // namespace bgpbench::bgp
