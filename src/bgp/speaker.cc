#include "bgp/speaker.hh"

#include <algorithm>

#include "bgp/attr_intern.hh"
#include "net/logging.hh"
#include "obs/views.hh"

namespace bgpbench::bgp
{

namespace
{

/** Detached-instrumentation guard: one branch when unbound. */
inline void
bump(obs::Counter *counter, uint64_t n = 1)
{
    if (counter)
        counter->add(n);
}

} // namespace

void
BgpSpeaker::bindObservability(obs::MetricRegistry *registry,
                              obs::Tracer *tracer, uint32_t track)
{
    obs_ = ObsHandles{};
    obs_.tracer = tracer;
    obs_.track = track;
    if (!registry)
        return;
    obs_.updatesReceived = &registry->counter("bgp.updates_received");
    obs_.updatesSent = &registry->counter("bgp.updates_sent");
    obs_.prefixesAdvertised =
        &registry->counter("bgp.prefixes_advertised");
    obs_.decisionRuns = &registry->counter("bgp.decision_runs");
    obs_.locRibChanges = &registry->counter("rib.loc_rib_changes");
    obs_.fibChanges = &registry->counter("rib.fib_changes");
    obs_.sessionTransitions =
        &registry->counter("bgp.session_transitions");
    obs_.policyEvals =
        &registry->counter(obs::metric::bgpPolicyEvals);
    obs_.policyRejects =
        &registry->counter(obs::metric::bgpPolicyRejects);
    obs_.ecmpGroups = &registry->counter(obs::metric::bgpEcmpGroups);
    obs_.dampingSuppressed =
        &registry->counter(obs::metric::bgpDampingSuppressed);
    obs_.dampingReused =
        &registry->counter(obs::metric::bgpDampingReused);
    obs_.mraiDeferrals =
        &registry->counter(obs::metric::bgpMraiDeferrals);
    obs_.decisionCandidates = &registry->histogram(
        "bgp.decision_candidates", {1, 2, 4, 8, 16, 32, 64});
}

BgpSpeaker::BgpSpeaker(SpeakerConfig config, SpeakerEvents *events)
    : config_(std::move(config)), events_(events),
      prefixTable_(prefixTreeDefaultEnabled()
                       ? std::make_unique<SharedPrefixTable>()
                       : nullptr),
      localRoutes_(prefixTable_.get()), damper_(config_.damping),
      locRib_(prefixTable_.get())
{
    panicIf(events_ == nullptr, "BgpSpeaker requires an event sink");
    if (config_.localAs == 0)
        fatal("speaker configured with AS 0");
    if (config_.routerId == 0)
        fatal("speaker configured with router-id 0");
}

void
BgpSpeaker::addPeer(PeerConfig config)
{
    if (config.id == localPeerId)
        fatal("peer id collides with the local pseudo peer");
    if (peers_.count(config.id))
        fatal("duplicate peer id " + std::to_string(config.id));
    if (config.asn == 0)
        fatal("peer configured with AS 0");

    SessionConfig session;
    session.localAs = config_.localAs;
    session.localId = config_.routerId;
    session.holdTimeSec = config_.holdTimeSec;
    session.expectedPeerAs = config.asn;

    auto peer = std::make_unique<Peer>(std::move(config), session,
                                       config_.packing,
                                       prefixTable_.get());
    peer->externalSession = peer->config.asn != config_.localAs;
    peers_.emplace(peer->config.id, std::move(peer));
}

BgpSpeaker::Peer &
BgpSpeaker::peerRef(PeerId peer)
{
    auto it = peers_.find(peer);
    if (it == peers_.end())
        fatal("unknown peer id " + std::to_string(peer));
    return *it->second;
}

const BgpSpeaker::Peer &
BgpSpeaker::peerRef(PeerId peer) const
{
    auto it = peers_.find(peer);
    if (it == peers_.end())
        fatal("unknown peer id " + std::to_string(peer));
    return *it->second;
}

std::vector<PeerId>
BgpSpeaker::peerIds() const
{
    std::vector<PeerId> ids;
    ids.reserve(peers_.size());
    for (const auto &[id, peer] : peers_)
        ids.push_back(id);
    return ids;
}

SessionState
BgpSpeaker::sessionState(PeerId peer) const
{
    return peerRef(peer).fsm.state();
}

const AdjRibIn &
BgpSpeaker::adjRibIn(PeerId peer) const
{
    if (peer == localPeerId)
        return localRoutes_;
    return peerRef(peer).ribIn;
}

const AdjRibOut &
BgpSpeaker::adjRibOut(PeerId peer) const
{
    return peerRef(peer).ribOut;
}

void
BgpSpeaker::transmit(Peer &peer, const std::vector<Message> &msgs)
{
    for (const auto &msg : msgs) {
        MessageType type = messageType(msg);
        size_t transactions = 0;
        if (type == MessageType::Update) {
            transactions =
                std::get<UpdateMessage>(msg).transactionCount();
            ++counters_.updatesSent;
            counters_.prefixesAdvertised += transactions;
            bump(obs_.updatesSent);
            bump(obs_.prefixesAdvertised, transactions);
        } else if (type == MessageType::Notification) {
            ++counters_.notificationsSent;
        }
        events_->onTransmit(peer.config.id, type, encodeSegment(msg),
                            transactions);
    }
}

namespace
{

/**
 * Content hash of an UPDATE for the encode-once cache. Attributes are
 * folded in by pointer: the interner canonicalises equal-content
 * attribute sets to one instance, which is precisely the situation
 * (identical export to many peers) the cache targets. Distinct
 * pointers with equal content merely miss the cache — never unsound,
 * because hits still verify sameUpdateContent().
 */
uint64_t
updateContentHash(const UpdateMessage &msg)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(uint64_t(reinterpret_cast<uintptr_t>(msg.attributes.get())));
    mix(msg.withdrawnRoutes.size());
    for (const auto &prefix : msg.withdrawnRoutes) {
        mix(uint64_t(prefix.address().toUint32()));
        mix(uint64_t(prefix.length()));
    }
    mix(msg.nlri.size());
    for (const auto &prefix : msg.nlri) {
        mix(uint64_t(prefix.address().toUint32()));
        mix(uint64_t(prefix.length()));
    }
    return h;
}

/**
 * Exact wire-content equality: same attribute instance (pointer —
 * equal-content duplicates encode identically but are not claimed)
 * and identical prefix lists in order.
 */
bool
sameUpdateContent(const UpdateMessage &a, const UpdateMessage &b)
{
    return a.attributes == b.attributes &&
           a.withdrawnRoutes == b.withdrawnRoutes && a.nlri == b.nlri;
}

} // namespace

void
BgpSpeaker::transmitUpdates(Peer &peer,
                            std::vector<UpdateMessage> &&updates)
{
    for (auto &update : updates) {
        size_t transactions = update.transactionCount();
        ++counters_.updatesSent;
        counters_.prefixesAdvertised += transactions;
        bump(obs_.updatesSent);
        bump(obs_.prefixesAdvertised, transactions);

        net::WireSegmentPtr wire;
        if (net::segmentSharingEnabled()) {
            auto &bucket = encodeCache_[updateContentHash(update)];
            for (const auto &cached : bucket) {
                if (sameUpdateContent(cached.message, update)) {
                    wire = cached.wire;
                    break;
                }
            }
            if (wire) {
                net::BufferPool::global().noteShared(wire->size());
            } else {
                wire = encodeSegment(update);
                bucket.push_back(
                    CachedWire{std::move(update), wire});
            }
        } else {
            // Ablation mode: encode per peer, as the seed did.
            wire = encodeSegment(update);
        }
        events_->onTransmit(peer.config.id, MessageType::Update,
                            std::move(wire), transactions);
    }
}

void
BgpSpeaker::noteStateChange(Peer &peer, SessionState before,
                            TimeNs now)
{
    SessionState after = peer.fsm.state();
    if (after == before)
        return;

    bump(obs_.sessionTransitions);
    if (obs_.tracer) {
        // Mark the transition at its virtual time, named by the new
        // state (static strings; the buffer stores the pointer).
        obs_.tracer->instant(sessionStateName(after), "session",
                             obs::kTrackRouters, obs_.track, now);
    }

    events_->onSessionStateChange(peer.config.id, before, after);

    if (after == SessionState::Established) {
        markEstablished(peer);
        advertiseFullTable(peer, now);
    } else if (before == SessionState::Established) {
        unmarkEstablished(peer);
        invalidatePeerRoutes(peer, now);
    }
}

void
BgpSpeaker::markEstablished(Peer &peer)
{
    auto less = [](const Peer *a, const Peer *b) {
        return a->config.id < b->config.id;
    };
    auto pos = std::lower_bound(establishedPeers_.begin(),
                                establishedPeers_.end(), &peer, less);
    if (pos == establishedPeers_.end() || *pos != &peer)
        establishedPeers_.insert(pos, &peer);
}

void
BgpSpeaker::unmarkEstablished(Peer &peer)
{
    auto pos = std::find(establishedPeers_.begin(),
                         establishedPeers_.end(), &peer);
    if (pos != establishedPeers_.end())
        establishedPeers_.erase(pos);
}

void
BgpSpeaker::startPeer(PeerId peer, TimeNs now)
{
    Peer &p = peerRef(peer);
    SessionState before = p.fsm.state();
    p.fsm.start(now);
    noteStateChange(p, before, now);
}

void
BgpSpeaker::stopPeer(PeerId peer, TimeNs now)
{
    Peer &p = peerRef(peer);
    SessionState before = p.fsm.state();
    std::vector<Message> tx;
    p.fsm.stop(now, tx);
    transmit(p, tx);
    noteStateChange(p, before, now);
}

void
BgpSpeaker::tcpEstablished(PeerId peer, TimeNs now)
{
    Peer &p = peerRef(peer);
    SessionState before = p.fsm.state();
    std::vector<Message> tx;
    p.fsm.tcpEstablished(now, tx);
    transmit(p, tx);
    noteStateChange(p, before, now);
}

void
BgpSpeaker::tcpClosed(PeerId peer, TimeNs now)
{
    Peer &p = peerRef(peer);
    SessionState before = p.fsm.state();
    p.fsm.tcpClosed(now);
    noteStateChange(p, before, now);
}

void
BgpSpeaker::receiveBytes(PeerId peer, std::span<const uint8_t> bytes,
                         TimeNs now)
{
    Peer &p = peerRef(peer);
    p.decoder.feed(bytes);
    drainDecoder(p, now);
}

void
BgpSpeaker::receiveSegment(PeerId peer, net::WireSegmentPtr segment,
                           TimeNs now)
{
    Peer &p = peerRef(peer);
    p.decoder.feed(std::move(segment));
    drainDecoder(p, now);
}

void
BgpSpeaker::drainDecoder(Peer &p, TimeNs now)
{
    DecodeError error;
    while (true) {
        auto msg = p.decoder.next(error);
        if (!msg) {
            if (error) {
                // RFC 4271 section 6: answer a malformed message with
                // the corresponding NOTIFICATION and close.
                SessionState before = p.fsm.state();
                std::vector<Message> tx;
                tx.push_back(NotificationMessage{
                    error.code, error.subcode, {}});
                std::vector<Message> more;
                p.fsm.stop(now, more);
                transmit(p, tx);
                noteStateChange(p, before, now);
            }
            return;
        }
        handleMessage(p.config.id, *msg, now);
        // The session may have died while handling the message.
        if (p.fsm.state() == SessionState::Idle && p.decoder.failed())
            return;
    }
}

void
BgpSpeaker::handleMessage(PeerId peer, const Message &msg, TimeNs now)
{
    Peer &p = peerRef(peer);
    SessionState before = p.fsm.state();

    std::vector<Message> tx;
    bool alive = p.fsm.handleMessage(msg, now, tx);
    transmit(p, tx);

    if (alive && p.fsm.established()) {
        if (messageType(msg) == MessageType::Update) {
            processUpdate(p, std::get<UpdateMessage>(msg), now);
        } else if (messageType(msg) == MessageType::RouteRefresh) {
            // RFC 2918: re-send our entire Adj-RIB-Out to the peer.
            // Forgetting what was advertised makes every route
            // "changed" so advertiseFullTable re-emits it all.
            p.ribOut.clear();
            advertiseFullTable(p, now);
        }
    }

    noteStateChange(p, before, now);
}

void
BgpSpeaker::pollTimers(TimeNs now)
{
    for (auto &[id, peer] : peers_) {
        SessionState before = peer->fsm.state();
        std::vector<Message> tx;
        peer->fsm.poll(now, tx);
        transmit(*peer, tx);
        noteStateChange(*peer, before, now);
    }

    // Routes whose damping penalty decayed below the reuse threshold
    // re-enter the decision process (RFC 2439 reuse lists).
    if (config_.damping.enabled) {
        UpdateStats stats;
        for (const auto &[peer, prefix] : damper_.takeReusable(now))
            runDecision(prefix, stats, now);
        flushPending(now);
        syncDampingObs();
    }
}

void
BgpSpeaker::serviceWakeup(TimeNs now)
{
    wakeupArmedAt_ = 0;
    if (config_.damping.enabled) {
        UpdateStats stats;
        for (const auto &[peer, prefix] : damper_.takeReusable(now))
            runDecision(prefix, stats, now);
    }
    flushPending(now);
    if (config_.damping.enabled) {
        armDampingWakeup(now);
        syncDampingObs();
    }
}

void
BgpSpeaker::requestWakeup(TimeNs at)
{
    if (wakeupArmedAt_ != 0 && wakeupArmedAt_ <= at)
        return;
    wakeupArmedAt_ = at;
    events_->onWakeupRequested(at);
}

void
BgpSpeaker::armDampingWakeup(TimeNs now)
{
    TimeNs at = damper_.nextReuseTime(now);
    if (at != 0)
        requestWakeup(at);
}

void
BgpSpeaker::syncDampingObs()
{
    uint64_t suppressed = damper_.suppressTransitions();
    if (suppressed > dampingSuppressedSeen_) {
        bump(obs_.dampingSuppressed,
             suppressed - dampingSuppressedSeen_);
        dampingSuppressedSeen_ = suppressed;
    }
    uint64_t reused = damper_.reuseTransitions();
    if (reused > dampingReusedSeen_) {
        bump(obs_.dampingReused, reused - dampingReusedSeen_);
        dampingReusedSeen_ = reused;
    }
}

void
BgpSpeaker::processUpdate(Peer &from, const UpdateMessage &msg,
                          TimeNs now)
{
    ++counters_.updatesReceived;
    bump(obs_.updatesReceived);
    // Speaker work is instantaneous in virtual time (processing cost
    // is charged by the owning router/topology layer), so this span
    // is a zero-duration marker delimiting the decision/export
    // activity of one inbound UPDATE.
    OBS_SPAN(obs_.tracer, "update", "bgp", obs::kTrackRouters,
             obs_.track, [now] { return now; });
    UpdateStats stats;

    for (const auto &prefix : msg.withdrawnRoutes) {
        ++counters_.withdrawalsProcessed;
        ++stats.withdrawnPrefixes;
        damper_.onWithdraw(from.config.id, prefix, now);
        if (from.ribIn.withdraw(prefix))
            runDecision(prefix, stats, now);
    }

    if (!msg.nlri.empty()) {
        PathAttributesPtr received = msg.attributes;

        // RFC 4271 9.1.2: routes whose AS_PATH contains our own AS
        // would loop; RFC 4456 section 8 adds the reflection loop
        // checks on ORIGINATOR_ID and CLUSTER_LIST.
        uint32_t cluster_id =
            config_.clusterId ? config_.clusterId : config_.routerId;
        bool looped =
            received &&
            (received->asPath.contains(config_.localAs) ||
             (received->originatorId &&
              *received->originatorId == config_.routerId) ||
             std::find(received->clusterList.begin(),
                       received->clusterList.end(),
                       cluster_id) != received->clusterList.end());

        for (const auto &prefix : msg.nlri) {
            ++counters_.announcementsProcessed;
            ++stats.announcedPrefixes;
            if (looped) {
                ++stats.rejectedByPolicy;
                if (from.ribIn.withdraw(prefix))
                    runDecision(prefix, stats, now);
                continue;
            }
            // Flap damping: a re-announcement or attribute change of
            // a tracked flapper accrues penalty; suppressed routes
            // are stored but kept out of the decision process.
            const auto *previous = from.ribIn.find(prefix);
            bool attribute_change =
                previous && previous->received &&
                !sameAttributeValue(previous->received, received);
            bool suppressed = damper_.onAnnounce(
                from.config.id, prefix, attribute_change, now);
            if (suppressed)
                ++counters_.announcementsSuppressed;

            if (!from.config.importPolicy.empty())
                bump(obs_.policyEvals);
            PathAttributesPtr effective =
                from.config.importPolicy.apply(prefix, received);
            if (!effective) {
                ++stats.rejectedByPolicy;
                bump(obs_.policyRejects);
            }
            if (from.ribIn.update(prefix, received, effective) ||
                suppressed) {
                runDecision(prefix, stats, now);
            }
        }
    }

    flushPending(now);
    if (config_.damping.enabled) {
        // A wakeup at the damper's next reuse boundary lets owners
        // that never call pollTimers (the topology simulator) re-admit
        // suppressed routes deterministically in virtual time.
        armDampingWakeup(now);
        syncDampingObs();
    }
    events_->onUpdateProcessed(from.config.id, stats);
}

void
BgpSpeaker::runDecision(const net::Prefix &prefix, UpdateStats &stats,
                        TimeNs now)
{
    ++counters_.decisionRuns;
    bump(obs_.decisionRuns);

    // Resolve the prefix to its shared-table slot once; every RIB of
    // this speaker is a column over the same table, so the per-peer
    // reads and the Adj-RIB-Out fan-out below are O(1) column
    // accesses instead of per-peer key walks. npos in hash mode (or
    // when no RIB holds the prefix), where the per-RIB find() runs.
    const SharedPrefixTable::Slot slot =
        prefixTable_ ? prefixTable_->find(prefix)
                     : SharedPrefixTable::npos;

    // Collect candidates: every established peer's import-accepted
    // route plus any locally originated route.
    std::vector<Candidate> candidates;
    candidates.reserve(establishedPeers_.size() + 1);

    for (Peer *peer : establishedPeers_) {
        const auto *entry = peer->ribIn.findAt(slot, prefix);
        if (!entry || !entry->effective)
            continue;
        if (damper_.isSuppressed(peer->config.id, prefix, now))
            continue;
        candidates.push_back(Candidate{entry->effective,
                                       peer->config.id,
                                       peer->fsm.peerRouterId(),
                                       peer->externalSession});
    }
    if (const auto *local = localRoutes_.findAt(slot, prefix);
        local && local->effective) {
        candidates.push_back(Candidate{local->effective, localPeerId,
                                       config_.routerId, false,
                                       true});
    }

    if (obs_.decisionCandidates)
        obs_.decisionCandidates->record(candidates.size());

    auto best_index = selectBest(candidates, config_.decision);

    if (!best_index) {
        if (locRib_.remove(prefix)) {
            ++counters_.locRibChanges;
            ++counters_.fibChanges;
            ++stats.locRibChanges;
            ++stats.fibChanges;
            bump(obs_.locRibChanges);
            bump(obs_.fibChanges);
            ++ribVersion_;
            ribDirty_ = true;
            events_->onFibUpdate(FibUpdate{prefix, std::nullopt});
            for (Peer *peer : establishedPeers_)
                updateAdjOut(*peer, prefix, slot, nullptr, stats);
        }
        ++decisionsSincePublish_;
        maybePublishRib(now, false);
        return;
    }

    if (config_.decision.maxPaths <= 1) {
        const Candidate &best = candidates[*best_index];
        const auto *previous = locRib_.find(prefix);
        bool next_hop_changed =
            !previous || !previous->best.attributes ||
            previous->best.attributes->nextHop !=
                best.attributes->nextHop;

        if (locRib_.select(prefix, best)) {
            ++counters_.locRibChanges;
            ++stats.locRibChanges;
            bump(obs_.locRibChanges);
            ++ribVersion_;
            ribDirty_ = true;
            // The forwarding table only cares about the next hop; a
            // best-path change that keeps the next hop (e.g. a MED
            // change on the same session) does not touch the FIB.
            if (next_hop_changed) {
                ++counters_.fibChanges;
                ++stats.fibChanges;
                bump(obs_.fibChanges);
                events_->onFibUpdate(
                    FibUpdate{prefix, best.attributes->nextHop});
            }
            for (Peer *peer : establishedPeers_)
                updateAdjOut(*peer, prefix, slot, &best, stats);
        }
        ++decisionsSincePublish_;
        maybePublishRib(now, false);
        return;
    }

    // maximum-paths > 1: install the full ECMP group. Only the best
    // path is advertised to peers (standard BGP semantics); the
    // multipath set feeds the Loc-RIB, the FIB, and snapshots.
    auto group = selectMultipath(candidates, config_.decision);
    const Candidate &best = candidates[group[0]];
    std::vector<Candidate> multipath;
    multipath.reserve(group.size() - 1);
    for (size_t k = 1; k < group.size(); ++k)
        multipath.push_back(candidates[group[k]]);

    // Deterministic deduplicated hop list in group order; the FIB
    // sees a change exactly when this list changes.
    auto hops_of = [](const Candidate &b,
                      const std::vector<Candidate> &rest) {
        std::vector<net::Ipv4Address> hops{b.attributes->nextHop};
        for (const Candidate &c : rest) {
            net::Ipv4Address hop = c.attributes->nextHop;
            if (std::find(hops.begin(), hops.end(), hop) == hops.end())
                hops.push_back(hop);
        }
        return hops;
    };

    const auto *previous = locRib_.find(prefix);
    std::vector<net::Ipv4Address> previous_hops;
    if (previous && previous->best.attributes)
        previous_hops = hops_of(previous->best, previous->multipath);

    auto outcome = locRib_.select(prefix, best, std::move(multipath));
    if (outcome.groupChanged) {
        ++counters_.locRibChanges;
        ++stats.locRibChanges;
        bump(obs_.locRibChanges);
        ++ribVersion_;
        ribDirty_ = true;

        const auto *entry = locRib_.find(prefix);
        if (!entry->multipath.empty())
            bump(obs_.ecmpGroups);
        std::vector<net::Ipv4Address> hops =
            hops_of(entry->best, entry->multipath);
        if (hops != previous_hops) {
            ++counters_.fibChanges;
            ++stats.fibChanges;
            bump(obs_.fibChanges);
            FibUpdate update{prefix, hops.front()};
            update.extraHops.assign(hops.begin() + 1, hops.end());
            events_->onFibUpdate(update);
        }
        if (outcome.bestChanged) {
            for (Peer *peer : establishedPeers_)
                updateAdjOut(*peer, prefix, slot, &best, stats);
        }
    }
    ++decisionsSincePublish_;
    maybePublishRib(now, false);
}

void
BgpSpeaker::updateAdjOut(Peer &peer, const net::Prefix &prefix,
                         SharedPrefixTable::Slot slot,
                         const Candidate *best, UpdateStats &stats)
{
    if (!peer.fsm.established())
        return;

    auto send_withdraw_if_advertised = [&]() {
        if (peer.ribOut.withdrawAt(slot, prefix)) {
            peer.pending.withdraw(prefix);
            ++stats.advertisedPrefixes;
        }
    };

    if (!best) {
        send_withdraw_if_advertised();
        return;
    }

    // Do not advertise a route back to the peer it was learned from.
    if (best->peer == peer.config.id) {
        send_withdraw_if_advertised();
        return;
    }
    // iBGP-learned routes are only re-advertised to iBGP peers under
    // the route-reflection rules of RFC 4456: routes from clients go
    // to everyone, routes from non-clients go to clients only.
    bool reflecting = false;
    if (!best->externalSession && !peer.externalSession &&
        best->peer != localPeerId) {
        auto source = peers_.find(best->peer);
        bool source_client =
            source != peers_.end() &&
            source->second->config.routeReflectorClient;
        bool target_client = peer.config.routeReflectorClient;
        if (!source_client && !target_client) {
            send_withdraw_if_advertised();
            return;
        }
        reflecting = true;
    }

    // eBGP with an empty export policy is the hot path of every
    // benchmark scenario, and the export transform is a pure function
    // of the (interned) input attributes: memoise it per peer so a
    // full-table advertisement performs one transform per distinct
    // attribute set instead of one per prefix. The memo is keyed on
    // pointer identity, which only stays hot across messages and
    // decision runs when the interner canonicalises attributes, so it
    // is part of the interning feature and disabled with it.
    if (peer.externalSession && peer.config.exportPolicy.empty() &&
        AttributeInterner::global().enabled()) {
        if (peer.exportMemo.size() >= exportMemoCap)
            trimExportMemo(peer);
        auto [memo, missed] =
            peer.exportMemo.try_emplace(best->attributes);
        if (missed)
            memo->second = ebgpExport(peer, best->attributes);
        if (!memo->second) {
            // Sender-side loop avoidance suppressed the route.
            send_withdraw_if_advertised();
            return;
        }
        if (peer.ribOut.advertiseAt(slot, prefix, memo->second)) {
            peer.pending.announce(prefix, memo->second);
            ++stats.advertisedPrefixes;
        }
        return;
    }

    if (!peer.config.exportPolicy.empty())
        bump(obs_.policyEvals);
    PathAttributesPtr exported = peer.config.exportPolicy.apply(
        prefix, best->attributes, config_.localAs);
    if (!exported) {
        bump(obs_.policyRejects);
        send_withdraw_if_advertised();
        return;
    }

    if (peer.externalSession) {
        exported = ebgpExport(peer, exported);
        if (!exported) {
            // Sender-side loop avoidance: the peer would discard a
            // path containing its own AS, so don't send one.
            send_withdraw_if_advertised();
            return;
        }
    } else if (reflecting) {
        // RFC 4456 section 8: stamp the originator and prepend our
        // cluster id; everything else is reflected unchanged.
        PathAttributes out = *exported;
        if (!out.originatorId)
            out.originatorId = best->peerRouterId;
        out.clusterList.insert(
            out.clusterList.begin(),
            config_.clusterId ? config_.clusterId : config_.routerId);
        exported = makeAttributes(std::move(out));
    }

    if (peer.ribOut.advertiseAt(slot, prefix, exported)) {
        peer.pending.announce(prefix, exported);
        ++stats.advertisedPrefixes;
    }
}

size_t
BgpSpeaker::ribMemoryBytes() const
{
    size_t bytes = prefixTable_ ? prefixTable_->memoryBytes() : 0;
    bytes += locRib_.memoryBytes() + localRoutes_.memoryBytes();
    for (const auto &[id, peer] : peers_)
        bytes += peer->ribIn.memoryBytes() +
                 peer->ribOut.memoryBytes();
    return bytes;
}

void
BgpSpeaker::reserveRoutes(size_t prefixes)
{
    if (prefixTable_)
        prefixTable_->reserve(prefixes);
    // localRoutes_ is deliberately left alone: locally originated
    // routes number in the dozens, not at table scale.
    locRib_.reserve(prefixes);
    for (auto &[id, peer] : peers_) {
        peer->ribIn.reserve(prefixes);
        peer->ribOut.reserve(prefixes);
    }
}

void
BgpSpeaker::trimExportMemo(Peer &peer)
{
    // First reclaim entries whose input attribute set died everywhere
    // else — the memo's own key holds the sole remaining strong
    // reference. After table churn (withdraw waves, session resets)
    // this frees the garbage while every hot entry survives.
    for (auto it = peer.exportMemo.begin();
         it != peer.exportMemo.end();) {
        if (it->first.use_count() == 1)
            it = peer.exportMemo.erase(it);
        else
            ++it;
    }
    // Then shed arbitrary entries down to half the cap. Unlike the
    // wholesale flush this replaces, a workload with more distinct
    // attribute sets than the cap keeps half the memo hot instead of
    // rebuilding from empty, and the next trim is at least cap/2
    // insertions away, keeping the per-announce cost amortised O(1).
    while (peer.exportMemo.size() > exportMemoCap / 2)
        peer.exportMemo.erase(peer.exportMemo.begin());
}

PathAttributesPtr
BgpSpeaker::ebgpExport(const Peer &peer,
                       const PathAttributesPtr &attrs) const
{
    // Sender-side loop avoidance: the peer would discard a path
    // containing its own AS (RFC 4271 9.1.2).
    if (attrs->asPath.contains(peer.config.asn))
        return nullptr;
    PathAttributes out = *attrs;
    out.asPath.prepend(config_.localAs);
    out.nextHop = config_.localAddress;
    // LOCAL_PREF is never sent on eBGP sessions (RFC 4271 5.1.5),
    // and the reflection attributes are non-transitive.
    out.localPref.reset();
    out.originatorId.reset();
    out.clusterList.clear();
    return makeAttributes(std::move(out));
}

void
BgpSpeaker::flushPending(TimeNs now)
{
    OBS_SPAN(obs_.tracer, "export", "bgp", obs::kTrackRouters,
             obs_.track, [now] { return now; });
    TimeNs next_deadline = 0;
    for (auto &[id, peer] : peers_) {
        if (peer->pending.empty())
            continue;
        if (!peer->fsm.established())
            continue;
        if (config_.mraiNs != 0 && now < peer->mraiReadyAt) {
            // MRAI still running: the queue keeps accumulating (the
            // builder's supersession collapses transient churn) until
            // the wakeup at the interval boundary.
            if (next_deadline == 0 ||
                peer->mraiReadyAt < next_deadline)
                next_deadline = peer->mraiReadyAt;
            ++counters_.mraiDeferrals;
            bump(obs_.mraiDeferrals);
            continue;
        }
        transmitUpdates(*peer, peer->pending.build());
        if (config_.mraiNs != 0)
            peer->mraiReadyAt = now + config_.mraiNs;
    }
    // The cache only needs to live across the peer loop above — that
    // is where the same UPDATE content fans out — and dropping it now
    // stops it pinning segments after they leave the transmit queues.
    encodeCache_.clear();
    maybePublishRib(now, true);
    if (next_deadline != 0)
        requestWakeup(next_deadline);
}

void
BgpSpeaker::bindRibListener(RibListener *listener,
                            uint64_t everyDecisions)
{
    ribListener_ = listener;
    publishEveryDecisions_ = everyDecisions;
    decisionsSincePublish_ = 0;
    // A non-empty Loc-RIB is published immediately so a listener
    // attached to a converged speaker need not wait for the next
    // change to see the table.
    ribDirty_ = ribListener_ && !locRib_.empty();
}

void
BgpSpeaker::publishRib(TimeNs now)
{
    decisionsSincePublish_ = 0;
    ribDirty_ = false;
    ribListener_->onRibPublish(locRib_, ribVersion_, now);
}

void
BgpSpeaker::advertiseFullTable(Peer &peer, TimeNs now)
{
    OBS_SPAN(obs_.tracer, "full_table_export", "bgp",
             obs::kTrackRouters, obs_.track, [now] { return now; });
    UpdateStats stats;
    locRib_.forEachWithSlot([&](const net::Prefix &prefix,
                                SharedPrefixTable::Slot slot,
                                const LocRib::Entry &entry) {
        updateAdjOut(peer, prefix, slot, &entry.best, stats);
    });
    flushPending(now);
}

void
BgpSpeaker::invalidatePeerRoutes(Peer &peer, TimeNs now)
{
    // Collect first: runDecision touches the peer's Adj-RIB-In.
    std::vector<net::Prefix> prefixes;
    prefixes.reserve(peer.ribIn.size());
    peer.ribIn.forEach([&](const net::Prefix &prefix,
                           const AdjRibIn::Entry &) {
        prefixes.push_back(prefix);
    });
    peer.ribIn.clear();
    peer.ribOut.clear();
    peer.exportMemo.clear();
    // MRAI may have left changes queued for this peer; they must not
    // leak into the next session (a fresh Established re-advertises
    // the full table from scratch, with the interval idle again).
    peer.pending = UpdateBuilder(config_.packing);
    peer.mraiReadyAt = 0;

    UpdateStats stats;
    for (const auto &prefix : prefixes)
        runDecision(prefix, stats, now);
    flushPending(now);
}

void
BgpSpeaker::originate(const net::Prefix &prefix,
                      PathAttributesPtr attrs, TimeNs now)
{
    if (!attrs)
        fatal("originate() requires attributes");
    UpdateStats stats;
    localRoutes_.update(prefix, attrs, attrs);
    runDecision(prefix, stats, now);
    flushPending(now);
}

void
BgpSpeaker::withdrawLocal(const net::Prefix &prefix, TimeNs now)
{
    UpdateStats stats;
    if (localRoutes_.withdraw(prefix))
        runDecision(prefix, stats, now);
    flushPending(now);
}

} // namespace bgpbench::bgp
