/**
 * @file
 * Basic BGP-4 protocol types and constants (RFC 4271).
 */

#ifndef BGPBENCH_BGP_TYPES_HH
#define BGPBENCH_BGP_TYPES_HH

#include <cstdint>
#include <string>

#include "net/ipv4_address.hh"

namespace bgpbench::bgp
{

/** A 2-octet autonomous system number (as deployed in 2007). */
using AsNumber = uint16_t;

/** BGP identifier: a 4-octet unsigned integer, usually an IPv4. */
using RouterId = uint32_t;

/** RFC 4271 section 4.1: message type codes. */
enum class MessageType : uint8_t
{
    Open = 1,
    Update = 2,
    Notification = 3,
    Keepalive = 4,
    /** Route refresh (RFC 2918). */
    RouteRefresh = 5,
};

/** RFC 4271 section 4.3 / 5.1.1: ORIGIN attribute values. */
enum class Origin : uint8_t
{
    Igp = 0,
    Egp = 1,
    Incomplete = 2,
};

/** RFC 4271 section 5: path attribute type codes. */
enum class AttrType : uint8_t
{
    Origin = 1,
    AsPath = 2,
    NextHop = 3,
    MultiExitDisc = 4,
    LocalPref = 5,
    AtomicAggregate = 6,
    Aggregator = 7,
    Community = 8,      // RFC 1997
    OriginatorId = 9,   // RFC 4456
    ClusterList = 10,   // RFC 4456
};

/** Path attribute flag bits (RFC 4271 section 4.3). */
namespace attr_flags
{
constexpr uint8_t optional = 0x80;
constexpr uint8_t transitive = 0x40;
constexpr uint8_t partial = 0x20;
constexpr uint8_t extendedLength = 0x10;
} // namespace attr_flags

/** RFC 4271 section 4.5 / 6: NOTIFICATION error codes. */
enum class ErrorCode : uint8_t
{
    None = 0,
    MessageHeaderError = 1,
    OpenMessageError = 2,
    UpdateMessageError = 3,
    HoldTimerExpired = 4,
    FsmError = 5,
    Cease = 6,
};

/** Subcodes for MessageHeaderError (RFC 4271 section 6.1). */
enum class HeaderSubcode : uint8_t
{
    ConnectionNotSynchronized = 1,
    BadMessageLength = 2,
    BadMessageType = 3,
};

/** Subcodes for OpenMessageError (RFC 4271 section 6.2). */
enum class OpenSubcode : uint8_t
{
    UnsupportedVersionNumber = 1,
    BadPeerAs = 2,
    BadBgpIdentifier = 3,
    UnsupportedOptionalParameter = 4,
    UnacceptableHoldTime = 6,
};

/** Subcodes for UpdateMessageError (RFC 4271 section 6.3). */
enum class UpdateSubcode : uint8_t
{
    MalformedAttributeList = 1,
    UnrecognizedWellKnownAttribute = 2,
    MissingWellKnownAttribute = 3,
    AttributeFlagsError = 4,
    AttributeLengthError = 5,
    InvalidOriginAttribute = 6,
    InvalidNextHopAttribute = 8,
    OptionalAttributeError = 9,
    InvalidNetworkField = 10,
    MalformedAsPath = 11,
};

/** Protocol constants from RFC 4271 section 4.1. */
namespace proto
{
constexpr int version = 4;
constexpr size_t markerBytes = 16;
constexpr size_t headerBytes = 19;
constexpr size_t maxMessageBytes = 4096;
constexpr size_t minMessageBytes = headerBytes;
/** Default hold time proposed in OPEN (seconds). */
constexpr uint16_t defaultHoldTimeSec = 180;
} // namespace proto

/** Human-readable message type name, for traces and tests. */
std::string toString(MessageType type);
/** Human-readable origin name. */
std::string toString(Origin origin);
/** Human-readable error code name. */
std::string toString(ErrorCode code);

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_TYPES_HH
