#include "bgp/session.hh"

#include <algorithm>

namespace bgpbench::bgp
{

const char *
sessionStateName(SessionState state)
{
    switch (state) {
      case SessionState::Idle:
        return "Idle";
      case SessionState::Connect:
        return "Connect";
      case SessionState::Active:
        return "Active";
      case SessionState::OpenSent:
        return "OpenSent";
      case SessionState::OpenConfirm:
        return "OpenConfirm";
      case SessionState::Established:
        return "Established";
    }
    return "?";
}

std::string
toString(SessionState state)
{
    return sessionStateName(state);
}

void
SessionFsm::moveTo(SessionState next)
{
    if (state_ != next) {
        state_ = next;
        ++transitions_;
    }
}

void
SessionFsm::resetTimers(TimeNs now)
{
    if (negotiatedHoldSec_ == 0) {
        holdDeadline_ = ~TimeNs(0);
        nextKeepalive_ = ~TimeNs(0);
        return;
    }
    holdDeadline_ = now + TimeNs(negotiatedHoldSec_) * nsPerSec;
    // RFC 4271 10: keepalive interval is one third of the hold time.
    nextKeepalive_ =
        now + TimeNs(negotiatedHoldSec_) * nsPerSec / 3;
}

void
SessionFsm::teardown(ErrorCode code, uint8_t subcode,
                     std::vector<Message> &tx)
{
    if (state_ == SessionState::OpenSent ||
        state_ == SessionState::OpenConfirm ||
        state_ == SessionState::Established) {
        tx.push_back(NotificationMessage{code, subcode, {}});
    }
    negotiatedHoldSec_ = 0;
    holdDeadline_ = ~TimeNs(0);
    nextKeepalive_ = ~TimeNs(0);
    moveTo(SessionState::Idle);
}

void
SessionFsm::start(TimeNs)
{
    if (state_ == SessionState::Idle)
        moveTo(SessionState::Connect);
}

void
SessionFsm::stop(TimeNs, std::vector<Message> &tx)
{
    teardown(ErrorCode::Cease, 0, tx);
}

void
SessionFsm::tcpEstablished(TimeNs, std::vector<Message> &tx)
{
    if (state_ != SessionState::Connect &&
        state_ != SessionState::Active) {
        return;
    }
    OpenMessage open;
    open.myAs = config_.localAs;
    open.holdTimeSec = config_.holdTimeSec;
    open.bgpIdentifier = config_.localId;
    tx.push_back(std::move(open));
    moveTo(SessionState::OpenSent);
}

void
SessionFsm::tcpClosed(TimeNs)
{
    negotiatedHoldSec_ = 0;
    holdDeadline_ = ~TimeNs(0);
    nextKeepalive_ = ~TimeNs(0);
    // RFC 8.2.2: from OpenSent a TCP failure goes to Active to await
    // a reconnect; anywhere else the session restarts from Idle.
    moveTo(state_ == SessionState::OpenSent ? SessionState::Active
                                            : SessionState::Idle);
}

bool
SessionFsm::handleMessage(const Message &msg, TimeNs now,
                          std::vector<Message> &tx)
{
    switch (messageType(msg)) {
      case MessageType::Open: {
        if (state_ != SessionState::OpenSent) {
            teardown(ErrorCode::FsmError, 0, tx);
            return false;
        }
        const auto &open = std::get<OpenMessage>(msg);
        if (config_.expectedPeerAs != 0 &&
            open.myAs != config_.expectedPeerAs) {
            teardown(ErrorCode::OpenMessageError,
                     uint8_t(OpenSubcode::BadPeerAs), tx);
            return false;
        }
        peerAs_ = open.myAs;
        peerRouterId_ = open.bgpIdentifier;
        negotiatedHoldSec_ =
            std::min(config_.holdTimeSec, open.holdTimeSec);
        resetTimers(now);
        tx.push_back(KeepaliveMessage{});
        moveTo(SessionState::OpenConfirm);
        return true;
      }

      case MessageType::Keepalive:
        if (state_ == SessionState::OpenConfirm) {
            moveTo(SessionState::Established);
            resetTimers(now);
            return true;
        }
        if (state_ == SessionState::Established) {
            if (negotiatedHoldSec_ != 0) {
                holdDeadline_ =
                    now + TimeNs(negotiatedHoldSec_) * nsPerSec;
            }
            return true;
        }
        teardown(ErrorCode::FsmError, 0, tx);
        return false;

      case MessageType::Update:
      case MessageType::RouteRefresh:
        if (state_ != SessionState::Established) {
            teardown(ErrorCode::FsmError, 0, tx);
            return false;
        }
        if (negotiatedHoldSec_ != 0) {
            holdDeadline_ =
                now + TimeNs(negotiatedHoldSec_) * nsPerSec;
        }
        return true;

      case MessageType::Notification:
        negotiatedHoldSec_ = 0;
        holdDeadline_ = ~TimeNs(0);
        nextKeepalive_ = ~TimeNs(0);
        moveTo(SessionState::Idle);
        return false;
    }
    teardown(ErrorCode::FsmError, 0, tx);
    return false;
}

bool
SessionFsm::poll(TimeNs now, std::vector<Message> &tx)
{
    if (state_ != SessionState::OpenConfirm &&
        state_ != SessionState::Established) {
        return state_ != SessionState::Idle;
    }

    if (now >= holdDeadline_) {
        teardown(ErrorCode::HoldTimerExpired, 0, tx);
        return false;
    }

    if (now >= nextKeepalive_) {
        tx.push_back(KeepaliveMessage{});
        nextKeepalive_ =
            now + TimeNs(negotiatedHoldSec_) * nsPerSec / 3;
    }
    return true;
}

SessionFsm::TimeNs
SessionFsm::nextTimerDeadline() const
{
    return std::min(holdDeadline_, nextKeepalive_);
}

} // namespace bgpbench::bgp
