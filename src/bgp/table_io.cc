#include "bgp/table_io.hh"

#include <algorithm>

#include "net/byte_io.hh"

namespace bgpbench::bgp
{

namespace
{

constexpr uint32_t dumpMagic = 0x42475042; // "BGPB"
constexpr uint16_t dumpVersion = 1;

void
encodeEntry(net::ByteWriter &w, const TableDumpEntry &entry)
{
    w.writeAddress(entry.prefix.address());
    w.writeU8(uint8_t(entry.prefix.length()));
    w.writeU32(entry.best.peer);
    w.writeU32(entry.best.peerRouterId);
    uint8_t flags = 0;
    flags |= entry.best.externalSession ? 0x1 : 0;
    flags |= entry.best.locallyOriginated ? 0x2 : 0;
    w.writeU8(flags);

    net::ByteWriter attrs;
    entry.best.attributes->encode(attrs);
    w.writeU16(uint16_t(attrs.size()));
    w.writeBytes(attrs.bytes());
}

} // namespace

std::vector<uint8_t>
dumpTable(const std::vector<TableDumpEntry> &entries)
{
    net::ByteWriter w(16 + entries.size() * 48);
    w.writeU32(dumpMagic);
    w.writeU16(dumpVersion);
    w.writeU32(uint32_t(entries.size()));
    for (const auto &entry : entries)
        encodeEntry(w, entry);
    return w.take();
}

std::vector<uint8_t>
dumpTable(const LocRib &rib)
{
    // LocRib::forEach iterates in ascending (address, length) order
    // in both storage backends, so the dump is canonical as emitted.
    std::vector<TableDumpEntry> entries;
    entries.reserve(rib.size());
    rib.forEach([&](const net::Prefix &prefix,
                    const LocRib::Entry &entry) {
        entries.push_back(TableDumpEntry{prefix, entry.best});
    });
    return dumpTable(entries);
}

TableDumpReader::TableDumpReader(std::span<const uint8_t> blob)
    : reader_(blob)
{
    if (reader_.readU32() != dumpMagic || !reader_.ok()) {
        setError("bad table-dump magic");
        return;
    }
    if (reader_.readU16() != dumpVersion) {
        setError("unsupported table-dump version");
        return;
    }
    count_ = reader_.readU32();
    if (!reader_.ok())
        setError("truncated header");
}

void
TableDumpReader::setError(std::string detail)
{
    error_ = DecodeError{ErrorCode::MessageHeaderError, 0,
                         std::move(detail)};
    failed_ = true;
}

bool
TableDumpReader::next(TableDumpEntry &entry)
{
    if (failed_ || parsed_ == count_) {
        if (!failed_ && !reader_.atEnd())
            setError("trailing bytes after last entry");
        return false;
    }
    const std::string where = std::to_string(parsed_);
    net::Ipv4Address addr = reader_.readAddress();
    uint8_t length = reader_.readU8();
    if (!reader_.ok() || length > 32) {
        setError("bad prefix in entry " + where);
        return false;
    }
    entry.prefix = net::Prefix(addr, length);
    entry.best.peer = reader_.readU32();
    entry.best.peerRouterId = reader_.readU32();
    uint8_t flags = reader_.readU8();
    entry.best.externalSession = flags & 0x1;
    entry.best.locallyOriginated = flags & 0x2;

    uint16_t attrs_len = reader_.readU16();
    if (!reader_.ok() || reader_.remaining() < attrs_len) {
        setError("truncated entry " + where);
        return false;
    }
    net::ByteReader attrs_reader = reader_.subReader(attrs_len);
    auto attrs = PathAttributes::decode(attrs_reader, error_);
    if (!attrs) {
        failed_ = true; // error already classified by the decoder
        return false;
    }
    entry.best.attributes = makeAttributes(std::move(*attrs));
    ++parsed_;
    return true;
}

std::optional<std::vector<TableDumpEntry>>
parseTableDump(std::span<const uint8_t> blob, DecodeError &error)
{
    TableDumpReader reader(blob);
    std::vector<TableDumpEntry> entries;
    entries.reserve(reader.routeCount());
    TableDumpEntry entry;
    while (reader.next(entry))
        entries.push_back(std::move(entry));
    if (reader.failed()) {
        error = reader.error();
        return std::nullopt;
    }
    error = DecodeError{};
    return entries;
}

size_t
loadTable(std::span<const uint8_t> blob, LocRib &rib,
          DecodeError &error)
{
    // Streaming load: pre-size the RIB from the route-count header,
    // then install each entry as it is decoded, so the peak footprint
    // is the table itself — never table + a staged entry vector.
    TableDumpReader reader(blob);
    rib.reserve(rib.size() + reader.routeCount());
    size_t loaded = 0;
    TableDumpEntry entry;
    while (reader.next(entry)) {
        rib.select(entry.prefix, std::move(entry.best));
        entry.best = Candidate{};
        ++loaded;
    }
    error = reader.failed() ? reader.error() : DecodeError{};
    return loaded;
}

} // namespace bgpbench::bgp
