#include "bgp/table_io.hh"

#include <algorithm>

#include "net/byte_io.hh"

namespace bgpbench::bgp
{

namespace
{

constexpr uint32_t dumpMagic = 0x42475042; // "BGPB"
constexpr uint16_t dumpVersion = 1;

void
encodeEntry(net::ByteWriter &w, const TableDumpEntry &entry)
{
    w.writeAddress(entry.prefix.address());
    w.writeU8(uint8_t(entry.prefix.length()));
    w.writeU32(entry.best.peer);
    w.writeU32(entry.best.peerRouterId);
    uint8_t flags = 0;
    flags |= entry.best.externalSession ? 0x1 : 0;
    flags |= entry.best.locallyOriginated ? 0x2 : 0;
    w.writeU8(flags);

    net::ByteWriter attrs;
    entry.best.attributes->encode(attrs);
    w.writeU16(uint16_t(attrs.size()));
    w.writeBytes(attrs.bytes());
}

} // namespace

std::vector<uint8_t>
dumpTable(const std::vector<TableDumpEntry> &entries)
{
    net::ByteWriter w(16 + entries.size() * 48);
    w.writeU32(dumpMagic);
    w.writeU16(dumpVersion);
    w.writeU32(uint32_t(entries.size()));
    for (const auto &entry : entries)
        encodeEntry(w, entry);
    return w.take();
}

std::vector<uint8_t>
dumpTable(const LocRib &rib)
{
    std::vector<TableDumpEntry> entries;
    entries.reserve(rib.size());
    rib.forEach([&](const net::Prefix &prefix,
                    const LocRib::Entry &entry) {
        entries.push_back(TableDumpEntry{prefix, entry.best});
    });
    std::sort(entries.begin(), entries.end(),
              [](const TableDumpEntry &a, const TableDumpEntry &b) {
                  return a.prefix < b.prefix;
              });
    return dumpTable(entries);
}

std::optional<std::vector<TableDumpEntry>>
parseTableDump(std::span<const uint8_t> blob, DecodeError &error)
{
    error = DecodeError{};
    auto fail = [&error](std::string detail)
        -> std::optional<std::vector<TableDumpEntry>> {
        error = DecodeError{ErrorCode::MessageHeaderError, 0,
                            std::move(detail)};
        return std::nullopt;
    };

    net::ByteReader r(blob);
    if (r.readU32() != dumpMagic || !r.ok())
        return fail("bad table-dump magic");
    if (r.readU16() != dumpVersion)
        return fail("unsupported table-dump version");

    uint32_t count = r.readU32();
    if (!r.ok())
        return fail("truncated header");

    std::vector<TableDumpEntry> entries;
    entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        TableDumpEntry entry;
        net::Ipv4Address addr = r.readAddress();
        uint8_t length = r.readU8();
        if (!r.ok() || length > 32)
            return fail("bad prefix in entry " + std::to_string(i));
        entry.prefix = net::Prefix(addr, length);
        entry.best.peer = r.readU32();
        entry.best.peerRouterId = r.readU32();
        uint8_t flags = r.readU8();
        entry.best.externalSession = flags & 0x1;
        entry.best.locallyOriginated = flags & 0x2;

        uint16_t attrs_len = r.readU16();
        if (!r.ok() || r.remaining() < attrs_len)
            return fail("truncated entry " + std::to_string(i));
        net::ByteReader attrs_reader = r.subReader(attrs_len);
        auto attrs = PathAttributes::decode(attrs_reader, error);
        if (!attrs)
            return std::nullopt; // error already classified
        entry.best.attributes = makeAttributes(std::move(*attrs));
        entries.push_back(std::move(entry));
    }

    if (!r.atEnd())
        return fail("trailing bytes after last entry");
    return entries;
}

} // namespace bgpbench::bgp
