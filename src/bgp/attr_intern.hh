/**
 * @file
 * Hash-consing of path attribute sets.
 *
 * Millions of prefixes share a few thousand distinct attribute sets
 * (the insight production stacks exploit: Quagga's attr_intern, BIRD's
 * rta cache). The AttributeInterner canonicalises every PathAttributes
 * built through makeAttributes() to a single shared instance keyed by
 * its content hash, so attribute equality anywhere downstream — the
 * three RIBs, outbound update grouping, export memoisation — becomes a
 * pointer comparison instead of a deep structural compare.
 *
 * The interner holds only weak references: an attribute set whose last
 * route dies is freed normally and its table slot is reclaimed lazily
 * (on bucket collisions) and in bulk by amortised sweeps, so session
 * resets cannot grow the table without bound.
 *
 * The default interner is per-thread (one per parallel-simulation
 * worker), so no locking is performed anywhere on the intern path.
 * Canonicals carry their owner's id; comparisons across interners
 * (threads, or separate test instances) fall back to hash-guarded
 * deep comparison and remain correct.
 * The BGPBENCH_NO_INTERN=1 environment variable (or setEnabled(false))
 * disables canonicalisation for ablation runs; all consumers fall back
 * to hash-guarded deep comparison and remain correct.
 */

#ifndef BGPBENCH_BGP_ATTR_INTERN_HH
#define BGPBENCH_BGP_ATTR_INTERN_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bgp/path_attributes.hh"

namespace bgpbench::obs
{
class MetricRegistry;
} // namespace bgpbench::obs

namespace bgpbench::bgp
{

/**
 * Weak-reference hash-consing table for PathAttributes.
 *
 * All attribute construction funnels through makeAttributes(), which
 * consults the global() instance; separate instances exist only for
 * tests.
 */
class AttributeInterner
{
  public:
    /** Lifetime counters plus a table snapshot. */
    struct Stats
    {
        /** intern() calls while enabled. */
        uint64_t lookups = 0;
        /** Lookups that returned an existing canonical instance. */
        uint64_t hits = 0;
        /** Lookups that created a new canonical instance. */
        uint64_t misses = 0;
        /** Bulk sweeps of expired table slots. */
        uint64_t sweeps = 0;
        /**
         * Approximate heap bytes the hits avoided allocating (the
         * duplicate PathAttributes block plus its vector payloads).
         */
        uint64_t bytesDeduplicated = 0;
        /** Canonical sets currently alive (referenced by a route). */
        size_t liveSets = 0;
        /** Table slots, including not-yet-swept expired ones. */
        size_t trackedSets = 0;

        double
        hitRatio() const
        {
            return lookups ? double(hits) / double(lookups) : 0.0;
        }
    };

    AttributeInterner();

    /**
     * Canonicalise @p attrs: return the shared instance equal to it,
     * creating one if none is alive. When disabled, simply wraps
     * @p attrs in a fresh (non-canonical) shared instance.
     */
    PathAttributesPtr intern(PathAttributes attrs);

    bool enabled() const { return enabled_; }

    /**
     * Enable/disable canonicalisation. Existing canonical instances
     * stay valid (and marked interned) either way; consumers only
     * lose the guarantee that *new* equal sets share a pointer.
     */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Drop expired table slots.
     * @return Number of slots reclaimed.
     */
    size_t sweepExpired();

    /**
     * Forget every tracked set. Surviving instances are unmarked as
     * interned first so stale pointer-identity shortcuts cannot
     * misfire against sets interned later. Test/ablation use only.
     */
    void clear();

    /** Counters plus a fresh live/tracked census of the table. */
    Stats stats() const;

    /**
     * Publish stats() under the canonical "intern.*" metric names
     * (obs::metric). Counters accumulate, so publish once per report
     * into a given registry.
     */
    void publishStats(obs::MetricRegistry &registry) const;

    /** Zero the lifetime counters (table contents are kept). */
    void resetStats();

    /**
     * The calling thread's interner, used by makeAttributes().
     * Thread-local so parallel simulation shards never contend;
     * single-threaded programs see exactly one instance.
     */
    static AttributeInterner &global();

  private:
    void maybeSweep();

    /** Content hash -> weak refs to canonical instances. */
    std::unordered_map<uint64_t,
                       std::vector<std::weak_ptr<const PathAttributes>>>
        table_;
    /** Total table slots, kept incrementally. */
    size_t tracked_ = 0;
    /**
     * Unique, never-zero id stamped on this interner's canonicals.
     * sameAttributeValue() only trusts the distinct-canonicals-are-
     * unequal invariant when both owners match, so canonicals from
     * separate interner instances (tests) compare by value.
     */
    uint64_t id_ = 0;
    /** Sweep when tracked_ reaches this; doubles with live size. */
    size_t sweepThreshold_ = 1024;
    bool enabled_ = true;

    uint64_t lookups_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t sweeps_ = 0;
    uint64_t bytesDeduplicated_ = 0;
};

/** Approximate heap footprint of one attribute set (for dedup stats). */
size_t attributesHeapBytes(const PathAttributes &attrs);

/**
 * Process-wide default for newly constructed interners (including the
 * lazily created per-thread global() instances). Initialised from
 * BGPBENCH_NO_INTERN; core::RuntimeConfig::apply() overrides it before
 * worker threads spawn. Interners that already exist are unaffected —
 * flip those with setEnabled().
 */
bool internDefaultEnabled();
void setInternDefault(bool enabled);

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_ATTR_INTERN_HH
