#include "bgp/prefix_table.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bgpbench::bgp
{

namespace
{

bool
prefixTreeDisabledByEnv()
{
    const char *value = std::getenv("BGPBENCH_NO_PREFIX_TREE");
    return value && std::strcmp(value, "1") == 0;
}

std::atomic<bool> prefixTreeDefault{!prefixTreeDisabledByEnv()};

} // namespace

bool
prefixTreeDefaultEnabled()
{
    return prefixTreeDefault.load(std::memory_order_relaxed);
}

void
setPrefixTreeDefault(bool enabled)
{
    prefixTreeDefault.store(enabled, std::memory_order_relaxed);
}

SharedPrefixTable::Slot
SharedPrefixTable::acquire(const net::Prefix &prefix)
{
    bool inserted = false;
    Slot *entry = tree_.findOrInsert(prefix, &inserted);
    if (!inserted) {
        ++slotRefs_[*entry];
        return *entry;
    }
    Slot slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = Slot(slotPrefix_.size());
        slotPrefix_.emplace_back();
        slotRefs_.push_back(0);
    }
    slotPrefix_[slot] = prefix;
    slotRefs_[slot] = 1;
    *entry = slot;
    return slot;
}

} // namespace bgpbench::bgp
