/**
 * @file
 * The three Routing Information Bases of RFC 4271 section 3.2:
 * Adj-RIB-In (per peer), Loc-RIB, and Adj-RIB-Out (per peer).
 *
 * Storage has two backends behind one API:
 *
 *  - Shared-tree mode (the default): the speaker owns one
 *    bgp::SharedPrefixTable holding every live prefix exactly once;
 *    each RIB stores only a slot-indexed value column (dense vector +
 *    presence bitset). N peers cost N columns over one key set instead
 *    of 2N+1 hash maps, and the decision sweep reads each peer's entry
 *    by direct slot indexing. Standalone RIBs (tests, tools) own a
 *    private table.
 *
 *  - Hash-map mode (BGPBENCH_NO_PREFIX_TREE=1, and the ablation
 *    baseline of bench/fullfeed): the seed's per-RIB
 *    std::unordered_map.
 *
 * In *both* modes forEach visits entries in ascending
 * (address, length) prefix order — tree mode walks the radix tree
 * (naturally sorted), hash mode collects and sorts (the slow ablation
 * path). Consumers (snapshots, table dumps) rely on this and no
 * longer sort, and report bytes cannot depend on the backend.
 */

#ifndef BGPBENCH_BGP_RIB_HH
#define BGPBENCH_BGP_RIB_HH

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/path_attributes.hh"
#include "bgp/prefix_table.hh"
#include "bgp/route.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

namespace detail
{

/**
 * The storage engine shared by the three RIB classes: a value column
 * over a SharedPrefixTable, or a plain hash map when @p table is null.
 *
 * Column entries hold one table reference per present slot
 * (acquire/addRef on set, release on erase/clear), so a prefix leaves
 * the shared tree exactly when the last RIB drops it. The destructor
 * deliberately does NOT release slots: RIBs and their table are torn
 * down together (speaker destruction), and member destruction order
 * must not matter.
 */
template <typename Entry>
class RibStore
{
  public:
    using Slot = SharedPrefixTable::Slot;
    static constexpr Slot npos = SharedPrefixTable::npos;

    /** Standalone store: private table when the tree is enabled. */
    RibStore()
    {
        if (prefixTreeDefaultEnabled()) {
            owned_ = std::make_unique<SharedPrefixTable>();
            table_ = owned_.get();
        }
    }

    /** Column over @p table; hash mode when @p table is null. */
    explicit RibStore(SharedPrefixTable *table) : table_(table) {}

    RibStore(RibStore &&) = default;
    RibStore &operator=(RibStore &&) = default;

    bool treeMode() const { return table_ != nullptr; }

    SharedPrefixTable *table() const { return table_; }

    size_t
    size() const
    {
        return treeMode() ? count_ : routes_.size();
    }

    bool empty() const { return size() == 0; }

    /** The slot of @p prefix in the shared table (npos in hash mode). */
    Slot
    slotOf(const net::Prefix &prefix) const
    {
        return treeMode() ? table_->find(prefix) : npos;
    }

    const Entry *
    find(const net::Prefix &prefix) const
    {
        if (treeMode())
            return findAt(table_->find(prefix));
        auto it = routes_.find(prefix);
        return it == routes_.end() ? nullptr : &it->second;
    }

    /** O(1) column read by pre-resolved slot; npos-safe. */
    const Entry *
    findAt(Slot slot) const
    {
        if (slot == npos || slot >= present_.size() || !present_[slot])
            return nullptr;
        return &column_[slot];
    }

    /**
     * Mutable find-or-create.
     * @return {entry, inserted}; the pointer is valid until the next
     *         mutation of this store or (tree mode) the shared table.
     */
    std::pair<Entry *, bool>
    obtain(const net::Prefix &prefix)
    {
        if (!treeMode()) {
            auto [it, inserted] = routes_.try_emplace(prefix);
            return {&it->second, inserted};
        }
        Slot slot = table_->find(prefix);
        if (slot != npos && slot < present_.size() && present_[slot])
            return {&column_[slot], false};
        slot = table_->acquire(prefix);
        return {occupy(slot), true};
    }

    /**
     * Tree-mode find-or-create by pre-resolved live slot (takes a
     * reference on miss without re-walking the tree).
     */
    std::pair<Entry *, bool>
    obtainAt(Slot slot)
    {
        if (slot < present_.size() && present_[slot])
            return {&column_[slot], false};
        table_->addRef(slot);
        return {occupy(slot), true};
    }

    bool
    erase(const net::Prefix &prefix)
    {
        if (treeMode())
            return eraseAt(table_->find(prefix));
        return routes_.erase(prefix) > 0;
    }

    /** Tree-mode erase by pre-resolved slot; npos-safe. */
    bool
    eraseAt(Slot slot)
    {
        if (slot == npos || slot >= present_.size() || !present_[slot])
            return false;
        column_[slot] = Entry{};
        present_[slot] = false;
        --count_;
        table_->release(slot);
        return true;
    }

    void
    clear()
    {
        if (!treeMode()) {
            routes_.clear();
            return;
        }
        for (Slot slot = 0; slot < present_.size(); ++slot) {
            if (!present_[slot])
                continue;
            column_[slot] = Entry{};
            present_[slot] = false;
            table_->release(slot);
        }
        count_ = 0;
    }

    /** Pre-size for @p n entries (tree arena, column, or hash map). */
    void
    reserve(size_t n)
    {
        if (treeMode()) {
            table_->reserve(n);
            column_.reserve(n);
            present_.reserve(n);
        } else {
            routes_.reserve(n);
        }
    }

    /**
     * Visit every entry as fn(prefix, entry) in ascending
     * (address, length) order in both modes. Templated so full-table
     * walks inline the visitor.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (treeMode()) {
            table_->forEach(
                [&](const net::Prefix &prefix, Slot slot) {
                    if (slot < present_.size() && present_[slot])
                        fn(prefix, column_[slot]);
                });
            return;
        }
        forEachSorted(fn);
    }

    /**
     * Like forEach but also passes the shared-table slot (npos in
     * hash mode): fn(prefix, slot, entry). The speaker's full-table
     * walks use the slot for O(1) Adj-RIB-Out column writes.
     */
    template <typename Fn>
    void
    forEachWithSlot(Fn &&fn) const
    {
        if (treeMode()) {
            table_->forEach(
                [&](const net::Prefix &prefix, Slot slot) {
                    if (slot < present_.size() && present_[slot])
                        fn(prefix, slot, column_[slot]);
                });
            return;
        }
        forEachSorted([&](const net::Prefix &prefix,
                          const Entry &entry) {
            fn(prefix, npos, entry);
        });
    }

    /**
     * Bytes of heap this store holds (excluding the shared table —
     * count that once per speaker). Hash mode is an estimate: glibc
     * rounds each unordered_map node (value + next pointer + cached
     * hash) up to a 16-byte-aligned malloc chunk with a header, and
     * the bucket array holds one pointer per bucket.
     */
    size_t
    memoryBytes() const
    {
        if (treeMode())
            return column_.capacity() * sizeof(Entry) +
                   present_.capacity() / 8;
        constexpr size_t nodeBytes =
            (sizeof(std::pair<const net::Prefix, Entry>) +
             2 * sizeof(void *) + 15) /
                16 * 16 +
            sizeof(void *);
        return routes_.bucket_count() * sizeof(void *) +
               routes_.size() * nodeBytes;
    }

  private:
    /** Mark @p slot present and return its (reset) entry. */
    Entry *
    occupy(Slot slot)
    {
        if (slot >= column_.size()) {
            // Grow to the table's own reservation so a pre-sized load
            // gets exactly-sized columns (no 2x growth slack).
            size_t grow = std::max(table_->slotCapacity(),
                                   size_t(slot) + 1);
            column_.resize(grow);
            present_.resize(grow, false);
        }
        present_[slot] = true;
        ++count_;
        column_[slot] = Entry{};
        return &column_[slot];
    }

    /** Hash-mode ordered walk: sort pointers, then visit. */
    template <typename Fn>
    void
    forEachSorted(Fn &&fn) const
    {
        using Row = std::pair<const net::Prefix, Entry>;
        std::vector<const Row *> rows;
        rows.reserve(routes_.size());
        for (const auto &row : routes_)
            rows.push_back(&row);
        std::sort(rows.begin(), rows.end(),
                  [](const Row *a, const Row *b) {
                      return a->first < b->first;
                  });
        for (const Row *row : rows)
            fn(row->first, row->second);
    }

    /** Non-null only for standalone default-constructed stores. */
    std::unique_ptr<SharedPrefixTable> owned_;
    SharedPrefixTable *table_ = nullptr;
    /** Tree mode: slot-indexed values + presence bitset. */
    std::vector<Entry> column_;
    std::vector<bool> present_;
    size_t count_ = 0;
    /** Hash mode. */
    std::unordered_map<net::Prefix, Entry> routes_;
};

} // namespace detail

/**
 * Adj-RIB-In: the unprocessed routes one peer has advertised to us.
 *
 * Each entry stores the attributes exactly as received plus the
 * import-policy result cached at receipt time (null when the policy
 * rejected the route), which is what the decision process consumes.
 */
class AdjRibIn
{
  public:
    using Slot = SharedPrefixTable::Slot;

    struct Entry
    {
        /** Attributes as received on the wire. */
        PathAttributesPtr received;
        /** After import policy; null if the route was rejected. */
        PathAttributesPtr effective;
    };

    AdjRibIn() = default;
    /** Column over the speaker's shared table (null: hash mode). */
    explicit AdjRibIn(SharedPrefixTable *table) : store_(table) {}

    /**
     * Insert or replace the route for @p prefix.
     * @return True if this changed the stored entry.
     */
    bool update(const net::Prefix &prefix, PathAttributesPtr received,
                PathAttributesPtr effective);

    /**
     * Remove the route for @p prefix.
     * @return True if a route was present.
     */
    bool withdraw(const net::Prefix &prefix);

    /** The entry for @p prefix, or nullptr. */
    const Entry *find(const net::Prefix &prefix) const;

    /**
     * The entry by pre-resolved shared-table slot (tree mode's O(1)
     * decision-sweep read; npos-safe). @p prefix is the hash-mode
     * fallback key.
     */
    const Entry *
    findAt(Slot slot, const net::Prefix &prefix) const
    {
        return store_.treeMode() ? store_.findAt(slot) : find(prefix);
    }

    size_t size() const { return store_.size(); }
    bool empty() const { return store_.empty(); }
    void clear() { store_.clear(); }
    void reserve(size_t n) { store_.reserve(n); }
    size_t memoryBytes() const { return store_.memoryBytes(); }

    /**
     * Visit every entry in ascending (address, length) prefix order
     * (both backends; see file comment). Inlined visitor.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        store_.forEach(std::forward<Fn>(fn));
    }

  private:
    detail::RibStore<Entry> store_;
};

/**
 * Loc-RIB: the routes selected by the local decision process, one per
 * prefix, with provenance for tie-break bookkeeping.
 */
class LocRib
{
  public:
    using Slot = SharedPrefixTable::Slot;

    struct Entry
    {
        Candidate best;
        /**
         * The rest of the ECMP group (maximum-paths > 1 only): the
         * candidates multipath-equivalent to best, in the decision
         * process's deterministic group order. Always empty in
         * single-path mode.
         */
        std::vector<Candidate> multipath;
    };

    /** What a (multipath) selection changed. */
    struct SelectOutcome
    {
        /** The best path's attributes or provenance changed. */
        bool bestChanged = false;
        /** Best or the multipath set changed (Loc-RIB content). */
        bool groupChanged = false;
    };

    LocRib() = default;
    /** Column over the speaker's shared table (null: hash mode). */
    explicit LocRib(SharedPrefixTable *table) : store_(table) {}

    /**
     * Install/replace the best route for @p prefix.
     * @return True if the selected attributes actually changed.
     */
    bool select(const net::Prefix &prefix, Candidate best);

    /**
     * Install/replace the full ECMP group for @p prefix.
     * @p multipath holds the group members beyond best, in decision
     * group order. With an empty @p multipath this degenerates to the
     * single-path select() (same change detection).
     */
    SelectOutcome select(const net::Prefix &prefix, Candidate best,
                         std::vector<Candidate> multipath);

    /**
     * Remove @p prefix entirely (no candidate remains).
     * @return True if an entry was removed.
     */
    bool remove(const net::Prefix &prefix);

    const Entry *find(const net::Prefix &prefix) const;

    size_t size() const { return store_.size(); }
    bool empty() const { return store_.empty(); }
    void clear() { store_.clear(); }
    void reserve(size_t n) { store_.reserve(n); }
    size_t memoryBytes() const { return store_.memoryBytes(); }

    /** Ordered walk; see AdjRibIn::forEach. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        store_.forEach(std::forward<Fn>(fn));
    }

    /** Ordered walk carrying the shared-table slot (npos in hash
     *  mode): fn(prefix, slot, entry). */
    template <typename Fn>
    void
    forEachWithSlot(Fn &&fn) const
    {
        store_.forEachWithSlot(std::forward<Fn>(fn));
    }

  private:
    detail::RibStore<Entry> store_;
};

/**
 * Adj-RIB-Out: what we have advertised to one peer. Storing it lets
 * the speaker suppress no-op announcements and generate correct
 * withdrawals (RFC 4271 section 9.2).
 */
class AdjRibOut
{
  public:
    using Slot = SharedPrefixTable::Slot;

    AdjRibOut() = default;
    /** Column over the speaker's shared table (null: hash mode). */
    explicit AdjRibOut(SharedPrefixTable *table) : store_(table) {}

    /**
     * Record an advertisement.
     * @return True if this differs from what was previously advertised
     *         (i.e., an UPDATE must actually be sent).
     */
    bool advertise(const net::Prefix &prefix, PathAttributesPtr attrs);

    /**
     * advertise() with a pre-resolved live shared-table slot (tree
     * mode's O(1) fan-out write). @p prefix is the hash-mode fallback.
     */
    bool advertiseAt(Slot slot, const net::Prefix &prefix,
                     PathAttributesPtr attrs);

    /**
     * Record a withdrawal.
     * @return True if the prefix had been advertised (i.e., a
     *         withdrawal must actually be sent).
     */
    bool withdraw(const net::Prefix &prefix);

    /** withdraw() by pre-resolved slot (npos-safe); see advertiseAt. */
    bool withdrawAt(Slot slot, const net::Prefix &prefix);

    const PathAttributesPtr *find(const net::Prefix &prefix) const;

    size_t size() const { return store_.size(); }
    bool empty() const { return store_.empty(); }
    void clear() { store_.clear(); }
    void reserve(size_t n) { store_.reserve(n); }
    size_t memoryBytes() const { return store_.memoryBytes(); }

    /** Ordered walk; see AdjRibIn::forEach. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        store_.forEach(std::forward<Fn>(fn));
    }

  private:
    detail::RibStore<PathAttributesPtr> store_;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_RIB_HH
