/**
 * @file
 * The three Routing Information Bases of RFC 4271 section 3.2:
 * Adj-RIB-In (per peer), Loc-RIB, and Adj-RIB-Out (per peer).
 */

#ifndef BGPBENCH_BGP_RIB_HH
#define BGPBENCH_BGP_RIB_HH

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "bgp/path_attributes.hh"
#include "bgp/route.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/**
 * Adj-RIB-In: the unprocessed routes one peer has advertised to us.
 *
 * Each entry stores the attributes exactly as received plus the
 * import-policy result cached at receipt time (null when the policy
 * rejected the route), which is what the decision process consumes.
 */
class AdjRibIn
{
  public:
    struct Entry
    {
        /** Attributes as received on the wire. */
        PathAttributesPtr received;
        /** After import policy; null if the route was rejected. */
        PathAttributesPtr effective;
    };

    /**
     * Insert or replace the route for @p prefix.
     * @return True if this changed the stored entry.
     */
    bool update(const net::Prefix &prefix, PathAttributesPtr received,
                PathAttributesPtr effective);

    /**
     * Remove the route for @p prefix.
     * @return True if a route was present.
     */
    bool withdraw(const net::Prefix &prefix);

    /** The entry for @p prefix, or nullptr. */
    const Entry *find(const net::Prefix &prefix) const;

    size_t size() const { return routes_.size(); }
    bool empty() const { return routes_.empty(); }
    void clear() { routes_.clear(); }

    /**
     * Visit every entry (order unspecified). Templated so full-table
     * walks (advertiseFullTable, session invalidation) inline the
     * visitor instead of paying a std::function indirect call per
     * entry.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[prefix, entry] : routes_)
            fn(prefix, entry);
    }

  private:
    std::unordered_map<net::Prefix, Entry> routes_;
};

/**
 * Loc-RIB: the routes selected by the local decision process, one per
 * prefix, with provenance for tie-break bookkeeping.
 */
class LocRib
{
  public:
    struct Entry
    {
        Candidate best;
    };

    /**
     * Install/replace the best route for @p prefix.
     * @return True if the selected attributes actually changed.
     */
    bool select(const net::Prefix &prefix, Candidate best);

    /**
     * Remove @p prefix entirely (no candidate remains).
     * @return True if an entry was removed.
     */
    bool remove(const net::Prefix &prefix);

    const Entry *find(const net::Prefix &prefix) const;

    size_t size() const { return routes_.size(); }
    bool empty() const { return routes_.empty(); }
    void clear() { routes_.clear(); }

    /** Visit every entry (order unspecified; inlined visitor). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[prefix, entry] : routes_)
            fn(prefix, entry);
    }

  private:
    std::unordered_map<net::Prefix, Entry> routes_;
};

/**
 * Adj-RIB-Out: what we have advertised to one peer. Storing it lets
 * the speaker suppress no-op announcements and generate correct
 * withdrawals (RFC 4271 section 9.2).
 */
class AdjRibOut
{
  public:
    /**
     * Record an advertisement.
     * @return True if this differs from what was previously advertised
     *         (i.e., an UPDATE must actually be sent).
     */
    bool advertise(const net::Prefix &prefix, PathAttributesPtr attrs);

    /**
     * Record a withdrawal.
     * @return True if the prefix had been advertised (i.e., a
     *         withdrawal must actually be sent).
     */
    bool withdraw(const net::Prefix &prefix);

    const PathAttributesPtr *find(const net::Prefix &prefix) const;

    size_t size() const { return routes_.size(); }
    bool empty() const { return routes_.empty(); }
    void clear() { routes_.clear(); }

    /** Visit every entry (order unspecified; inlined visitor). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[prefix, attrs] : routes_)
            fn(prefix, attrs);
    }

  private:
    std::unordered_map<net::Prefix, PathAttributesPtr> routes_;
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_RIB_HH
