/**
 * @file
 * Route representation shared by the RIBs and the decision process.
 */

#ifndef BGPBENCH_BGP_ROUTE_HH
#define BGPBENCH_BGP_ROUTE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/path_attributes.hh"
#include "net/ipv4_address.hh"
#include "net/prefix.hh"

namespace bgpbench::bgp
{

/** Identifies one configured peer of a speaker. */
using PeerId = uint32_t;

/** A route: a destination prefix plus its path attributes. */
struct Route
{
    net::Prefix prefix;
    PathAttributesPtr attributes;
};

/**
 * A candidate in the decision process: attributes plus the facts about
 * the peer the route was learned from that tie-breaking needs.
 */
struct Candidate
{
    PathAttributesPtr attributes;
    PeerId peer = 0;
    RouterId peerRouterId = 0;
    /** True if learned over an external (inter-AS) session. */
    bool externalSession = true;
    /**
     * True for routes this speaker originated itself (injected from
     * configuration or an IGP). Like vendor "weight", these take
     * precedence over any learned route.
     */
    bool locallyOriginated = false;
};

/**
 * A forwarding-table change emitted by the speaker: install/replace
 * when nextHop is set, remove when empty.
 */
struct FibUpdate
{
    net::Prefix prefix;
    std::optional<net::Ipv4Address> nextHop;
    /**
     * ECMP next hops beyond the primary, in the decision process's
     * deterministic group order (maximum-paths > 1 only; always empty
     * in single-path mode, where consumers see exactly the classic
     * update shape).
     */
    std::vector<net::Ipv4Address> extraHops;

    bool isWithdraw() const { return !nextHop.has_value(); }
};

} // namespace bgpbench::bgp

#endif // BGPBENCH_BGP_ROUTE_HH
