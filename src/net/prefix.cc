#include "net/prefix.hh"

#include <cctype>

#include "net/logging.hh"

namespace bgpbench::net
{

std::optional<Prefix>
Prefix::parse(const std::string &text)
{
    auto slash = text.find('/');
    if (slash == std::string::npos)
        return std::nullopt;

    auto addr = Ipv4Address::parse(text.substr(0, slash));
    if (!addr)
        return std::nullopt;

    std::string len_text = text.substr(slash + 1);
    if (len_text.empty() || len_text.size() > 2)
        return std::nullopt;

    int len = 0;
    for (char c : len_text) {
        if (!std::isdigit((unsigned char)c))
            return std::nullopt;
        len = len * 10 + (c - '0');
    }
    if (len > 32)
        return std::nullopt;

    return Prefix(*addr, len);
}

Prefix
Prefix::fromString(const std::string &text)
{
    auto prefix = parse(text);
    if (!prefix)
        fatal("malformed prefix: '" + text + "'");
    return *prefix;
}

std::string
Prefix::toString() const
{
    return addr_.toString() + "/" + std::to_string(int(length_));
}

} // namespace bgpbench::net
