/**
 * @file
 * CIDR IPv4 prefix (RFC 1519) value type.
 */

#ifndef BGPBENCH_NET_PREFIX_HH
#define BGPBENCH_NET_PREFIX_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/ipv4_address.hh"

namespace bgpbench::net
{

/**
 * A CIDR prefix: an IPv4 network address plus a mask length.
 *
 * The network address is always stored in canonical form, i.e., host
 * bits below the mask are zero. Prefixes are the unit of routing state
 * in BGP ("NLRI") and the keys of all RIBs and of the FIB.
 */
class Prefix
{
  public:
    /** The default prefix 0.0.0.0/0. */
    constexpr Prefix() : addr_(), length_(0) {}

    /**
     * Construct from address and mask length; host bits are masked
     * off so the stored form is canonical.
     *
     * @param addr Any address inside the network.
     * @param length Mask length in [0, 32].
     */
    constexpr Prefix(Ipv4Address addr, int length)
        : addr_(addr.toUint32() & maskForLength(length)),
          length_(uint8_t(length))
    {}

    /**
     * Parse "a.b.c.d/len" notation.
     * @return The prefix, or std::nullopt on malformed input.
     */
    static std::optional<Prefix> parse(const std::string &text);

    /** Parse "a.b.c.d/len", throwing FatalError on bad input. */
    static Prefix fromString(const std::string &text);

    /** The canonical network address. */
    constexpr Ipv4Address address() const { return addr_; }

    /** The mask length in bits. */
    constexpr int length() const { return length_; }

    /** True if @p addr falls inside this prefix. */
    constexpr bool
    contains(Ipv4Address addr) const
    {
        return (addr.toUint32() & maskForLength(length_)) ==
               addr_.toUint32();
    }

    /** True if @p other is equal to or more specific than this. */
    constexpr bool
    covers(const Prefix &other) const
    {
        return other.length_ >= length_ && contains(other.addr_);
    }

    /** Format as "a.b.c.d/len". */
    std::string toString() const;

    /**
     * Number of NLRI octets needed on the wire for this prefix
     * (RFC 4271 section 4.3): ceil(length / 8).
     */
    constexpr int wireOctets() const { return (length_ + 7) / 8; }

    constexpr auto operator<=>(const Prefix &) const = default;

  private:
    Ipv4Address addr_;
    uint8_t length_;
};

} // namespace bgpbench::net

/** Hash support so prefixes can key unordered containers. */
template <>
struct std::hash<bgpbench::net::Prefix>
{
    size_t
    operator()(const bgpbench::net::Prefix &p) const noexcept
    {
        uint64_t key =
            (uint64_t(p.address().toUint32()) << 8) | uint64_t(p.length());
        // 64-bit mix (splitmix64 finaliser).
        key ^= key >> 30;
        key *= 0xbf58476d1ce4e5b9ULL;
        key ^= key >> 27;
        key *= 0x94d049bb133111ebULL;
        key ^= key >> 31;
        return size_t(key);
    }
};

#endif // BGPBENCH_NET_PREFIX_HH
