#include "net/packet.hh"

#include <span>

#include "net/checksum.hh"

namespace bgpbench::net
{

std::array<uint8_t, Ipv4Header::headerBytes>
Ipv4Header::encode() const
{
    std::array<uint8_t, headerBytes> wire{};
    wire[0] = 0x45; // version 4, IHL 5
    wire[1] = 0;    // DSCP/ECN
    wire[2] = uint8_t(totalLength >> 8);
    wire[3] = uint8_t(totalLength);
    // identification / flags / fragment offset left zero
    wire[8] = ttl;
    wire[9] = protocol;
    // checksum at [10..11], computed below
    uint32_t src = source.toUint32();
    uint32_t dst = destination.toUint32();
    wire[12] = uint8_t(src >> 24);
    wire[13] = uint8_t(src >> 16);
    wire[14] = uint8_t(src >> 8);
    wire[15] = uint8_t(src);
    wire[16] = uint8_t(dst >> 24);
    wire[17] = uint8_t(dst >> 16);
    wire[18] = uint8_t(dst >> 8);
    wire[19] = uint8_t(dst);

    uint16_t sum = checksum(std::span<const uint8_t>(wire));
    wire[10] = uint8_t(sum >> 8);
    wire[11] = uint8_t(sum);
    return wire;
}

std::optional<Ipv4Header>
Ipv4Header::decode(std::span<const uint8_t> wire)
{
    if (wire.size() < headerBytes)
        return std::nullopt;
    if (wire[0] != 0x45)
        return std::nullopt;

    Ipv4Header hdr;
    hdr.totalLength = (uint16_t(wire[2]) << 8) | wire[3];
    hdr.ttl = wire[8];
    hdr.protocol = wire[9];
    hdr.headerChecksum = (uint16_t(wire[10]) << 8) | wire[11];
    hdr.source = Ipv4Address((uint32_t(wire[12]) << 24) |
                             (uint32_t(wire[13]) << 16) |
                             (uint32_t(wire[14]) << 8) |
                             uint32_t(wire[15]));
    hdr.destination = Ipv4Address((uint32_t(wire[16]) << 24) |
                                  (uint32_t(wire[17]) << 16) |
                                  (uint32_t(wire[18]) << 8) |
                                  uint32_t(wire[19]));
    return hdr;
}

bool
DataPacket::checksumValid() const
{
    auto wire = header.encode();
    // encode() recomputes the sum over current fields; compare it with
    // the checksum the packet claims to carry.
    uint16_t fresh = (uint16_t(wire[10]) << 8) | wire[11];
    return fresh == header.headerChecksum;
}

void
DataPacket::refreshChecksum()
{
    auto wire = header.encode();
    header.headerChecksum = (uint16_t(wire[10]) << 8) | wire[11];
}

DataPacket
makeDataPacket(Ipv4Address source, Ipv4Address destination,
               uint32_t size_bytes, uint8_t ttl)
{
    DataPacket pkt;
    pkt.header.source = source;
    pkt.header.destination = destination;
    pkt.header.ttl = ttl;
    if (size_bytes < Ipv4Header::headerBytes)
        size_bytes = Ipv4Header::headerBytes;
    pkt.sizeBytes = size_bytes;
    pkt.header.totalLength =
        uint16_t(size_bytes > 0xffff ? 0xffff : size_bytes);
    pkt.refreshChecksum();
    return pkt;
}

} // namespace bgpbench::net
