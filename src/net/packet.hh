/**
 * @file
 * Data-plane packet representation for the forwarding experiments.
 *
 * Cross-traffic packets carry a real, serialisable IPv4 header so the
 * RFC-1812 forwarding engine performs genuine header validation,
 * checksum arithmetic, and TTL handling rather than operating on
 * abstract tokens.
 */

#ifndef BGPBENCH_NET_PACKET_HH
#define BGPBENCH_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "net/ipv4_address.hh"

namespace bgpbench::net
{

/**
 * A minimal IPv4 header (20 bytes, no options) in decoded form.
 */
struct Ipv4Header
{
    static constexpr size_t headerBytes = 20;

    uint8_t ttl = 64;
    uint8_t protocol = 17; // UDP by default
    uint16_t totalLength = headerBytes;
    uint16_t headerChecksum = 0;
    Ipv4Address source;
    Ipv4Address destination;

    /**
     * Serialise to the 20-byte wire form with a freshly computed
     * header checksum.
     */
    std::array<uint8_t, headerBytes> encode() const;

    /**
     * Parse a wire-format header. Returns std::nullopt if the version
     * or header length fields are not plain IPv4/20-byte. The checksum
     * is NOT validated here; the forwarding engine does that so it can
     * account for the work.
     */
    static std::optional<Ipv4Header>
    decode(std::span<const uint8_t> wire);
};

/**
 * A data-plane packet: decoded header plus total on-wire size.
 *
 * The payload content is irrelevant to forwarding, so only its length
 * is carried; the header is real and is what the forwarding engine
 * inspects and rewrites.
 */
struct DataPacket
{
    Ipv4Header header;
    /** Total frame size in bytes, including the IPv4 header. */
    uint32_t sizeBytes = Ipv4Header::headerBytes;

    /** True if the embedded checksum matches the header contents. */
    bool checksumValid() const;

    /** Recompute and store the header checksum. */
    void refreshChecksum();
};

/** Build a well-formed packet of @p size_bytes to @p destination. */
DataPacket makeDataPacket(Ipv4Address source, Ipv4Address destination,
                          uint32_t size_bytes, uint8_t ttl = 64);

} // namespace bgpbench::net

#endif // BGPBENCH_NET_PACKET_HH
