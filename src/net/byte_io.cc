#include "net/byte_io.hh"

namespace bgpbench::net
{

std::string
toHex(std::span<const uint8_t> bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

} // namespace bgpbench::net
