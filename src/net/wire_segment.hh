/**
 * @file
 * Shared immutable wire segments and the pooled allocator behind them.
 *
 * A WireSegment is one encoded protocol message (or TCP segment) that
 * every hop of the message path — per-peer transmit queues, simulated
 * links, cross-shard mailboxes, receive-side framing — references
 * instead of copying. Segments are immutable after sealing, so one
 * encoding of an UPDATE fanned out to K peers can ride every peer
 * queue and every link concurrently, including across the parallel
 * engine's shard threads (the refcount is the shared_ptr's atomic).
 *
 * The BufferPool recycles the underlying byte buffers in power-of-two
 * size classes: sealing returns the segment, destroying the last
 * reference returns the buffer to the pool of the *releasing* thread.
 * Pools are thread-local (like the AttributeInterner), so the
 * allocation fast path never locks; buffers migrate between threads
 * only by riding inside segments, which is exactly the cross-shard
 * mailbox case.
 *
 * BGPBENCH_NO_SEGMENT_SHARING=1 (or setSegmentSharing(false)) is the
 * ablation switch: consumers that would share a segment take a private
 * copy instead (the speaker re-encodes per peer, StreamDecoder stages
 * every byte), and the pool stops recycling, restoring the seed's
 * copy-per-hop behaviour for A/B measurement.
 */

#ifndef BGPBENCH_NET_WIRE_SEGMENT_HH
#define BGPBENCH_NET_WIRE_SEGMENT_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/byte_io.hh"

namespace bgpbench::obs
{
class MetricRegistry;
} // namespace bgpbench::obs

namespace bgpbench::net
{

class BufferPool;

/**
 * One immutable, refcounted, pooled byte segment. Created only by
 * BufferPool::seal()/wrap(); destruction returns the buffer to the
 * releasing thread's pool.
 */
class WireSegment
{
  public:
    ~WireSegment();

    WireSegment(const WireSegment &) = delete;
    WireSegment &operator=(const WireSegment &) = delete;

    std::span<const uint8_t> bytes() const { return buf_; }
    const uint8_t *data() const { return buf_.data(); }
    size_t size() const { return buf_.size(); }

    /** Content equality (bytes, not identity). */
    friend bool
    operator==(const WireSegment &a, const WireSegment &b)
    {
        return a.buf_ == b.buf_;
    }

  private:
    friend class BufferPool;
    /** Construction key so make_shared stays pool-only. */
    struct Key
    {
    };

  public:
    WireSegment(Key, std::vector<uint8_t> buf) : buf_(std::move(buf)) {}

  private:
    std::vector<uint8_t> buf_;
};

using WireSegmentPtr = std::shared_ptr<const WireSegment>;

/**
 * True when zero-copy segment sharing is active (the default).
 * Initialised from BGPBENCH_NO_SEGMENT_SHARING; flipping it at
 * runtime only affects segments produced afterwards.
 */
bool segmentSharingEnabled();

/** Ablation override of segmentSharingEnabled(). */
void setSegmentSharing(bool enabled);

/**
 * Thread-local recycling allocator for wire segment buffers.
 *
 * All segment construction funnels through writer()/seal() (encoders)
 * or wrap() (adapters around already-owned byte vectors); separate
 * instances exist only for tests.
 */
class BufferPool
{
  public:
    /**
     * Lifetime counters plus a census of the free lists. The lifetime
     * counters are process-wide (shard threads encode, the main thread
     * reports); only pooledBuffers/pooledBytes are per-pool.
     */
    struct Stats
    {
        /** Buffer acquisitions (writer() + wrap() + seal() fresh). */
        uint64_t acquires = 0;
        /** Acquisitions served from a free list. */
        uint64_t hits = 0;
        /** Acquisitions that had to allocate. */
        uint64_t misses = 0;
        /**
         * Transmissions that reused an already-encoded segment
         * (encode-once fan-out) instead of encoding again.
         */
        uint64_t sharedEncodes = 0;
        /** Wire bytes those reuses avoided re-encoding/copying. */
        uint64_t bytesDeduplicated = 0;
        /** Segments alive right now (process-wide). */
        uint64_t outstanding = 0;
        /** High-water mark of outstanding (process-wide). */
        uint64_t peakOutstanding = 0;
        /** Buffers parked in this pool's free lists. */
        uint64_t pooledBuffers = 0;
        /** Capacity bytes parked in this pool's free lists. */
        uint64_t pooledBytes = 0;

        double
        hitRatio() const
        {
            return acquires ? double(hits) / double(acquires) : 0.0;
        }
    };

    BufferPool() = default;
    ~BufferPool();

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /**
     * A ByteWriter whose backing buffer has at least @p reserve bytes
     * of capacity, recycled from the pool when a matching size class
     * has one.
     */
    ByteWriter writer(size_t reserve);

    /** Seal the writer's bytes into an immutable shared segment. */
    WireSegmentPtr seal(ByteWriter &&writer);

    /** Wrap an already-built byte vector (moves, no copy). */
    WireSegmentPtr wrap(std::vector<uint8_t> bytes);

    /**
     * Record that @p bytes wire bytes were delivered by sharing an
     * existing segment instead of re-encoding (fan-out dedup stats).
     */
    void noteShared(size_t bytes);

    /** Counters plus a census of the free lists. */
    Stats stats() const;

    /**
     * Publish stats() under the canonical "wire.*" metric names
     * (obs::metric). Counters accumulate, so publish once per report
     * into a given registry.
     */
    void publishStats(obs::MetricRegistry &registry) const;

    /** Zero the process-wide counters (free lists are kept). */
    void resetStats();

    /** Drop every pooled buffer (test/ablation hygiene). */
    void trim();

    /**
     * The calling thread's pool, used by the codec layer. Thread-local
     * so parallel simulation shards never contend.
     */
    static BufferPool &global();

  private:
    friend class WireSegment;

    /** Power-of-two size classes from minClassBytes to maxClassBytes. */
    static constexpr size_t minClassBytes = 64;
    static constexpr size_t maxClassBytes = 4096;
    static constexpr size_t classCount = 7; // 64..4096
    /** Free-list depth per class; beyond it buffers are freed. */
    static constexpr size_t maxPooledPerClass = 64;

    /** Index of the smallest class holding @p bytes (or classCount). */
    static size_t classIndex(size_t bytes);

    /** Return a dying segment's buffer to this pool. */
    void recycle(std::vector<uint8_t> buf);

    /** Pop a buffer with capacity >= @p reserve, or a fresh one. */
    std::vector<uint8_t> acquire(size_t reserve);

    std::vector<std::vector<uint8_t>> free_[classCount];
};

} // namespace bgpbench::net

#endif // BGPBENCH_NET_WIRE_SEGMENT_HH
