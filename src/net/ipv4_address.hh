/**
 * @file
 * IPv4 address value type used throughout the BGP benchmark.
 */

#ifndef BGPBENCH_NET_IPV4_ADDRESS_HH
#define BGPBENCH_NET_IPV4_ADDRESS_HH

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace bgpbench::net
{

/**
 * An IPv4 address stored in host byte order.
 *
 * The class is a thin, trivially-copyable wrapper around a uint32_t
 * that provides parsing, formatting, and bit manipulation helpers used
 * by Prefix and the forwarding code.
 */
class Ipv4Address
{
  public:
    /** Construct the all-zero address 0.0.0.0. */
    constexpr Ipv4Address() : bits_(0) {}

    /** Construct from a host-byte-order 32-bit value. */
    constexpr explicit Ipv4Address(uint32_t bits) : bits_(bits) {}

    /** Construct from four dotted-quad octets (a.b.c.d). */
    constexpr Ipv4Address(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
        : bits_((uint32_t(a) << 24) | (uint32_t(b) << 16) |
                (uint32_t(c) << 8) | uint32_t(d))
    {}

    /**
     * Parse a dotted-quad string.
     *
     * @param text Address in "a.b.c.d" form.
     * @return The parsed address, or std::nullopt on malformed input.
     */
    static std::optional<Ipv4Address> parse(const std::string &text);

    /**
     * Parse a dotted-quad string, throwing FatalError on bad input.
     * Convenience for literals in tests and examples.
     */
    static Ipv4Address fromString(const std::string &text);

    /** The address as a host-byte-order 32-bit value. */
    constexpr uint32_t toUint32() const { return bits_; }

    /** Format as dotted quad. */
    std::string toString() const;

    /** Extract octet i (0 = most significant). */
    constexpr uint8_t
    octet(int i) const
    {
        return uint8_t(bits_ >> (8 * (3 - i)));
    }

    /** Bit b counted from the most significant bit (b in [0, 31]). */
    constexpr bool
    bit(int b) const
    {
        return (bits_ >> (31 - b)) & 1;
    }

    /** True for 0.0.0.0. */
    constexpr bool isZero() const { return bits_ == 0; }

    constexpr auto operator<=>(const Ipv4Address &) const = default;

  private:
    uint32_t bits_;
};

/** Network mask with the top @p len bits set (len in [0, 32]). */
constexpr uint32_t
maskForLength(int len)
{
    return len == 0 ? 0 : (~uint32_t(0) << (32 - len));
}

} // namespace bgpbench::net

#endif // BGPBENCH_NET_IPV4_ADDRESS_HH
