/**
 * @file
 * Big-endian (network byte order) serialisation helpers.
 *
 * ByteWriter appends network-byte-order fields to a growable buffer;
 * ByteReader consumes them with explicit bounds checking. All BGP wire
 * encoding and decoding (RFC 4271 section 4) is built on these two
 * classes, so malformed-message handling funnels through a single
 * error path: ByteReader never reads out of bounds; it sets an error
 * flag that the message codec translates into a NOTIFICATION-style
 * decode error.
 */

#ifndef BGPBENCH_NET_BYTE_IO_HH
#define BGPBENCH_NET_BYTE_IO_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4_address.hh"

namespace bgpbench::net
{

/** Growable big-endian output buffer. */
class ByteWriter
{
  public:
    ByteWriter() = default;

    /** Reserve capacity up front to avoid reallocation. */
    explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

    /**
     * Adopt @p recycle as the backing buffer (its contents are
     * cleared, its capacity kept) and ensure at least @p reserve
     * bytes of capacity. Lets the BufferPool hand writers recycled
     * allocations.
     */
    ByteWriter(std::vector<uint8_t> recycle, size_t reserve)
        : buf_(std::move(recycle))
    {
        buf_.clear();
        buf_.reserve(reserve);
    }

    void
    writeU8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    writeU16(uint16_t v)
    {
        buf_.push_back(uint8_t(v >> 8));
        buf_.push_back(uint8_t(v));
    }

    void
    writeU32(uint32_t v)
    {
        buf_.push_back(uint8_t(v >> 24));
        buf_.push_back(uint8_t(v >> 16));
        buf_.push_back(uint8_t(v >> 8));
        buf_.push_back(uint8_t(v));
    }

    /** Write an IPv4 address in network byte order. */
    void writeAddress(Ipv4Address addr) { writeU32(addr.toUint32()); }

    /** Append raw bytes. */
    void
    writeBytes(std::span<const uint8_t> bytes)
    {
        buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    }

    /** Append @p count copies of @p fill. */
    void
    writeFill(size_t count, uint8_t fill)
    {
        buf_.insert(buf_.end(), count, fill);
    }

    /**
     * Overwrite a previously written big-endian u16 at @p offset.
     * Used to back-patch length fields after the body is known.
     */
    void
    patchU16(size_t offset, uint16_t v)
    {
        buf_.at(offset) = uint8_t(v >> 8);
        buf_.at(offset + 1) = uint8_t(v);
    }

    /** Overwrite a previously written u8 at @p offset. */
    void
    patchU8(size_t offset, uint8_t v)
    {
        buf_.at(offset) = v;
    }

    size_t size() const { return buf_.size(); }

    const std::vector<uint8_t> &bytes() const { return buf_; }

    /** Move the accumulated buffer out of the writer. */
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked big-endian input cursor over a byte span.
 *
 * Reads past the end do not touch memory; they return zero and set a
 * sticky error flag. Callers check ok() once after a parsing unit
 * rather than after every field.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const uint8_t> data)
        : data_(data), pos_(0), error_(false)
    {}

    uint8_t
    readU8()
    {
        if (!require(1))
            return 0;
        return data_[pos_++];
    }

    uint16_t
    readU16()
    {
        if (!require(2))
            return 0;
        uint16_t v = (uint16_t(data_[pos_]) << 8) | data_[pos_ + 1];
        pos_ += 2;
        return v;
    }

    uint32_t
    readU32()
    {
        if (!require(4))
            return 0;
        uint32_t v = (uint32_t(data_[pos_]) << 24) |
                     (uint32_t(data_[pos_ + 1]) << 16) |
                     (uint32_t(data_[pos_ + 2]) << 8) |
                     uint32_t(data_[pos_ + 3]);
        pos_ += 4;
        return v;
    }

    Ipv4Address readAddress() { return Ipv4Address(readU32()); }

    /**
     * Read @p count raw bytes. On under-run, returns an empty span and
     * sets the error flag.
     */
    std::span<const uint8_t>
    readBytes(size_t count)
    {
        if (!require(count))
            return {};
        auto out = data_.subspan(pos_, count);
        pos_ += count;
        return out;
    }

    /** Skip @p count bytes. */
    void
    skip(size_t count)
    {
        if (require(count))
            pos_ += count;
    }

    /** Bytes left to read. */
    size_t remaining() const { return error_ ? 0 : data_.size() - pos_; }

    /** Absolute cursor position. */
    size_t position() const { return pos_; }

    /** True if no bounds violation has occurred. */
    bool ok() const { return !error_; }

    /** True once all input has been consumed without error. */
    bool atEnd() const { return !error_ && pos_ == data_.size(); }

    /** Explicitly mark the stream as bad (semantic errors). */
    void markError() { error_ = true; }

    /**
     * Produce a sub-reader over the next @p count bytes and advance
     * past them; used for length-delimited fields (path attributes).
     */
    ByteReader
    subReader(size_t count)
    {
        auto bytes = readBytes(count);
        ByteReader sub(bytes);
        if (error_)
            sub.markError();
        return sub;
    }

  private:
    bool
    require(size_t count)
    {
        if (error_ || data_.size() - pos_ < count) {
            error_ = true;
            return false;
        }
        return true;
    }

    std::span<const uint8_t> data_;
    size_t pos_;
    bool error_;
};

/** Render bytes as lowercase hex, for diagnostics and tests. */
std::string toHex(std::span<const uint8_t> bytes);

} // namespace bgpbench::net

#endif // BGPBENCH_NET_BYTE_IO_HH
