#include "net/ipv4_address.hh"

#include <cctype>

#include "net/logging.hh"

namespace bgpbench::net
{

std::optional<Ipv4Address>
Ipv4Address::parse(const std::string &text)
{
    uint32_t bits = 0;
    int octets = 0;
    size_t i = 0;

    while (octets < 4) {
        if (i >= text.size() || !std::isdigit((unsigned char)text[i]))
            return std::nullopt;

        uint32_t value = 0;
        size_t digits = 0;
        while (i < text.size() &&
               std::isdigit((unsigned char)text[i])) {
            value = value * 10 + uint32_t(text[i] - '0');
            ++digits;
            if (digits > 3 || value > 255)
                return std::nullopt;
            ++i;
        }

        bits = (bits << 8) | value;
        ++octets;

        if (octets < 4) {
            if (i >= text.size() || text[i] != '.')
                return std::nullopt;
            ++i;
        }
    }

    if (i != text.size())
        return std::nullopt;

    return Ipv4Address(bits);
}

Ipv4Address
Ipv4Address::fromString(const std::string &text)
{
    auto addr = parse(text);
    if (!addr)
        fatal("malformed IPv4 address: '" + text + "'");
    return *addr;
}

std::string
Ipv4Address::toString() const
{
    std::string out;
    out.reserve(15);
    for (int i = 0; i < 4; ++i) {
        if (i)
            out.push_back('.');
        out += std::to_string(unsigned(octet(i)));
    }
    return out;
}

} // namespace bgpbench::net
