/**
 * @file
 * Compressed keyed prefix tree: a path-compressed binary radix trie
 * over (address, length) with slab/arena node storage.
 *
 * Where LpmTrie expands one heap-allocated node per bit of every
 * inserted prefix (fine for small FIBs, hostile at internet scale),
 * PrefixTree keeps exactly one node per stored prefix plus at most one
 * branching node per pair of diverging sub-tries — the classic
 * Patricia shape — and places all nodes in one contiguous arena
 * addressed by 32-bit indices. That brings three properties the RIBs
 * need at 1M+ prefixes:
 *
 *  - O(length) insert/lookup/erase with at most 33 node visits, no
 *    per-bit allocation, and no rehash spikes;
 *  - ~20 bytes per node for small values versus a ~64-byte malloc
 *    chunk plus bucket slot per std::unordered_map entry;
 *  - deterministic in-prefix-order iteration: forEach visits prefixes
 *    in exact ascending (address, length) order — the order
 *    Prefix::operator<=> defines — so snapshot/dump consumers no
 *    longer sort.
 *
 * Erase returns nodes to an intrusive free list threaded through the
 * arena; the arena itself only grows (capacity is the high-water mark
 * of live + free nodes), which is the right trade for RIBs whose
 * size is workload-bounded.
 */

#ifndef BGPBENCH_NET_PREFIX_TREE_HH
#define BGPBENCH_NET_PREFIX_TREE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/prefix.hh"

namespace bgpbench::net
{

/**
 * Path-compressed binary radix trie mapping Prefix -> V.
 *
 * Invariants:
 *  - node 0 is the root and always exists (prefix 0.0.0.0/0, value
 *    optional);
 *  - every node's prefix strictly covers both children's prefixes, so
 *    depth is bounded by 33;
 *  - a non-root node either holds a value or has two children
 *    (single-child valueless nodes are spliced out on erase), which
 *    bounds total nodes at 2 * size() + 1.
 *
 * Pointers/references returned by find()/insert() are invalidated by
 * any subsequent mutation (the arena may grow or recycle nodes).
 */
template <typename V>
class PrefixTree
{
  public:
    /** "No node" sentinel for child links and the free list head. */
    static constexpr uint32_t npos = 0xffffffffu;

    PrefixTree() { clear(); }

    /**
     * Insert or replace the value for @p prefix.
     *
     * @param inserted Optional out-flag: true if the prefix was new.
     * @return Pointer to the stored value (valid until next mutation).
     */
    template <typename U>
    V *
    insert(const Prefix &prefix, U &&value, bool *inserted = nullptr)
    {
        bool fresh = false;
        V *slot = findOrInsert(prefix, &fresh);
        *slot = std::forward<U>(value);
        if (inserted)
            *inserted = fresh;
        return slot;
    }

    /**
     * Find the value for @p prefix, default-constructing it first if
     * absent; an existing value is left untouched (try_emplace
     * semantics, needed by callers that allocate the value only on
     * miss).
     */
    V *
    findOrInsert(const Prefix &prefix, bool *inserted = nullptr)
    {
        const uint32_t bits = prefix.address().toUint32();
        const int len = prefix.length();
        uint32_t cur = 0;
        for (;;) {
            if (arena_[cur].len == len) {
                // The walk maintains "arena_[cur] covers prefix", so
                // equal lengths mean equal prefixes.
                bool fresh = !arena_[cur].hasValue;
                if (fresh) {
                    arena_[cur].hasValue = true;
                    ++size_;
                }
                if (inserted)
                    *inserted = fresh;
                return &arena_[cur].value;
            }
            const int branch = bitAt(bits, arena_[cur].len);
            const uint32_t childIdx = arena_[cur].child[branch];
            if (childIdx == npos) {
                uint32_t fresh = allocNode(bits, uint8_t(len), true);
                arena_[cur].child[branch] = fresh;
                ++size_;
                if (inserted)
                    *inserted = true;
                return &arena_[fresh].value;
            }
            const uint32_t childBits = arena_[childIdx].bits;
            const int childLen = arena_[childIdx].len;
            int common = commonPrefixLength(childBits, bits);
            if (common > childLen)
                common = childLen;
            if (common > len)
                common = len;
            if (common == childLen) {
                // Child's prefix covers the target: descend.
                cur = childIdx;
                continue;
            }
            if (common == len) {
                // Target sits between cur and child: splice it in as
                // the child's new parent.
                const int down = bitAt(childBits, len);
                uint32_t fresh = allocNode(bits, uint8_t(len), true);
                arena_[fresh].child[down] = childIdx;
                arena_[cur].child[branch] = fresh;
                ++size_;
                if (inserted)
                    *inserted = true;
                return &arena_[fresh].value;
            }
            // Paths diverge below cur: split with a valueless joint at
            // the common length, with child and the new leaf below it.
            uint32_t joint = allocNode(bits & maskForLength(common),
                                       uint8_t(common), false);
            uint32_t fresh = allocNode(bits, uint8_t(len), true);
            arena_[joint].child[bitAt(childBits, common)] = childIdx;
            arena_[joint].child[bitAt(bits, common)] = fresh;
            arena_[cur].child[branch] = joint;
            ++size_;
            if (inserted)
                *inserted = true;
            return &arena_[fresh].value;
        }
    }

    /**
     * Remove the value for @p prefix.
     * @return True if a value was present.
     */
    bool
    erase(const Prefix &prefix)
    {
        const uint32_t bits = prefix.address().toUint32();
        const int len = prefix.length();
        // Explicit parent stack: depth <= 33 by the covers-invariant.
        uint32_t stack[33];
        int depth = 0;
        uint32_t cur = 0;
        while (arena_[cur].len != len) {
            const uint32_t childIdx =
                arena_[cur].child[bitAt(bits, arena_[cur].len)];
            if (childIdx == npos)
                return false;
            const Node &child = arena_[childIdx];
            if (child.len > len ||
                ((child.bits ^ bits) & maskForLength(child.len)) != 0)
                return false;
            stack[depth++] = cur;
            cur = childIdx;
        }
        if (!arena_[cur].hasValue)
            return false;
        arena_[cur].hasValue = false;
        arena_[cur].value = V{};
        --size_;
        prune(cur, stack, depth);
        return true;
    }

    /** The stored value for @p prefix, or nullptr. */
    const V *
    find(const Prefix &prefix) const
    {
        const uint32_t idx = findNode(prefix);
        return idx == npos ? nullptr : &arena_[idx].value;
    }

    V *
    find(const Prefix &prefix)
    {
        const uint32_t idx = findNode(prefix);
        return idx == npos ? nullptr : &arena_[idx].value;
    }

    /**
     * Longest-prefix match for @p addr (same contract as
     * LpmTrie::matchLongest), or nullptr when no stored prefix covers
     * the address.
     */
    const V *
    matchLongest(Ipv4Address addr) const
    {
        const uint32_t bits = addr.toUint32();
        const V *best = nullptr;
        uint32_t cur = 0;
        for (;;) {
            const Node &node = arena_[cur];
            if (node.hasValue)
                best = &node.value;
            if (node.len == 32)
                break;
            const uint32_t childIdx = node.child[bitAt(bits, node.len)];
            if (childIdx == npos)
                break;
            const Node &child = arena_[childIdx];
            if (((child.bits ^ bits) & maskForLength(child.len)) != 0)
                break;
            cur = childIdx;
        }
        return best;
    }

    /**
     * Visit every (prefix, value) in ascending (address, length)
     * order — exactly the order Prefix::operator<=> defines. A node's
     * own prefix precedes everything in its subtrees (it is shorter at
     * the same address), and the child-0 subtree's addresses all
     * precede the child-1 subtree's, so a pre-order walk is sorted.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        walk(0, fn);
    }

    /** Number of stored prefixes. */
    size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Live arena nodes, including valueless joints and the root. */
    size_t nodeCount() const { return liveNodes_; }

    /** Drop every entry; keeps the arena's capacity. */
    void
    clear()
    {
        arena_.clear();
        arena_.push_back(Node{});
        freeHead_ = npos;
        size_ = 0;
        liveNodes_ = 1;
    }

    /**
     * Pre-size the arena for @p prefixes entries (2n+1 nodes covers
     * the worst-case joint count), avoiding growth reallocations
     * during a bulk load.
     */
    void
    reserve(size_t prefixes)
    {
        arena_.reserve(2 * prefixes + 1);
    }

    /** Bytes held by the arena (capacity, i.e. high-water). */
    size_t
    memoryBytes() const
    {
        return arena_.capacity() * sizeof(Node) + sizeof(*this);
    }

  private:
    struct Node
    {
        /** Canonical prefix bits (host order, low bits zero). */
        uint32_t bits = 0;
        uint32_t child[2] = {npos, npos};
        uint8_t len = 0;
        bool hasValue = false;
        V value{};
    };

    /** Bit @p pos of @p bits counted from the MSB (pos in [0, 31]). */
    static int
    bitAt(uint32_t bits, int pos)
    {
        return int((bits >> (31 - pos)) & 1u);
    }

    /** Length of the common prefix of @p a and @p b, up to 32. */
    static int
    commonPrefixLength(uint32_t a, uint32_t b)
    {
        return a == b ? 32 : std::countl_zero(a ^ b);
    }

    uint32_t
    allocNode(uint32_t bits, uint8_t len, bool hasValue)
    {
        uint32_t idx;
        if (freeHead_ != npos) {
            idx = freeHead_;
            freeHead_ = arena_[idx].child[0];
        } else {
            idx = uint32_t(arena_.size());
            arena_.emplace_back();
        }
        Node &node = arena_[idx];
        node.bits = bits;
        node.child[0] = npos;
        node.child[1] = npos;
        node.len = len;
        node.hasValue = hasValue;
        ++liveNodes_;
        return idx;
    }

    void
    freeNode(uint32_t idx)
    {
        // Thread the free list through child[0].
        arena_[idx].child[0] = freeHead_;
        arena_[idx].child[1] = npos;
        arena_[idx].hasValue = false;
        arena_[idx].value = V{};
        freeHead_ = idx;
        --liveNodes_;
    }

    /** Arena index of the node storing @p prefix, or npos. */
    uint32_t
    findNode(const Prefix &prefix) const
    {
        const uint32_t bits = prefix.address().toUint32();
        const int len = prefix.length();
        uint32_t cur = 0;
        while (arena_[cur].len != len) {
            const uint32_t childIdx =
                arena_[cur].child[bitAt(bits, arena_[cur].len)];
            if (childIdx == npos)
                return npos;
            const Node &child = arena_[childIdx];
            if (child.len > len ||
                ((child.bits ^ bits) & maskForLength(child.len)) != 0)
                return npos;
            cur = childIdx;
        }
        return arena_[cur].hasValue ? cur : npos;
    }

    /**
     * Restore the structural invariant upward from @p cur after its
     * value was cleared: remove childless valueless nodes (which may
     * cascade) and splice single-child valueless nodes (which cannot).
     */
    void
    prune(uint32_t cur, const uint32_t *stack, int depth)
    {
        while (cur != 0) {
            Node &node = arena_[cur];
            if (node.hasValue)
                break;
            const int kids = int(node.child[0] != npos) +
                             int(node.child[1] != npos);
            if (kids == 2)
                break;
            const uint32_t parent = stack[--depth];
            Node &par = arena_[parent];
            const int slot = par.child[0] == cur ? 0 : 1;
            if (kids == 1) {
                par.child[slot] = node.child[0] != npos
                                      ? node.child[0]
                                      : node.child[1];
                freeNode(cur);
                break; // parent's child count is unchanged
            }
            par.child[slot] = npos;
            freeNode(cur);
            cur = parent; // parent may now be a spliceable joint
        }
    }

    template <typename Fn>
    void
    walk(uint32_t idx, Fn &fn) const
    {
        const Node &node = arena_[idx];
        if (node.hasValue)
            fn(Prefix(Ipv4Address(node.bits), node.len), node.value);
        if (node.child[0] != npos)
            walk(node.child[0], fn);
        if (node.child[1] != npos)
            walk(node.child[1], fn);
    }

    std::vector<Node> arena_;
    uint32_t freeHead_ = npos;
    size_t size_ = 0;
    size_t liveNodes_ = 0;
};

} // namespace bgpbench::net

#endif // BGPBENCH_NET_PREFIX_TREE_HH
