#include "net/checksum.hh"

namespace bgpbench::net
{

uint16_t
checksum(std::span<const uint8_t> data)
{
    uint32_t sum = 0;
    size_t i = 0;
    for (; i + 1 < data.size(); i += 2)
        sum += (uint32_t(data[i]) << 8) | data[i + 1];
    if (i < data.size())
        sum += uint32_t(data[i]) << 8;

    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);

    return uint16_t(~sum);
}

uint16_t
checksumAdjust(uint16_t old_sum, uint16_t old_word, uint16_t new_word)
{
    // RFC 1624: HC' = ~(~HC + ~m + m')
    uint32_t sum = uint32_t(uint16_t(~old_sum)) +
                   uint32_t(uint16_t(~old_word)) + uint32_t(new_word);
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return uint16_t(~sum);
}

} // namespace bgpbench::net
