/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (bugs in this library);
 * fatal() is for user errors (bad configuration, invalid arguments).
 */

#ifndef BGPBENCH_NET_LOGGING_HH
#define BGPBENCH_NET_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bgpbench
{

/**
 * Exception thrown for conditions caused by the caller (bad
 * configuration, malformed input that the caller promised was valid).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Exception thrown for internal invariant violations. Seeing one of
 * these means there is a bug in bgpbench itself.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Report a user-caused error. Throws FatalError. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Report an internal invariant violation. Throws PanicError. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("bgpbench internal error: " + msg);
}

/** Assert a library invariant; panics with the message on failure. */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

} // namespace bgpbench

#endif // BGPBENCH_NET_LOGGING_HH
