/**
 * @file
 * Internet checksum (RFC 1071) used by the RFC-1812 forwarding path.
 */

#ifndef BGPBENCH_NET_CHECKSUM_HH
#define BGPBENCH_NET_CHECKSUM_HH

#include <cstdint>
#include <span>

namespace bgpbench::net
{

/**
 * Compute the 16-bit one's-complement Internet checksum over @p data.
 *
 * A buffer that embeds a correct checksum field sums to 0xffff, i.e.,
 * checksum() over it returns 0.
 */
uint16_t checksum(std::span<const uint8_t> data);

/**
 * Incrementally update a checksum after a 16-bit field changed
 * (RFC 1624 eqn. 3). Used for the TTL-decrement fast path so the
 * forwarding engine does not recompute the full header sum.
 *
 * @param old_sum The checksum field as stored in the header.
 * @param old_word The 16-bit word before modification.
 * @param new_word The 16-bit word after modification.
 * @return The new checksum field value.
 */
uint16_t checksumAdjust(uint16_t old_sum, uint16_t old_word,
                        uint16_t new_word);

} // namespace bgpbench::net

#endif // BGPBENCH_NET_CHECKSUM_HH
