/**
 * @file
 * Binary-trie longest-prefix-match structure, generic over the stored
 * value type.
 *
 * IP lookup must find the most specific prefix covering a destination
 * address (CIDR, RFC 1519). This is a classic unibit trie as surveyed
 * by Ruiz-Sanchez et al. (paper ref [9]): simple, worst-case 32 node
 * visits, and exactly the kind of lookup a software router kernel of
 * the paper's era performed.
 *
 * Historically this lived in src/fib as the FIB's next-hop index; it
 * moved here so read-side structures can index *non-owning* route
 * views with the same code — the value type is a template parameter,
 * so a FIB stores next hops while a RIB snapshot stores indexes (or
 * pointers) into its immutable route array without copying routes
 * into the trie.
 */

#ifndef BGPBENCH_NET_LPM_TRIE_HH
#define BGPBENCH_NET_LPM_TRIE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4_address.hh"
#include "net/prefix.hh"

namespace bgpbench::net
{

/**
 * Longest-prefix-match trie mapping prefixes to a value (the next
 * hop in the FIB's case, a route-view index in a RIB snapshot's).
 *
 * @tparam Value Payload stored per prefix.
 */
template <typename Value>
class LpmTrie
{
  public:
    LpmTrie() : root_(std::make_unique<Node>()) {}

    /**
     * Insert or replace the value for @p prefix.
     * @return True if the prefix was new.
     */
    bool
    insert(const net::Prefix &prefix, Value value)
    {
        Node *node = walkTo(prefix, true);
        bool inserted = !node->value.has_value();
        node->value = std::move(value);
        if (inserted)
            ++size_;
        return inserted;
    }

    /**
     * Remove the entry for @p prefix.
     * @return True if the prefix was present.
     */
    bool
    remove(const net::Prefix &prefix)
    {
        Node *node = walkTo(prefix, false);
        if (!node || !node->value)
            return false;
        node->value.reset();
        --size_;
        // Nodes are left in place; path compression/pruning is not
        // needed for correctness and real kernels also defer it.
        return true;
    }

    /** Exact-match lookup of a prefix. */
    const Value *
    exact(const net::Prefix &prefix) const
    {
        const Node *node = walkToConst(prefix);
        if (!node || !node->value)
            return nullptr;
        return &*node->value;
    }

    /**
     * Longest-prefix-match lookup of an address.
     *
     * @param addr Destination address.
     * @param visited Optional out-parameter receiving the number of
     *        trie nodes visited (the work metric charged by the
     *        simulated forwarding engine).
     * @return The value of the most specific covering prefix, or
     *         nullptr if no prefix covers the address.
     */
    const Value *
    lookup(net::Ipv4Address addr, int *visited = nullptr) const
    {
        const Node *node = root_.get();
        const Value *best = node->value ? &*node->value : nullptr;
        int depth = 0;
        while (depth < 32) {
            const Node *child =
                addr.bit(depth) ? node->one.get() : node->zero.get();
            if (!child)
                break;
            node = child;
            ++depth;
            if (node->value)
                best = &*node->value;
        }
        if (visited)
            *visited = depth + 1;
        return best;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Visit the value of every stored prefix that *covers* @p prefix
     * (equal or shorter length, matching leading bits), walking from
     * the root: fn(coveringPrefixLength, value). At most
     * prefix.length()+1 node visits — this is what makes a compiled
     * prefix-list lookup O(32) instead of O(entries).
     */
    template <typename Fn>
    void
    forEachCovering(const net::Prefix &prefix, Fn &&fn) const
    {
        const Node *node = root_.get();
        if (node->value)
            fn(0, *node->value);
        for (int depth = 0; depth < prefix.length(); ++depth) {
            const Node *child = prefix.address().bit(depth)
                                    ? node->one.get()
                                    : node->zero.get();
            if (!child)
                return;
            node = child;
            if (node->value)
                fn(depth + 1, *node->value);
        }
    }

    /** Collect all (prefix, value) pairs, in unspecified order. */
    std::vector<std::pair<net::Prefix, Value>>
    entries() const
    {
        std::vector<std::pair<net::Prefix, Value>> out;
        out.reserve(size_);
        collect(root_.get(), 0, 0, out);
        return out;
    }

  private:
    struct Node
    {
        std::optional<Value> value;
        std::unique_ptr<Node> zero;
        std::unique_ptr<Node> one;
    };

    Node *
    walkTo(const net::Prefix &prefix, bool create)
    {
        Node *node = root_.get();
        for (int depth = 0; depth < prefix.length(); ++depth) {
            auto &child = prefix.address().bit(depth) ? node->one
                                                      : node->zero;
            if (!child) {
                if (!create)
                    return nullptr;
                child = std::make_unique<Node>();
            }
            node = child.get();
        }
        return node;
    }

    const Node *
    walkToConst(const net::Prefix &prefix) const
    {
        const Node *node = root_.get();
        for (int depth = 0; depth < prefix.length(); ++depth) {
            const Node *child = prefix.address().bit(depth)
                                    ? node->one.get()
                                    : node->zero.get();
            if (!child)
                return nullptr;
            node = child;
        }
        return node;
    }

    void
    collect(const Node *node, uint32_t bits, int depth,
            std::vector<std::pair<net::Prefix, Value>> &out) const
    {
        if (node->value) {
            out.emplace_back(
                net::Prefix(net::Ipv4Address(bits), depth),
                *node->value);
        }
        if (depth == 32)
            return;
        if (node->zero)
            collect(node->zero.get(), bits, depth + 1, out);
        if (node->one) {
            collect(node->one.get(), bits | (1u << (31 - depth)),
                    depth + 1, out);
        }
    }

    std::unique_ptr<Node> root_;
    size_t size_ = 0;
};

/**
 * Trivially correct linear-scan LPM used as the oracle in property
 * tests comparing against LpmTrie.
 */
template <typename Value>
class LinearLpm
{
  public:
    bool
    insert(const net::Prefix &prefix, Value value)
    {
        for (auto &[p, v] : entries_) {
            if (p == prefix) {
                v = std::move(value);
                return false;
            }
        }
        entries_.emplace_back(prefix, std::move(value));
        return true;
    }

    bool
    remove(const net::Prefix &prefix)
    {
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].first == prefix) {
                entries_.erase(entries_.begin() + ptrdiff_t(i));
                return true;
            }
        }
        return false;
    }

    const Value *
    lookup(net::Ipv4Address addr) const
    {
        const Value *best = nullptr;
        int best_len = -1;
        for (const auto &[p, v] : entries_) {
            if (p.contains(addr) && p.length() > best_len) {
                best = &v;
                best_len = p.length();
            }
        }
        return best;
    }

    size_t size() const { return entries_.size(); }

  private:
    std::vector<std::pair<net::Prefix, Value>> entries_;
};

} // namespace bgpbench::net

#endif // BGPBENCH_NET_LPM_TRIE_HH
