#include "net/wire_segment.hh"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.hh"
#include "obs/views.hh"

namespace bgpbench::net
{

namespace
{

/**
 * Segments allocated on one shard thread may drop their last reference
 * on another, so the liveness census is process-wide. Relaxed ordering
 * is enough: the counters feed reports, not synchronisation.
 */
std::atomic<uint64_t> liveSegments{0};
std::atomic<uint64_t> peakLiveSegments{0};

/**
 * Lifetime counters are process-wide too: in a parallel topology run
 * the encoding happens on shard threads, and a report printed from the
 * main thread must still see it.
 */
std::atomic<uint64_t> totalAcquires{0};
std::atomic<uint64_t> totalHits{0};
std::atomic<uint64_t> totalMisses{0};
std::atomic<uint64_t> totalSharedEncodes{0};
std::atomic<uint64_t> totalBytesDeduplicated{0};

/** The releasing thread's pool; null before global() / after exit. */
thread_local BufferPool *tlsPool = nullptr;

bool
sharingDefault()
{
    const char *env = std::getenv("BGPBENCH_NO_SEGMENT_SHARING");
    return !(env && env[0] != '\0' && env[0] != '0');
}

std::atomic<bool> sharingEnabled{sharingDefault()};

void
noteSegmentBorn()
{
    uint64_t live =
        liveSegments.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = peakLiveSegments.load(std::memory_order_relaxed);
    while (live > peak &&
           !peakLiveSegments.compare_exchange_weak(
               peak, live, std::memory_order_relaxed)) {
    }
}

} // namespace

bool
segmentSharingEnabled()
{
    return sharingEnabled.load(std::memory_order_relaxed);
}

void
setSegmentSharing(bool enabled)
{
    sharingEnabled.store(enabled, std::memory_order_relaxed);
}

WireSegment::~WireSegment()
{
    liveSegments.fetch_sub(1, std::memory_order_relaxed);
    if (tlsPool)
        tlsPool->recycle(std::move(buf_));
}

BufferPool::~BufferPool()
{
    if (tlsPool == this)
        tlsPool = nullptr;
}

BufferPool &
BufferPool::global()
{
    thread_local BufferPool pool;
    // Segments released on this thread recycle into its global pool,
    // wherever they were sealed. The pointer is cleared by the pool's
    // destructor so segments outliving thread-local teardown fall back
    // to plain deallocation.
    if (!tlsPool)
        tlsPool = &pool;
    return pool;
}

size_t
BufferPool::classIndex(size_t bytes)
{
    size_t cls = minClassBytes;
    for (size_t i = 0; i < classCount; ++i, cls <<= 1) {
        if (bytes <= cls)
            return i;
    }
    return classCount;
}

std::vector<uint8_t>
BufferPool::acquire(size_t reserve)
{
    totalAcquires.fetch_add(1, std::memory_order_relaxed);
    if (segmentSharingEnabled()) {
        // Any buffer parked in class i has capacity >= 64<<i, so the
        // first non-empty class at or above the request fits it.
        for (size_t i = classIndex(reserve); i < classCount; ++i) {
            if (!free_[i].empty()) {
                totalHits.fetch_add(1, std::memory_order_relaxed);
                std::vector<uint8_t> buf = std::move(free_[i].back());
                free_[i].pop_back();
                buf.clear();
                return buf;
            }
        }
    }
    totalMisses.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> buf;
    // Round fresh allocations up to the class size so the capacity
    // recycles into the exact class a same-sized request scans first;
    // an odd capacity would park in the floor class below and never
    // serve its own size again.
    size_t cls = classIndex(reserve);
    buf.reserve(cls < classCount ? (minClassBytes << cls) : reserve);
    return buf;
}

void
BufferPool::recycle(std::vector<uint8_t> buf)
{
    if (!segmentSharingEnabled())
        return;
    size_t capacity = buf.capacity();
    if (capacity < minClassBytes || capacity > maxClassBytes)
        return;
    // Park by the largest class the capacity covers, so acquire()'s
    // "class i holds >= 64<<i bytes" invariant stays true.
    size_t i = classIndex(capacity);
    if (i >= classCount)
        return;
    if ((minClassBytes << i) > capacity)
        --i; // capacity sits between classes: park in the floor class
    if (free_[i].size() >= maxPooledPerClass)
        return;
    free_[i].push_back(std::move(buf));
}

void
BufferPool::noteShared(size_t bytes)
{
    totalSharedEncodes.fetch_add(1, std::memory_order_relaxed);
    totalBytesDeduplicated.fetch_add(bytes,
                                     std::memory_order_relaxed);
}

ByteWriter
BufferPool::writer(size_t reserve)
{
    return ByteWriter(acquire(reserve), reserve);
}

WireSegmentPtr
BufferPool::seal(ByteWriter &&writer)
{
    noteSegmentBorn();
    return std::make_shared<const WireSegment>(WireSegment::Key{},
                                               writer.take());
}

WireSegmentPtr
BufferPool::wrap(std::vector<uint8_t> bytes)
{
    noteSegmentBorn();
    return std::make_shared<const WireSegment>(WireSegment::Key{},
                                               std::move(bytes));
}

BufferPool::Stats
BufferPool::stats() const
{
    Stats s;
    s.acquires = totalAcquires.load(std::memory_order_relaxed);
    s.hits = totalHits.load(std::memory_order_relaxed);
    s.misses = totalMisses.load(std::memory_order_relaxed);
    s.sharedEncodes =
        totalSharedEncodes.load(std::memory_order_relaxed);
    s.bytesDeduplicated =
        totalBytesDeduplicated.load(std::memory_order_relaxed);
    s.outstanding = liveSegments.load(std::memory_order_relaxed);
    s.peakOutstanding =
        peakLiveSegments.load(std::memory_order_relaxed);
    for (const auto &cls : free_) {
        s.pooledBuffers += cls.size();
        for (const auto &buf : cls)
            s.pooledBytes += buf.capacity();
    }
    return s;
}

void
BufferPool::publishStats(obs::MetricRegistry &registry) const
{
    Stats s = stats();
    registry.counter(obs::metric::wireAcquires).add(s.acquires);
    registry.counter(obs::metric::wirePoolHits).add(s.hits);
    registry.counter(obs::metric::wirePoolMisses).add(s.misses);
    registry.counter(obs::metric::wireSharedEncodes)
        .add(s.sharedEncodes);
    registry.counter(obs::metric::wireBytesDeduplicated)
        .add(s.bytesDeduplicated);
    // Liveness census values are levels: gauges, merged by max.
    registry.gauge(obs::metric::wireOutstandingSegments)
        .noteMax(double(s.outstanding));
    registry.gauge(obs::metric::wirePeakOutstandingSegments)
        .noteMax(double(s.peakOutstanding));
}

void
BufferPool::resetStats()
{
    totalAcquires.store(0, std::memory_order_relaxed);
    totalHits.store(0, std::memory_order_relaxed);
    totalMisses.store(0, std::memory_order_relaxed);
    totalSharedEncodes.store(0, std::memory_order_relaxed);
    totalBytesDeduplicated.store(0, std::memory_order_relaxed);
    peakLiveSegments.store(liveSegments.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

void
BufferPool::trim()
{
    for (auto &cls : free_)
        cls.clear();
}

} // namespace bgpbench::net
