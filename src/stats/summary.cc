#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

namespace bgpbench::stats
{

double
percentile(const std::vector<double> &sorted_samples, double q)
{
    if (sorted_samples.empty())
        return 0.0;
    if (q <= 0)
        return sorted_samples.front();
    if (q >= 1)
        return sorted_samples.back();
    double pos = q * double(sorted_samples.size() - 1);
    size_t lo = size_t(pos);
    double frac = pos - double(lo);
    if (lo + 1 >= sorted_samples.size())
        return sorted_samples.back();
    return sorted_samples[lo] * (1 - frac) +
           sorted_samples[lo + 1] * frac;
}

Summary
summarize(std::vector<double> samples)
{
    Summary s;
    if (samples.empty())
        return s;

    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    s.min = samples.front();
    s.max = samples.back();

    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean = sum / double(samples.size());

    double var = 0.0;
    for (double v : samples)
        var += (v - s.mean) * (v - s.mean);
    s.stddev = samples.size() > 1
                   ? std::sqrt(var / double(samples.size() - 1))
                   : 0.0;

    s.p50 = percentile(samples, 0.50);
    s.p90 = percentile(samples, 0.90);
    s.p99 = percentile(samples, 0.99);
    return s;
}

} // namespace bgpbench::stats
