/**
 * @file
 * Text output helpers for the benchmark harness: aligned tables,
 * CSV emission, and ASCII time-series charts approximating the
 * paper's figures in terminal output.
 */

#ifndef BGPBENCH_STATS_REPORT_HH
#define BGPBENCH_STATS_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "stats/time_series.hh"

namespace bgpbench::stats
{

/**
 * A simple fixed-width text table: set a header, add rows, print.
 * Columns are right-aligned except the first.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Add a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits after the point. */
std::string formatDouble(double value, int decimals = 1);

/**
 * Render a bucketed series as a horizontal-bar ASCII chart, one line
 * per bucket group, scaled to @p max_value (0 = auto).
 */
void printAsciiChart(std::ostream &os, const TimeSeries &series,
                     const std::string &unit, double max_value = 0.0,
                     size_t max_lines = 40);

/**
 * Render several aligned series as a column chart sharing a time
 * axis (one output row per bucket, one column per series) — the
 * textual analogue of the paper's stacked CPU-load plots.
 */
void printSeriesTable(std::ostream &os,
                      const std::vector<const TimeSeries *> &series,
                      size_t max_rows = 60);

/**
 * Deduplication counters of a hash-consing layer (the attribute
 * interner), reduced to plain numbers so this library stays free of
 * protocol dependencies.
 */
struct DedupReport
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t liveSets = 0;
    uint64_t bytesDeduplicated = 0;

    double
    hitRatio() const
    {
        return lookups ? double(hits) / double(lookups) : 0.0;
    }
};

/** Print @p report as an aligned table titled @p title. */
void printDedupReport(std::ostream &os, const std::string &title,
                      const DedupReport &report);

/**
 * Wire-path counters of the zero-copy segment pipeline (buffer-pool
 * reuse plus encode-once fan-out), reduced to plain numbers so this
 * library stays free of protocol dependencies.
 */
struct WireReport
{
    /** Buffer acquisitions the pool served. */
    uint64_t acquires = 0;
    /** Acquisitions recycled from a free list. */
    uint64_t poolHits = 0;
    /** Acquisitions that had to allocate. */
    uint64_t poolMisses = 0;
    /** Transmissions that shared an already-encoded segment. */
    uint64_t sharedEncodes = 0;
    /** Wire bytes those shares avoided re-encoding/copying. */
    uint64_t bytesDeduplicated = 0;
    /** Segments alive at report time. */
    uint64_t outstandingSegments = 0;
    /** High-water mark of live segments. */
    uint64_t peakOutstandingSegments = 0;

    double
    poolHitRatio() const
    {
        return acquires ? double(poolHits) / double(acquires) : 0.0;
    }
};

/** Print @p report as an aligned table titled @p title. */
void printWireReport(std::ostream &os, const std::string &title,
                     const WireReport &report);

class JsonWriter;

/**
 * Execution counters of one worker shard of a parallel run, reduced
 * to plain numbers so this library stays free of simulation
 * dependencies.
 */
struct ShardUtilization
{
    /** Routers owned by the shard. */
    uint64_t nodes = 0;
    /** Events the shard's queue executed. */
    uint64_t events = 0;
    /** Host nanoseconds the worker spent executing events. */
    uint64_t busyHostNs = 0;
};

/** Shard layout and per-shard utilization of one parallel run. */
struct ParallelReport
{
    /** Worker threads requested (1 = sequential path). */
    uint64_t jobs = 1;
    uint64_t shards = 1;
    uint64_t cutLinks = 0;
    double edgeCutRatio = 0.0;
    /** Largest shard over the ideal node share, minus one. */
    double nodeSkew = 0.0;
    /** Conservative lookahead window, ns (0 = sequential). */
    uint64_t lookaheadNs = 0;
    /** Synchronization windows executed. */
    uint64_t windows = 0;
    std::vector<ShardUtilization> perShard;

    /**
     * Imbalance of executed events across shards: the busiest
     * shard's share over the ideal 1/shards share, minus one.
     */
    double eventImbalance() const;
};

/** Emit @p report as one "parallel" object field of @p json. */
void writeParallelReport(JsonWriter &json,
                         const ParallelReport &report);

/** Print @p report as an aligned table. */
void printParallelReport(std::ostream &os,
                         const ParallelReport &report);

/**
 * Warn that a partitioner produced shards with badly uneven node
 * counts (the parallel engine degrades instead of failing; this
 * makes the degradation visible rather than silent).
 */
void printImbalanceWarning(std::ostream &os, uint64_t shards,
                           double node_skew);

} // namespace bgpbench::stats

#endif // BGPBENCH_STATS_REPORT_HH
