/**
 * @file
 * Text output helpers for the benchmark harness: aligned tables,
 * CSV emission, and ASCII time-series charts approximating the
 * paper's figures in terminal output.
 */

#ifndef BGPBENCH_STATS_REPORT_HH
#define BGPBENCH_STATS_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "stats/time_series.hh"

namespace bgpbench::stats
{

/**
 * A simple fixed-width text table: set a header, add rows, print.
 * Columns are right-aligned except the first.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Add a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits after the point. */
std::string formatDouble(double value, int decimals = 1);

/**
 * Render a bucketed series as a horizontal-bar ASCII chart, one line
 * per bucket group, scaled to @p max_value (0 = auto).
 */
void printAsciiChart(std::ostream &os, const TimeSeries &series,
                     const std::string &unit, double max_value = 0.0,
                     size_t max_lines = 40);

/**
 * Render several aligned series as a column chart sharing a time
 * axis (one output row per bucket, one column per series) — the
 * textual analogue of the paper's stacked CPU-load plots.
 */
void printSeriesTable(std::ostream &os,
                      const std::vector<const TimeSeries *> &series,
                      size_t max_rows = 60);

/**
 * Warn that a partitioner produced shards with badly uneven node
 * counts (the parallel engine degrades instead of failing; this
 * makes the degradation visible rather than silent).
 */
void printImbalanceWarning(std::ostream &os, uint64_t shards,
                           double node_skew);

} // namespace bgpbench::stats

#endif // BGPBENCH_STATS_REPORT_HH
