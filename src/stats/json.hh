/**
 * @file
 * Minimal deterministic JSON emission for machine-readable benchmark
 * reports (the BENCH_*.json trajectory files).
 *
 * The writer produces byte-identical output for identical inputs:
 * keys are emitted in call order, doubles are formatted with a fixed
 * printf conversion, and no locale-dependent formatting is used. That
 * determinism is what lets report files be diffed across runs to
 * detect regressions.
 */

#ifndef BGPBENCH_STATS_JSON_HH
#define BGPBENCH_STATS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bgpbench::stats
{

/**
 * Streaming JSON writer with comma/indentation bookkeeping.
 *
 * Usage:
 * @code
 *   JsonWriter json(os);
 *   json.beginObject();
 *   json.field("name", "ring");
 *   json.key("routers");
 *   json.beginArray();
 *   ...
 *   json.endArray();
 *   json.endObject();
 * @endcode
 *
 * Misuse (e.g., a value with no pending key inside an object) panics;
 * the writer is for trusted report code, not arbitrary data.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    /** @name Structure
     *  @{
     */
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** @} */

    /** Emit an object member key; the next value() belongs to it. */
    void key(const std::string &name);

    /** @name Values
     *  @{
     */
    void value(const std::string &text);
    void value(const char *text) { value(std::string(text)); }
    void value(double number);
    void value(uint64_t number);
    void value(int64_t number);
    void value(int number) { value(int64_t(number)); }
    void value(unsigned number) { value(uint64_t(number)); }
    void value(bool flag);
    /** @} */

    /**
     * Emit @p text verbatim as a value. For callers that need a
     * number rendering formatNumber() does not offer (e.g. fixed
     * decimal places via formatDouble); @p text must already be
     * valid JSON.
     */
    void rawNumber(const std::string &text);

    /** @name key() + value() in one call
     *  @{
     */
    template <typename T>
    void
    field(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }
    /** @} */

    /** Escape @p text per RFC 8259 and wrap it in quotes. */
    static std::string quote(const std::string &text);

    /** Fixed, locale-independent rendering of a double. */
    static std::string formatNumber(double number);

  private:
    enum class Scope : uint8_t
    {
        Object,
        Array,
    };

    /** Comma/newline bookkeeping before a new element. */
    void prepareValue();
    void indent();

    std::ostream &os_;
    std::vector<Scope> scopes_;
    /** True once the current scope has at least one element. */
    std::vector<bool> populated_;
    bool keyPending_ = false;
};

} // namespace bgpbench::stats

#endif // BGPBENCH_STATS_JSON_HH
