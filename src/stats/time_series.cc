#include "stats/time_series.hh"

#include <algorithm>

#include "net/logging.hh"

namespace bgpbench::stats
{

TimeSeries::TimeSeries(double bucket_seconds, std::string name)
    : bucketSeconds_(bucket_seconds), name_(std::move(name))
{
    if (bucket_seconds <= 0)
        fatal("time series bucket width must be positive");
}

void
TimeSeries::add(double at_seconds, double value)
{
    if (at_seconds < 0)
        at_seconds = 0;
    size_t index = size_t(at_seconds / bucketSeconds_);
    if (index >= buckets_.size())
        buckets_.resize(index + 1, 0.0);
    buckets_[index] += value;
}

double
TimeSeries::bucket(size_t index) const
{
    return index < buckets_.size() ? buckets_[index] : 0.0;
}

double
TimeSeries::total() const
{
    double sum = 0.0;
    for (double b : buckets_)
        sum += b;
    return sum;
}

double
TimeSeries::peak() const
{
    double best = 0.0;
    for (double b : buckets_)
        best = std::max(best, b);
    return best;
}

} // namespace bgpbench::stats
