#include "stats/report.hh"

#include <algorithm>
#include <cstdio>

#include "net/logging.hh"

namespace bgpbench::stats
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        fatal("table row width mismatch");
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            if (c == 0) {
                os << row[c]
                   << std::string(width[c] - row[c].size(), ' ');
            } else {
                os << std::string(width[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };

    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

void
printAsciiChart(std::ostream &os, const TimeSeries &series,
                const std::string &unit, double max_value,
                size_t max_lines)
{
    constexpr size_t bar_width = 50;
    size_t buckets = series.bucketCount();
    if (buckets == 0) {
        os << "(empty series)\n";
        return;
    }

    if (max_value <= 0)
        max_value = std::max(series.peak(), 1e-9);

    // Group buckets so at most max_lines lines are printed.
    size_t group = (buckets + max_lines - 1) / max_lines;
    if (group == 0)
        group = 1;

    os << series.name() << " (" << unit << ", peak "
       << formatDouble(series.peak(), 1) << ")\n";
    for (size_t start = 0; start < buckets; start += group) {
        double sum = 0.0;
        size_t n = 0;
        for (size_t i = start; i < std::min(start + group, buckets);
             ++i, ++n) {
            sum += series.bucket(i);
        }
        double value = n ? sum / double(n) : 0.0;
        size_t bar = size_t(std::min(1.0, value / max_value) *
                            double(bar_width));
        double t = double(start) * series.bucketSeconds();
        os << "  " << formatDouble(t, 0) << "s\t|"
           << std::string(bar, '#')
           << std::string(bar_width - bar, ' ') << "| "
           << formatDouble(value, 1) << '\n';
    }
}

void
printSeriesTable(std::ostream &os,
                 const std::vector<const TimeSeries *> &series,
                 size_t max_rows)
{
    if (series.empty())
        return;

    size_t buckets = 0;
    for (const auto *s : series)
        buckets = std::max(buckets, s->bucketCount());
    if (buckets == 0) {
        os << "(empty series)\n";
        return;
    }

    size_t group = (buckets + max_rows - 1) / max_rows;
    if (group == 0)
        group = 1;

    os << "time(s)";
    for (const auto *s : series)
        os << '\t' << s->name();
    os << '\n';

    for (size_t start = 0; start < buckets; start += group) {
        double t = double(start) * series[0]->bucketSeconds();
        os << formatDouble(t, 0);
        for (const auto *s : series) {
            double sum = 0.0;
            size_t n = 0;
            for (size_t i = start;
                 i < std::min(start + group, buckets); ++i, ++n) {
                sum += s->bucket(i);
            }
            os << '\t' << formatDouble(n ? sum / double(n) : 0.0, 1);
        }
        os << '\n';
    }
}

void
printImbalanceWarning(std::ostream &os, uint64_t shards,
                      double node_skew)
{
    os << "warning: partitioner produced an imbalanced cut: largest "
          "of "
       << shards << " shards holds "
       << formatDouble(node_skew * 100.0, 1)
       << "% more nodes than its fair share; parallel speedup will "
          "degrade\n";
}

} // namespace bgpbench::stats
