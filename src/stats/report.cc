#include "stats/report.hh"

#include <algorithm>
#include <cstdio>

#include "net/logging.hh"
#include "stats/json.hh"

namespace bgpbench::stats
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        fatal("table row width mismatch");
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            if (c == 0) {
                os << row[c]
                   << std::string(width[c] - row[c].size(), ' ');
            } else {
                os << std::string(width[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };

    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

void
printAsciiChart(std::ostream &os, const TimeSeries &series,
                const std::string &unit, double max_value,
                size_t max_lines)
{
    constexpr size_t bar_width = 50;
    size_t buckets = series.bucketCount();
    if (buckets == 0) {
        os << "(empty series)\n";
        return;
    }

    if (max_value <= 0)
        max_value = std::max(series.peak(), 1e-9);

    // Group buckets so at most max_lines lines are printed.
    size_t group = (buckets + max_lines - 1) / max_lines;
    if (group == 0)
        group = 1;

    os << series.name() << " (" << unit << ", peak "
       << formatDouble(series.peak(), 1) << ")\n";
    for (size_t start = 0; start < buckets; start += group) {
        double sum = 0.0;
        size_t n = 0;
        for (size_t i = start; i < std::min(start + group, buckets);
             ++i, ++n) {
            sum += series.bucket(i);
        }
        double value = n ? sum / double(n) : 0.0;
        size_t bar = size_t(std::min(1.0, value / max_value) *
                            double(bar_width));
        double t = double(start) * series.bucketSeconds();
        os << "  " << formatDouble(t, 0) << "s\t|"
           << std::string(bar, '#')
           << std::string(bar_width - bar, ' ') << "| "
           << formatDouble(value, 1) << '\n';
    }
}

void
printSeriesTable(std::ostream &os,
                 const std::vector<const TimeSeries *> &series,
                 size_t max_rows)
{
    if (series.empty())
        return;

    size_t buckets = 0;
    for (const auto *s : series)
        buckets = std::max(buckets, s->bucketCount());
    if (buckets == 0) {
        os << "(empty series)\n";
        return;
    }

    size_t group = (buckets + max_rows - 1) / max_rows;
    if (group == 0)
        group = 1;

    os << "time(s)";
    for (const auto *s : series)
        os << '\t' << s->name();
    os << '\n';

    for (size_t start = 0; start < buckets; start += group) {
        double t = double(start) * series[0]->bucketSeconds();
        os << formatDouble(t, 0);
        for (const auto *s : series) {
            double sum = 0.0;
            size_t n = 0;
            for (size_t i = start;
                 i < std::min(start + group, buckets); ++i, ++n) {
                sum += s->bucket(i);
            }
            os << '\t' << formatDouble(n ? sum / double(n) : 0.0, 1);
        }
        os << '\n';
    }
}

void
printDedupReport(std::ostream &os, const std::string &title,
                 const DedupReport &report)
{
    TextTable table({title, "value"});
    table.addRow({"lookups", std::to_string(report.lookups)});
    table.addRow({"hits", std::to_string(report.hits)});
    table.addRow({"misses", std::to_string(report.misses)});
    table.addRow(
        {"hit ratio", formatDouble(report.hitRatio() * 100.0, 1) + "%"});
    table.addRow({"live sets", std::to_string(report.liveSets)});
    table.addRow({"bytes deduplicated",
                  std::to_string(report.bytesDeduplicated)});
    table.print(os);
}

void
printWireReport(std::ostream &os, const std::string &title,
                const WireReport &report)
{
    TextTable table({title, "value"});
    table.addRow({"pool acquires", std::to_string(report.acquires)});
    table.addRow({"pool hits", std::to_string(report.poolHits)});
    table.addRow({"pool misses", std::to_string(report.poolMisses)});
    table.addRow({"pool hit ratio",
                  formatDouble(report.poolHitRatio() * 100.0, 1) +
                      "%"});
    table.addRow({"shared encodes",
                  std::to_string(report.sharedEncodes)});
    table.addRow({"bytes deduplicated",
                  std::to_string(report.bytesDeduplicated)});
    table.addRow({"outstanding segments",
                  std::to_string(report.outstandingSegments)});
    table.addRow({"peak outstanding segments",
                  std::to_string(report.peakOutstandingSegments)});
    table.print(os);
}

double
ParallelReport::eventImbalance() const
{
    if (perShard.empty())
        return 0.0;
    uint64_t total = 0;
    uint64_t busiest = 0;
    for (const ShardUtilization &shard : perShard) {
        total += shard.events;
        busiest = std::max(busiest, shard.events);
    }
    if (total == 0)
        return 0.0;
    double ideal = double(total) / double(perShard.size());
    return double(busiest) / ideal - 1.0;
}

void
writeParallelReport(JsonWriter &json, const ParallelReport &report)
{
    json.key("parallel");
    json.beginObject();
    json.field("jobs", report.jobs);
    json.field("shards", report.shards);
    json.field("cut_links", report.cutLinks);
    json.field("edge_cut_ratio", report.edgeCutRatio);
    json.field("node_skew", report.nodeSkew);
    json.field("lookahead_ns", report.lookaheadNs);
    json.field("windows", report.windows);
    json.field("event_imbalance", report.eventImbalance());
    json.key("shard_utilization");
    json.beginArray();
    for (const ShardUtilization &shard : report.perShard) {
        json.beginObject();
        json.field("nodes", shard.nodes);
        json.field("events", shard.events);
        json.field("busy_host_ns", shard.busyHostNs);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
printParallelReport(std::ostream &os, const ParallelReport &report)
{
    os << "parallel: " << report.jobs << " job(s), " << report.shards
       << " shard(s), " << report.cutLinks << " cut link(s) ("
       << formatDouble(report.edgeCutRatio * 100.0, 1)
       << "% of links), lookahead "
       << formatDouble(double(report.lookaheadNs) / 1e6, 3) << " ms, "
       << report.windows << " window(s), event imbalance "
       << formatDouble(report.eventImbalance() * 100.0, 1) << "%\n";
    TextTable table({"shard", "nodes", "events", "busy host ms"});
    for (size_t s = 0; s < report.perShard.size(); ++s) {
        const ShardUtilization &shard = report.perShard[s];
        table.addRow(
            {std::to_string(s), std::to_string(shard.nodes),
             std::to_string(shard.events),
             formatDouble(double(shard.busyHostNs) / 1e6, 2)});
    }
    table.print(os);
}

void
printImbalanceWarning(std::ostream &os, uint64_t shards,
                      double node_skew)
{
    os << "warning: partitioner produced an imbalanced cut: largest "
          "of "
       << shards << " shards holds "
       << formatDouble(node_skew * 100.0, 1)
       << "% more nodes than its fair share; parallel speedup will "
          "degrade\n";
}

} // namespace bgpbench::stats
