/**
 * @file
 * Fixed-bucket time series for measurement output (CPU load over
 * time, forwarding rate over time — Figures 3, 4, and 6).
 */

#ifndef BGPBENCH_STATS_TIME_SERIES_HH
#define BGPBENCH_STATS_TIME_SERIES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bgpbench::stats
{

/**
 * Accumulating time series: values added at a timestamp land in the
 * bucket covering it; each bucket holds the sum of its samples.
 *
 * Time is in seconds (double) so the stats layer stays independent of
 * the simulator's clock representation.
 */
class TimeSeries
{
  public:
    /**
     * @param bucket_seconds Width of each bucket.
     * @param name Series label used in reports.
     */
    explicit TimeSeries(double bucket_seconds = 1.0,
                        std::string name = "");

    const std::string &name() const { return name_; }
    double bucketSeconds() const { return bucketSeconds_; }

    /** Add @p value at time @p at_seconds. */
    void add(double at_seconds, double value);

    /** Number of buckets (index of last touched bucket + 1). */
    size_t bucketCount() const { return buckets_.size(); }

    /** Sum accumulated in bucket @p index (0 if untouched). */
    double bucket(size_t index) const;

    /** Bucket sum divided by the bucket width (a rate). */
    double
    rate(size_t index) const
    {
        return bucket(index) / bucketSeconds_;
    }

    /** Sum over all buckets. */
    double total() const;

    /** Largest bucket value. */
    double peak() const;

    const std::vector<double> &buckets() const { return buckets_; }

  private:
    double bucketSeconds_;
    std::string name_;
    std::vector<double> buckets_;
};

} // namespace bgpbench::stats

#endif // BGPBENCH_STATS_TIME_SERIES_HH
