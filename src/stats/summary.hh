/**
 * @file
 * Summary statistics over a sample set.
 */

#ifndef BGPBENCH_STATS_SUMMARY_HH
#define BGPBENCH_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace bgpbench::stats
{

/** Summary of a sample set. */
struct Summary
{
    size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double stddev = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Compute a Summary over @p samples (empty input yields zeros). */
Summary summarize(std::vector<double> samples);

/**
 * Linear-interpolated percentile of sorted @p sorted_samples;
 * @p q in [0, 1].
 */
double percentile(const std::vector<double> &sorted_samples, double q);

} // namespace bgpbench::stats

#endif // BGPBENCH_STATS_SUMMARY_HH
