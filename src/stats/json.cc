#include "stats/json.hh"

#include <cmath>
#include <cstdio>

#include "net/logging.hh"

namespace bgpbench::stats
{

std::string
JsonWriter::quote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
JsonWriter::formatNumber(double number)
{
    if (!std::isfinite(number))
        return "null";
    // Integral values print without a fraction so counters read
    // naturally; everything else uses a fixed %.6g conversion, which
    // is deterministic for identical inputs.
    if (number == std::floor(number) && std::fabs(number) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", number);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", number);
    return buf;
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (size_t i = 0; i < scopes_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepareValue()
{
    if (scopes_.empty())
        return;
    if (scopes_.back() == Scope::Object) {
        panicIf(!keyPending_, "JSON value in object without key");
        keyPending_ = false;
        return;
    }
    if (populated_.back())
        os_ << ',';
    populated_.back() = true;
    indent();
}

void
JsonWriter::key(const std::string &name)
{
    panicIf(scopes_.empty() || scopes_.back() != Scope::Object,
            "JSON key outside object");
    panicIf(keyPending_, "two JSON keys in a row");
    if (populated_.back())
        os_ << ',';
    populated_.back() = true;
    indent();
    os_ << quote(name) << ": ";
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    prepareValue();
    os_ << '{';
    scopes_.push_back(Scope::Object);
    populated_.push_back(false);
}

void
JsonWriter::endObject()
{
    panicIf(scopes_.empty() || scopes_.back() != Scope::Object,
            "unbalanced JSON endObject");
    panicIf(keyPending_, "JSON object closed with dangling key");
    bool had_members = populated_.back();
    scopes_.pop_back();
    populated_.pop_back();
    if (had_members)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    prepareValue();
    os_ << '[';
    scopes_.push_back(Scope::Array);
    populated_.push_back(false);
}

void
JsonWriter::endArray()
{
    panicIf(scopes_.empty() || scopes_.back() != Scope::Array,
            "unbalanced JSON endArray");
    bool had_members = populated_.back();
    scopes_.pop_back();
    populated_.pop_back();
    if (had_members)
        indent();
    os_ << ']';
}

void
JsonWriter::value(const std::string &text)
{
    prepareValue();
    os_ << quote(text);
}

void
JsonWriter::value(double number)
{
    prepareValue();
    os_ << formatNumber(number);
}

void
JsonWriter::value(uint64_t number)
{
    prepareValue();
    os_ << number;
}

void
JsonWriter::value(int64_t number)
{
    prepareValue();
    os_ << number;
}

void
JsonWriter::value(bool flag)
{
    prepareValue();
    os_ << (flag ? "true" : "false");
}

void
JsonWriter::rawNumber(const std::string &text)
{
    prepareValue();
    os_ << text;
}

} // namespace bgpbench::stats
