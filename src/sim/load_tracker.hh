/**
 * @file
 * Per-process CPU-load sampling, the instrumentation behind the
 * paper's Figures 3, 4, and 6 (CPU load of each XORP process and of
 * interrupt/system/user contexts over time).
 */

#ifndef BGPBENCH_SIM_LOAD_TRACKER_HH
#define BGPBENCH_SIM_LOAD_TRACKER_HH

#include <memory>
#include <vector>

#include "sim/process.hh"
#include "sim/time.hh"
#include "stats/time_series.hh"

namespace bgpbench::sim
{

/**
 * Samples the cycles each tracked process consumed per interval and
 * converts them to percent-of-one-core load, as `top` would report.
 */
class CpuLoadTracker
{
  public:
    /**
     * @param core_cycles_per_second Capacity of one core; 100% load
     *        means a full core consumed.
     * @param interval_seconds Sampling interval.
     */
    CpuLoadTracker(double core_cycles_per_second,
                   double interval_seconds = 1.0)
        : coreCyclesPerSecond_(core_cycles_per_second),
          intervalSeconds_(interval_seconds)
    {}

    /** Track @p process; must outlive the tracker. */
    void
    track(SimProcess *process)
    {
        tracked_.push_back(process);
        series_.push_back(std::make_unique<stats::TimeSeries>(
            intervalSeconds_, process->name()));
    }

    double intervalSeconds() const { return intervalSeconds_; }

    /**
     * Record one sample for every tracked process. Call exactly once
     * per interval (the router schedules this as a periodic event).
     */
    void
    sample(SimTime now)
    {
        double t = toSeconds(now);
        double capacity = coreCyclesPerSecond_ * intervalSeconds_;
        for (size_t i = 0; i < tracked_.size(); ++i) {
            double cycles = double(tracked_[i]->takeIntervalCycles());
            double pct =
                capacity > 0 ? cycles / capacity * 100.0 : 0.0;
            // Sample the *preceding* interval: attribute to its start.
            double start = t >= intervalSeconds_
                               ? t - intervalSeconds_
                               : 0.0;
            series_[i]->add(start, pct);
        }
    }

    size_t trackedCount() const { return tracked_.size(); }

    /** Series of process @p index, in track() order. */
    const stats::TimeSeries &
    series(size_t index) const
    {
        return *series_[index];
    }

    /** All series, for report printing. */
    std::vector<const stats::TimeSeries *>
    allSeries() const
    {
        std::vector<const stats::TimeSeries *> out;
        out.reserve(series_.size());
        for (const auto &s : series_)
            out.push_back(s.get());
        return out;
    }

  private:
    double coreCyclesPerSecond_;
    double intervalSeconds_;
    std::vector<SimProcess *> tracked_;
    std::vector<std::unique_ptr<stats::TimeSeries>> series_;
};

} // namespace bgpbench::sim

#endif // BGPBENCH_SIM_LOAD_TRACKER_HH
