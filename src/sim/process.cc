#include "sim/process.hh"

namespace bgpbench::sim
{

uint64_t
SimProcess::grant(uint64_t budget)
{
    uint64_t consumed = 0;
    while (!jobs_.empty()) {
        Job &job = jobs_.front();
        uint64_t available = budget - consumed;
        if (job.remaining > available) {
            job.remaining -= available;
            consumed = budget;
            break;
        }
        consumed += job.remaining;
        job.remaining = 0;
        // Move the closure out before popping: apply() may post new
        // jobs to this very process and invalidate the reference.
        auto apply = std::move(job.apply);
        jobs_.pop_front();
        ++counters_.jobsCompleted;
        if (apply)
            apply();
        if (consumed == budget && !jobs_.empty())
            break;
    }
    counters_.cyclesConsumed += consumed;
    intervalCycles_ += consumed;
    return consumed;
}

} // namespace bgpbench::sim
