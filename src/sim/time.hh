/**
 * @file
 * Virtual time for the discrete-event simulation.
 */

#ifndef BGPBENCH_SIM_TIME_HH
#define BGPBENCH_SIM_TIME_HH

#include <cstdint>

namespace bgpbench::sim
{

/** Simulated time in nanoseconds since simulation start. */
using SimTime = uint64_t;

/** Sentinel for "never". */
constexpr SimTime simTimeNever = ~SimTime(0);

constexpr SimTime
nsFromUs(uint64_t us)
{
    return us * 1'000ull;
}

constexpr SimTime
nsFromMs(uint64_t ms)
{
    return ms * 1'000'000ull;
}

constexpr SimTime
nsFromSec(double sec)
{
    return SimTime(sec * 1e9);
}

constexpr double
toSeconds(SimTime t)
{
    return double(t) / 1e9;
}

} // namespace bgpbench::sim

#endif // BGPBENCH_SIM_TIME_HH
