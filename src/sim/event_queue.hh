/**
 * @file
 * Discrete-event simulator core: a time-ordered event queue.
 */

#ifndef BGPBENCH_SIM_EVENT_QUEUE_HH
#define BGPBENCH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hh"

namespace bgpbench::sim
{

/**
 * The simulator: an event queue with a virtual clock.
 *
 * Events at equal timestamps execute in scheduling order (FIFO),
 * which makes runs fully deterministic.
 */
class Simulator
{
  public:
    using Handler = std::function<void()>;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Schedule @p handler at absolute time @p at (>= now). */
    void schedule(SimTime at, Handler handler);

    /** Schedule @p handler @p delay after now. */
    void
    scheduleIn(SimTime delay, Handler handler)
    {
        schedule(now_ + delay, std::move(handler));
    }

    /**
     * Schedule @p handler every @p period, starting one period from
     * now, until it returns false.
     */
    void scheduleEvery(SimTime period, std::function<bool()> handler);

    /** Run all events with time <= @p until; clock ends at @p until. */
    void runUntil(SimTime until);

    /** Run until the queue is empty. */
    void runUntilIdle();

    /** Execute exactly the next event; false if the queue is empty. */
    bool step();

    /** Events waiting. */
    size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed. */
    uint64_t eventsExecuted() const { return executed_; }

    /** Time of the earliest pending event, simTimeNever if none. */
    SimTime nextEventTime() const;

  private:
    struct Event
    {
        SimTime time;
        uint64_t seq;
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace bgpbench::sim

#endif // BGPBENCH_SIM_EVENT_QUEUE_HH
