/**
 * @file
 * Discrete-event simulator core: a time-ordered event queue.
 */

#ifndef BGPBENCH_SIM_EVENT_QUEUE_HH
#define BGPBENCH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hh"

namespace bgpbench::sim
{

/**
 * The simulator: an event queue with a virtual clock.
 *
 * Events are ordered by (time, key, sequence). The key is an
 * explicit tie-break rank for events at equal timestamps; events
 * scheduled without one get key 0 and therefore execute in
 * scheduling order (FIFO), which makes plain runs fully
 * deterministic.
 *
 * Keyed scheduling exists for the sharded topology engine: when the
 * same logical event set is split across several queues, a
 * scheduling-order tie-break would depend on which shard scheduled
 * an event first. A content-derived key (e.g. source node and
 * per-source message sequence) restores a total order that every
 * shard layout resolves identically.
 */
class Simulator
{
  public:
    using Handler = std::function<void()>;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Schedule @p handler at absolute time @p at (>= now), key 0. */
    void
    schedule(SimTime at, Handler handler)
    {
        schedule(at, 0, std::move(handler));
    }

    /**
     * Schedule @p handler at @p at with an explicit tie-break
     * @p key: events at equal times run in ascending key order,
     * equal (time, key) pairs in scheduling order.
     */
    void schedule(SimTime at, uint64_t key, Handler handler);

    /** Schedule @p handler @p delay after now. */
    void
    scheduleIn(SimTime delay, Handler handler)
    {
        schedule(now_ + delay, 0, std::move(handler));
    }

    /**
     * Schedule @p handler every @p period, starting one period from
     * now, until it returns false. The recurring closure is stored
     * once and re-armed in place — recurrences allocate nothing.
     */
    void scheduleEvery(SimTime period, std::function<bool()> handler);

    /** Run all events with time <= @p until; clock ends at @p until. */
    void runUntil(SimTime until);

    /**
     * Run all events with time strictly below @p end; the clock stays
     * at the last executed event (it does NOT advance to @p end).
     * This is the conservative-window primitive of the parallel
     * topology engine: a shard drains one lookahead window and leaves
     * boundary events for the next one.
     *
     * @return Number of events executed.
     */
    size_t runBefore(SimTime end);

    /** Run until the queue is empty. */
    void runUntilIdle();

    /** Execute exactly the next event; false if the queue is empty. */
    bool step();

    /** Events waiting. */
    size_t pendingEvents() const { return heap_.size(); }

    /**
     * Pre-size the event heap for @p additional more events. The
     * parallel engine's window barrier calls this before scheduling a
     * merged mailbox batch, so a large cross-shard delivery grows the
     * heap storage once instead of reallocating mid-loop.
     */
    void reserve(size_t additional);

    /** Total events executed. */
    uint64_t eventsExecuted() const { return executed_; }

    /** Time of the earliest pending event, simTimeNever if none. */
    SimTime nextEventTime() const;

  private:
    /**
     * A self-rescheduling periodic closure. The pending event holds
     * the only owning reference while armed, so the task is freed as
     * soon as its handler stops the recurrence.
     */
    struct PeriodicTask
    {
        SimTime period;
        std::function<bool()> handler;
    };

    struct Event
    {
        SimTime time;
        uint64_t key;
        uint64_t seq;
        Handler handler;
        /** Set instead of handler for scheduleEvery recurrences. */
        std::shared_ptr<PeriodicTask> periodic;
    };

    /**
     * Max-heap "later" order for std::push_heap/pop_heap, so the
     * heap front is the earliest (time, key, seq). The triple is a
     * total order (seq is unique), so the pop sequence — and with it
     * every simulation — is independent of the heap's internal
     * layout.
     */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            if (a.key != b.key)
                return a.key > b.key;
            return a.seq > b.seq;
        }
    };

    void push(Event event);
    /** Pop the front event and run it with the clock at its time. */
    void runFront();

    /** Binary heap via std::push_heap/pop_heap; front at index 0. */
    std::vector<Event> heap_;
    SimTime now_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace bgpbench::sim

#endif // BGPBENCH_SIM_EVENT_QUEUE_HH
