/**
 * @file
 * Quantum-stepped multi-core CPU model with priority scheduling.
 *
 * Models the processor designs of the paper's Table II: a single
 * core (Pentium III, XScale), or multiple cores with two hardware
 * threads each (dual-core Xeon with hyper-threading). Interrupt and
 * kernel work preempts user space; user processes migrate between
 * logical CPUs with sticky affinity and simple load balancing, like
 * the Linux 2.6 scheduler the paper's systems ran.
 */

#ifndef BGPBENCH_SIM_CPU_HH
#define BGPBENCH_SIM_CPU_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/process.hh"
#include "sim/time.hh"

namespace bgpbench::sim
{

/** Static description of a processor. */
struct CpuConfig
{
    int cores = 1;
    /** Hardware threads per core (2 = hyper-threading). */
    int threadsPerCore = 1;
    /** Cycles per second delivered by one core running one thread. */
    double cyclesPerSecond = 800e6;
    /**
     * Per-thread throughput factor when both SMT siblings are busy.
     * 0.65 means two busy threads deliver 1.3 cores worth of cycles.
     */
    double smtEfficiency = 0.65;

    int logicalCpus() const { return cores * threadsPerCore; }
};

/**
 * The CPU model. Owns no processes; the router composes processes
 * and steps the model once per scheduling quantum.
 */
class CpuModel
{
  public:
    explicit CpuModel(CpuConfig config);

    const CpuConfig &config() const { return config_; }

    /**
     * Register a process. Pinned processes must name a valid logical
     * CPU. Processes must outlive the model.
     */
    void addProcess(SimProcess *process);

    /**
     * Run one scheduling quantum of @p quantum nanoseconds:
     * distributes the quantum's cycles over runnable processes by
     * priority and core placement.
     */
    void step(SimTime quantum);

    /**
     * Utilisation of the busiest logical CPU in the last quantum,
     * in [0, 1].
     */
    double lastQuantumPeakUtilisation() const { return peakUtil_; }

    /** Aggregate utilisation of all logical CPUs in the last quantum. */
    double lastQuantumTotalUtilisation() const { return totalUtil_; }

    /** Logical CPU a process last ran on (-1 if never placed). */
    int cpuOf(const SimProcess *process) const;

    /** True if any registered process has queued work. */
    bool anyRunnable() const;

    /** Total cycles one core delivers per second. */
    double coreCyclesPerSecond() const
    {
        return config_.cyclesPerSecond;
    }

  private:
    /** Assign runnable, unpinned processes to logical CPUs. */
    void place();

    CpuConfig config_;
    std::vector<SimProcess *> processes_;
    std::unordered_map<const SimProcess *, int> placement_;
    double peakUtil_ = 0.0;
    double totalUtil_ = 0.0;
};

} // namespace bgpbench::sim

#endif // BGPBENCH_SIM_CPU_HH
