#include "sim/cpu.hh"

#include <algorithm>
#include <cmath>

#include "net/logging.hh"

namespace bgpbench::sim
{

CpuModel::CpuModel(CpuConfig config)
    : config_(config)
{
    if (config_.cores < 1 || config_.threadsPerCore < 1)
        fatal("CPU must have at least one core and thread");
    if (config_.cyclesPerSecond <= 0)
        fatal("CPU speed must be positive");
    if (config_.smtEfficiency <= 0 || config_.smtEfficiency > 1.0)
        fatal("SMT efficiency must be in (0, 1]");
}

void
CpuModel::addProcess(SimProcess *process)
{
    panicIf(process == nullptr, "null process");
    if (process->pinnedCpu() >= config_.logicalCpus())
        fatal("process pinned to nonexistent CPU");
    processes_.push_back(process);
    if (process->pinnedCpu() >= 0)
        placement_[process] = process->pinnedCpu();
}

int
CpuModel::cpuOf(const SimProcess *process) const
{
    auto it = placement_.find(process);
    return it == placement_.end() ? -1 : it->second;
}

bool
CpuModel::anyRunnable() const
{
    return std::any_of(processes_.begin(), processes_.end(),
                       [](const SimProcess *p) {
                           return p->runnable();
                       });
}

void
CpuModel::place()
{
    int n_cpus = config_.logicalCpus();
    std::vector<int> load(n_cpus, 0);

    // Count pinned and already-placed runnable processes first.
    std::vector<SimProcess *> unplaced;
    for (SimProcess *p : processes_) {
        if (!p->runnable())
            continue;
        auto it = placement_.find(p);
        if (it != placement_.end())
            ++load[it->second];
        else
            unplaced.push_back(p);
    }

    // New runnable processes go to the least-loaded logical CPU,
    // spreading across physical cores before doubling up on SMT
    // siblings (as the Linux scheduler's domains do).
    int threads = config_.threadsPerCore;
    auto core_load = [&](int cpu) {
        int core = cpu / threads;
        int sum = 0;
        for (int t = 0; t < threads; ++t)
            sum += load[size_t(core * threads + t)];
        return sum;
    };
    for (SimProcess *p : unplaced) {
        int best = 0;
        for (int c = 1; c < n_cpus; ++c) {
            int cl = core_load(c);
            int bl = core_load(best);
            if (cl < bl || (cl == bl && load[c] < load[best]))
                best = c;
        }
        placement_[p] = best;
        ++load[best];
    }

    // Simple rebalancing: migrate an unpinned process from the most
    // loaded CPU to the least loaded while the imbalance exceeds one.
    for (int round = 0; round < n_cpus * 2; ++round) {
        auto max_it = std::max_element(load.begin(), load.end());
        auto min_it = std::min_element(load.begin(), load.end());
        if (*max_it - *min_it <= 1)
            break;
        int from = int(max_it - load.begin());
        int to = int(min_it - load.begin());
        bool moved = false;
        for (SimProcess *p : processes_) {
            if (!p->runnable() || p->pinnedCpu() >= 0)
                continue;
            auto it = placement_.find(p);
            if (it != placement_.end() && it->second == from) {
                it->second = to;
                --load[from];
                ++load[to];
                moved = true;
                break;
            }
        }
        if (!moved)
            break;
    }
}

void
CpuModel::step(SimTime quantum)
{
    place();

    int n_cpus = config_.logicalCpus();
    int threads = config_.threadsPerCore;
    double quantum_sec = toSeconds(quantum);
    double core_cycles = config_.cyclesPerSecond * quantum_sec;

    // Group runnable processes per logical CPU.
    std::vector<std::vector<SimProcess *>> run_queue(n_cpus);
    for (SimProcess *p : processes_) {
        if (!p->runnable())
            continue;
        run_queue[size_t(placement_.at(p))].push_back(p);
    }

    // Per-thread capacity depends on whether the SMT sibling is busy.
    std::vector<double> capacity(n_cpus, 0.0);
    for (int core = 0; core < config_.cores; ++core) {
        int busy = 0;
        for (int t = 0; t < threads; ++t) {
            if (!run_queue[size_t(core * threads + t)].empty())
                ++busy;
        }
        double factor = busy > 1 ? config_.smtEfficiency : 1.0;
        for (int t = 0; t < threads; ++t)
            capacity[size_t(core * threads + t)] =
                core_cycles * factor;
    }

    double total_consumed = 0.0;
    double peak = 0.0;

    for (int cpu = 0; cpu < n_cpus; ++cpu) {
        auto &queue = run_queue[size_t(cpu)];
        if (queue.empty())
            continue;

        // Strict priority: sort by priority class; equal classes
        // time-share via water-filling.
        std::stable_sort(queue.begin(), queue.end(),
                         [](const SimProcess *a, const SimProcess *b) {
                             return a->schedPriority() <
                                    b->schedPriority();
                         });

        double remaining = capacity[size_t(cpu)];
        size_t i = 0;
        while (i < queue.size() && remaining >= 1.0) {
            // The group of equal-priority processes starting at i.
            size_t j = i;
            while (j < queue.size() &&
                   queue[j]->schedPriority() ==
                       queue[i]->schedPriority()) {
                ++j;
            }

            // Water-filling within the group: repeatedly split the
            // remaining budget equally among still-runnable members.
            for (int round = 0; round < 8 && remaining >= 1.0;
                 ++round) {
                size_t active = 0;
                for (size_t k = i; k < j; ++k) {
                    if (queue[k]->runnable())
                        ++active;
                }
                if (active == 0)
                    break;
                double share = remaining / double(active);
                double consumed_this_round = 0.0;
                for (size_t k = i; k < j; ++k) {
                    if (!queue[k]->runnable())
                        continue;
                    uint64_t granted =
                        queue[k]->grant(uint64_t(share));
                    consumed_this_round += double(granted);
                }
                remaining -= consumed_this_round;
                if (consumed_this_round < 1.0)
                    break;
            }
            i = j;
        }

        double used = capacity[size_t(cpu)] - remaining;
        total_consumed += used;
        double util = capacity[size_t(cpu)] > 0
                          ? used / capacity[size_t(cpu)]
                          : 0.0;
        peak = std::max(peak, util);
    }

    peakUtil_ = peak;
    totalUtil_ = core_cycles > 0
                     ? total_consumed / (core_cycles * n_cpus)
                     : 0.0;
}

} // namespace bgpbench::sim
