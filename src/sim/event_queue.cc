#include "sim/event_queue.hh"

#include <algorithm>
#include <memory>

#include "net/logging.hh"

namespace bgpbench::sim
{

void
Simulator::push(Event event)
{
    heap_.push_back(std::move(event));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
Simulator::reserve(size_t additional)
{
    heap_.reserve(heap_.size() + additional);
}

void
Simulator::schedule(SimTime at, uint64_t key, Handler handler)
{
    panicIf(at < now_, "event scheduled in the past");
    push(Event{at, key, nextSeq_++, std::move(handler), {}});
}

void
Simulator::scheduleEvery(SimTime period, std::function<bool()> handler)
{
    panicIf(period == 0, "periodic event with zero period");
    // The task lives in one heap block whose only owner is the
    // pending event; re-arming moves that shared_ptr into the next
    // event instead of wrapping the handler in a fresh std::function
    // every recurrence (runFront re-pushes the same block).
    // Drift-free: runFront sets the clock to the firing time before
    // invoking the handler, so anchoring the next firing at
    // now_ + period lands every recurrence on an exact period
    // multiple regardless of what else the handler schedules.
    auto task = std::make_shared<PeriodicTask>(
        PeriodicTask{period, std::move(handler)});
    push(Event{now_ + period, 0, nextSeq_++, {}, std::move(task)});
}

void
Simulator::runFront()
{
    // Move the front event out before running it; the handler may
    // schedule new events (which reallocate the heap storage).
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event event = std::move(heap_.back());
    heap_.pop_back();
    now_ = event.time;
    ++executed_;
    if (event.periodic) {
        if (event.periodic->handler()) {
            event.time = now_ + event.periodic->period;
            event.seq = nextSeq_++;
            push(std::move(event));
        }
        return;
    }
    event.handler();
}

bool
Simulator::step()
{
    if (heap_.empty())
        return false;
    runFront();
    return true;
}

void
Simulator::runUntil(SimTime until)
{
    while (!heap_.empty() && heap_.front().time <= until)
        runFront();
    if (now_ < until)
        now_ = until;
}

size_t
Simulator::runBefore(SimTime end)
{
    size_t ran = 0;
    while (!heap_.empty() && heap_.front().time < end) {
        runFront();
        ++ran;
    }
    return ran;
}

void
Simulator::runUntilIdle()
{
    while (step()) {
    }
}

SimTime
Simulator::nextEventTime() const
{
    return heap_.empty() ? simTimeNever : heap_.front().time;
}

} // namespace bgpbench::sim
