#include "sim/event_queue.hh"

#include <memory>

#include "net/logging.hh"

namespace bgpbench::sim
{

void
Simulator::schedule(SimTime at, uint64_t key, Handler handler)
{
    panicIf(at < now_, "event scheduled in the past");
    queue_.push(Event{at, key, nextSeq_++, std::move(handler), {}});
}

void
Simulator::scheduleEvery(SimTime period, std::function<bool()> handler)
{
    panicIf(period == 0, "periodic event with zero period");
    // The task lives in one heap block whose only owner is the
    // pending event; re-arming moves that shared_ptr into the next
    // event instead of wrapping the handler in a fresh std::function
    // every recurrence (runFront re-pushes the same block).
    // Drift-free: runFront sets the clock to the firing time before
    // invoking the handler, so anchoring the next firing at
    // now_ + period lands every recurrence on an exact period
    // multiple regardless of what else the handler schedules.
    auto task = std::make_shared<PeriodicTask>(
        PeriodicTask{period, std::move(handler)});
    queue_.push(
        Event{now_ + period, 0, nextSeq_++, {}, std::move(task)});
}

void
Simulator::runFront()
{
    // Copy out before pop; the handler may schedule new events.
    Event event = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++executed_;
    if (event.periodic) {
        if (event.periodic->handler()) {
            event.time = now_ + event.periodic->period;
            event.seq = nextSeq_++;
            queue_.push(std::move(event));
        }
        return;
    }
    event.handler();
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    runFront();
    return true;
}

void
Simulator::runUntil(SimTime until)
{
    while (!queue_.empty() && queue_.top().time <= until)
        runFront();
    if (now_ < until)
        now_ = until;
}

size_t
Simulator::runBefore(SimTime end)
{
    size_t ran = 0;
    while (!queue_.empty() && queue_.top().time < end) {
        runFront();
        ++ran;
    }
    return ran;
}

void
Simulator::runUntilIdle()
{
    while (step()) {
    }
}

SimTime
Simulator::nextEventTime() const
{
    return queue_.empty() ? simTimeNever : queue_.top().time;
}

} // namespace bgpbench::sim
