#include "sim/event_queue.hh"

#include <memory>

#include "net/logging.hh"

namespace bgpbench::sim
{

void
Simulator::schedule(SimTime at, Handler handler)
{
    panicIf(at < now_, "event scheduled in the past");
    queue_.push(Event{at, nextSeq_++, std::move(handler)});
}

void
Simulator::scheduleEvery(SimTime period, std::function<bool()> handler)
{
    panicIf(period == 0, "periodic event with zero period");
    // Self-rescheduling wrapper; stops when the handler returns false.
    // The wrapper captures itself weakly — the pending event holds the
    // only owning reference — so the closure is freed as soon as the
    // handler stops rescheduling.
    // Drift-free: the wrapper runs with now_ equal to its own firing
    // time (step() sets the clock before invoking the handler), so
    // scheduleIn(period, ...) anchors the next firing at exactly
    // k * period regardless of what else the handler schedules.
    auto wrapper = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = wrapper;
    *wrapper = [this, period, handler = std::move(handler), weak]() {
        if (!handler())
            return;
        if (auto self = weak.lock())
            scheduleIn(period, [self]() { (*self)(); });
    };
    scheduleIn(period, [wrapper]() { (*wrapper)(); });
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    // Copy out before pop; the handler may schedule new events.
    Event event = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.handler();
    return true;
}

void
Simulator::runUntil(SimTime until)
{
    while (!queue_.empty() && queue_.top().time <= until)
        step();
    if (now_ < until)
        now_ = until;
}

void
Simulator::runUntilIdle()
{
    while (step()) {
    }
}

SimTime
Simulator::nextEventTime() const
{
    return queue_.empty() ? simTimeNever : queue_.top().time;
}

} // namespace bgpbench::sim
