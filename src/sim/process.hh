/**
 * @file
 * A schedulable process consuming virtual CPU cycles.
 *
 * The simulated routers execute real protocol computation, but pace
 * it with virtual time: each unit of work is posted to a SimProcess
 * as a job carrying a cycle cost and a side-effect closure. The
 * closure runs only when the scheduler has granted the full cost, so
 * protocol state evolves at the speed of the simulated CPU, in
 * arrival order.
 */

#ifndef BGPBENCH_SIM_PROCESS_HH
#define BGPBENCH_SIM_PROCESS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/time.hh"

namespace bgpbench::sim
{

/** Scheduling class of a process; lower value preempts higher. */
namespace priority
{
/** Hardware interrupt context: preempts everything. */
constexpr int interrupt = 0;
/** Kernel softirq / bottom halves (forwarding, FIB writes). */
constexpr int kernel = 1;
/** Ordinary user-space processes (the routing suite). */
constexpr int user = 10;
} // namespace priority

/**
 * One schedulable entity: a named FIFO queue of cycle-costed jobs.
 */
class SimProcess
{
  public:
    struct Config
    {
        std::string name;
        int priority = priority::user;
        /** Pin to a logical CPU (-1 = migratable). */
        int pinnedCpu = -1;
    };

    struct Counters
    {
        uint64_t cyclesConsumed = 0;
        uint64_t jobsCompleted = 0;
        uint64_t jobsPosted = 0;
    };

    explicit SimProcess(Config config)
        : config_(std::move(config))
    {}

    const std::string &name() const { return config_.name; }
    int schedPriority() const { return config_.priority; }
    int pinnedCpu() const { return config_.pinnedCpu; }

    /**
     * Enqueue work.
     *
     * @param cycles Cost in CPU cycles.
     * @param apply Side effect executed when the cost has been paid;
     *        may post further jobs (IPC) including to other processes.
     */
    void
    post(uint64_t cycles, std::function<void()> apply = {})
    {
        jobs_.push_back(Job{cycles, std::move(apply)});
        ++counters_.jobsPosted;
    }

    /** True if the process has work wanting CPU. */
    bool runnable() const { return !jobs_.empty(); }

    /** Cycles of queued (unfinished) work. */
    uint64_t
    backlogCycles() const
    {
        uint64_t total = 0;
        for (const auto &job : jobs_)
            total += job.remaining;
        return total;
    }

    /** Number of queued jobs. */
    size_t backlogJobs() const { return jobs_.size(); }

    /**
     * Consume up to @p budget cycles of queued work, executing the
     * apply closures of jobs that complete.
     *
     * @return Cycles actually consumed (<= budget).
     */
    uint64_t grant(uint64_t budget);

    /** Drop all queued work without executing it. */
    void
    clearBacklog()
    {
        jobs_.clear();
    }

    const Counters &counters() const { return counters_; }

    /**
     * Cycles consumed since the last call to takeIntervalCycles();
     * used by the CPU-load tracker.
     */
    uint64_t
    takeIntervalCycles()
    {
        uint64_t cycles = intervalCycles_;
        intervalCycles_ = 0;
        return cycles;
    }

  private:
    struct Job
    {
        uint64_t remaining;
        std::function<void()> apply;
    };

    Config config_;
    std::deque<Job> jobs_;
    Counters counters_;
    uint64_t intervalCycles_ = 0;
};

} // namespace bgpbench::sim

#endif // BGPBENCH_SIM_PROCESS_HH
