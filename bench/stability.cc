/**
 * @file
 * Extension benchmark: churn and stability under sustained flapping.
 *
 * The paper's Phase-3 scenarios meter one speaker's incremental
 * throughput; this bench asks the stability literature's question at
 * topology scope: how much update churn does one injected fault cost
 * the *network*, and what do the two classic countermeasures — RFC
 * 2439 route flap damping and RFC 4271 MRAI batching — buy back? One
 * declarative ScenarioSpec (a link-flap train plus a beacon-prefix
 * train, period/duty/jitter fixed by the seed) is swept across the
 * MRAI x damping x topology-class grid (ring / mesh / scale-free /
 * Clos), and every cell reports the StabilityReport metrics:
 * updates-per-convergence, churn amplification, path-exploration
 * depth, and the damping suppress/reuse transition counts.
 *
 * Every cell is run at jobs = 1, 2, 4, 8 and the convergence +
 * stability reports must be byte-identical across all four — the
 * "deterministic" column. Wall time never appears in the output, so
 * BENCH_stability.json is byte-stable run to run.
 *
 *   --smoke                  shrink topologies and train length (CI)
 *   --damping-off-ablation   also assert, per topology class at
 *                            MRAI 0, that churn amplification
 *                            strictly increases when damping is
 *                            switched off (and that damping strictly
 *                            reduces updates-per-convergence)
 *
 * Overrides: BGPBENCH_FAST=1 behaves like --smoke.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "stats/json.hh"
#include "stats/report.hh"
#include "topo/scenario_spec.hh"
#include "topo/scenarios.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

constexpr size_t kJobs[] = {1, 2, 4, 8};

struct CellConfig
{
    std::string shapeName;
    size_t nodes = 0;
    uint64_t mraiMs = 0;
    bool damping = false;
};

struct CellResult
{
    CellConfig config;
    bool converged = false;
    bool deterministic = false;
    double convergenceTimeSec = 0.0;
    topo::StabilityReport stability;
};

/**
 * Topology plus the workload it can actually converge on. Ring, mesh
 * and scale-free use the every-node origination grid; the Clos fabric
 * originates at its ToRs only (a spine- or agg-originated prefix is
 * loop-rejected by the other members of its shared AS — RFC 7938
 * numbering — so only ToR routes are network-wide reachable). The
 * beacon train targets a node that actually originates.
 */
struct ShapeSetup
{
    topo::Topology topology;
    std::vector<std::pair<size_t, net::Prefix>> originations;
    size_t beaconNode = 0;
};

ShapeSetup
makeShape(const std::string &name, size_t nodes)
{
    ShapeSetup setup;
    if (name == "ring") {
        setup.topology = topo::Topology::ring(nodes);
    } else if (name == "mesh") {
        setup.topology = topo::Topology::fullMesh(nodes);
    } else if (name == "scale-free") {
        setup.topology = topo::Topology::barabasiAlbert(nodes, 2, 42);
    } else {
        // The canonical 10-node fabric of the ECMP suite: 2 spines,
        // 2 pods x (2 aggs + 2 tors); ToRs are nodes 4, 5, 8, 9.
        setup.topology = topo::Topology::clos({});
        for (size_t tor : {size_t(4), size_t(5), size_t(8),
                           size_t(9)}) {
            setup.originations.emplace_back(
                tor, topo::scenarioPrefix(tor, 0));
        }
        setup.beaconNode = 4;
    }
    return setup;
}

/**
 * The one churn scenario of the sweep: link 0 flaps in a 50% duty
 * train with a deterministic 10%-of-period jitter, while a beacon
 * prefix runs a down/up train offset by a quarter period so the two
 * churn sources interleave instead of coinciding.
 */
topo::ScenarioSpec
makeSpec(const CellConfig &cell, size_t cycles, uint64_t period_ms,
         size_t jobs)
{
    ShapeSetup setup = makeShape(cell.shapeName, cell.nodes);
    topo::ScenarioSpec spec;
    spec.name = "flap-train";
    spec.shape = cell.shapeName;
    spec.topology = std::move(setup.topology);
    spec.originations = std::move(setup.originations);
    spec.simConfig.jobs = jobs;
    if (cell.damping)
        spec.simConfig.damping = topo::churnDampingConfig();
    spec.simConfig.mraiNs = sim::nsFromMs(cell.mraiMs);

    sim::SimTime period = sim::nsFromMs(period_ms);
    spec.faults.linkFlapTrain(0, 0, period, 50, cycles, period / 10,
                              42);
    spec.faults.beaconTrain(setup.beaconNode, 0, period / 4, period,
                            cycles);
    return spec;
}

CellResult
runCell(const CellConfig &cell, size_t cycles, uint64_t period_ms)
{
    CellResult result;
    result.config = cell;
    std::string baseline;
    for (size_t jobs : kJobs) {
        topo::ScenarioResult run =
            topo::ScenarioRunner(makeSpec(cell, cycles, period_ms,
                                          jobs))
                .run();
        std::string rendering = run.convergence.toJson() + "\n" +
                                run.stability.toJson();
        if (jobs == kJobs[0]) {
            baseline = rendering;
            result.deterministic = true;
            result.converged = run.convergence.converged;
            result.convergenceTimeSec =
                run.convergence.convergenceTimeSec;
            result.stability = run.stability;
        } else if (rendering != baseline) {
            result.deterministic = false;
        }
    }
    return result;
}

const CellResult *
findCell(const std::vector<CellResult> &cells,
         const std::string &shape, uint64_t mrai_ms, bool damping)
{
    for (const CellResult &cell : cells) {
        if (cell.config.shapeName == shape &&
            cell.config.mraiMs == mrai_ms &&
            cell.config.damping == damping)
            return &cell;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = benchutil::fastMode();
    bool ablation = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--damping-off-ablation") {
            ablation = true;
        } else {
            std::cerr << "usage: stability [--smoke] "
                         "[--damping-off-ablation]\n";
            return 2;
        }
    }

    const size_t cycles = smoke ? 3 : 6;
    const uint64_t period_ms = 200;
    struct ShapeSize
    {
        const char *name;
        size_t nodes;
    };
    const std::vector<ShapeSize> shapes = {
        {"ring", smoke ? size_t(8) : size_t(16)},
        {"mesh", smoke ? size_t(6) : size_t(10)},
        {"scale-free", smoke ? size_t(8) : size_t(16)},
        {"clos", smoke ? size_t(8) : size_t(16)},
    };
    const uint64_t mrai_values[] = {0, 100};
    const bool damping_values[] = {false, true};

    std::cout << "Churn & stability sweep (flap + beacon trains, "
              << cycles << " cycles of " << period_ms
              << " ms, MRAI x damping x topology, jobs 1/2/4/8 "
                 "byte-compared)\n\n";

    std::vector<CellResult> cells;
    for (const ShapeSize &shape : shapes) {
        for (uint64_t mrai_ms : mrai_values) {
            for (bool damping : damping_values) {
                CellConfig cell;
                cell.shapeName = shape.name;
                cell.nodes = shape.nodes;
                cell.mraiMs = mrai_ms;
                cell.damping = damping;
                cells.push_back(runCell(cell, cycles, period_ms));
            }
        }
    }

    stats::TextTable table({"topology", "mrai ms", "damping",
                            "upd/conv", "churn amp", "expl max",
                            "suppress", "reuse", "report"});
    for (const CellResult &cell : cells) {
        table.addRow(
            {cell.config.shapeName,
             std::to_string(cell.config.mraiMs),
             cell.config.damping ? "on" : "off",
             stats::formatDouble(
                 cell.stability.updatesPerConvergence, 2),
             stats::formatDouble(cell.stability.churnAmplification,
                                 2),
             std::to_string(cell.stability.pathExplorationMax),
             std::to_string(cell.stability.dampingSuppressed),
             std::to_string(cell.stability.dampingReused),
             !cell.deterministic ? "DIVERGED"
             : cell.converged    ? "identical"
                                 : "NO CONVERGENCE"});
    }
    table.print(std::cout);

    std::ofstream json("BENCH_stability.json");
    stats::JsonWriter writer(json);
    writer.beginObject();
    writer.field("benchmark", "stability_sweep");
    writer.field("smoke", smoke);
    writer.field("flap_cycles", uint64_t(cycles));
    writer.field("flap_period_ms", period_ms);
    writer.key("jobs");
    writer.beginArray();
    for (size_t jobs : kJobs)
        writer.value(uint64_t(jobs));
    writer.endArray();
    writer.key("cells");
    writer.beginArray();
    for (const CellResult &cell : cells) {
        writer.beginObject();
        writer.field("topology", cell.config.shapeName);
        writer.field("nodes", uint64_t(cell.stability.nodes));
        writer.field("mrai_ms", cell.config.mraiMs);
        writer.field("damping", cell.config.damping);
        writer.field("converged", cell.converged);
        writer.field("deterministic", cell.deterministic);
        writer.field("convergence_time_s", cell.convergenceTimeSec);
        writer.key("stability");
        cell.stability.writeJson(writer);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    json << "\n";
    std::cout << "\nwrote BENCH_stability.json\n";

    int rc = 0;
    for (const CellResult &cell : cells) {
        if (!cell.converged) {
            std::cerr << "error: " << cell.config.shapeName
                      << " mrai=" << cell.config.mraiMs << " damping="
                      << (cell.config.damping ? "on" : "off")
                      << " did not converge\n";
            rc = 1;
        }
        if (!cell.deterministic) {
            std::cerr << "error: " << cell.config.shapeName
                      << " mrai=" << cell.config.mraiMs << " damping="
                      << (cell.config.damping ? "on" : "off")
                      << " diverged across jobs\n";
            rc = 1;
        }
    }

    if (ablation) {
        std::cout << "\ndamping-off ablation (MRAI 0):\n";
        for (const ShapeSize &shape : shapes) {
            const CellResult *off = findCell(cells, shape.name, 0,
                                             false);
            const CellResult *on = findCell(cells, shape.name, 0,
                                            true);
            bool churn_up = off->stability.churnAmplification >
                            on->stability.churnAmplification;
            bool updates_down = on->stability.updatesPerConvergence <
                                off->stability.updatesPerConvergence;
            std::cout
                << "  " << shape.name << ": churn amp "
                << stats::formatDouble(
                       on->stability.churnAmplification, 2)
                << " (on) -> "
                << stats::formatDouble(
                       off->stability.churnAmplification, 2)
                << " (off), upd/conv "
                << stats::formatDouble(
                       on->stability.updatesPerConvergence, 2)
                << " (on) -> "
                << stats::formatDouble(
                       off->stability.updatesPerConvergence, 2)
                << " (off)"
                << ((churn_up && updates_down) ? "" : "  VIOLATION")
                << "\n";
            if (!churn_up || !updates_down) {
                std::cerr << "error: damping did not reduce churn on "
                          << shape.name << "\n";
                rc = 1;
            }
        }
    }
    return rc;
}
