/**
 * @file
 * Extension benchmark: network-wide convergence.
 *
 * The paper measures one router between two test speakers; this bench
 * instantiates N full speakers in AS-level topologies and measures
 * what the per-router processing speed buys operationally: how fast
 * the *network* converges after announcements, a link failure, and a
 * router reboot. Every run is fully deterministic — the same seed
 * produces byte-identical run reports at ANY worker count, so the
 * trajectory of convergence times can be tracked for regressions.
 *
 * Overrides: BGPBENCH_FAST=1 shrinks the topologies;
 * BGPBENCH_NODES=<n> sets the router count directly;
 * BGPBENCH_JOBS=<n> / --jobs <n> sets the worker threads (0 = auto).
 *
 * --sweep (or BGPBENCH_SWEEP=1) additionally runs the announce
 * scenario on a 64-node full mesh at jobs = 1, 2, 4, 8, printing the
 * wall-clock speedup table and asserting that every report is
 * byte-identical to the sequential one.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/runtime_config.hh"
#include "stats/json.hh"
#include "topo/partition.hh"
#include "topo/scenarios.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

double
wallMs(std::chrono::steady_clock::time_point begin)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

struct SweepPoint
{
    size_t jobs;
    double wallMs;
    bool identical;
};

/**
 * The thread-sweep: one announce scenario on a full mesh (the
 * hardest shape for the partitioner — every cut is wide) at
 * escalating worker counts, against the jobs = 1 report bytes.
 */
std::vector<SweepPoint>
runSweep(size_t mesh_nodes)
{
    std::vector<SweepPoint> points;
    std::string baseline;
    for (size_t jobs : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
        topo::ScenarioOptions opts;
        opts.simConfig.jobs = jobs;
        auto begin = std::chrono::steady_clock::now();
        topo::ConvergenceReport report = topo::runAnnounceScenario(
            topo::Topology::fullMesh(mesh_nodes), "mesh", opts);
        SweepPoint point;
        point.jobs = jobs;
        point.wallMs = wallMs(begin);
        std::string json = report.toJson();
        if (jobs == 1)
            baseline = json;
        point.identical = json == baseline;
        points.push_back(point);
    }
    return points;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t nodes = benchutil::envSize(
        "BGPBENCH_NODES", benchutil::fastMode() ? 10 : 24);
    core::RuntimeConfig runtime = core::RuntimeConfig::fromEnvironment();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            runtime.overrideJobs(
                size_t(std::strtoull(argv[++i], nullptr, 10)));
        } else if (arg == "--sweep") {
            runtime.overrideSweep(true);
        } else {
            std::cerr << "usage: topo_convergence [--jobs N] "
                         "[--sweep]\n";
            return 2;
        }
    }
    runtime.apply();
    size_t jobs = runtime.jobs();
    bool sweep = runtime.sweep();
    const uint64_t seed = 42;
    const size_t attach = 2;

    std::cout << "Network-wide convergence (" << nodes
              << " routers per topology, seed " << seed << ", jobs "
              << jobs << ")\n";

    topo::ScenarioOptions opts;
    opts.simConfig.jobs = jobs;
    std::vector<topo::ConvergenceReport> runs;

    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::line(nodes), "line", opts));
    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::ring(nodes), "ring", opts));
    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::star(nodes), "star", opts));
    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::barabasiAlbert(nodes, attach, seed), "random",
        opts));

    // Fault scenarios on the shapes where they are most interesting:
    // a ring re-routes around a failed link; the random graph loses
    // its oldest (highest-degree) router for 50 ms.
    runs.push_back(topo::runLinkFailureScenario(
        topo::Topology::ring(nodes), "ring", 0, opts));
    runs.push_back(topo::runRouterRebootScenario(
        topo::Topology::barabasiAlbert(nodes, attach, seed), "random",
        0, sim::nsFromMs(50), opts));

    for (const topo::ConvergenceReport &run : runs) {
        std::cout << "\n";
        run.printText(std::cout);
    }

    std::vector<SweepPoint> sweep_points;
    if (sweep) {
        size_t mesh_nodes = benchutil::fastMode() ? 16 : 64;
        std::cout << "\nThread sweep: announce on a " << mesh_nodes
                  << "-node full mesh\n";
        sweep_points = runSweep(mesh_nodes);
        std::cout << "jobs  wall ms   speedup  report\n";
        for (const SweepPoint &point : sweep_points) {
            std::cout << point.jobs << "     "
                      << stats::formatDouble(point.wallMs, 1) << "   "
                      << stats::formatDouble(
                             sweep_points[0].wallMs / point.wallMs, 2)
                      << "x    "
                      << (point.identical ? "identical"
                                          : "DIVERGED")
                      << "\n";
        }
    }

    // The partition the parallel engine would use for the random
    // shape at the selected worker count — recorded so a trajectory
    // point documents its own execution layout.
    size_t resolved = jobs;
    if (resolved == 0) {
        resolved =
            std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    topo::Partition partition = topo::partitionTopology(
        topo::Topology::barabasiAlbert(nodes, attach, seed), resolved);

    std::ofstream json("BENCH_topo_convergence.json");
    stats::JsonWriter writer(json);
    writer.beginObject();
    writer.field("benchmark", "topo_convergence");
    writer.field("nodes", uint64_t(nodes));
    writer.field("seed", seed);
    writer.field("jobs", uint64_t(resolved));
    writer.field("shards", uint64_t(partition.shardCount));
    writer.field("cut_links", uint64_t(partition.cutLinks));
    writer.field("edge_cut_ratio", partition.edgeCutRatio);
    writer.key("runs");
    writer.beginArray();
    for (const topo::ConvergenceReport &run : runs)
        run.writeJson(writer);
    writer.endArray();
    if (sweep) {
        writer.key("sweep");
        writer.beginArray();
        for (const SweepPoint &point : sweep_points) {
            writer.beginObject();
            writer.field("jobs", uint64_t(point.jobs));
            writer.field("wall_ms", point.wallMs);
            writer.field("report_identical", point.identical);
            writer.endObject();
        }
        writer.endArray();
    }
    writer.endObject();
    json << "\n";
    std::cout << "\nwrote BENCH_topo_convergence.json\n";

    bool all_converged = true;
    for (const topo::ConvergenceReport &run : runs)
        all_converged = all_converged && run.converged;
    if (!all_converged) {
        std::cerr << "error: a scenario failed to converge\n";
        return 1;
    }
    for (const SweepPoint &point : sweep_points) {
        if (!point.identical) {
            std::cerr << "error: parallel report diverged at jobs "
                      << point.jobs << "\n";
            return 1;
        }
    }
    return 0;
}
