/**
 * @file
 * Extension benchmark: network-wide convergence.
 *
 * The paper measures one router between two test speakers; this bench
 * instantiates N full speakers in AS-level topologies and measures
 * what the per-router processing speed buys operationally: how fast
 * the *network* converges after announcements, a link failure, and a
 * router reboot. Every run is fully deterministic — the same seed
 * produces a byte-identical BENCH_topo_convergence.json — so the
 * trajectory of convergence times can be tracked for regressions.
 *
 * Overrides: BGPBENCH_FAST=1 shrinks the topologies;
 * BGPBENCH_NODES=<n> sets the router count directly.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "stats/json.hh"
#include "topo/scenarios.hh"

#include "bench_util.hh"

using namespace bgpbench;

int
main()
{
    size_t nodes = benchutil::envSize(
        "BGPBENCH_NODES", benchutil::fastMode() ? 10 : 24);
    const uint64_t seed = 42;
    const size_t attach = 2;

    std::cout << "Network-wide convergence (" << nodes
              << " routers per topology, seed " << seed << ")\n";

    topo::ScenarioOptions opts;
    std::vector<topo::ConvergenceReport> runs;

    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::line(nodes), "line", opts));
    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::ring(nodes), "ring", opts));
    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::star(nodes), "star", opts));
    runs.push_back(topo::runAnnounceScenario(
        topo::Topology::barabasiAlbert(nodes, attach, seed), "random",
        opts));

    // Fault scenarios on the shapes where they are most interesting:
    // a ring re-routes around a failed link; the random graph loses
    // its oldest (highest-degree) router for 50 ms.
    runs.push_back(topo::runLinkFailureScenario(
        topo::Topology::ring(nodes), "ring", 0, opts));
    runs.push_back(topo::runRouterRebootScenario(
        topo::Topology::barabasiAlbert(nodes, attach, seed), "random",
        0, sim::nsFromMs(50), opts));

    for (const topo::ConvergenceReport &run : runs) {
        std::cout << "\n";
        run.printText(std::cout);
    }

    std::ofstream json("BENCH_topo_convergence.json");
    stats::JsonWriter writer(json);
    writer.beginObject();
    writer.field("benchmark", "topo_convergence");
    writer.field("nodes", uint64_t(nodes));
    writer.field("seed", seed);
    writer.key("runs");
    writer.beginArray();
    for (const topo::ConvergenceReport &run : runs)
        run.writeJson(writer);
    writer.endArray();
    writer.endObject();
    json << "\n";
    std::cout << "\nwrote BENCH_topo_convergence.json\n";

    bool all_converged = true;
    for (const topo::ConvergenceReport &run : runs)
        all_converged = all_converged && run.converged;
    if (!all_converged) {
        std::cerr << "error: a scenario failed to converge\n";
        return 1;
    }
    return 0;
}
