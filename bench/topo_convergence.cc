/**
 * @file
 * Extension benchmark: network-wide convergence.
 *
 * The paper measures one router between two test speakers; this bench
 * instantiates N full speakers in AS-level topologies and measures
 * what the per-router processing speed buys operationally: how fast
 * the *network* converges after announcements, a link failure, and a
 * router reboot. Every run is fully deterministic — the same seed
 * produces byte-identical run reports at ANY worker count, so the
 * trajectory of convergence times can be tracked for regressions.
 *
 * Overrides: BGPBENCH_FAST=1 shrinks the topologies;
 * BGPBENCH_NODES=<n> sets the router count directly;
 * BGPBENCH_JOBS=<n> / --jobs <n> sets the worker threads (0 = auto).
 *
 * --sweep (or BGPBENCH_SWEEP=1) additionally runs the announce
 * scenario at jobs = 1, 2, 4, 8 on two shapes — a full mesh (uniform
 * work, every cut 1 ms: the sync layer's worst case) and a
 * scale-free graph with heterogeneous link latencies (skewed
 * per-shard work and per-shard cut latencies: where work-stealing
 * and the adaptive causality bound actually bite) — printing the
 * wall-clock speedup tables with the sync-layer health columns
 * (barrier-wait fraction, mean window length, steals per window)
 * read back from the observability registry, and asserting that
 * every report is byte-identical to the sequential one.
 * --no-adaptive-sync (or BGPBENCH_NO_ADAPTIVE_SYNC=1) pins the
 * fixed-window engine for the whole run, sweep included.
 *
 * --adaptive-overhead-check runs the CI gate instead of the bench:
 * the jobs = 1 mesh announce timed in adaptive and fixed mode
 * (warm-up pair, then alternating order, best-of-9); adaptive must
 * not be more than 5% slower — at one worker both modes run the
 * identical sequential path, so the gate catches construction-time
 * regressions without scheduler noise.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/runtime_config.hh"
#include "obs/observability.hh"
#include "obs/views.hh"
#include "stats/json.hh"
#include "topo/partition.hh"
#include "topo/scenario_spec.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

double
wallMs(std::chrono::steady_clock::time_point begin)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

/**
 * The declarative form of every run in this bench: a named spec on a
 * shape, optionally with a fault schedule, executed by the one
 * ScenarioRunner.
 */
topo::ConvergenceReport
runSpec(topo::Topology topology, const std::string &shape,
        const std::string &name, topo::FaultSchedule faults,
        const topo::TopologySimConfig &sim_config)
{
    topo::ScenarioSpec spec;
    spec.name = name;
    spec.shape = shape;
    spec.topology = std::move(topology);
    spec.simConfig = sim_config;
    spec.faults = std::move(faults);
    return topo::ScenarioRunner(std::move(spec)).run().convergence;
}

struct SweepPoint
{
    size_t jobs;
    double wallMs = 0.0;
    bool identical = false;
    /** Conservative windows the run stepped through. */
    uint64_t windows = 0;
    /** Mean opened window length (virtual ns — deterministic). */
    double meanWindowNs = 0.0;
    /** Host time blocked on the barrier / total worker time. */
    double barrierWaitPct = 0.0;
    /** Cross-worker shard steals per window (host diagnostic). */
    double stealsPerWindow = 0.0;
};

/**
 * A scale-free graph with latencies spread across 1..13 ms by link
 * index. The degree skew gives shards visibly unequal work (the
 * stealing deques' home turf) and the latency skew gives shards
 * unequal minimum cut latencies (what the adaptive causality bound
 * exploits to stretch windows past the global fixed lookahead).
 */
topo::Topology
skewedScaleFree(size_t n)
{
    topo::Topology ba = topo::Topology::barabasiAlbert(n, 2, 42);
    topo::Topology mixed;
    for (size_t i = 0; i < ba.nodeCount(); ++i)
        mixed.addNode(topo::Topology::defaultNode(i, {}));
    for (size_t l = 0; l < ba.linkCount(); ++l) {
        const topo::Link &link = ba.link(l);
        mixed.addLink(link.a.node, link.b.node,
                      sim::nsFromMs(1 + (l * 7) % 13), 100.0);
    }
    return mixed;
}

/**
 * The thread-sweep: one announce scenario on the given shape at
 * escalating worker counts, against the jobs = 1 report bytes. Each
 * point runs with observability attached and reads the sync-layer
 * counters back out of the registry; the report bytes must not care
 * (that is half of what the identical column asserts).
 */
std::vector<SweepPoint>
runSweep(const topo::Topology &shape, const std::string &name,
         bool adaptive)
{
    std::vector<SweepPoint> points;
    std::string baseline;
    for (size_t jobs : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
        topo::TopologySimConfig sim_config;
        sim_config.jobs = jobs;
        sim_config.adaptiveSync = adaptive;
        obs::RunObservability obs;
        sim_config.obs = &obs;
        auto begin = std::chrono::steady_clock::now();
        topo::ConvergenceReport report =
            runSpec(shape, name, "announce", {}, sim_config);
        SweepPoint point;
        point.jobs = jobs;
        point.wallMs = wallMs(begin);
        std::string json = report.toJson();
        if (jobs == 1)
            baseline = json;
        point.identical = json == baseline;
        point.windows =
            obs.metrics.counterValue(obs::metric::parallelWindows);
        uint64_t window_len = obs.metrics.counterValue(
            obs::metric::topoWindowLenNs);
        uint64_t barrier_wait = obs.metrics.counterValue(
            obs::metric::topoBarrierWaitNs);
        uint64_t steals =
            obs.metrics.counterValue(obs::metric::topoStealCount);
        double workers =
            obs.metrics.gaugeValue(obs::metric::parallelJobs);
        if (point.windows > 0) {
            point.meanWindowNs =
                double(window_len) / double(point.windows);
            point.stealsPerWindow =
                double(steals) / double(point.windows);
        }
        double worker_ns = workers * point.wallMs * 1e6;
        if (worker_ns > 0) {
            point.barrierWaitPct =
                100.0 * double(barrier_wait) / worker_ns;
        }
        points.push_back(point);
    }
    return points;
}

/**
 * CI gate: adaptive sync must cost nothing when it cannot help.
 * At jobs = 1 the engine is sequential in both modes, so any
 * systematic gap is pure construction/bookkeeping overhead.
 */
int
runAdaptiveOverheadCheck(size_t mesh_nodes)
{
    auto once = [&](bool adaptive) {
        topo::TopologySimConfig sim_config;
        sim_config.jobs = 1;
        sim_config.adaptiveSync = adaptive;
        auto begin = std::chrono::steady_clock::now();
        runSpec(topo::Topology::fullMesh(mesh_nodes), "mesh",
                "announce", {}, sim_config);
        return wallMs(begin);
    };

    // One untimed warm-up pair so first-touch page faults and cache
    // fills are not charged to whichever mode happens to run first.
    once(true);
    once(false);

    const int reps = 9;
    double best_adaptive = 0.0;
    double best_fixed = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        // Alternate the order so cache warmth cannot bias one mode.
        double adaptive_ms;
        double fixed_ms;
        if (rep % 2 == 0) {
            adaptive_ms = once(true);
            fixed_ms = once(false);
        } else {
            fixed_ms = once(false);
            adaptive_ms = once(true);
        }
        if (rep == 0 || adaptive_ms < best_adaptive)
            best_adaptive = adaptive_ms;
        if (rep == 0 || fixed_ms < best_fixed)
            best_fixed = fixed_ms;
    }

    double ratio = best_fixed > 0 ? best_adaptive / best_fixed : 1.0;
    std::cout << "adaptive overhead check (jobs=1, "
              << mesh_nodes << "-node mesh, best of " << reps
              << "):\n"
              << "  adaptive " << stats::formatDouble(best_adaptive, 2)
              << " ms, fixed " << stats::formatDouble(best_fixed, 2)
              << " ms, ratio " << stats::formatDouble(ratio, 3)
              << " (limit 1.05)\n";
    if (ratio > 1.05) {
        std::cerr << "error: adaptive sync is more than 5% slower "
                     "than fixed windows at jobs=1\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t nodes = benchutil::envSize(
        "BGPBENCH_NODES", benchutil::fastMode() ? 10 : 24);
    core::RuntimeConfig runtime = core::RuntimeConfig::fromEnvironment();
    bool overhead_check = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            runtime.overrideJobs(
                size_t(std::strtoull(argv[++i], nullptr, 10)));
        } else if (arg == "--sweep") {
            runtime.overrideSweep(true);
        } else if (arg == "--no-adaptive-sync") {
            runtime.overrideAdaptiveSync(false);
        } else if (arg == "--adaptive-overhead-check") {
            overhead_check = true;
        } else {
            std::cerr << "usage: topo_convergence [--jobs N] "
                         "[--sweep] [--no-adaptive-sync] "
                         "[--adaptive-overhead-check]\n";
            return 2;
        }
    }
    runtime.apply();
    size_t jobs = runtime.jobs();
    bool sweep = runtime.sweep();
    bool adaptive = runtime.adaptiveSync();
    if (overhead_check) {
        return runAdaptiveOverheadCheck(benchutil::fastMode() ? 16
                                                              : 32);
    }
    const uint64_t seed = 42;
    const size_t attach = 2;

    std::cout << "Network-wide convergence (" << nodes
              << " routers per topology, seed " << seed << ", jobs "
              << jobs << ", " << (adaptive ? "adaptive" : "fixed")
              << " sync)\n";

    topo::TopologySimConfig sim_config;
    sim_config.jobs = jobs;
    sim_config.adaptiveSync = adaptive;
    std::vector<topo::ConvergenceReport> runs;

    runs.push_back(runSpec(topo::Topology::line(nodes), "line",
                           "announce", {}, sim_config));
    runs.push_back(runSpec(topo::Topology::ring(nodes), "ring",
                           "announce", {}, sim_config));
    runs.push_back(runSpec(topo::Topology::star(nodes), "star",
                           "announce", {}, sim_config));
    runs.push_back(runSpec(
        topo::Topology::barabasiAlbert(nodes, attach, seed), "random",
        "announce", {}, sim_config));

    // Fault scenarios on the shapes where they are most interesting:
    // a ring re-routes around a failed link; the random graph loses
    // its oldest (highest-degree) router for 50 ms.
    runs.push_back(runSpec(
        topo::Topology::ring(nodes), "ring", "link-failure",
        topo::FaultSchedule().linkDown(0, 0), sim_config));
    runs.push_back(runSpec(
        topo::Topology::barabasiAlbert(nodes, attach, seed), "random",
        "router-reboot",
        topo::FaultSchedule().routerRestart(0, 0, sim::nsFromMs(50)),
        sim_config));

    for (const topo::ConvergenceReport &run : runs) {
        std::cout << "\n";
        run.printText(std::cout);
    }

    struct SweepRun
    {
        std::string scenario;
        std::vector<SweepPoint> points;
    };
    std::vector<SweepRun> sweeps;
    if (sweep) {
        size_t mesh_nodes = benchutil::fastMode() ? 16 : 64;
        size_t skew_nodes = benchutil::fastMode() ? 24 : 64;
        sweeps.push_back(
            {"mesh " + std::to_string(mesh_nodes),
             runSweep(topo::Topology::fullMesh(mesh_nodes), "mesh",
                      adaptive)});
        sweeps.push_back(
            {"skewed " + std::to_string(skew_nodes),
             runSweep(skewedScaleFree(skew_nodes), "skewed",
                      adaptive)});
        for (const SweepRun &run : sweeps) {
            std::cout << "\nThread sweep: announce on " << run.scenario
                      << " (" << (adaptive ? "adaptive" : "fixed")
                      << " sync)\n";
            std::cout << "jobs  wall ms   speedup  barrier%  "
                         "window ms  steals/win  report\n";
            for (const SweepPoint &point : run.points) {
                std::cout
                    << point.jobs << "     "
                    << stats::formatDouble(point.wallMs, 1) << "   "
                    << stats::formatDouble(
                           run.points[0].wallMs / point.wallMs, 2)
                    << "x    "
                    << stats::formatDouble(point.barrierWaitPct, 1)
                    << "      "
                    << stats::formatDouble(point.meanWindowNs / 1e6, 3)
                    << "      "
                    << stats::formatDouble(point.stealsPerWindow, 2)
                    << "        "
                    << (point.identical ? "identical" : "DIVERGED")
                    << "\n";
            }
        }
    }

    // The partition the parallel engine would use for the random
    // shape at the selected worker count — recorded so a trajectory
    // point documents its own execution layout.
    size_t resolved = jobs;
    if (resolved == 0) {
        resolved =
            std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    // Mirror the engine's shard target (adaptive mode over-decomposes
    // to 2x jobs for stealing headroom).
    size_t shard_target = resolved;
    if (resolved > 1 && adaptive)
        shard_target = std::min(size_t(nodes), resolved * 2);
    topo::Partition partition = topo::partitionTopology(
        topo::Topology::barabasiAlbert(nodes, attach, seed),
        shard_target);

    std::ofstream json("BENCH_topo_convergence.json");
    stats::JsonWriter writer(json);
    writer.beginObject();
    writer.field("benchmark", "topo_convergence");
    writer.field("nodes", uint64_t(nodes));
    writer.field("seed", seed);
    writer.field("jobs", uint64_t(resolved));
    writer.field("shards", uint64_t(partition.shardCount));
    writer.field("cut_links", uint64_t(partition.cutLinks));
    writer.field("edge_cut_ratio", partition.edgeCutRatio);
    writer.key("runs");
    writer.beginArray();
    for (const topo::ConvergenceReport &run : runs)
        run.writeJson(writer);
    writer.endArray();
    if (sweep) {
        writer.key("sweep");
        writer.beginArray();
        for (const SweepRun &run : sweeps) {
            for (const SweepPoint &point : run.points) {
                writer.beginObject();
                writer.field("scenario", run.scenario);
                writer.field("jobs", uint64_t(point.jobs));
                writer.field("wall_ms", point.wallMs);
                writer.field("report_identical", point.identical);
                // windows / mean_window_ns are virtual-time
                // quantities (deterministic for a fixed config);
                // barrier_wait_pct and steals_per_window are
                // host-side diagnostics, like wall_ms.
                writer.field("adaptive_sync", adaptive);
                writer.field("windows", point.windows);
                writer.field("mean_window_ns", point.meanWindowNs);
                writer.field("barrier_wait_pct",
                             point.barrierWaitPct);
                writer.field("steals_per_window",
                             point.stealsPerWindow);
                writer.endObject();
            }
        }
        writer.endArray();
    }
    writer.endObject();
    json << "\n";
    std::cout << "\nwrote BENCH_topo_convergence.json\n";

    bool all_converged = true;
    for (const topo::ConvergenceReport &run : runs)
        all_converged = all_converged && run.converged;
    if (!all_converged) {
        std::cerr << "error: a scenario failed to converge\n";
        return 1;
    }
    for (const SweepRun &run : sweeps) {
        for (const SweepPoint &point : run.points) {
            if (!point.identical) {
                std::cerr << "error: parallel report diverged on "
                          << run.scenario << " at jobs " << point.jobs
                          << "\n";
                return 1;
            }
        }
    }
    return 0;
}
