/**
 * @file
 * Reproduces Figure 4: "CPU Load of Pentium III with Small and Large
 * Packets" — Scenario 1 versus Scenario 2.
 *
 * Expected shape (paper section V.A): with small packets, xorp_bgp,
 * xorp_fea and xorp_rib compete for the CPU through the whole run;
 * with large packets xorp_bgp burns through the stream first and the
 * rib/fea tail follows.
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

int
main()
{
    size_t prefixes = benchutil::prefixCount(3000, 500);
    auto profile = router::profileByName("PentiumIII");

    std::cout << "Figure 4 reproduction: Pentium III CPU load, "
                 "Scenario 1 (small packets) vs Scenario 2 (large "
                 "packets), "
              << prefixes << " prefixes\n";

    for (int number : {1, 2}) {
        auto scenario = core::scenarioByNumber(number);
        core::BenchmarkConfig config;
        config.prefixCount = prefixes;
        core::BenchmarkRunner runner(profile, config);
        auto result = runner.run(scenario);

        std::cout << "\n=== " << scenario.name() << " ("
                  << (number == 1 ? "small" : "large")
                  << " packets) ===\n";
        if (result.timedOut) {
            std::cout << "TIMEOUT\n";
            continue;
        }
        std::cout << "phase-1 duration: "
                  << stats::formatDouble(result.phase1.durationSec, 1)
                  << " s, "
                  << stats::formatDouble(result.measuredTps, 1)
                  << " transactions/s\n\n";

        auto all = runner.router().loadTracker().allSeries();
        std::vector<const stats::TimeSeries *> xorp(
            all.begin(), all.begin() + 5);
        stats::printSeriesTable(std::cout, xorp, 30);
    }

    std::cout << "\nNote how the same route table takes several times "
                 "longer with one prefix per packet: per-packet "
                 "overheads dominate (paper section V.C).\n";
    return 0;
}
