/**
 * @file
 * google-benchmark micro-benchmarks of the protocol hot paths the
 * cost model charges for: message encode/decode, the decision
 * process, LPM lookup, FIB update, and the Internet checksum.
 *
 * These measure the *host* implementation (useful for regression
 * tracking of this library); the simulated routers charge calibrated
 * virtual costs instead.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bgp/attr_intern.hh"
#include "bgp/decision.hh"
#include "bgp/message.hh"
#include "bgp/policy.hh"
#include "bgp/speaker.hh"
#include "bgp/update_builder.hh"
#include "fib/forwarding_engine.hh"
#include "net/checksum.hh"
#include "net/prefix_tree.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "stats/report.hh"
#include "topo/steal_deque.hh"
#include "workload/route_set.hh"
#include "workload/update_stream.hh"

using namespace bgpbench;

namespace
{

std::vector<workload::RouteSpec>
routes(size_t count)
{
    workload::RouteSetConfig config;
    config.count = count;
    return generateRouteSet(config);
}

workload::StreamConfig
streamConfig(size_t per_packet)
{
    workload::StreamConfig c;
    c.speakerAs = 65001;
    c.nextHop = net::Ipv4Address(10, 0, 1, 2);
    c.prefixesPerPacket = per_packet;
    return c;
}

void
BM_EncodeUpdate(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    bgp::UpdateBuilder builder;
    bgp::PathAttributes attrs;
    attrs.asPath = bgp::AsPath::sequence({65001, 100});
    attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
    auto shared = bgp::makeAttributes(std::move(attrs));
    for (const auto &r : rs)
        builder.announce(r.prefix, shared);
    auto updates = builder.build();

    for (auto _ : state) {
        for (const auto &update : updates)
            benchmark::DoNotOptimize(bgp::encodeMessage(update));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_EncodeUpdate)->Arg(1)->Arg(100)->Arg(500);

void
BM_DecodeUpdate(benchmark::State &state)
{
    auto packets = buildAnnouncementStream(
        routes(size_t(state.range(0))),
        streamConfig(size_t(state.range(0))));

    for (auto _ : state) {
        for (const auto &pkt : packets) {
            bgp::DecodeError error;
            benchmark::DoNotOptimize(
                bgp::decodeMessage(pkt.wire->bytes(), error));
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_DecodeUpdate)->Arg(1)->Arg(100)->Arg(500);

void
BM_EncodeSegmentPooled(benchmark::State &state)
{
    // Encode into pooled segments and release them immediately, so
    // steady state recycles one buffer per message (the transmit
    // path's allocation profile).
    auto rs = routes(size_t(state.range(0)));
    bgp::UpdateBuilder builder;
    bgp::PathAttributes attrs;
    attrs.asPath = bgp::AsPath::sequence({65001, 100});
    attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
    auto shared = bgp::makeAttributes(std::move(attrs));
    for (const auto &r : rs)
        builder.announce(r.prefix, shared);
    auto updates = builder.build();

    for (auto _ : state) {
        for (const auto &update : updates)
            benchmark::DoNotOptimize(bgp::encodeSegment(update));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_EncodeSegmentPooled)->Arg(1)->Arg(100)->Arg(500);

void
BM_FanoutSharedSegment(benchmark::State &state)
{
    // One 500-prefix UPDATE delivered to K stream decoders: encode
    // once, every decoder borrows the segment.
    size_t fanout = size_t(state.range(0));
    auto packets = buildAnnouncementStream(routes(500),
                                           streamConfig(500));
    std::vector<bgp::StreamDecoder> decoders(fanout);

    for (auto _ : state) {
        for (const auto &pkt : packets) {
            bgp::DecodeError error;
            for (auto &decoder : decoders) {
                decoder.feed(pkt.wire);
                while (decoder.next(error)) {
                }
            }
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(fanout) * 500);
}
BENCHMARK(BM_FanoutSharedSegment)->Arg(2)->Arg(8)->Arg(16);

void
BM_FanoutCopyPerHop(benchmark::State &state)
{
    // The ablation counterpart: re-encode per peer and stage a copy
    // in every decoder, the seed's copy-per-hop behaviour.
    size_t fanout = size_t(state.range(0));
    auto rs = routes(500);
    bgp::UpdateBuilder builder;
    bgp::PathAttributes attrs;
    attrs.asPath = bgp::AsPath::sequence({65001, 100});
    attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
    auto shared = bgp::makeAttributes(std::move(attrs));
    for (const auto &r : rs)
        builder.announce(r.prefix, shared);
    auto updates = builder.build();
    std::vector<bgp::StreamDecoder> decoders(fanout);

    bool saved = net::segmentSharingEnabled();
    net::setSegmentSharing(false);
    for (auto _ : state) {
        for (const auto &update : updates) {
            bgp::DecodeError error;
            for (auto &decoder : decoders) {
                decoder.feed(bgp::encodeSegment(update));
                while (decoder.next(error)) {
                }
            }
        }
    }
    net::setSegmentSharing(saved);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(fanout) * 500);
}
BENCHMARK(BM_FanoutCopyPerHop)->Arg(2)->Arg(8)->Arg(16);

void
BM_DecisionProcess(benchmark::State &state)
{
    std::vector<bgp::Candidate> candidates;
    for (uint32_t i = 0; i < uint32_t(state.range(0)); ++i) {
        bgp::PathAttributes attrs;
        attrs.asPath = bgp::AsPath::sequence(
            {bgp::AsNumber(100 + i), bgp::AsNumber(200 + i)});
        attrs.nextHop = net::Ipv4Address(10, 0, 0, uint8_t(i + 1));
        candidates.push_back(bgp::Candidate{
            bgp::makeAttributes(std::move(attrs)), i, 10 + i, true});
    }

    for (auto _ : state)
        benchmark::DoNotOptimize(bgp::selectBest(candidates));
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_DecisionProcess)->Arg(2)->Arg(8)->Arg(32);

void
BM_LpmLookup(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    fib::ForwardingTable table;
    for (const auto &r : rs) {
        table.install(r.prefix,
                      fib::FibEntry{net::Ipv4Address(10, 0, 0, 1), 1});
    }
    auto pool = workload::destinationPool(rs, 1024, 7);

    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.lookup(pool[i++ & 1023]));
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_LpmLookup)->Arg(1000)->Arg(10000)->Arg(100000);

/*
 * RIB storage head-to-head: net::PrefixTree vs the unordered_map it
 * replaced (still reachable via BGPBENCH_NO_PREFIX_TREE=1). Same
 * route sets, same operation mix, one BM pair per operation; the
 * Scan pair is the structural one — the tree walks in prefix order
 * natively, the hash map must collect and sort to produce the
 * deterministic report order the RIBs guarantee.
 */

void
BM_PrefixTreeInsert(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    for (auto _ : state) {
        net::PrefixTree<uint32_t> tree;
        tree.reserve(rs.size());
        for (uint32_t i = 0; i < rs.size(); ++i)
            tree.insert(rs[i].prefix, i);
        benchmark::DoNotOptimize(tree.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_PrefixTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_HashMapInsert(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    for (auto _ : state) {
        std::unordered_map<net::Prefix, uint32_t> map;
        map.reserve(rs.size());
        for (uint32_t i = 0; i < rs.size(); ++i)
            map.insert_or_assign(rs[i].prefix, i);
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HashMapInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_PrefixTreeLookup(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    net::PrefixTree<uint32_t> tree;
    tree.reserve(rs.size());
    for (uint32_t i = 0; i < rs.size(); ++i)
        tree.insert(rs[i].prefix, i);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.find(rs[i++ % rs.size()].prefix));
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PrefixTreeLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_HashMapLookup(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    std::unordered_map<net::Prefix, uint32_t> map;
    map.reserve(rs.size());
    for (uint32_t i = 0; i < rs.size(); ++i)
        map.insert_or_assign(rs[i].prefix, i);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            map.find(rs[i++ % rs.size()].prefix));
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_HashMapLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_PrefixTreeErase(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    for (auto _ : state) {
        state.PauseTiming();
        net::PrefixTree<uint32_t> tree;
        tree.reserve(rs.size());
        for (uint32_t i = 0; i < rs.size(); ++i)
            tree.insert(rs[i].prefix, i);
        state.ResumeTiming();
        for (const auto &r : rs)
            tree.erase(r.prefix);
        benchmark::DoNotOptimize(tree.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_PrefixTreeErase)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_HashMapErase(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    for (auto _ : state) {
        state.PauseTiming();
        std::unordered_map<net::Prefix, uint32_t> map;
        map.reserve(rs.size());
        for (uint32_t i = 0; i < rs.size(); ++i)
            map.insert_or_assign(rs[i].prefix, i);
        state.ResumeTiming();
        for (const auto &r : rs)
            map.erase(r.prefix);
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HashMapErase)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_PrefixTreeScan(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    net::PrefixTree<uint32_t> tree;
    tree.reserve(rs.size());
    for (uint32_t i = 0; i < rs.size(); ++i)
        tree.insert(rs[i].prefix, i);
    for (auto _ : state) {
        uint64_t sum = 0;
        tree.forEach([&](const net::Prefix &, uint32_t value) {
            sum += value;
        });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_PrefixTreeScan)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_HashMapScan(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    std::unordered_map<net::Prefix, uint32_t> map;
    map.reserve(rs.size());
    for (uint32_t i = 0; i < rs.size(); ++i)
        map.insert_or_assign(rs[i].prefix, i);
    for (auto _ : state) {
        // Deterministic in-order scan from a hash map needs the
        // collect-and-sort detour (what RibStore does in hash mode).
        std::vector<const std::pair<const net::Prefix, uint32_t> *>
            rows;
        rows.reserve(map.size());
        for (const auto &entry : map)
            rows.push_back(&entry);
        std::sort(rows.begin(), rows.end(),
                  [](const auto *a, const auto *b) {
                      return a->first < b->first;
                  });
        uint64_t sum = 0;
        for (const auto *row : rows)
            sum += row->second;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HashMapScan)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_FibInstallRemove(benchmark::State &state)
{
    auto rs = routes(size_t(state.range(0)));
    for (auto _ : state) {
        fib::ForwardingTable table;
        for (const auto &r : rs) {
            table.install(r.prefix,
                          fib::FibEntry{net::Ipv4Address(1, 1, 1, 1),
                                        1});
        }
        for (const auto &r : rs)
            table.remove(r.prefix);
        benchmark::DoNotOptimize(table.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0) * 2);
}
BENCHMARK(BM_FibInstallRemove)->Arg(1000)->Arg(10000);

void
BM_ForwardPacket(benchmark::State &state)
{
    auto rs = routes(10000);
    fib::ForwardingTable table;
    for (const auto &r : rs) {
        table.install(r.prefix,
                      fib::FibEntry{net::Ipv4Address(10, 0, 0, 1), 1});
    }
    fib::ForwardingEngine engine(&table);
    auto pool = workload::destinationPool(rs, 256, 3);

    size_t i = 0;
    for (auto _ : state) {
        auto pkt = net::makeDataPacket(net::Ipv4Address(9, 9, 9, 9),
                                       pool[i++ & 255], 1000);
        benchmark::DoNotOptimize(engine.process(pkt));
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_ForwardPacket);

bgp::PathAttributes
richAttributes()
{
    bgp::PathAttributes attrs;
    attrs.asPath =
        bgp::AsPath::sequence({65001, 100, 200, 300, 400, 500});
    attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
    attrs.med = 50;
    attrs.communities = {0x00640001, 0x00640002, 0x00c80001};
    return attrs;
}

/** makeAttributes() with interning off (arg 0) versus on (arg 1). */
void
BM_AttributeIntern(benchmark::State &state)
{
    auto &interner = bgp::AttributeInterner::global();
    bool was_enabled = interner.enabled();
    interner.setEnabled(state.range(0) != 0);
    // Keep one canonical instance alive so the enabled path measures
    // the steady-state hit, not repeated insert/expire churn.
    auto canonical = bgp::makeAttributes(richAttributes());

    for (auto _ : state)
        benchmark::DoNotOptimize(bgp::makeAttributes(richAttributes()));
    state.SetItemsProcessed(int64_t(state.iterations()));

    interner.setEnabled(was_enabled);
    benchmark::DoNotOptimize(canonical);
}
BENCHMARK(BM_AttributeIntern)->Arg(0)->Arg(1);

/**
 * sameAttributeValue() on two equal sets: deep comparison of distinct
 * instances (arg 0) versus the interned pointer fast path (arg 1).
 */
void
BM_AttributeEquality(benchmark::State &state)
{
    auto &interner = bgp::AttributeInterner::global();
    bool was_enabled = interner.enabled();
    interner.setEnabled(state.range(0) != 0);
    auto a = bgp::makeAttributes(richAttributes());
    auto b = bgp::makeAttributes(richAttributes());

    for (auto _ : state)
        benchmark::DoNotOptimize(bgp::sameAttributeValue(a, b));
    state.SetItemsProcessed(int64_t(state.iterations()));

    interner.setEnabled(was_enabled);
}
BENCHMARK(BM_AttributeEquality)->Arg(0)->Arg(1);

/**
 * UpdateBuilder grouping: announce 500 prefixes cycling through 8
 * attribute sets, then build. Interning off (arg 0) exercises the
 * hash-plus-deep-equality group lookup; on (arg 1) the pointer path.
 */
void
BM_UpdateBuilderGroup(benchmark::State &state)
{
    auto &interner = bgp::AttributeInterner::global();
    bool was_enabled = interner.enabled();
    interner.setEnabled(state.range(0) != 0);

    auto rs = routes(500);
    std::vector<bgp::PathAttributesPtr> sets;
    for (uint32_t i = 0; i < 8; ++i) {
        bgp::PathAttributes attrs = richAttributes();
        attrs.med = 100 + i;
        sets.push_back(bgp::makeAttributes(std::move(attrs)));
    }

    for (auto _ : state) {
        bgp::UpdateBuilder builder;
        for (size_t i = 0; i < rs.size(); ++i)
            builder.announce(rs[i].prefix, sets[i % sets.size()]);
        benchmark::DoNotOptimize(builder.build());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 500);

    interner.setEnabled(was_enabled);
}
BENCHMARK(BM_UpdateBuilderGroup)->Arg(0)->Arg(1);

/**
 * Event-queue schedule + pop round trip: N one-shot events pushed
 * and drained. This is the per-event floor every simulated message
 * (transmit, arrive, deliver) pays three times.
 */
void
BM_SimulatorSchedulePop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator simulator;
        for (int64_t i = 0; i < state.range(0); ++i)
            simulator.schedule(sim::SimTime(i), []() {});
        simulator.runUntilIdle();
        benchmark::DoNotOptimize(simulator.eventsExecuted());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SimulatorSchedulePop)->Arg(1000)->Arg(10000);

/**
 * One periodic task firing N times. The recurring closure is stored
 * once and re-armed in place, so a firing costs a heap-free re-push —
 * this guards against regressing to re-wrapping the std::function
 * every recurrence.
 */
void
BM_SimulatorScheduleEvery(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator simulator;
        int64_t remaining = state.range(0);
        simulator.scheduleEvery(
            7, [&remaining]() { return --remaining > 0; });
        simulator.runUntilIdle();
        benchmark::DoNotOptimize(simulator.eventsExecuted());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SimulatorScheduleEvery)->Arg(1000)->Arg(100000);

void
BM_InternetChecksum(benchmark::State &state)
{
    std::vector<uint8_t> data(size_t(state.range(0)), 0xa5);
    for (auto _ : state)
        benchmark::DoNotOptimize(net::checksum(data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(1500);

/**
 * A stand-in for the engine's CrossMessage with just the ordering
 * fields; the payload pointer is irrelevant to the sort/merge cost
 * being compared.
 */
struct FakeCross
{
    uint64_t time;
    uint64_t key;
};

std::vector<std::vector<FakeCross>>
crossBatches(size_t links, size_t per_link)
{
    // Per-link batches arrive (time, key)-sorted — one source node
    // feeds each link direction and its serialisation cursor is
    // monotone — with interleaved time ranges across links.
    std::vector<std::vector<FakeCross>> batches(links);
    uint64_t salt = 0x9e3779b97f4a7c15ull;
    for (size_t l = 0; l < links; ++l) {
        uint64_t t = 1000 + (l * salt >> 56);
        for (size_t m = 0; m < per_link; ++m) {
            t += 1 + ((l * per_link + m) * salt >> 60);
            batches[l].push_back(
                FakeCross{t, (uint64_t(l + 1) << 44) | (m + 1)});
        }
    }
    return batches;
}

/**
 * PR 3's barrier: concatenate every source's outbox, then one full
 * sort of the union — O(M log M) with M the total message count.
 */
void
BM_CrossDeliverConcatSort(benchmark::State &state)
{
    auto batches = crossBatches(size_t(state.range(0)), 256);
    std::vector<FakeCross> merged;
    for (auto _ : state) {
        merged.clear();
        for (const auto &batch : batches)
            merged.insert(merged.end(), batch.begin(), batch.end());
        std::sort(merged.begin(), merged.end(),
                  [](const FakeCross &a, const FakeCross &b) {
                      if (a.time != b.time)
                          return a.time < b.time;
                      return a.key < b.key;
                  });
        benchmark::DoNotOptimize(merged.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0) * 256);
}
BENCHMARK(BM_CrossDeliverConcatSort)->Arg(2)->Arg(8)->Arg(32);

/**
 * The batched barrier: per-link batches verified sorted (O(M) probe)
 * and pairwise-merged — O(M log k) with k the link count, and no
 * comparator calls at all when one link dominates.
 */
void
BM_CrossDeliverBatchMerge(benchmark::State &state)
{
    auto batches = crossBatches(size_t(state.range(0)), 256);
    auto less = [](const FakeCross &a, const FakeCross &b) {
        if (a.time != b.time)
            return a.time < b.time;
        return a.key < b.key;
    };
    std::vector<FakeCross> merged;
    std::vector<size_t> bounds, scratch;
    for (auto _ : state) {
        merged.clear();
        bounds.clear();
        for (auto &batch : batches) {
            if (!std::is_sorted(batch.begin(), batch.end(), less))
                std::sort(batch.begin(), batch.end(), less);
            bounds.push_back(merged.size());
            merged.insert(merged.end(), batch.begin(), batch.end());
        }
        bounds.push_back(merged.size());
        while (bounds.size() > 2) {
            scratch.clear();
            scratch.push_back(bounds.front());
            size_t r = 0;
            for (; r + 2 < bounds.size(); r += 2) {
                std::inplace_merge(
                    merged.begin() + ptrdiff_t(bounds[r]),
                    merged.begin() + ptrdiff_t(bounds[r + 1]),
                    merged.begin() + ptrdiff_t(bounds[r + 2]), less);
                scratch.push_back(bounds[r + 2]);
            }
            if (r + 1 < bounds.size())
                scratch.push_back(bounds[r + 1]);
            bounds.swap(scratch);
        }
        benchmark::DoNotOptimize(merged.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0) * 256);
}
BENCHMARK(BM_CrossDeliverBatchMerge)->Arg(2)->Arg(8)->Arg(32);

/** Owner-side cost of the shard-task deque: push + popFront. */
void
BM_StealDequePushPop(benchmark::State &state)
{
    topo::StealDeque deque;
    size_t tasks = size_t(state.range(0));
    uint32_t task = 0;
    for (auto _ : state) {
        for (uint32_t t = 0; t < tasks; ++t)
            deque.push(t);
        while (deque.popFront(task))
            benchmark::DoNotOptimize(task);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(tasks));
}
BENCHMARK(BM_StealDequePushPop)->Arg(16)->Arg(256);

/** Thief-side cost: popBack against a populated victim deque. */
void
BM_StealDequeSteal(benchmark::State &state)
{
    topo::StealDeque deque;
    size_t tasks = size_t(state.range(0));
    uint32_t task = 0;
    for (auto _ : state) {
        for (uint32_t t = 0; t < tasks; ++t)
            deque.push(t);
        while (deque.popBack(task))
            benchmark::DoNotOptimize(task);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(tasks));
}
BENCHMARK(BM_StealDequeSteal)->Arg(16)->Arg(256);

/**
 * A prefix-list whose entries cover disjoint /16 ranges; roughly one
 * entry in @p entries covers any generated route, so the linear scan
 * pays the full walk while the compiled trie touches only the
 * covering chain.
 */
bgp::PrefixList
benchPrefixList(size_t entries)
{
    bgp::PrefixList list("bench");
    for (size_t i = 0; i < entries; ++i) {
        list.add(uint32_t(5 * (i + 1)), i % 4 != 0,
                 net::Prefix(net::Ipv4Address(uint8_t(10 + i / 256),
                                              uint8_t(i % 256), 0, 0),
                             16),
                 std::nullopt, 24);
    }
    return list;
}

/** Compiled (trie) prefix-list evaluation over a generated table. */
void
BM_PrefixListTrie(benchmark::State &state)
{
    auto list = benchPrefixList(size_t(state.range(0)));
    auto rs = routes(4096);
    for (auto _ : state) {
        for (const auto &r : rs)
            benchmark::DoNotOptimize(list.evaluate(r.prefix));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rs.size()));
}
BENCHMARK(BM_PrefixListTrie)->Arg(256)->Arg(1024);

/** The linear-scan oracle on the same list — the pre-trie cost. */
void
BM_PrefixListLinear(benchmark::State &state)
{
    auto list = benchPrefixList(size_t(state.range(0)));
    auto rs = routes(4096);
    for (auto _ : state) {
        for (const auto &r : rs)
            benchmark::DoNotOptimize(list.evaluateLinear(r.prefix));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rs.size()));
}
BENCHMARK(BM_PrefixListLinear)->Arg(256)->Arg(1024);

/** Interned attribute bundles for @p rs (the speakers' steady state). */
std::vector<bgp::PathAttributesPtr>
internedTable(const std::vector<workload::RouteSpec> &rs)
{
    std::vector<bgp::PathAttributesPtr> table;
    table.reserve(rs.size());
    for (const auto &r : rs) {
        bgp::PathAttributes attrs;
        attrs.asPath = bgp::AsPath::sequence(r.basePath);
        attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
        attrs.localPref = 100;
        table.push_back(bgp::makeAttributes(std::move(attrs)));
    }
    return table;
}

/**
 * Full route-map walk: N never-matching entries ahead of a
 * permit-all, the policy_heavy bench's scan shape.
 */
void
BM_RouteMapEval(benchmark::State &state)
{
    size_t entries = size_t(state.range(0));
    bgp::RouteMap map("bench", bgp::RouteMap::NoMatch::Deny);
    for (size_t i = 0; i + 1 < entries; ++i) {
        bgp::RouteMapEntry entry;
        entry.seq = uint32_t(10 * (i + 1));
        entry.match.minAsPathLength = 24;
        map.add(std::move(entry));
    }
    bgp::RouteMapEntry accept_all;
    accept_all.seq = uint32_t(10 * entries);
    map.add(std::move(accept_all));

    auto rs = routes(1024);
    auto table = internedTable(rs);
    for (auto _ : state) {
        for (size_t i = 0; i < rs.size(); ++i) {
            benchmark::DoNotOptimize(
                map.apply(rs[i].prefix, table[i]));
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rs.size()));
}
BENCHMARK(BM_RouteMapEval)->Arg(16)->Arg(256);

/**
 * Copy-on-write fast path: a permit entry whose set-action is
 * already satisfied, so apply() returns the original interned
 * pointer without touching the interner.
 */
void
BM_PolicyCowHit(benchmark::State &state)
{
    bgp::RouteMap map("cow-hit", bgp::RouteMap::NoMatch::Deny);
    bgp::RouteMapEntry entry;
    entry.set.localPref = 100; // every bundle already has 100
    map.add(std::move(entry));

    auto rs = routes(1024);
    auto table = internedTable(rs);
    for (auto _ : state) {
        for (size_t i = 0; i < rs.size(); ++i) {
            benchmark::DoNotOptimize(
                map.apply(rs[i].prefix, table[i]));
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rs.size()));
}
BENCHMARK(BM_PolicyCowHit);

/**
 * The slow path the COW check avoids: a set-action that genuinely
 * changes every bundle, costing one copy + re-intern per route.
 */
void
BM_PolicyCowCopy(benchmark::State &state)
{
    bgp::RouteMap map("cow-copy", bgp::RouteMap::NoMatch::Deny);
    bgp::RouteMapEntry entry;
    entry.set.localPref = 250;
    map.add(std::move(entry));

    auto rs = routes(1024);
    auto table = internedTable(rs);
    for (auto _ : state) {
        for (size_t i = 0; i < rs.size(); ++i) {
            benchmark::DoNotOptimize(
                map.apply(rs[i].prefix, table[i]));
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rs.size()));
}
BENCHMARK(BM_PolicyCowCopy);

/**
 * What every accepted route would cost without the wouldChange()
 * check: unconditional deep copy + re-intern, even when nothing
 * changed. The gap to BM_PolicyCowHit is the COW win.
 */
void
BM_PolicyDeepCopyBaseline(benchmark::State &state)
{
    auto rs = routes(1024);
    auto table = internedTable(rs);
    for (auto _ : state) {
        for (size_t i = 0; i < rs.size(); ++i) {
            bgp::PathAttributes copy = *table[i];
            benchmark::DoNotOptimize(
                bgp::makeAttributes(std::move(copy)));
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rs.size()));
}
BENCHMARK(BM_PolicyDeepCopyBaseline);

} // namespace

/**
 * --obs-overhead-check: assert that a speaker whose observability is
 * bound but whose trace sink is detached stays within a small factor
 * of a completely unbound speaker on the UPDATE hot path. This is
 * the guarantee that lets the instrumentation stay compiled in.
 */
namespace
{

/** Wire-level OPEN/KEEPALIVE handshake for @p id. */
void
establishPeer(bgp::BgpSpeaker &speaker, bgp::PeerId id,
              bgp::AsNumber asn, bgp::RouterId router_id)
{
    speaker.startPeer(id, 0);
    speaker.tcpEstablished(id, 0);
    bgp::OpenMessage open;
    open.myAs = asn;
    open.bgpIdentifier = router_id;
    speaker.receiveBytes(id, bgp::encodeMessage(open), 0);
    speaker.receiveBytes(id,
                         bgp::encodeMessage(bgp::KeepaliveMessage{}),
                         0);
}

/**
 * Feed alternating attribute-change rounds into a fresh speaker (so
 * every round runs the full decision process, not the re-announce
 * suppression fast path); when @p bound, observability handles are
 * resolved but the tracer has no buffer attached (the production
 * default with --stats/--trace off).
 */
double
runObsMode(const std::vector<std::vector<uint8_t>> &wires_a,
           const std::vector<std::vector<uint8_t>> &wires_b,
           size_t rounds, bool bound)
{
    struct Sink : public bgp::SpeakerEvents
    {
        void onTransmit(bgp::PeerId, bgp::MessageType,
                        net::WireSegmentPtr, size_t) override
        {}
    } events;

    bgp::SpeakerConfig config;
    config.localAs = 65001;
    config.routerId = 1;
    config.localAddress = net::Ipv4Address(10, 0, 0, 1);
    bgp::BgpSpeaker speaker(config, &events);

    bgp::PeerConfig up;
    up.id = 0;
    up.asn = 65000;
    up.address = net::Ipv4Address(10, 0, 1, 2);
    speaker.addPeer(up);
    bgp::PeerConfig down;
    down.id = 1;
    down.asn = 66001;
    down.address = net::Ipv4Address(10, 1, 0, 2);
    speaker.addPeer(down);
    establishPeer(speaker, 0, 65000, 100);
    establishPeer(speaker, 1, 66001, 200);

    obs::MetricRegistry registry;
    obs::Tracer tracer; // deliberately never attached to a buffer
    if (bound)
        speaker.bindObservability(&registry, &tracer, 0);

    auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < rounds; ++r) {
        for (const auto &wire : r % 2 == 0 ? wires_a : wires_b)
            speaker.receiveBytes(0, wire, 0);
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

int
runObsOverheadCheck()
{
    constexpr size_t prefix_count = 8000;
    constexpr size_t per_packet = 100;
    constexpr size_t rounds = 256;
    constexpr int reps = 5;
    // The measured overhead with sinks detached is ~0% (the bound
    // mode regularly wins); the gate sits at 5% because best-of-5
    // wall-clock on a shared CI host carries ±3% noise, while any
    // real per-UPDATE cost (an atomic, a branch to a live sink)
    // shows up well above 10%.
    constexpr double tolerance = 1.05;

    auto rs = routes(prefix_count);
    auto encode = [&](size_t prepends) {
        workload::StreamConfig cfg = streamConfig(per_packet);
        cfg.extraPrepends = prepends;
        std::vector<std::vector<uint8_t>> wires;
        for (const auto &packet :
             workload::buildAnnouncementStream(rs, cfg)) {
            wires.emplace_back(packet.wire->data(),
                               packet.wire->data() +
                                   packet.wire->size());
        }
        return wires;
    };
    auto wires_a = encode(0);
    auto wires_b = encode(2);

    // Discarded warm-up (page cache, allocator, CPU clocks), then
    // alternate the mode order per rep and keep each mode's best so
    // neither side is systematically favoured.
    runObsMode(wires_a, wires_b, rounds / 4, false);
    runObsMode(wires_a, wires_b, rounds / 4, true);
    double best_unbound = 0.0, best_bound = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        bool bound_first = rep % 2 != 0;
        double first =
            runObsMode(wires_a, wires_b, rounds, bound_first);
        double second =
            runObsMode(wires_a, wires_b, rounds, !bound_first);
        double bound = bound_first ? first : second;
        double unbound = bound_first ? second : first;
        if (rep == 0 || unbound < best_unbound)
            best_unbound = unbound;
        if (rep == 0 || bound < best_bound)
            best_bound = bound;
    }

    double ratio =
        best_unbound > 0 ? best_bound / best_unbound : 1.0;
    std::cout << "obs overhead check: unbound "
              << stats::formatDouble(best_unbound * 1e3, 2)
              << " ms, bound (sinks detached) "
              << stats::formatDouble(best_bound * 1e3, 2) << " ms, "
              << "ratio " << stats::formatDouble(ratio, 4) << " (limit "
              << stats::formatDouble(tolerance, 2) << ")\n";
    if (ratio > tolerance) {
        std::cerr << "error: detached observability costs more than "
                  << stats::formatDouble((tolerance - 1.0) * 100.0, 0)
                  << "% on the UPDATE hot path\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-overhead-check") == 0)
            return runObsOverheadCheck();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
