/**
 * @file
 * Reproduces Figure 3: "Activity of Different BGP Processes During
 * Scenario 6" — per-process CPU load over time on the Pentium III,
 * the Xeon, and the IXP2400.
 *
 * The paper's observations to look for in the output:
 *   - on the uni-core Pentium III all XORP processes compete for one
 *     processor, which is the bottleneck in every phase;
 *   - on the Xeon the phases complete several times faster;
 *   - on the IXP2400 everything stretches out by an order of
 *     magnitude and xorp_rtrmgr consumes a considerable share.
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

int
main()
{
    auto scenario = core::scenarioByNumber(6);

    std::cout << "Figure 3 reproduction: per-process CPU load during "
              << scenario.name() << "\n(" << scenario.description()
              << ")\n";

    for (const char *name : {"PentiumIII", "Xeon", "IXP2400"}) {
        auto profile = router::profileByName(name);
        // The IXP is an order of magnitude slower; keep its run short
        // enough to finish while still showing the phase structure.
        size_t prefixes =
            profile.architecture ==
                    router::Architecture::NetworkProcessor
                ? benchutil::prefixCount(4000, 400)
                : benchutil::prefixCount(20000, 1000);

        core::BenchmarkConfig config;
        config.prefixCount = prefixes;
        core::BenchmarkRunner runner(profile, config);
        auto result = runner.run(scenario);

        std::cout << "\n=== " << name << " (" << prefixes
                  << " prefixes) ===\n";
        if (result.timedOut) {
            std::cout << "TIMEOUT\n";
            continue;
        }

        std::cout << "phase 1 (table injection): "
                  << stats::formatDouble(result.phase1.durationSec, 1)
                  << " s   phase 2 (propagation): "
                  << stats::formatDouble(result.phase2->durationSec, 1)
                  << " s   phase 3 (incremental): "
                  << stats::formatDouble(result.phase3->durationSec, 1)
                  << " s\n";
        std::cout << "phase-3 rate: "
                  << stats::formatDouble(result.measuredTps, 1)
                  << " transactions/s\n\n";

        // The five XORP processes, as in the figure's legend
        // (interrupts/system omitted: no cross-traffic here).
        auto all = runner.router().loadTracker().allSeries();
        std::vector<const stats::TimeSeries *> xorp(
            all.begin(), all.begin() + 5);
        std::cout << "CPU load per process (percent of one core, "
                     "1 s samples):\n";
        stats::printSeriesTable(std::cout, xorp, 40);
    }
    return 0;
}
