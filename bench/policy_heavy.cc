/**
 * @file
 * Policy-cost benchmark: the Table III scenarios re-run with a
 * 256-entry route-map attached to import and export of both test-peer
 * sessions, next to the plain runs — how much of the paper's
 * transactions-per-second shape survives a production-size policy in
 * the hot path.
 *
 * Three sections:
 *
 *  1. scenarios — every paper scenario on one system, routes/s with
 *     and without the route-map, and the overhead ratio. The map is
 *     an intentionally adversarial scan: 255 non-matching entries in
 *     front of a final permit-all, so every route walks the whole
 *     map on both import and export.
 *  2. cow — the copy-on-write contract measured directly: the same
 *     map applied to an interned full table where a small slice of
 *     routes matches a set-action entry. Accepted-unchanged routes
 *     must keep their interned pointer (cow_hits); the hit rate on
 *     this mostly-unchanged workload is the headline number (> 0.9).
 *  3. --policy-overhead-check runs the CI gate instead of the bench:
 *     scenario 1 with a one-entry pass-through route-map attached
 *     versus no policy (warm-up pair, then alternating order,
 *     best-of-9); the pass-through run must not be more than 5%
 *     slower. This bounds the fixed price of having the policy
 *     machinery engaged at all — the COW fast path is what keeps it
 *     flat.
 *
 * Writes BENCH_policy_heavy.json (field reference in README.md).
 * Overrides: BGPBENCH_FAST=1 / --smoke shrink the run; --out FILE.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bgp/attr_intern.hh"
#include "bgp/policy.hh"
#include "core/benchmark_runner.hh"
#include "core/runtime_config.hh"
#include "core/scenario.hh"
#include "stats/json.hh"
#include "stats/report.hh"
#include "workload/route_set.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

double
wallMs(std::chrono::steady_clock::time_point begin)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

/**
 * The 256-entry scan: 255 entries that match none of the generated
 * routes (rotating through community, path-length, and prefix-range
 * conditions so the per-entry work is realistic, not one memoised
 * check), then a permit-all. Every evaluated route pays the full
 * walk and comes out accepted with unchanged attributes.
 */
bgp::Policy
heavyScanPolicy(size_t entries)
{
    auto map = std::make_shared<bgp::RouteMap>(
        "heavy-scan", bgp::RouteMap::NoMatch::Deny);
    for (size_t i = 0; i + 1 < entries; ++i) {
        bgp::RouteMapEntry entry;
        entry.seq = uint32_t(10 * (i + 1));
        entry.permit = true;
        switch (i % 3) {
          case 0:
            // No generated route carries communities.
            entry.match.hasCommunity = 0xFFFF0000u | uint32_t(i);
            break;
          case 1:
            // Generated paths are at most ~6 hops.
            entry.match.minAsPathLength = 24;
            break;
          default:
            // 240.0.0.0/4 (class E) never appears in the workload.
            entry.match.prefixCoveredBy =
                net::Prefix(net::Ipv4Address(240, 0, 0, 0), 4);
            break;
        }
        map->add(std::move(entry));
    }
    bgp::RouteMapEntry accept_all;
    accept_all.seq = uint32_t(10 * entries);
    accept_all.permit = true;
    map->add(std::move(accept_all));
    return bgp::Policy(std::move(map));
}

/** One entry, matches everything, changes nothing. */
bgp::Policy
passThroughPolicy()
{
    auto map = std::make_shared<bgp::RouteMap>(
        "pass-through", bgp::RouteMap::NoMatch::Deny);
    map->add(bgp::RouteMapEntry{});
    return bgp::Policy(std::move(map));
}

struct ScenarioPoint
{
    int scenario = 0;
    double tpsNoPolicy = 0.0;
    double tpsPolicy = 0.0;
};

struct CowPoint
{
    bgp::PolicyEvalStats stats;
    size_t routes = 0;
};

/**
 * Apply the heavy map to an interned table where ~1/16 of the routes
 * carry the one AS a set-action entry matches. The rest must come
 * back pointer-identical.
 */
CowPoint
measureCow(size_t route_count)
{
    // The scan map plus one set-action entry in the middle: routes
    // whose path contains AS 64999 get LOCAL_PREF 200 (a genuine
    // attribute change, so they cost a copy + re-intern).
    auto map = std::make_shared<bgp::RouteMap>(
        "heavy-cow", bgp::RouteMap::NoMatch::Deny);
    const bgp::Policy scan = heavyScanPolicy(256);
    for (const bgp::RouteMapEntry &entry :
         scan.routeMap()->entries())
        map->add(entry);
    bgp::RouteMapEntry boost;
    boost.seq = 5; // evaluated first
    boost.permit = true;
    boost.match.asPathContains = bgp::AsNumber(64999);
    boost.set.localPref = 200;
    map->add(std::move(boost));

    workload::RouteSetConfig rc;
    rc.count = route_count;
    rc.seed = 42;
    auto routes = workload::generateRouteSet(rc);

    CowPoint point;
    point.routes = routes.size();
    std::vector<bgp::PathAttributesPtr> table;
    table.reserve(routes.size());
    for (size_t i = 0; i < routes.size(); ++i) {
        bgp::PathAttributes attrs;
        std::vector<bgp::AsNumber> path = routes[i].basePath;
        if (i % 16 == 0)
            path.push_back(bgp::AsNumber(64999));
        attrs.asPath = bgp::AsPath::sequence(path);
        attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
        attrs.localPref = 100;
        table.push_back(bgp::makeAttributes(std::move(attrs)));
    }

    for (size_t i = 0; i < routes.size(); ++i) {
        bgp::PathAttributesPtr out = map->apply(
            routes[i].prefix, table[i], 0, &point.stats);
        // The COW contract, asserted inline so a regression fails
        // the bench, not only the JSON gate downstream.
        if (i % 16 != 0 && out.get() != table[i].get()) {
            std::cerr << "error: unchanged route lost its interned "
                         "pointer identity\n";
            std::exit(1);
        }
    }
    return point;
}

int
runPolicyOverheadCheck(size_t prefixes)
{
    router::SystemProfile profile = router::profileByName("Xeon");
    const core::Scenario scenario = core::scenarioByNumber(1);

    auto once = [&](bool with_policy) {
        core::BenchmarkConfig config;
        config.prefixCount = prefixes;
        if (with_policy) {
            config.importPolicy = passThroughPolicy();
            config.exportPolicy = passThroughPolicy();
        }
        core::BenchmarkRunner runner(profile, config);
        auto begin = std::chrono::steady_clock::now();
        runner.run(scenario);
        return wallMs(begin);
    };

    // One untimed warm-up pair so first-touch page faults and cache
    // fills are not charged to whichever mode happens to run first.
    once(true);
    once(false);

    const int reps = 9;
    double best_policy = 0.0;
    double best_plain = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        // Alternate the order so cache warmth cannot bias one mode.
        double policy_ms;
        double plain_ms;
        if (rep % 2 == 0) {
            policy_ms = once(true);
            plain_ms = once(false);
        } else {
            plain_ms = once(false);
            policy_ms = once(true);
        }
        if (rep == 0 || policy_ms < best_policy)
            best_policy = policy_ms;
        if (rep == 0 || plain_ms < best_plain)
            best_plain = plain_ms;
    }

    double ratio = best_plain > 0 ? best_policy / best_plain : 1.0;
    std::cout << "policy overhead check (scenario 1, Xeon, "
              << prefixes << " prefixes, best of " << reps << "):\n"
              << "  pass-through route-map "
              << stats::formatDouble(best_policy, 2) << " ms, none "
              << stats::formatDouble(best_plain, 2) << " ms, ratio "
              << stats::formatDouble(ratio, 3) << " (limit 1.05)\n";
    if (ratio > 1.05) {
        std::cerr << "error: a pass-through route-map costs more "
                     "than 5% over no policy\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = benchutil::fastMode();
    bool overhead_check = false;
    std::string out_path = "BENCH_policy_heavy.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--policy-overhead-check") {
            overhead_check = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: policy_heavy [--smoke] "
                         "[--policy-overhead-check] [--out FILE]\n";
            return 2;
        }
    }

    core::RuntimeConfig runtime =
        core::RuntimeConfig::fromEnvironment();
    runtime.apply();

    if (overhead_check)
        return runPolicyOverheadCheck(smoke ? 300 : 1000);

    const size_t prefixes =
        benchutil::envSize("BGPBENCH_PREFIXES", smoke ? 300 : 2000);
    const size_t map_entries = 256;
    router::SystemProfile profile = router::profileByName("Xeon");
    const bgp::Policy heavy = heavyScanPolicy(map_entries);

    std::cout << "Policy-heavy Table III variant (" << profile.name
              << ", " << prefixes << " prefixes, " << map_entries
              << "-entry route-map on import+export)\n\n";

    std::vector<ScenarioPoint> points;
    stats::TextTable table({"Scenario", "plain tps", "policy tps",
                            "overhead"});
    for (const auto &scenario : core::allScenarios()) {
        ScenarioPoint point;
        point.scenario = scenario.number;

        core::BenchmarkConfig plain;
        plain.prefixCount = prefixes;
        core::BenchmarkRunner plain_runner(profile, plain);
        point.tpsNoPolicy =
            plain_runner.run(scenario).measuredTps;

        core::BenchmarkConfig heavy_config;
        heavy_config.prefixCount = prefixes;
        heavy_config.importPolicy = heavy;
        heavy_config.exportPolicy = heavy;
        core::BenchmarkRunner heavy_runner(profile, heavy_config);
        point.tpsPolicy = heavy_runner.run(scenario).measuredTps;

        double overhead = point.tpsPolicy > 0
                              ? point.tpsNoPolicy / point.tpsPolicy
                              : 0.0;
        table.addRow({scenario.name(),
                      stats::formatDouble(point.tpsNoPolicy, 1),
                      stats::formatDouble(point.tpsPolicy, 1),
                      stats::formatDouble(overhead, 2) + "x"});
        points.push_back(point);
    }
    table.print(std::cout);

    CowPoint cow = measureCow(smoke ? 20000 : 100000);
    std::cout << "\ncopy-on-write: " << cow.stats.evals
              << " evaluations, " << cow.stats.cowHits
              << " pointer-identical, " << cow.stats.cowCopies
              << " copied, hit rate "
              << stats::formatDouble(cow.stats.cowHitRatio(), 4)
              << "\n";

    std::ofstream json_out(out_path);
    stats::JsonWriter json(json_out);
    json.beginObject();
    json.field("benchmark", "policy_heavy");
    json.field("smoke", smoke);
    json.field("system", profile.name);
    json.field("prefixes", uint64_t(prefixes));
    json.field("route_map_entries", uint64_t(map_entries));
    json.key("scenarios");
    json.beginArray();
    for (const ScenarioPoint &point : points) {
        json.beginObject();
        json.field("scenario", int64_t(point.scenario));
        json.field("tps_no_policy", point.tpsNoPolicy);
        json.field("tps_policy", point.tpsPolicy);
        json.field("overhead_ratio",
                   point.tpsPolicy > 0
                       ? point.tpsNoPolicy / point.tpsPolicy
                       : 0.0);
        json.endObject();
    }
    json.endArray();
    json.key("cow");
    json.beginObject();
    json.field("routes", uint64_t(cow.routes));
    json.field("evals", cow.stats.evals);
    json.field("rejects", cow.stats.rejects);
    json.field("cow_hits", cow.stats.cowHits);
    json.field("cow_copies", cow.stats.cowCopies);
    json.field("hit_rate", cow.stats.cowHitRatio());
    json.endObject();
    json.endObject();
    json_out << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
