/**
 * @file
 * Reproduces Figure 6: "CPU Load on Pentium III during Benchmark 8"
 * — interrupt/system/user CPU breakdown without and with 300 Mbps of
 * cross-traffic, plus the forwarding-rate dip while the routing table
 * is replaced (Figure 6c).
 *
 * Expected shapes (paper section V.B): cross-traffic adds 20-30% of
 * interrupt load, stretching the benchmark; and despite the kernel's
 * priority, the forwarding rate dips shortly after Phase 3 starts
 * because FIB writes occupy the kernel.
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

void
printBreakdown(core::BenchmarkRunner &runner)
{
    auto all = runner.router().loadTracker().allSeries();
    // Order: 5 control processes, then "interrupts", then "system".
    const stats::TimeSeries *irq = all[5];
    const stats::TimeSeries *system = all[6];

    // Aggregate user time across the XORP suite.
    stats::TimeSeries user(irq->bucketSeconds(), "user");
    size_t buckets = 0;
    for (size_t i = 0; i < 5; ++i)
        buckets = std::max(buckets, all[i]->bucketCount());
    for (size_t b = 0; b < buckets; ++b) {
        double sum = 0;
        for (size_t i = 0; i < 5; ++i)
            sum += all[i]->bucket(b);
        user.add(double(b) * irq->bucketSeconds(), sum);
    }

    std::vector<const stats::TimeSeries *> series{irq, system, &user};
    stats::printSeriesTable(std::cout, series, 30);
}

} // namespace

int
main()
{
    size_t prefixes = benchutil::prefixCount(3000, 400);
    auto profile = router::profileByName("PentiumIII");
    auto scenario = core::scenarioByNumber(8);

    std::cout << "Figure 6 reproduction: Pentium III during "
              << scenario.name() << ", " << prefixes << " prefixes\n";

    for (double mbps : {0.0, 300.0}) {
        core::BenchmarkConfig config;
        config.prefixCount = prefixes;
        config.crossTrafficMbps = mbps;
        core::BenchmarkRunner runner(profile, config);
        auto result = runner.run(scenario);

        std::cout << "\n=== " << (mbps == 0.0 ? "(a) without"
                                              : "(b) with 300 Mbps of")
                  << " cross-traffic ===\n";
        if (result.timedOut) {
            std::cout << "TIMEOUT\n";
            continue;
        }
        std::cout << "phase-3 rate: "
                  << stats::formatDouble(result.measuredTps, 1)
                  << " transactions/s (paper: 118.7 without, lower "
                     "with cross-traffic)\n";
        std::cout << "CPU load breakdown (percent of one core):\n";
        printBreakdown(runner);

        if (mbps > 0.0) {
            std::cout << "\n=== (c) forwarding rate with 300 Mbps "
                         "offered ===\n";
            const auto &bytes = runner.router().forwardingBytesSeries();
            stats::TimeSeries mbps_series(bytes.bucketSeconds(),
                                          "forwarded-Mbps");
            for (size_t b = 0; b < bytes.bucketCount(); ++b) {
                mbps_series.add(double(b) * bytes.bucketSeconds(),
                                bytes.rate(b) * 8.0 / 1e6);
            }
            stats::printAsciiChart(std::cout, mbps_series, "Mbps",
                                   320.0, 30);

            const auto &dp = runner.router().dataPlane();
            std::cout << "offered " << dp.offeredPackets
                      << " packets, forwarded " << dp.forwardedPackets
                      << ", queue drops " << dp.queueDrops
                      << ", bus drops " << dp.busDrops << "\n";
            std::cout << "(paper Fig. 6c: the rate dips below the "
                         "offered 300 Mbps shortly after Phase 3 "
                         "starts, while FIB writes occupy the "
                         "kernel)\n";
        }
    }
    return 0;
}
