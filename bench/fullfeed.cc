/**
 * @file
 * Extension benchmark: internet-scale full-feed ingestion.
 *
 * The paper's Table III tops out at thousands of prefixes; a deployed
 * default-free router ingests ~1M. This bench drives a streaming,
 * internet-shaped feed (CIDR mix /8../24, power-law AS paths from a
 * Barabási–Albert topology — see workload/fullfeed.hh) from several
 * eBGP peers into one speaker, through the full pipeline: wire decode
 * -> Adj-RIB-In -> decision -> Loc-RIB -> Adj-RIB-Out export. All
 * peers carry the same prefix sequence with per-peer paths, like a
 * multi-homed site's overlapping transit feeds, which is exactly the
 * shape the shared prefix table is built for: the key structure is
 * stored once, every RIB is a value column on it.
 *
 * Reported (each also published through the obs metric registry):
 *  - sustained transactions/second across the whole ingest,
 *  - peak RSS (VmHWM) and the ingest RSS delta,
 *  - bytes per installed route, both as observed process memory
 *    (rss delta / RIB entries) and as structural RIB bytes from
 *    BgpSpeaker::ribMemoryBytes().
 *
 * Writes BENCH_fullfeed.json (field reference in README.md). The CI
 * regression gate runs --smoke twice — default vs
 * BGPBENCH_NO_PREFIX_TREE=1 — and asserts the tree at least halves
 * bytes/route.
 *
 * Overrides: --smoke / BGPBENCH_FAST=1 shrink the run; --routes N,
 * --peers N, --out FILE; BGPBENCH_NO_PREFIX_TREE=1 selects the
 * hash-map RIB backend (see `bgpbench config`).
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bgp/message.hh"
#include "bgp/speaker.hh"
#include "core/runtime_config.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/process_memory.hh"
#include "obs/trace.hh"
#include "stats/json.hh"
#include "stats/report.hh"
#include "workload/fullfeed.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

/** Counts what the speaker exports; the wire bytes are dropped. */
struct Sink : public bgp::SpeakerEvents
{
    uint64_t messages = 0;
    uint64_t transactions = 0;

    void
    onTransmit(bgp::PeerId, bgp::MessageType, net::WireSegmentPtr,
               size_t txns) override
    {
        ++messages;
        transactions += txns;
    }
};

/** Wire-level OPEN/KEEPALIVE handshake for @p id. */
void
establishPeer(bgp::BgpSpeaker &speaker, bgp::PeerId id,
              bgp::AsNumber asn, bgp::RouterId router_id)
{
    speaker.startPeer(id, 0);
    speaker.tcpEstablished(id, 0);
    bgp::OpenMessage open;
    open.myAs = asn;
    open.bgpIdentifier = router_id;
    speaker.receiveBytes(id, bgp::encodeMessage(open), 0);
    speaker.receiveBytes(id,
                         bgp::encodeMessage(bgp::KeepaliveMessage{}),
                         0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = benchutil::fastMode();
    size_t routes_arg = 0;
    size_t feeds = 12;
    std::string out_path = "BENCH_fullfeed.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--routes" && i + 1 < argc) {
            routes_arg = size_t(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--peers" && i + 1 < argc) {
            feeds = size_t(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: fullfeed [--smoke] [--routes N] "
                         "[--peers N] [--out FILE]\n";
            return 2;
        }
    }
    if (feeds == 0 || feeds > 64) {
        std::cerr << "error: --peers must be in 1..64\n";
        return 2;
    }

    core::RuntimeConfig runtime = core::RuntimeConfig::fromEnvironment();
    runtime.apply();

    const size_t routes = routes_arg != 0 ? routes_arg
                          : smoke        ? 50'000
                                         : 1'000'000;
    const uint64_t seed = 42;

    std::cout << "full-feed ingestion: " << routes
              << " prefixes from " << feeds << " peers ("
              << (runtime.prefixTree() ? "prefix-tree"
                                       : "hash-map")
              << " RIBs, seed " << seed << ")\n";

    Sink sink;
    bgp::SpeakerConfig config;
    config.localAs = 65001;
    config.routerId = 1;
    config.localAddress = net::Ipv4Address(10, 0, 0, 1);
    bgp::BgpSpeaker speaker(config, &sink);

    obs::MetricRegistry registry;
    obs::Tracer tracer;
    speaker.bindObservability(&registry, &tracer, 0);

    // Feed peers plus one pure downstream customer, so the export leg
    // (Adj-RIB-Out + UPDATE packing) carries the full table too.
    std::vector<workload::FullFeedGenerator> generators;
    generators.reserve(feeds);
    for (size_t i = 0; i < feeds; ++i) {
        bgp::PeerConfig peer;
        peer.id = bgp::PeerId(i);
        peer.asn = bgp::AsNumber(64601 + i);
        peer.address = net::Ipv4Address(10, 1, uint8_t(i), 2);
        speaker.addPeer(peer);
        establishPeer(speaker, peer.id, peer.asn,
                      bgp::RouterId(100 + i));

        workload::FullFeedConfig feed;
        feed.seed = seed; // shared: every peer sees the same prefixes
        feed.routeCount = routes;
        feed.feedAs = peer.asn;
        feed.nextHop = peer.address;
        generators.emplace_back(feed);
    }
    const bgp::PeerId downstream = bgp::PeerId(feeds);
    {
        bgp::PeerConfig peer;
        peer.id = downstream;
        peer.asn = 65100;
        peer.address = net::Ipv4Address(10, 2, 0, 2);
        speaker.addPeer(peer);
        establishPeer(speaker, downstream, peer.asn, 900);
    }

    // A router provisioned for full feeds knows its table scale;
    // pre-sizing removes geometric-growth slack from both backends.
    speaker.reserveRoutes(routes);

    // Round-robin chunk interleave: every peer advances one chunk per
    // turn, so ingestion, decision, and export flushing overlap the
    // way concurrent sessions do — the feed is never staged whole.
    const obs::ProcessMemory before = obs::readProcessMemory();
    std::vector<workload::StreamPacket> packets;
    bgp::BgpSpeaker::TimeNs now = 0;
    auto t0 = std::chrono::steady_clock::now();
    bool any = true;
    while (any) {
        any = false;
        for (size_t i = 0; i < feeds; ++i) {
            if (generators[i].done())
                continue;
            packets.clear();
            generators[i].nextChunk(packets);
            for (const auto &pkt : packets)
                speaker.receiveSegment(bgp::PeerId(i), pkt.wire, now);
            now += 1'000'000; // 1 ms of virtual time per chunk
            any = any || !generators[i].done();
        }
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    const obs::ProcessMemory after = obs::readProcessMemory();

    // Table accounting: the Loc-RIB should hold exactly the shared
    // prefix sequence once, each feed's Adj-RIB-In the whole feed.
    const size_t loc_rib_routes = speaker.locRib().size();
    size_t adj_in_routes = 0;
    size_t adj_out_routes = 0;
    for (bgp::PeerId id : speaker.peerIds()) {
        if (id < feeds)
            adj_in_routes += speaker.adjRibIn(id).size();
        adj_out_routes += speaker.adjRibOut(id).size();
    }
    const size_t total_rib_routes =
        loc_rib_routes + adj_in_routes + adj_out_routes;
    if (loc_rib_routes != routes) {
        std::cerr << "error: Loc-RIB holds " << loc_rib_routes
                  << " routes, expected " << routes << "\n";
        return 1;
    }
    if (adj_in_routes != routes * feeds) {
        std::cerr << "error: Adj-RIB-In holds " << adj_in_routes
                  << " routes, expected " << routes * feeds << "\n";
        return 1;
    }

    const uint64_t announcements = uint64_t(routes) * feeds;
    const double tps = wall_s > 0.0 ? double(announcements) / wall_s
                                    : 0.0;
    const uint64_t rss_delta_kb = after.vmRssKb > before.vmRssKb
                                      ? after.vmRssKb - before.vmRssKb
                                      : 0;
    const double bytes_per_route =
        total_rib_routes > 0
            ? double(rss_delta_kb) * 1024.0 / double(total_rib_routes)
            : 0.0;
    const size_t rib_memory = speaker.ribMemoryBytes();
    const double rib_bytes_per_route =
        total_rib_routes > 0
            ? double(rib_memory) / double(total_rib_routes)
            : 0.0;

    // Everything reported below goes through the registry first, so
    // the text/CSV/JSON exporters and this bench's JSON agree.
    obs::publishProcessMemory(registry);
    registry.gauge("fullfeed.tps").set(tps);
    registry.gauge("fullfeed.bytes_per_route").set(bytes_per_route);
    registry.gauge("fullfeed.rib_memory_bytes").set(double(rib_memory));

    const auto &counters = speaker.counters();
    std::cout << "ingest: " << announcements << " announcements in "
              << stats::formatDouble(wall_s, 2) << " s = "
              << stats::formatDouble(tps, 0) << " tps\n"
              << "tables: Loc-RIB " << loc_rib_routes
              << ", Adj-RIB-In " << adj_in_routes << ", Adj-RIB-Out "
              << adj_out_routes << " (exported "
              << counters.prefixesAdvertised << " prefixes in "
              << sink.messages << " messages)\n"
              << "memory: peak RSS " << after.vmHwmKb
              << " kB, ingest delta " << rss_delta_kb << " kB, "
              << stats::formatDouble(bytes_per_route, 1)
              << " B/route observed, "
              << stats::formatDouble(rib_bytes_per_route, 1)
              << " B/route structural (" << rib_memory
              << " B RIB storage)\n";

    std::ofstream json(out_path);
    stats::JsonWriter writer(json);
    writer.beginObject();
    writer.field("benchmark", "fullfeed");
    writer.field("seed", seed);
    writer.field("prefix_tree", runtime.prefixTree());
    writer.field("routes_per_peer", uint64_t(routes));
    writer.field("feed_peers", uint64_t(feeds));
    writer.field("announcements", announcements);
    writer.field("distinct_paths",
                 uint64_t(generators.front().pathPoolSize()));
    writer.field("wall_s", wall_s);
    writer.field("tps", registry.gaugeValue("fullfeed.tps"));
    writer.field("updates_received", counters.updatesReceived);
    writer.field("updates_sent", counters.updatesSent);
    writer.field("prefixes_advertised", counters.prefixesAdvertised);
    writer.field("loc_rib_routes", uint64_t(loc_rib_routes));
    writer.field("adj_rib_in_routes", uint64_t(adj_in_routes));
    writer.field("adj_rib_out_routes", uint64_t(adj_out_routes));
    writer.field("total_rib_routes", uint64_t(total_rib_routes));
    writer.field("rss_before_kb", before.vmRssKb);
    writer.field("rss_after_kb", after.vmRssKb);
    writer.field("rss_delta_kb", rss_delta_kb);
    writer.field("peak_rss_kb",
                 uint64_t(registry.gaugeValue("proc.vm_hwm_kb")));
    writer.field("bytes_per_route",
                 registry.gaugeValue("fullfeed.bytes_per_route"));
    writer.field("rib_memory_bytes", uint64_t(rib_memory));
    writer.field("rib_bytes_per_route", rib_bytes_per_route);
    writer.endObject();
    json << "\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
