/**
 * @file
 * Ablation: path-attribute interning (hash-consing).
 *
 * Drives one full BgpSpeaker with the paper's large-packet workload
 * (500 prefixes per UPDATE, Table I) through a table load, several
 * re-announcement rounds (stable attributes), and several
 * attribute-change rounds, fanned out to a set of eBGP downstream
 * peers. The run is repeated with the AttributeInterner enabled and
 * disabled (the same switch BGPBENCH_NO_INTERN=1 throws process-wide)
 * and reports the wall-clock throughput of both modes plus the
 * interner's deduplication counters.
 *
 * With interning off every equality the speaker performs — Adj-RIB-In
 * re-announcement suppression, outbound grouping in UpdateBuilder,
 * Adj-RIB-Out no-op detection — falls back to hash-guarded deep
 * structural comparison, and the per-peer eBGP export memo misses on
 * every round because each decoded attribute block is a fresh
 * allocation.
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "bgp/attr_intern.hh"
#include "bgp/speaker.hh"
#include "net/logging.hh"
#include "obs/metrics.hh"
#include "obs/views.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

constexpr bgp::AsNumber dutAs = 65001;
constexpr bgp::AsNumber upstreamAs = 65000;
constexpr size_t prefixesPerUpdate = 500;

/** Event sink that discards transmissions (zero-cost wire). */
struct SinkEvents : public bgp::SpeakerEvents
{
    uint64_t transmits = 0;
    uint64_t wireBytes = 0;

    void
    onTransmit(bgp::PeerId, bgp::MessageType,
               net::WireSegmentPtr wire, size_t) override
    {
        ++transmits;
        wireBytes += wire->size();
    }
};

net::Prefix
prefix(uint32_t i)
{
    return net::Prefix(
        net::Ipv4Address(10, uint8_t(i >> 8), uint8_t(i), 0), 24);
}

/**
 * The attribute set of chunk @p c. A realistically long AS_PATH and
 * community list make the deep-compare fallback pay its true cost.
 */
bgp::PathAttributes
chunkAttributes(uint32_t c, uint32_t med_base)
{
    bgp::PathAttributes attrs;
    std::vector<bgp::AsNumber> path{upstreamAs};
    for (uint32_t hop = 0; hop < 31; ++hop)
        path.push_back(bgp::AsNumber(3000 + ((c * 7 + hop) % 900)));
    attrs.asPath = bgp::AsPath::sequence(std::move(path));
    attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
    attrs.med = med_base + c;
    for (uint32_t i = 0; i < 16; ++i)
        attrs.communities.push_back((uint32_t(upstreamAs) << 16) | i);
    return attrs;
}

/** Pre-encode one full-table round, one UPDATE per 500 prefixes. */
std::vector<std::vector<uint8_t>>
encodeRound(size_t prefix_count, uint32_t med_base)
{
    std::vector<std::vector<uint8_t>> wires;
    wires.reserve(prefix_count / prefixesPerUpdate + 1);
    for (size_t base = 0; base < prefix_count;
         base += prefixesPerUpdate) {
        bgp::UpdateMessage msg;
        msg.attributes = bgp::makeAttributes(
            chunkAttributes(uint32_t(base / prefixesPerUpdate),
                            med_base));
        size_t end = std::min(base + prefixesPerUpdate, prefix_count);
        msg.nlri.reserve(end - base);
        for (size_t i = base; i < end; ++i)
            msg.nlri.push_back(prefix(uint32_t(i)));
        wires.push_back(bgp::encodeMessage(msg));
    }
    return wires;
}

/** Drive the wire-level OPEN/KEEPALIVE handshake for @p id. */
void
establishPeer(bgp::BgpSpeaker &speaker, bgp::PeerId id,
              bgp::AsNumber asn, bgp::RouterId router_id)
{
    speaker.startPeer(id, 0);
    speaker.tcpEstablished(id, 0);
    bgp::OpenMessage open;
    open.myAs = asn;
    open.bgpIdentifier = router_id;
    speaker.receiveBytes(id, bgp::encodeMessage(open), 0);
    speaker.receiveBytes(id, bgp::encodeMessage(bgp::KeepaliveMessage{}),
                         0);
    panicIf(speaker.sessionState(id) !=
                bgp::SessionState::Established,
            "ablation peer failed to establish");
}

struct Workload
{
    size_t prefixes;
    size_t fanout;
    size_t reannounceRounds;
    size_t attrChangeRounds;
    std::vector<std::vector<uint8_t>> baseWires;
    std::vector<std::vector<uint8_t>> altWires;

    size_t
    transactions() const
    {
        return prefixes *
               (1 + reannounceRounds + attrChangeRounds);
    }
};

struct RunResult
{
    double seconds = 0.0;
    bgp::AttributeInterner::Stats intern;
};

RunResult
runMode(const Workload &load, bool intern_on)
{
    auto &interner = bgp::AttributeInterner::global();
    interner.setEnabled(intern_on);
    interner.clear();
    interner.resetStats();

    SinkEvents events;
    bgp::SpeakerConfig config;
    config.localAs = dutAs;
    config.routerId = 1;
    config.localAddress = net::Ipv4Address(10, 0, 0, 1);
    bgp::BgpSpeaker speaker(config, &events);

    bgp::PeerConfig up;
    up.id = 0;
    up.asn = upstreamAs;
    up.address = net::Ipv4Address(10, 0, 1, 2);
    speaker.addPeer(up);
    for (size_t i = 0; i < load.fanout; ++i) {
        bgp::PeerConfig down;
        down.id = bgp::PeerId(1 + i);
        down.asn = bgp::AsNumber(66001 + i);
        down.address = net::Ipv4Address(10, 1, uint8_t(i), 2);
        speaker.addPeer(down);
    }
    establishPeer(speaker, 0, upstreamAs, 100);
    for (size_t i = 0; i < load.fanout; ++i) {
        establishPeer(speaker, bgp::PeerId(1 + i),
                      bgp::AsNumber(66001 + i),
                      bgp::RouterId(200 + i));
    }

    auto feed = [&](const std::vector<std::vector<uint8_t>> &wires) {
        for (const auto &wire : wires)
            speaker.receiveBytes(0, wire, 0);
    };

    auto t0 = std::chrono::steady_clock::now();
    feed(load.baseWires);
    for (size_t r = 0; r < load.reannounceRounds; ++r)
        feed(load.baseWires);
    for (size_t a = 0; a < load.attrChangeRounds; ++a)
        feed(a % 2 == 0 ? load.altWires : load.baseWires);
    auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    result.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.intern = interner.stats();
    return result;
}

} // namespace

int
main()
{
    Workload load;
    load.prefixes = benchutil::prefixCount(20000, 2000);
    load.fanout = 8;
    load.reannounceRounds = 12;
    load.attrChangeRounds = 2;
    load.baseWires = encodeRound(load.prefixes, 1000);
    load.altWires = encodeRound(load.prefixes, 50000);

    std::cout << "Ablation: path-attribute interning (hash-consing)\n"
              << "workload: " << load.prefixes << " prefixes, "
              << prefixesPerUpdate << "/UPDATE, " << load.fanout
              << " downstream eBGP peers, " << load.reannounceRounds
              << " re-announce + " << load.attrChangeRounds
              << " attribute-change rounds\n\n";

    // Alternate the modes and keep each mode's best of three so
    // neither side is systematically favoured by cache warm-up.
    constexpr int reps = 3;
    RunResult best_off, best_on;
    for (int rep = 0; rep < reps; ++rep) {
        RunResult off = runMode(load, false);
        RunResult on = runMode(load, true);
        if (rep == 0 || off.seconds < best_off.seconds)
            best_off = off;
        if (rep == 0 || on.seconds < best_on.seconds)
            best_on = on;
    }
    // Leave the global interner in its default state for good
    // measure (runMode leaves it enabled-with-empty-table anyway).
    bgp::AttributeInterner::global().setEnabled(true);
    bgp::AttributeInterner::global().clear();

    auto ktps = [&](const RunResult &r) {
        return r.seconds > 0
                   ? double(load.transactions()) / r.seconds / 1e3
                   : 0.0;
    };

    stats::TextTable table({"mode", "wall ms", "ktps"});
    table.addRow({"interning off (BGPBENCH_NO_INTERN=1)",
                  stats::formatDouble(best_off.seconds * 1e3, 1),
                  stats::formatDouble(ktps(best_off), 1)});
    table.addRow({"interning on",
                  stats::formatDouble(best_on.seconds * 1e3, 1),
                  stats::formatDouble(ktps(best_on), 1)});
    table.print(std::cout);

    double speedup = best_on.seconds > 0
                         ? best_off.seconds / best_on.seconds
                         : 0.0;
    std::cout << "\ninterning speedup: "
              << stats::formatDouble(speedup, 2) << "x\n\n";

    obs::MetricRegistry metrics;
    metrics.counter(obs::metric::internLookups)
        .add(best_on.intern.lookups);
    metrics.counter(obs::metric::internHits).add(best_on.intern.hits);
    metrics.counter(obs::metric::internMisses)
        .add(best_on.intern.misses);
    metrics.gauge(obs::metric::internLiveSets)
        .noteMax(double(best_on.intern.liveSets));
    metrics.counter(obs::metric::internBytesDeduplicated)
        .add(best_on.intern.bytesDeduplicated);
    obs::printDedupView(std::cout, "interner (on mode)", metrics);

    std::cout << "\nShape: the workload holds only "
              << load.prefixes / prefixesPerUpdate
              << " distinct attribute sets per round, so interning "
                 "collapses every downstream equality — re-announce "
                 "suppression, update grouping, export memoisation — "
                 "to a pointer compare; the disabled mode re-proves "
                 "value equality structurally each time.\n";
    return 0;
}
