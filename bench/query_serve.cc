/**
 * @file
 * Extension benchmark: serving RIB queries while converging.
 *
 * A deployed route server answers operator and telemetry queries
 * continuously; the operative question is whether the read side taxes
 * the decision process. This bench measures three things on one
 * topology:
 *
 *  1. isolation — host wall time of the announce scenario at three
 *     attachment levels, interleaved repetitions, best-of-N each:
 *     plain (no serving), publisher only (snapshots built, nobody
 *     reading), and publisher + paced readers. publisher/plain is
 *     the fixed price of producing snapshots on the decision path;
 *     readers-on/readers-off is the interference added by actually
 *     serving, which the epoch-snapshot design is meant to keep at
 *     ~1x. Every variant must produce byte-identical convergence
 *     reports.
 *  2. concurrent service — queries answered and latency percentiles
 *     while the table was being built (staleness shown as the epoch
 *     range readers observed).
 *  3. throughput — a fixed query count per reader, flat out, against
 *     the converged table.
 *
 * Writes BENCH_query_serve.json (field reference in README.md).
 *
 * Overrides: BGPBENCH_FAST=1 / --smoke shrink the run;
 * BGPBENCH_NODES, BGPBENCH_SERVE_READERS, BGPBENCH_SNAPSHOT_EVERY,
 * BGPBENCH_QUERY_MIX as in `bgpbench config`.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime_config.hh"
#include "serve/serve_runner.hh"
#include "stats/json.hh"
#include "stats/report.hh"

#include "bench_util.hh"
#include "obs/process_memory.hh"

using namespace bgpbench;

namespace
{

double
wallMs(std::chrono::steady_clock::time_point begin)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = benchutil::fastMode();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else {
            std::cerr << "usage: query_serve [--smoke]\n";
            return 2;
        }
    }

    core::RuntimeConfig runtime = core::RuntimeConfig::fromEnvironment();
    runtime.apply();

    const size_t nodes =
        benchutil::envSize("BGPBENCH_NODES", smoke ? 10 : 24);
    const size_t prefixes_per_node = smoke ? 2 : 4;
    const int repetitions = smoke ? 3 : 5;
    const uint64_t queries_per_reader = smoke ? 50000 : 250000;
    const uint64_t seed = 42;

    serve::ServeRunConfig config;
    config.scenario.prefixesPerNode = prefixes_per_node;
    config.snapshotEvery = runtime.snapshotEvery();
    // Provision readers to the hardware unless explicitly told
    // otherwise: a deployment runs readers on cores the decision
    // process is not using. Oversubscribing a small host turns the
    // isolation measurement into an OS timeslicing measurement.
    size_t readers = runtime.serveReaders();
    if (runtime.serveReadersOrigin() == core::ConfigOrigin::Default) {
        size_t cores =
            std::max(1u, std::thread::hardware_concurrency());
        readers = std::clamp<size_t>(cores - 1, 1, readers);
    }
    config.engine.readers = int(readers);
    config.engine.queriesPerReader = queries_per_reader;
    config.engine.seed = seed;
    workload::QueryMix::parse(runtime.queryMix(),
                              config.engine.stream.mix);

    auto topology = [&] { return topo::Topology::ring(nodes); };

    std::cout << "RIB query serving (" << nodes << "-node ring, "
              << prefixes_per_node << " prefixes/node, "
              << config.engine.readers << " readers, mix "
              << config.engine.stream.mix.toString() << ")\n\n";

    // Isolation: interleave the three attachment levels so machine
    // drift hits all sides equally, then compare the best wall time
    // of each. Byte-compare every report against the plain baseline.
    double plain_ms = 1e300;
    double publish_ms = 1e300;
    double on_ms = 1e300;
    bool identical = true;
    std::string baseline_json;
    serve::ServeRunResult concurrent_result;
    for (int rep = 0; rep < repetitions; ++rep) {
        auto begin = std::chrono::steady_clock::now();
        topo::ConvergenceReport baseline = topo::runAnnounceScenario(
            topology(), "ring", config.scenario);
        plain_ms = std::min(plain_ms, wallMs(begin));
        if (baseline_json.empty())
            baseline_json = baseline.toJson();
        identical = identical && baseline.toJson() == baseline_json;

        // The serve runner times the write-side phase itself
        // (convergenceHostNs), so reader startup/join and reporting
        // stay outside the measured window — exactly as they are for
        // the plain baseline above.
        serve::ServeRunConfig publish_only = config;
        publish_only.concurrentReaders = false;
        publish_only.throughputPhase = false;
        serve::ServeRunResult publish_run = serve::runServeScenario(
            topology(), "ring", publish_only);
        publish_ms = std::min(
            publish_ms, double(publish_run.convergenceHostNs) / 1e6);
        identical = identical &&
                    publish_run.convergence.toJson() == baseline_json;

        serve::ServeRunConfig paced = config;
        paced.throughputPhase = false;
        serve::ServeRunResult run =
            serve::runServeScenario(topology(), "ring", paced);
        on_ms = std::min(on_ms, double(run.convergenceHostNs) / 1e6);
        identical =
            identical && run.convergence.toJson() == baseline_json;
        concurrent_result = std::move(run);
    }
    double publish_overhead =
        plain_ms > 0.0 ? publish_ms / plain_ms : 0.0;
    double isolation = publish_ms > 0.0 ? on_ms / publish_ms : 0.0;

    std::cout << "isolation: plain "
              << stats::formatDouble(plain_ms, 2) << " ms, publisher "
              << stats::formatDouble(publish_ms, 2) << " ms (x"
              << stats::formatDouble(publish_overhead, 3)
              << "), readers on " << stats::formatDouble(on_ms, 2)
              << " ms (x" << stats::formatDouble(isolation, 3)
              << " vs publisher), reports "
              << (identical ? "identical" : "DIVERGED") << "\n";
    const serve::ServeReport &concurrent = concurrent_result.concurrent;
    std::cout << "concurrent: " << concurrent.queries
              << " queries at "
              << stats::formatDouble(concurrent.queriesPerSec / 1e6, 2)
              << " M/s, epochs " << concurrent.firstEpoch << ".."
              << concurrent.lastEpoch << " of "
              << concurrent_result.finalEpoch << "\n";

    // Capacity: flat-out fixed-count phase against the settled table.
    serve::ServeRunConfig flat = config;
    flat.concurrentReaders = false;
    serve::ServeRunResult capacity =
        serve::runServeScenario(topology(), "ring", flat);
    const serve::ServeReport &throughput = capacity.throughput;

    std::cout << "throughput: " << throughput.queries
              << " queries at "
              << stats::formatDouble(throughput.queriesPerSec / 1e6, 2)
              << " M/s over " << capacity.tableSize << " routes ("
              << capacity.snapshotsPublished << " snapshots published)"
              << "\n";
    stats::TextTable table(
        {"class", "queries", "p50 ns", "p99 ns", "max ns"});
    for (const auto &cls : throughput.classes) {
        table.addRow({workload::queryKindName(cls.kind),
                      std::to_string(cls.queries),
                      std::to_string(cls.latencyNs.p50),
                      std::to_string(cls.latencyNs.p99),
                      std::to_string(cls.latencyNs.max)});
    }
    table.print(std::cout);

    std::ofstream json("BENCH_query_serve.json");
    stats::JsonWriter writer(json);
    writer.beginObject();
    writer.field("benchmark", "query_serve");
    writer.field("nodes", uint64_t(nodes));
    writer.field("prefixes_per_node", uint64_t(prefixes_per_node));
    writer.field("seed", seed);
    writer.field("readers", uint64_t(config.engine.readers));
    writer.field("query_mix", config.engine.stream.mix.toString());
    writer.field("snapshot_every", config.snapshotEvery);
    writer.field("snapshots_published", capacity.snapshotsPublished);
    writer.field("final_epoch", capacity.finalEpoch);
    writer.field("table_size", capacity.tableSize);
    writer.field("plain_wall_ms", plain_ms);
    writer.field("publisher_wall_ms", publish_ms);
    writer.field("readers_wall_ms", on_ms);
    writer.field("publish_overhead_ratio", publish_overhead);
    writer.field("isolation_ratio", isolation);
    writer.field("report_identical", identical);
    writer.field("peak_rss_kb", obs::readProcessMemory().vmHwmKb);
    writer.key("concurrent");
    serve::writeServeReportJson(writer, concurrent);
    writer.key("throughput");
    serve::writeServeReportJson(writer, throughput);
    writer.endObject();
    json << "\n";
    std::cout << "\nwrote BENCH_query_serve.json\n";

    if (!identical) {
        std::cerr << "error: attaching readers changed the "
                     "convergence report\n";
        return 1;
    }
    if (throughput.queries !=
        uint64_t(config.engine.readers) * queries_per_reader) {
        std::cerr << "error: throughput phase lost queries\n";
        return 1;
    }
    return 0;
}
