/**
 * @file
 * Ablation C: control-plane performance per watt.
 *
 * The paper closes section V.C with the open tradeoff it could not
 * quantify: "how much power should be dedicated to the control plane
 * and how much to the data plane." This ablation attaches era-typical
 * power envelopes to the four systems and reports transactions per
 * second per control-plane watt.
 *
 * Power figures are representative published TDP/system numbers for
 * the era's parts, not measurements:
 *   Pentium III 800 (Coppermine) ~ 21 W CPU, ~ 45 W system
 *   Dual Xeon 3.0 (Irwindale) ~ 2 x 110 W CPU, ~ 280 W system
 *   IXP2400 XScale control plane ~ 2 W of the ~ 12 W SoC
 *   Cisco 3620 ~ 40 W system
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

struct PowerEnvelope
{
    const char *system;
    double controlPlaneWatts;
    double systemWatts;
};

constexpr PowerEnvelope envelopes[] = {
    {"PentiumIII", 21.0, 45.0},
    {"Xeon", 220.0, 280.0},
    {"IXP2400", 2.0, 12.0},
    {"Cisco", 15.0, 40.0},
};

} // namespace

int
main()
{
    size_t prefixes = benchutil::prefixCount(2000, 400);

    std::cout << "Ablation C: BGP throughput per watt (Scenario 2, "
              << prefixes << " prefixes)\n\n";

    stats::TextTable table({"System", "tps", "ctrl W", "tps/ctrl-W",
                            "system W", "tps/system-W"});

    for (const auto &envelope : envelopes) {
        auto profile = router::profileByName(envelope.system);
        core::BenchmarkConfig config;
        config.prefixCount = prefixes;
        core::BenchmarkRunner runner(profile, config);
        auto result = runner.run(core::scenarioByNumber(2));
        double tps = result.timedOut ? 0.0 : result.measuredTps;

        table.addRow(
            {envelope.system, stats::formatDouble(tps, 1),
             stats::formatDouble(envelope.controlPlaneWatts, 0),
             stats::formatDouble(tps / envelope.controlPlaneWatts, 1),
             stats::formatDouble(envelope.systemWatts, 0),
             stats::formatDouble(tps / envelope.systemWatts, 1)});
        std::cerr << envelope.system << ": " << tps << " tps\n";
    }
    table.print(std::cout);

    std::cout << "\nShape: the Xeon wins on raw throughput but the "
                 "embedded XScale wins on control-plane efficiency — "
                 "the tension the paper's power discussion "
                 "anticipates. A balanced router design would size "
                 "the control processor to the expected update rate "
                 "(~100 msg/s typical, bursts 2-3 orders higher) "
                 "rather than to the data plane.\n";
    return 0;
}
