/**
 * @file
 * Shared helpers for the benchmark executables: environment-variable
 * overrides so a quick run (CI) and a full paper-scale run use the
 * same binaries.
 *
 *   BGPBENCH_PREFIXES  table size per run (default per bench)
 *   BGPBENCH_SYSTEMS   comma list of systems (default: all four)
 *   BGPBENCH_FAST      1 = shrink workloads for a fast smoke run
 */

#ifndef BGPBENCH_BENCH_UTIL_HH
#define BGPBENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "router/system_profiles.hh"

namespace bgpbench::benchutil
{

inline size_t
envSize(const char *name, size_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return size_t(std::strtoull(value, nullptr, 10));
}

inline bool
fastMode()
{
    const char *value = std::getenv("BGPBENCH_FAST");
    return value && std::string(value) == "1";
}

/** Prefix count for a bench, honouring the overrides. */
inline size_t
prefixCount(size_t normal, size_t fast)
{
    size_t base = fastMode() ? fast : normal;
    return envSize("BGPBENCH_PREFIXES", base);
}

/** Systems to run, honouring BGPBENCH_SYSTEMS. */
inline std::vector<router::SystemProfile>
selectedSystems()
{
    const char *value = std::getenv("BGPBENCH_SYSTEMS");
    if (!value || !*value)
        return router::allSystemProfiles();

    std::vector<router::SystemProfile> out;
    std::string list = value;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        if (!name.empty())
            out.push_back(router::profileByName(name));
        pos = comma + 1;
    }
    return out;
}

} // namespace bgpbench::benchutil

#endif // BGPBENCH_BENCH_UTIL_HH
