/**
 * @file
 * Ablation A: update-packing sweep.
 *
 * The paper's operational conclusion (section V.C): "It is important
 * to aggregate update messages into large packets to obtain best BGP
 * processing performance by eliminating per-packet overheads." The
 * paper only measures the two endpoints (1 and 500 prefixes per
 * UPDATE); this ablation sweeps the whole range and shows where the
 * knee sits on each architecture.
 */

#include <iostream>

#include "core/test_peer.hh"
#include "router/router_system.hh"
#include "stats/report.hh"
#include "workload/update_stream.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

/** Phase-1 style run: inject a table with a given packing. */
double
startupTps(const router::SystemProfile &profile, size_t prefixes,
           size_t per_packet)
{
    sim::Simulator sim;
    router::RouterConfig rc;
    bgp::PeerConfig p1;
    p1.id = 0;
    p1.asn = 65001;
    p1.address = net::Ipv4Address(10, 0, 1, 2);
    rc.peers = {p1};

    router::RouterSystem router(&sim, profile, rc);
    core::TestPeer peer(&sim, core::TestPeerConfig{}, &router, 0);
    router.start();
    peer.connect();

    auto wait = [&](auto cond) {
        while (!cond() && sim::toSeconds(sim.now()) < 7200.0)
            sim.runUntil(sim.now() + sim::nsFromMs(1));
        return cond();
    };
    if (!wait([&]() {
            return peer.established() && router.controlDrained();
        })) {
        return 0.0;
    }

    workload::RouteSetConfig rsc;
    rsc.count = prefixes;
    auto routes = workload::generateRouteSet(rsc);
    workload::StreamConfig sc;
    sc.speakerAs = 65001;
    sc.nextHop = net::Ipv4Address(10, 0, 1, 2);
    sc.prefixesPerPacket = per_packet;

    double t0 = sim::toSeconds(sim.now());
    peer.enqueueStream(
        workload::buildAnnouncementStream(routes, sc));
    if (!wait([&]() {
            return peer.sendComplete() && router.controlDrained() &&
                   router.speaker()
                           .counters()
                           .announcementsProcessed >= prefixes;
        })) {
        return 0.0;
    }
    double elapsed = sim::toSeconds(sim.now()) - t0;
    return elapsed > 0 ? double(prefixes) / elapsed : 0.0;
}

} // namespace

int
main()
{
    size_t prefixes = benchutil::prefixCount(2000, 400);
    const size_t packings[] = {1, 2, 5, 10, 25, 50, 100, 250, 500};

    std::cout << "Ablation A: start-up announcement rate vs prefixes "
                 "per UPDATE packet (" << prefixes
              << " prefixes per run)\n\n";

    stats::TextTable table({"prefixes/packet", "PentiumIII tps",
                            "Xeon tps", "IXP2400 tps", "Cisco tps"});
    for (size_t per_packet : packings) {
        std::vector<std::string> row{std::to_string(per_packet)};
        for (const char *name :
             {"PentiumIII", "Xeon", "IXP2400", "Cisco"}) {
            double tps = startupTps(router::profileByName(name),
                                    prefixes, per_packet);
            row.push_back(stats::formatDouble(tps, 1));
            std::cerr << name << " @" << per_packet << "/pkt: " << tps
                      << " tps\n";
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nShape: throughput rises steeply until the "
                 "per-packet cost is amortised, then saturates at the "
                 "per-prefix (decision + FIB) cost. The commercial "
                 "router gains the most: its per-message slow path is "
                 "three orders of magnitude above its per-prefix "
                 "cost.\n";
    return 0;
}
