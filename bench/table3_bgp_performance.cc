/**
 * @file
 * Reproduces Table III: "BGP performance without cross-traffic in
 * transactions per second" — all eight scenarios on all four router
 * systems, printed side by side with the paper's numbers.
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "core/paper_data.hh"
#include "core/scenario.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

int
main()
{
    size_t prefixes = benchutil::prefixCount(4000, 500);
    auto systems = benchutil::selectedSystems();

    std::cout << "Table III reproduction: BGP performance without "
                 "cross-traffic (transactions/second)\n"
              << "workload: " << prefixes
              << " prefixes per run, seed 42\n\n";

    stats::TextTable table({"Scenario", "System", "measured tps",
                            "paper tps", "ratio"});

    for (const auto &profile : systems) {
        core::BenchmarkConfig config;
        config.prefixCount = prefixes;

        core::BenchmarkRunner runner(profile, config);
        for (const auto &scenario : core::allScenarios()) {
            auto result = runner.run(scenario);

            int sys = core::paper::systemIndexByName(profile.name);
            double paper_tps =
                sys >= 0 ? core::paper::table3Tps[size_t(
                               scenario.number - 1)][size_t(sys)]
                         : 0.0;
            double ratio = paper_tps > 0
                               ? result.measuredTps / paper_tps
                               : 0.0;

            table.addRow({scenario.name(), profile.name,
                          result.timedOut
                              ? "TIMEOUT"
                              : stats::formatDouble(
                                    result.measuredTps, 1),
                          stats::formatDouble(paper_tps, 1),
                          stats::formatDouble(ratio, 2)});

            std::cerr << profile.name << " " << scenario.name()
                      << ": " << result.measuredTps << " tps\n";
        }
    }

    std::cout << '\n';
    table.print(std::cout);
    std::cout << "\nratio = measured / paper; the reproduction targets "
                 "the paper's shape (orderings and rough factors), "
                 "not absolute equality.\n";
    return 0;
}
