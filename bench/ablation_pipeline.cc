/**
 * @file
 * Ablation B: multi-process pipeline vs monolithic control.
 *
 * The paper's design implication (section V.C): "BGP implementations
 * that use multiple processes perform better on multi-core
 * platforms." We test it directly: the same Xeon hardware runs the
 * XORP-style five-process suite and a monolithic single-process
 * variant with identical total per-operation costs; the uni-core
 * Pentium III serves as the control where the split should not
 * matter.
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

/** Fuse the control plane into one process, costs unchanged. */
router::SystemProfile
monolithicVariant(router::SystemProfile profile)
{
    profile.name += "-monolithic";
    profile.monolithicControl = true;
    // No commercial-style message gate: this is the same software,
    // just linked into one process.
    profile.costs.msgGateNs = 0;
    return profile;
}

double
tpsOf(const router::SystemProfile &profile, int scenario,
      size_t prefixes)
{
    core::BenchmarkConfig config;
    config.prefixCount = prefixes;
    core::BenchmarkRunner runner(profile, config);
    auto result = runner.run(core::scenarioByNumber(scenario));
    return result.timedOut ? 0.0 : result.measuredTps;
}

} // namespace

int
main()
{
    size_t prefixes = benchutil::prefixCount(3000, 400);

    std::cout << "Ablation B: five-process pipeline vs monolithic "
                 "control, identical per-operation costs ("
              << prefixes << " prefixes)\n\n";

    stats::TextTable table({"System", "Scenario", "pipelined tps",
                            "monolithic tps", "pipeline gain"});

    for (const char *name : {"PentiumIII", "Xeon"}) {
        auto base = router::profileByName(name);
        auto mono = monolithicVariant(base);
        for (int scenario : {1, 2}) {
            double piped = tpsOf(base, scenario, prefixes);
            double fused = tpsOf(mono, scenario, prefixes);
            table.addRow(
                {name, "Scenario " + std::to_string(scenario),
                 stats::formatDouble(piped, 1),
                 stats::formatDouble(fused, 1),
                 stats::formatDouble(fused > 0 ? piped / fused : 0.0,
                                     2)});
            std::cerr << name << " s" << scenario << ": piped "
                      << piped << " vs mono " << fused << "\n";
        }
    }
    table.print(std::cout);

    std::cout << "\nShape: on the uni-core Pentium III the split is "
                 "free (gain ~ 1.0x): the stages serialise either "
                 "way. On the dual-core Xeon only the multi-process "
                 "build can overlap parse/decision with RIB and FIB "
                 "work across cores, so fusing the processes forfeits "
                 "the pipeline speedup (paper section V.C).\n";
    return 0;
}
