/**
 * @file
 * Reproduces Figure 5: "BGP Performance for Different Benchmarks and
 * Cross-Traffic Loads" — transactions per second for every scenario
 * and system as the offered forwarding load rises from zero to each
 * system's bus/port limit.
 *
 * Expected shapes (paper section V.B):
 *   - Pentium III and Xeon degrade gradually with cross-traffic;
 *   - the IXP2400 is flat (separate packet processors);
 *   - the Cisco is flat on small packets but collapses on large
 *     packets as the load approaches its 78 Mbps port rate.
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "core/paper_data.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

int
main()
{
    size_t prefixes = benchutil::prefixCount(2000, 300);
    auto systems = benchutil::selectedSystems();
    // Fractions of each system's maximum forwardable rate.
    const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};

    std::cout << "Figure 5 reproduction: BGP transactions/second vs "
                 "cross-traffic (Mbps), "
              << prefixes << " prefixes per run\n";

    for (const auto &scenario : core::allScenarios()) {
        std::cout << "\n--- Benchmark " << scenario.number << ": "
                  << scenario.description() << " ---\n";
        stats::TextTable table({"System", "0%", "25%", "50%", "75%",
                                "100% of bus"});

        for (const auto &profile : systems) {
            std::vector<std::string> row{profile.name};
            for (double fraction : fractions) {
                core::BenchmarkConfig config;
                config.prefixCount = prefixes;
                config.crossTrafficMbps =
                    profile.busLimitMbps * fraction;
                core::BenchmarkRunner runner(profile, config);
                auto result = runner.run(scenario);
                row.push_back(
                    result.timedOut
                        ? "TIMEOUT"
                        : stats::formatDouble(result.measuredTps, 1));
                std::cerr << profile.name << " b" << scenario.number
                          << " @" << config.crossTrafficMbps
                          << "Mbps: " << result.measuredTps
                          << " tps\n";
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }

    std::cout << "\nBus limits (paper V.B): PentiumIII 315 Mbps (PCI), "
                 "Xeon 784 Mbps (PCIe), IXP2400 940 Mbps "
                 "(interconnect), Cisco 78 Mbps (100 Mbps ports).\n";
    return 0;
}
