/**
 * @file
 * Ablation: zero-copy wire segments vs copy-per-hop.
 *
 * Replays the paper's large-packet workload (500 prefixes per UPDATE,
 * Table I) through the wire pipeline alone — encode, fan-out to a set
 * of downstream peers, and receive-side stream decoding — with the
 * segment-sharing machinery enabled and disabled (the same switch
 * BGPBENCH_NO_SEGMENT_SHARING=1 throws process-wide).
 *
 * With sharing on, each UPDATE is encoded exactly once into a pooled
 * immutable segment; every peer's simulated link and StreamDecoder
 * borrows that one segment, and the decoder frames straight from the
 * borrowed span. With sharing off the transmit side re-encodes per
 * peer (what BgpSpeaker's per-flush cache does on a miss), the pool
 * stops recycling, and the decoder stages a private copy of every
 * byte — the seed's copy-per-hop behaviour.
 *
 * The speaker's RIB processing is deliberately excluded: it is
 * identical in both modes and would only dilute the quantity under
 * test. Results go to stdout and BENCH_ablation_wirecopy.json.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bgp/message.hh"
#include "net/logging.hh"
#include "net/wire_segment.hh"
#include "obs/metrics.hh"
#include "obs/views.hh"
#include "stats/json.hh"
#include "stats/report.hh"

#include "bench_util.hh"

using namespace bgpbench;

namespace
{

constexpr bgp::AsNumber upstreamAs = 65000;
constexpr size_t prefixesPerUpdate = 500;

net::Prefix
prefix(uint32_t i)
{
    return net::Prefix(
        net::Ipv4Address(10, uint8_t(i >> 8), uint8_t(i), 0), 24);
}

/** Realistically heavy attributes for chunk @p c. */
bgp::PathAttributesPtr
chunkAttributes(uint32_t c, uint32_t med_base)
{
    bgp::PathAttributes attrs;
    std::vector<bgp::AsNumber> path{upstreamAs};
    for (uint32_t hop = 0; hop < 7; ++hop)
        path.push_back(bgp::AsNumber(3000 + ((c * 7 + hop) % 900)));
    attrs.asPath = bgp::AsPath::sequence(std::move(path));
    attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
    attrs.med = med_base + c;
    return bgp::makeAttributes(std::move(attrs));
}

/** One full-table round: 500-prefix UPDATEs covering @p count. */
std::vector<bgp::UpdateMessage>
buildRound(size_t count, uint32_t med_base)
{
    std::vector<bgp::UpdateMessage> updates;
    updates.reserve(count / prefixesPerUpdate + 1);
    for (size_t base = 0; base < count; base += prefixesPerUpdate) {
        bgp::UpdateMessage msg;
        msg.attributes = chunkAttributes(
            uint32_t(base / prefixesPerUpdate), med_base);
        size_t end = std::min(base + prefixesPerUpdate, count);
        msg.nlri.reserve(end - base);
        for (size_t i = base; i < end; ++i)
            msg.nlri.push_back(prefix(uint32_t(i)));
        updates.push_back(std::move(msg));
    }
    return updates;
}

struct RunResult
{
    double seconds = 0.0;
    uint64_t decoded = 0;
    net::BufferPool::Stats pool;
};

/**
 * Run @p rounds of the fan-out pipeline: every UPDATE of every round
 * is delivered to @p fanout long-lived per-peer stream decoders,
 * which decode every message they receive.
 */
RunResult
runMode(const std::vector<std::vector<bgp::UpdateMessage>> &rounds,
        size_t fanout, bool sharing_on)
{
    net::setSegmentSharing(sharing_on);
    auto &pool = net::BufferPool::global();
    pool.trim();
    pool.resetStats();

    std::vector<bgp::StreamDecoder> decoders(fanout);
    RunResult result;

    auto t0 = std::chrono::steady_clock::now();
    for (const auto &round : rounds) {
        for (const auto &update : round) {
            if (sharing_on) {
                // Encode once; every peer borrows the same segment
                // (what BgpSpeaker's per-flush cache does on a hit).
                net::WireSegmentPtr seg = bgp::encodeSegment(update);
                for (size_t k = 0; k < fanout; ++k) {
                    if (k > 0)
                        pool.noteShared(seg->size());
                    decoders[k].feed(seg);
                }
            } else {
                // Copy-per-hop: a fresh encoding per peer, and the
                // decoder stages a private copy of the bytes.
                for (size_t k = 0; k < fanout; ++k)
                    decoders[k].feed(bgp::encodeSegment(update));
            }
            bgp::DecodeError error;
            for (auto &decoder : decoders) {
                while (decoder.next(error))
                    ++result.decoded;
                panicIf(bool(error),
                        "wirecopy ablation produced a decode error: " +
                            error.detail);
            }
        }
    }
    auto t1 = std::chrono::steady_clock::now();

    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.pool = pool.stats();
    return result;
}

} // namespace

int
main()
{
    size_t prefixes = benchutil::prefixCount(20000, 2000);
    size_t fanout = 16;
    size_t round_count = benchutil::fastMode() ? 4 : 12;

    // Alternate the attribute blocks between rounds so every round is
    // a genuine attribute change, like sustained churn.
    std::vector<std::vector<bgp::UpdateMessage>> rounds;
    for (size_t r = 0; r < round_count; ++r)
        rounds.push_back(
            buildRound(prefixes, r % 2 == 0 ? 1000 : 50000));

    size_t messages = 0;
    for (const auto &round : rounds)
        messages += round.size();
    uint64_t delivered =
        uint64_t(prefixes) * round_count * fanout;

    std::cout << "Ablation: zero-copy wire segments vs copy-per-hop\n"
              << "workload: " << prefixes << " prefixes, "
              << prefixesPerUpdate << "/UPDATE, " << fanout
              << " downstream peers, " << round_count
              << " attribute-change rounds (" << messages
              << " UPDATEs, " << delivered
              << " delivered transactions)\n\n";

    // Alternate the modes and keep each mode's best of three so
    // neither side is systematically favoured by cache warm-up.
    constexpr int reps = 3;
    RunResult best_off, best_on;
    for (int rep = 0; rep < reps; ++rep) {
        RunResult off = runMode(rounds, fanout, false);
        RunResult on = runMode(rounds, fanout, true);
        if (rep == 0 || off.seconds < best_off.seconds)
            best_off = off;
        if (rep == 0 || on.seconds < best_on.seconds)
            best_on = on;
    }
    // Restore the process default for good hygiene.
    net::setSegmentSharing(true);

    panicIf(best_on.decoded != uint64_t(messages) * fanout ||
                best_off.decoded != uint64_t(messages) * fanout,
            "wirecopy ablation lost messages");

    auto ktps = [&](const RunResult &r) {
        return r.seconds > 0 ? double(delivered) / r.seconds / 1e3
                             : 0.0;
    };

    stats::TextTable table({"mode", "wall ms", "ktps"});
    table.addRow({"sharing off (BGPBENCH_NO_SEGMENT_SHARING=1)",
                  stats::formatDouble(best_off.seconds * 1e3, 1),
                  stats::formatDouble(ktps(best_off), 1)});
    table.addRow({"sharing on",
                  stats::formatDouble(best_on.seconds * 1e3, 1),
                  stats::formatDouble(ktps(best_on), 1)});
    table.print(std::cout);

    double speedup = best_on.seconds > 0
                         ? best_off.seconds / best_on.seconds
                         : 0.0;
    std::cout << "\nsegment-sharing speedup: "
              << stats::formatDouble(speedup, 2) << "x\n\n";

    obs::MetricRegistry metrics;
    metrics.counter(obs::metric::wireAcquires)
        .add(best_on.pool.acquires);
    metrics.counter(obs::metric::wirePoolHits).add(best_on.pool.hits);
    metrics.counter(obs::metric::wirePoolMisses)
        .add(best_on.pool.misses);
    metrics.counter(obs::metric::wireSharedEncodes)
        .add(best_on.pool.sharedEncodes);
    metrics.counter(obs::metric::wireBytesDeduplicated)
        .add(best_on.pool.bytesDeduplicated);
    metrics.gauge(obs::metric::wireOutstandingSegments)
        .noteMax(double(best_on.pool.outstanding));
    metrics.gauge(obs::metric::wirePeakOutstandingSegments)
        .noteMax(double(best_on.pool.peakOutstanding));
    obs::printWireView(std::cout, "segment pool (on mode)", metrics);

    std::ofstream json("BENCH_ablation_wirecopy.json");
    stats::JsonWriter writer(json);
    writer.beginObject();
    writer.field("benchmark", "ablation_wirecopy");
    writer.field("prefixes", uint64_t(prefixes));
    writer.field("prefixes_per_update", uint64_t(prefixesPerUpdate));
    writer.field("fanout", uint64_t(fanout));
    writer.field("rounds", uint64_t(round_count));
    writer.field("delivered_transactions", delivered);
    writer.key("modes");
    writer.beginArray();
    auto mode = [&](const char *name, const RunResult &r) {
        writer.beginObject();
        writer.field("mode", name);
        writer.field("wall_ms", r.seconds * 1e3);
        writer.field("ktps", ktps(r));
        writer.field("pool_hits", r.pool.hits);
        writer.field("pool_misses", r.pool.misses);
        writer.field("shared_encodes", r.pool.sharedEncodes);
        writer.field("bytes_deduplicated", r.pool.bytesDeduplicated);
        writer.field("peak_outstanding_segments",
                     r.pool.peakOutstanding);
        writer.endObject();
    };
    mode("sharing_off", best_off);
    mode("sharing_on", best_on);
    writer.endArray();
    writer.field("speedup", speedup);
    writer.endObject();
    json << "\n";
    std::cout << "\nwrote BENCH_ablation_wirecopy.json\n";

    std::cout << "\nShape: with sharing on each UPDATE is encoded "
                 "once and every peer's link and decoder borrows the "
                 "same pooled immutable segment; with sharing off the "
                 "transmit side re-encodes per peer and every hop "
                 "copies, which is the seed's behaviour.\n";
    return 0;
}
