/**
 * @file
 * bgpbench — command-line front end to the benchmark library.
 *
 *   bgpbench list
 *       Show the available router systems and benchmark scenarios.
 *
 *   bgpbench run --system Xeon --scenario 2 [options]
 *       Run one scenario on one system and print the result.
 *
 *   bgpbench sweep --system PentiumIII --scenario 1 [options]
 *       Sweep cross-traffic from 0 to the system's bus limit.
 *
 *   bgpbench table3 [options]
 *       All eight scenarios on all four systems (Table III).
 *
 *   bgpbench topo --shape ring --nodes 12 [--fault link] [options]
 *       Wire N full speakers into a topology and measure
 *       network-wide convergence (optionally after a fault; the
 *       flap fault runs a link-flap train and adds the stability
 *       report).
 *
 *   bgpbench serve --shape ring --nodes 12 [options]
 *       The topo announce scenario with the read side attached: one
 *       node publishes epoch snapshots of its Loc-RIB and reader
 *       threads serve a synthetic query stream against them, both
 *       while the network converges and flat out afterwards.
 *
 *   bgpbench config
 *       Show the effective runtime configuration and where each
 *       value came from (default / environment / command line).
 *
 * Common options:
 *   --prefixes N        routing-table size per run (default 2000)
 *   --seed N            workload seed (default 42)
 *   --cross-mbps X      offered forwarding load (run only)
 *   --steps N           sweep points including 0 (sweep only, df. 5)
 *   --damping           enable RFC 2439 flap damping on the router
 *   --mrai-ms N         per-session MRAI batching (topo, 0 = off)
 *   --csv               machine-readable CSV instead of tables
 *   --stats[=FMT]       run metrics to stderr (text, csv, or json)
 *   --trace FILE        Chrome trace_event JSON of the run
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "bgp/attr_intern.hh"
#include "core/benchmark_runner.hh"
#include "core/paper_data.hh"
#include "core/runtime_config.hh"
#include "net/logging.hh"
#include "net/wire_segment.hh"
#include "obs/export.hh"
#include "obs/process_memory.hh"
#include "obs/observability.hh"
#include "obs/views.hh"
#include "serve/serve_runner.hh"
#include "stats/json.hh"
#include "stats/report.hh"
#include "topo/scenario_spec.hh"
#include "topo/scenarios.hh"

using namespace bgpbench;

namespace
{

struct CliOptions
{
    std::string command;
    std::string system = "Xeon";
    int scenario = 1;
    size_t prefixes = 2000;
    uint64_t seed = 42;
    double crossMbps = 0.0;
    int steps = 5;
    bool damping = false;
    /** Per-session MRAI in ms for topo runs (0 = off). */
    uint64_t mraiMs = 0;
    bool csv = false;
    bool json = false;
    /** Deprecated aliases for --stats views of two subsystems. */
    bool internStats = false;
    bool wireStats = false;
    /** --stats: export the run's metric registry to stderr. */
    bool stats = false;
    obs::ExportFormat statsFormat = obs::ExportFormat::Text;
    /** --trace: Chrome trace_event JSON destination ("" = off). */
    std::string tracePath;
    /** Run sinks, attached by main() when --stats/--trace ask. */
    obs::RunObservability *obs = nullptr;
    /** topo command. */
    std::string shape = "ring";
    size_t nodes = 12;
    std::string fault = "none";
    size_t faultLink = 0;
    size_t faultNode = 0;
    uint64_t downtimeMs = 50;
    /** --fault flap: link-flap train shape. */
    uint64_t flapPeriodMs = 200;
    size_t flapCycles = 5;
    size_t prefixesPerNode = 1;
    /** Worker threads for topo runs: 1 sequential, 0 = auto. */
    size_t jobs = 1;
    /** Adaptive sync windows in the parallel engine. */
    bool adaptiveSync = true;
    /** BGP maximum-paths (ECMP width) for topo/serve runs. */
    size_t maxPaths = 1;
    /** serve command (defaults resolved from RuntimeConfig). */
    size_t serveReaders = 4;
    uint64_t serveQueries = 200000;
    uint64_t snapshotEvery = 0;
    std::string queryMix;
};

[[noreturn]] void
usage(int code)
{
    std::cerr <<
        "usage: bgpbench <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                     systems and scenarios\n"
        "  run                      one scenario on one system\n"
        "  sweep                    cross-traffic sweep\n"
        "  table3                   full Table III reproduction\n"
        "  topo                     network-wide convergence\n"
        "  serve                    convergence + read-side RIB "
        "queries\n"
        "  config                   effective runtime configuration\n"
        "\n"
        "options:\n"
        "  --system NAME            PentiumIII | Xeon | IXP2400 | "
        "Cisco\n"
        "  --scenario N             1..8 (see 'bgpbench list')\n"
        "  --prefixes N             routing-table size (default "
        "2000)\n"
        "  --seed N                 workload seed (default 42)\n"
        "  --cross-mbps X           forwarding load during the run\n"
        "  --steps N                sweep points (default 5)\n"
        "  --damping                enable RFC 2439 flap damping\n"
        "  --mrai-ms N              per-session MRAI batching for "
        "topo runs (default 0 = off)\n"
        "  --csv                    CSV output\n"
        "  --stats[=FMT]            print run metrics to stderr "
        "(text | csv | json)\n"
        "  --trace FILE             write a Chrome trace_event JSON "
        "of the run\n"
        "  --no-intern              disable attribute-set interning\n"
        "  --no-prefix-tree         per-RIB hash maps instead of the\n"
        "                           shared prefix tree\n"
        "  --no-segment-sharing     disable wire segment sharing\n"
        "  --no-adaptive-sync       fixed lookahead windows in the\n"
        "                           parallel topology engine\n"
        "  --intern-stats           deprecated: interner view of "
        "--stats (removal planned; see README)\n"
        "  --wire-stats             deprecated: segment-pool view of "
        "--stats (removal planned; see README)\n"
        "\n"
        "topo options:\n"
        "  --shape NAME             line | ring | star | mesh | "
        "random | clos\n"
        "  --nodes N                router count (default 12)\n"
        "  --fault KIND             none | link | reboot | flap\n"
        "  --link N                 link index to fail/flap "
        "(default 0)\n"
        "  --node N                 router index to reboot "
        "(default 0)\n"
        "  --downtime-ms N          reboot downtime (default 50)\n"
        "  --flap-period-ms N       flap-train cycle period "
        "(default 200)\n"
        "  --flap-cycles N          flap-train down/up cycles "
        "(default 5)\n"
        "  --prefixes-per-node N    originated per router "
        "(default 1)\n"
        "  --jobs N                 worker threads (1 = sequential, "
        "0 = auto); reports are identical for every value\n"
        "  --max-paths N            BGP maximum-paths (ECMP width, "
        "default 1)\n"
        "  --json                   JSON report output\n"
        "\n"
        "serve options (plus the topo topology options):\n"
        "  --readers N              reader threads (default 4)\n"
        "  --queries N              throughput-phase queries per "
        "reader (default 200000)\n"
        "  --query-mix L:B:S:P      lookup:best-path:scan:peer-stats "
        "weights (default 88:10:1.5:0.5)\n"
        "  --snapshot-every N       publish after N decisions "
        "(default: every flush)\n";
    std::exit(code);
}

CliOptions
parseArgs(int argc, char **argv, core::RuntimeConfig &runtime)
{
    if (argc < 2)
        usage(2);

    CliOptions options;
    options.command = argv[1];

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                usage(2);
            }
            return argv[++i];
        };

        if (arg == "--system") {
            options.system = value();
        } else if (arg == "--scenario") {
            options.scenario = std::atoi(value().c_str());
        } else if (arg == "--prefixes") {
            options.prefixes =
                size_t(std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--seed") {
            options.seed =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--cross-mbps") {
            options.crossMbps = std::atof(value().c_str());
        } else if (arg == "--steps") {
            options.steps = std::atoi(value().c_str());
        } else if (arg == "--damping") {
            runtime.overrideDamping(true);
        } else if (arg == "--mrai-ms") {
            runtime.overrideMraiMs(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg == "--intern-stats" || arg == "--wire-stats") {
            if (!options.internStats && !options.wireStats) {
                std::cerr << "note: --intern-stats and --wire-stats "
                             "are deprecated aliases of --stats and "
                             "will be removed (see README)\n";
            }
            if (arg == "--intern-stats")
                options.internStats = true;
            else
                options.wireStats = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg.rfind("--stats=", 0) == 0) {
            options.stats = true;
            if (!obs::parseExportFormat(arg.substr(8),
                                        options.statsFormat)) {
                std::cerr << "unknown stats format: " << arg.substr(8)
                          << "\n";
                usage(2);
            }
        } else if (arg == "--trace") {
            options.tracePath = value();
        } else if (arg == "--no-intern") {
            runtime.overrideIntern(false);
        } else if (arg == "--no-prefix-tree") {
            runtime.overridePrefixTree(false);
        } else if (arg == "--no-segment-sharing") {
            runtime.overrideSegmentSharing(false);
        } else if (arg == "--no-adaptive-sync") {
            runtime.overrideAdaptiveSync(false);
        } else if (arg == "--shape") {
            options.shape = value();
        } else if (arg == "--nodes") {
            options.nodes =
                size_t(std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--fault") {
            options.fault = value();
        } else if (arg == "--link") {
            options.faultLink =
                size_t(std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--node") {
            options.faultNode =
                size_t(std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--downtime-ms") {
            options.downtimeMs =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--flap-period-ms") {
            options.flapPeriodMs =
                std::strtoull(value().c_str(), nullptr, 10);
            if (options.flapPeriodMs == 0) {
                std::cerr << "--flap-period-ms needs a value >= 1\n";
                usage(2);
            }
        } else if (arg == "--flap-cycles") {
            options.flapCycles =
                size_t(std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--prefixes-per-node") {
            options.prefixesPerNode =
                size_t(std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--jobs") {
            runtime.overrideJobs(
                size_t(std::strtoull(value().c_str(), nullptr, 10)));
        } else if (arg == "--max-paths") {
            size_t paths =
                size_t(std::strtoull(value().c_str(), nullptr, 10));
            if (paths == 0) {
                std::cerr << "--max-paths needs a value >= 1\n";
                usage(2);
            }
            runtime.overrideMaxPaths(paths);
        } else if (arg == "--readers") {
            runtime.overrideServeReaders(
                size_t(std::strtoull(value().c_str(), nullptr, 10)));
        } else if (arg == "--queries") {
            options.serveQueries =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--query-mix") {
            std::string mix = value();
            workload::QueryMix parsed;
            if (!workload::QueryMix::parse(mix, parsed)) {
                std::cerr << "malformed query mix: " << mix << "\n";
                usage(2);
            }
            runtime.overrideQueryMix(mix);
        } else if (arg == "--snapshot-every") {
            runtime.overrideSnapshotEvery(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(2);
        }
    }
    // env < CLI: BGPBENCH_JOBS seeds the default, --jobs overrides
    // (likewise for the serve knobs).
    options.jobs = runtime.jobs();
    options.adaptiveSync = runtime.adaptiveSync();
    options.maxPaths = runtime.maxPaths();
    options.damping = runtime.damping();
    options.mraiMs = runtime.mraiMs();
    options.serveReaders = runtime.serveReaders();
    options.snapshotEvery = runtime.snapshotEvery();
    options.queryMix = runtime.queryMix();
    return options;
}

core::BenchmarkConfig
benchConfig(const CliOptions &options)
{
    core::BenchmarkConfig config;
    config.prefixCount = options.prefixes;
    config.seed = options.seed;
    config.crossTrafficMbps = options.crossMbps;
    config.dampingEnabled = options.damping;
    config.obs = options.obs;
    return config;
}

core::BenchmarkResult
runOnce(const CliOptions &options, const router::SystemProfile &sys,
        int scenario_number, double cross_mbps)
{
    CliOptions local = options;
    local.crossMbps = cross_mbps;
    core::BenchmarkConfig config = benchConfig(local);
    core::BenchmarkRunner runner(sys, config);
    return runner.run(core::scenarioByNumber(scenario_number));
}

int
cmdList()
{
    std::cout << "systems (paper Table II):\n";
    for (const auto &profile : router::allSystemProfiles()) {
        std::cout << "  " << profile.name << "  ("
                  << profile.cpu.cores << " core(s) x "
                  << profile.cpu.threadsPerCore << " thread(s), "
                  << stats::formatDouble(
                         profile.cpu.cyclesPerSecond / 1e6, 0)
                  << " MHz, forwarding limit "
                  << stats::formatDouble(profile.busLimitMbps, 0)
                  << " Mbps)\n";
    }
    std::cout << "\nscenarios (paper Table I):\n";
    for (const auto &scenario : core::allScenarios()) {
        std::cout << "  " << scenario.number << ": "
                  << scenario.description() << "\n";
    }
    return 0;
}

int
cmdRun(const CliOptions &options)
{
    auto profile = router::profileByName(options.system);
    auto scenario = core::scenarioByNumber(options.scenario);
    auto result =
        runOnce(options, profile, options.scenario, options.crossMbps);

    if (result.timedOut) {
        std::cerr << "run exceeded the simulated-time limit\n";
        return 1;
    }

    if (options.csv) {
        std::cout << "system,scenario,prefixes,cross_mbps,tps,"
                     "phase1_s,phase2_s,phase3_s,fwd_pkts,drops\n";
        std::cout << profile.name << ',' << scenario.number << ','
                  << options.prefixes << ',' << options.crossMbps
                  << ',' << result.measuredTps << ','
                  << result.phase1.durationSec << ','
                  << (result.phase2 ? result.phase2->durationSec : 0.0)
                  << ','
                  << (result.phase3 ? result.phase3->durationSec : 0.0)
                  << ',' << result.dataPlane.forwardedPackets << ','
                  << result.dataPlane.queueDrops +
                         result.dataPlane.busDrops
                  << "\n";
        return 0;
    }

    std::cout << scenario.name() << " on " << profile.name << ": "
              << stats::formatDouble(result.measuredTps, 1)
              << " transactions/s";
    int paper_idx = core::paper::systemIndexByName(profile.name);
    if (paper_idx >= 0 && options.crossMbps == 0.0) {
        std::cout << "  (paper: "
                  << core::paper::table3Tps[size_t(
                         scenario.number - 1)][size_t(paper_idx)]
                  << ")";
    }
    std::cout << "\n";
    return 0;
}

int
cmdSweep(const CliOptions &options)
{
    auto profile = router::profileByName(options.system);
    int steps = std::max(2, options.steps);

    if (options.csv)
        std::cout << "system,scenario,cross_mbps,tps\n";

    stats::TextTable table({"cross-traffic (Mbps)", "tps"});
    for (int step = 0; step < steps; ++step) {
        double mbps = profile.busLimitMbps * double(step) /
                      double(steps - 1);
        auto result =
            runOnce(options, profile, options.scenario, mbps);
        if (options.csv) {
            std::cout << profile.name << ',' << options.scenario
                      << ',' << mbps << ',' << result.measuredTps
                      << "\n";
        } else {
            table.addRow({stats::formatDouble(mbps, 0),
                          result.timedOut
                              ? "TIMEOUT"
                              : stats::formatDouble(
                                    result.measuredTps, 1)});
        }
    }
    if (!options.csv) {
        std::cout << "Scenario " << options.scenario << " on "
                  << profile.name << ", " << options.prefixes
                  << " prefixes:\n";
        table.print(std::cout);
    }
    return 0;
}

int
cmdTable3(const CliOptions &options)
{
    if (options.csv)
        std::cout << "system,scenario,tps,paper_tps\n";
    stats::TextTable table(
        {"Scenario", "System", "tps", "paper tps"});

    for (const auto &profile : router::allSystemProfiles()) {
        for (const auto &scenario : core::allScenarios()) {
            auto result = runOnce(options, profile, scenario.number,
                                  0.0);
            int idx = core::paper::systemIndexByName(profile.name);
            double paper =
                idx >= 0 ? core::paper::table3Tps[size_t(
                               scenario.number - 1)][size_t(idx)]
                         : 0.0;
            if (options.csv) {
                std::cout << profile.name << ',' << scenario.number
                          << ',' << result.measuredTps << ',' << paper
                          << "\n";
            } else {
                table.addRow(
                    {scenario.name(), profile.name,
                     stats::formatDouble(result.measuredTps, 1),
                     stats::formatDouble(paper, 1)});
            }
        }
    }
    if (!options.csv)
        table.print(std::cout);
    return 0;
}

topo::Topology
topoByShape(const CliOptions &options)
{
    if (options.shape == "line")
        return topo::Topology::line(options.nodes);
    if (options.shape == "ring")
        return topo::Topology::ring(options.nodes);
    if (options.shape == "star")
        return topo::Topology::star(options.nodes);
    if (options.shape == "mesh")
        return topo::Topology::fullMesh(options.nodes);
    if (options.shape == "random") {
        return topo::Topology::barabasiAlbert(options.nodes, 2,
                                              options.seed);
    }
    if (options.shape == "clos")
        return topo::Topology::closFromSize(options.nodes);
    std::cerr << "unknown shape: " << options.shape << "\n";
    usage(2);
}

int
cmdTopo(const CliOptions &options)
{
    topo::ScenarioSpec spec;
    spec.shape = options.shape;
    spec.topology = topoByShape(options);
    spec.prefixesPerNode = options.prefixesPerNode;
    spec.simConfig.jobs = options.jobs;
    spec.simConfig.adaptiveSync = options.adaptiveSync;
    spec.simConfig.maxPaths = options.maxPaths;
    if (options.damping)
        spec.simConfig.damping = topo::churnDampingConfig();
    spec.simConfig.mraiNs = sim::nsFromMs(options.mraiMs);
    spec.simConfig.obs = options.obs;

    if (options.fault == "none") {
        spec.name = "announce";
    } else if (options.fault == "link") {
        spec.name = "link-failure";
        spec.faults.linkDown(options.faultLink, 0);
    } else if (options.fault == "reboot") {
        spec.name = "router-reboot";
        spec.faults.routerRestart(options.faultNode, 0,
                                  sim::nsFromMs(options.downtimeMs));
    } else if (options.fault == "flap") {
        spec.name = "flap-train";
        spec.faults.linkFlapTrain(options.faultLink, 0,
                                  sim::nsFromMs(options.flapPeriodMs),
                                  50, options.flapCycles, 0,
                                  options.seed);
    } else {
        std::cerr << "unknown fault: " << options.fault << "\n";
        usage(2);
    }

    topo::ScenarioResult result =
        topo::ScenarioRunner(std::move(spec)).run();
    const topo::ConvergenceReport &report = result.convergence;

    // Churn scenarios come with the stability report; the legacy
    // faults keep their exact pre-redesign output bytes.
    bool churn = options.fault == "flap";
    if (options.json) {
        std::cout << report.toJson() << "\n";
        if (churn)
            std::cout << result.stability.toJson() << "\n";
    } else if (options.csv) {
        report.printCsv(std::cout, true);
    } else {
        report.printText(std::cout);
        if (churn) {
            std::cout << "\n";
            result.stability.printText(std::cout);
        }
    }

    if (options.jobs != 1 && !options.csv && !options.json) {
        size_t jobs = options.jobs;
        if (jobs == 0) {
            jobs = std::max<size_t>(
                1, std::thread::hardware_concurrency());
        }
        // Mirror the engine's shard target: adaptive mode
        // over-decomposes to 2x jobs so idle workers have shards to
        // steal.
        topo::Topology shape = topoByShape(options);
        size_t shard_target = jobs;
        if (jobs > 1 && options.adaptiveSync)
            shard_target = std::min(shape.nodeCount(), jobs * 2);
        topo::Partition part =
            topo::partitionTopology(shape, shard_target);
        std::cerr << "parallel: " << part.shardCount << " shard(s), "
                  << part.cutLinks << " cut link(s) ("
                  << stats::formatDouble(part.edgeCutRatio * 100.0, 1)
                  << "% of links)\n";
    }
    return report.converged ? 0 : 1;
}

void
printServeReportText(std::ostream &os, const std::string &label,
                     const serve::ServeReport &report)
{
    os << label << ": " << report.queries << " queries in "
       << stats::formatDouble(double(report.wallNs) / 1e6, 2)
       << " ms (" << stats::formatDouble(report.queriesPerSec / 1e6, 2)
       << " M queries/s), epochs " << report.firstEpoch << ".."
       << report.lastEpoch << "\n";
    stats::TextTable table(
        {"class", "queries", "hits", "p50 ns", "p99 ns", "max ns"});
    for (const auto &cls : report.classes) {
        table.addRow({workload::queryKindName(cls.kind),
                      std::to_string(cls.queries),
                      std::to_string(cls.hits),
                      std::to_string(cls.latencyNs.p50),
                      std::to_string(cls.latencyNs.p99),
                      std::to_string(cls.latencyNs.max)});
    }
    table.print(os);
}

int
cmdServe(const CliOptions &options)
{
    serve::ServeRunConfig config;
    config.scenario.prefixesPerNode = options.prefixesPerNode;
    config.scenario.simConfig.jobs = options.jobs;
    config.scenario.simConfig.adaptiveSync = options.adaptiveSync;
    config.scenario.simConfig.maxPaths = options.maxPaths;
    if (options.damping)
        config.scenario.simConfig.damping = topo::churnDampingConfig();
    config.scenario.simConfig.mraiNs = sim::nsFromMs(options.mraiMs);
    config.scenario.simConfig.obs = options.obs;
    config.snapshotEvery = options.snapshotEvery;
    config.engine.readers = int(options.serveReaders);
    config.engine.queriesPerReader = options.serveQueries;
    config.engine.seed = options.seed;
    if (!workload::QueryMix::parse(options.queryMix,
                                   config.engine.stream.mix)) {
        std::cerr << "malformed query mix: " << options.queryMix
                  << "\n";
        usage(2);
    }

    serve::ServeRunResult result =
        serve::runServeScenario(topoByShape(options), options.shape,
                                config);

    if (options.json) {
        stats::JsonWriter json(std::cout);
        json.beginObject();
        json.field("readers", uint64_t(options.serveReaders));
        json.field("query_mix", config.engine.stream.mix.toString());
        json.field("snapshot_every", options.snapshotEvery);
        json.field("snapshots_published", result.snapshotsPublished);
        json.field("final_epoch", result.finalEpoch);
        json.field("table_size", result.tableSize);
        json.field("converged", result.convergence.converged);
        json.key("concurrent");
        serve::writeServeReportJson(json, result.concurrent);
        json.key("throughput");
        serve::writeServeReportJson(json, result.throughput);
        json.endObject();
        std::cout << "\n";
    } else {
        result.convergence.printText(std::cout);
        std::cout << "\nsnapshots: " << result.snapshotsPublished
                  << " published, final epoch " << result.finalEpoch
                  << ", " << result.tableSize << " routes\n\n";
        printServeReportText(std::cout, "concurrent",
                             result.concurrent);
        std::cout << "\n";
        printServeReportText(std::cout, "throughput",
                             result.throughput);
    }
    return result.convergence.converged ? 0 : 1;
}

/**
 * Metric/trace output after the command ran. Exports go to stderr so
 * the report bytes on stdout stay exactly what they were without
 * --stats; the trace goes to the requested file.
 */
int
emitObservability(const CliOptions &options,
                  obs::RunObservability &observability)
{
    if (options.stats || options.internStats || options.wireStats) {
        // The main thread's interner and the process-wide pool; in
        // parallel topology runs worker-thread interners have their
        // own (inaccessible) instances, matching the old flags.
        bgp::AttributeInterner::global().publishStats(
            observability.metrics);
        net::BufferPool::global().publishStats(observability.metrics);
        obs::publishProcessMemory(observability.metrics);
    }
    if (options.stats) {
        obs::exportMetrics(std::cerr,
                           observability.metrics.snapshot(),
                           options.statsFormat);
    }
    if (options.internStats) {
        obs::printDedupView(std::cerr, "attribute interner",
                            observability.metrics);
    }
    if (options.wireStats) {
        obs::printWireView(std::cerr, "wire segment pool",
                           observability.metrics);
    }
    if (!options.tracePath.empty()) {
        std::ofstream out(options.tracePath,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write trace file: "
                      << options.tracePath << "\n";
            return 1;
        }
        observability.trace.writeChromeTrace(out);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        core::RuntimeConfig runtime =
            core::RuntimeConfig::fromEnvironment();
        CliOptions options = parseArgs(argc, argv, runtime);
        runtime.apply();

        if (options.command == "config") {
            runtime.dump(std::cout);
            return 0;
        }

        // Sinks stay detached unless asked for: commands run the
        // exact same code path either way, and reports are identical.
        obs::RunObservability observability;
        if (options.stats || !options.tracePath.empty())
            options.obs = &observability;

        int rc = 2;
        if (options.command == "list")
            rc = cmdList();
        else if (options.command == "run")
            rc = cmdRun(options);
        else if (options.command == "sweep")
            rc = cmdSweep(options);
        else if (options.command == "table3")
            rc = cmdTable3(options);
        else if (options.command == "topo")
            rc = cmdTopo(options);
        else if (options.command == "serve")
            rc = cmdServe(options);
        else {
            std::cerr << "unknown command: " << options.command
                      << "\n";
            usage(2);
        }
        int obs_rc = emitObservability(options, observability);
        return rc != 0 ? rc : obs_rc;
    } catch (const FatalError &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
