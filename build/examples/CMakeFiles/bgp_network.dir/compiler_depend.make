# Empty compiler generated dependencies file for bgp_network.
# This may be replaced when dependencies are built.
