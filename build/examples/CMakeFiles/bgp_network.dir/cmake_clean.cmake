file(REMOVE_RECURSE
  "CMakeFiles/bgp_network.dir/bgp_network.cpp.o"
  "CMakeFiles/bgp_network.dir/bgp_network.cpp.o.d"
  "bgp_network"
  "bgp_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
