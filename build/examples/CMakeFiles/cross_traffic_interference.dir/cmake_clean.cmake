file(REMOVE_RECURSE
  "CMakeFiles/cross_traffic_interference.dir/cross_traffic_interference.cpp.o"
  "CMakeFiles/cross_traffic_interference.dir/cross_traffic_interference.cpp.o.d"
  "cross_traffic_interference"
  "cross_traffic_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_traffic_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
