# Empty compiler generated dependencies file for cross_traffic_interference.
# This may be replaced when dependencies are built.
