# Empty compiler generated dependencies file for fig4_packet_size_cpu.
# This may be replaced when dependencies are built.
