file(REMOVE_RECURSE
  "CMakeFiles/table3_bgp_performance.dir/table3_bgp_performance.cc.o"
  "CMakeFiles/table3_bgp_performance.dir/table3_bgp_performance.cc.o.d"
  "table3_bgp_performance"
  "table3_bgp_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bgp_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
