# Empty dependencies file for fig6_cross_traffic_cpu.
# This may be replaced when dependencies are built.
