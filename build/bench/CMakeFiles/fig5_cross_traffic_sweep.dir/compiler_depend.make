# Empty compiler generated dependencies file for fig5_cross_traffic_sweep.
# This may be replaced when dependencies are built.
