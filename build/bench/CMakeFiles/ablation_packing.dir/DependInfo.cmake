
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_packing.cc" "bench/CMakeFiles/ablation_packing.dir/ablation_packing.cc.o" "gcc" "bench/CMakeFiles/ablation_packing.dir/ablation_packing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgpbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/bgpbench_router.dir/DependInfo.cmake"
  "/root/repo/build/src/fib/CMakeFiles/bgpbench_fib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgpbench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bgpbench_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/bgpbench_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bgpbench_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bgpbench_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
