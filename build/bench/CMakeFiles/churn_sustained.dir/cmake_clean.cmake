file(REMOVE_RECURSE
  "CMakeFiles/churn_sustained.dir/churn_sustained.cc.o"
  "CMakeFiles/churn_sustained.dir/churn_sustained.cc.o.d"
  "churn_sustained"
  "churn_sustained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_sustained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
