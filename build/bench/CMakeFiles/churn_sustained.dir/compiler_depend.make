# Empty compiler generated dependencies file for churn_sustained.
# This may be replaced when dependencies are built.
